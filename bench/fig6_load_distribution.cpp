// fig6_load_distribution — reproduce Fig. 6: the fraction of run time GPU
// device 0 spends at each queue load (0..6) as the per-task computational
// complexity rises (Romberg with k = 7, 9, 11, 13 dichotomies; 2 GPUs,
// maximum queue length fixed at 6).
//
// Paper shape: at k=7 the mass sits at low loads; as k grows the mass
// migrates to the full end (k=13: load 6 occupies ~44% of the run).

#include <cstdio>
#include <vector>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace hspec;
  std::fputs(util::bench_banner(
                 "Fig. 6 — load distribution on device 0 vs task complexity",
                 "2 GPUs, qlen 6; Romberg k=7,9,11,13; mass shifts from "
                 "load 0-2 to load 5-6 as k grows")
                 .c_str(),
             stdout);

  const perfmodel::PaperCalibration cal;
  const std::vector<std::size_t> ks{7, 9, 11, 13};

  util::Table t({"load", "k=7", "k=9", "k=11", "k=13"});
  // fraction[ki][load]
  std::vector<std::vector<double>> frac(ks.size(), std::vector<double>(7));
  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    auto w = perfmodel::paper_workload();
    w.method = quad::KernelMethod::romberg;
    w.method_param = ks[ki];
    const perfmodel::SpectralCostModel model(cal, w);
    const auto res =
        sim::simulate_hybrid(bench::spectral_sim_config(model, 2, 6));
    double total = 0.0;
    for (double x : res.load0_residency_s) total += x;
    for (int l = 0; l <= 6; ++l)
      frac[ki][static_cast<std::size_t>(l)] =
          total > 0.0 ? res.load0_residency_s[static_cast<std::size_t>(l)] /
                            total
                      : 0.0;
  }
  for (int l = 0; l <= 6; ++l) {
    std::vector<std::string> row{std::to_string(l)};
    for (std::size_t ki = 0; ki < ks.size(); ++ki)
      row.push_back(util::Table::pct(frac[ki][static_cast<std::size_t>(l)]));
    t.add_row(row);
  }
  std::fputs(t.str().c_str(), stdout);
  t.write_csv("fig6_load_distribution.csv");

  auto mean_load = [&](std::size_t ki) {
    double m = 0.0;
    for (int l = 0; l <= 6; ++l)
      m += l * frac[ki][static_cast<std::size_t>(l)];
    return m;
  };
  std::printf("\nmean occupied load: k=7: %.2f  k=9: %.2f  k=11: %.2f  "
              "k=13: %.2f\n",
              mean_load(0), mean_load(1), mean_load(2), mean_load(3));

  std::printf("\nshape checks:\n");
  bench::check(mean_load(0) < mean_load(1) && mean_load(1) < mean_load(2),
               "queue residency shifts to higher loads as k grows");
  bench::check(frac[0][0] + frac[0][1] + frac[0][2] > 0.5,
               "k=7 mass concentrated at loads 0-2");
  bench::check(frac[3][5] + frac[3][6] > 0.5,
               "k=13 mass concentrated at loads 5-6 (paper: 44% at load 6)");
  std::printf("\ncsv: fig6_load_distribution.csv\n");
  return 0;
}
