// ablation_scheduler — quantify the design choice of §II-B/§V: the
// shared-memory scheduler vs an MPS-style client-server scheduler.
//
// "the MPS ... client-server architecture will introduce much extra
// overhead if each task is fast and scheduling is quite frequent like in
// the spectral calculation." The ablation replays the same workload with
// the per-task scheduling round trip set to (a) the shm cost and (b) an
// IPC round trip, at both task granularities.

#include <cstdio>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace hspec;
  std::fputs(util::bench_banner(
                 "Ablation — shared-memory scheduler vs MPS-style "
                 "client-server",
                 "shm round trip ~2 us vs IPC ~200 us; penalty grows with "
                 "scheduling frequency (Level granularity)")
                 .c_str(),
             stdout);

  const perfmodel::PaperCalibration cal;
  const perfmodel::SpectralCostModel model(cal, perfmodel::paper_workload());

  util::Table t({"granularity", "scheduler", "round trip", "total (s)",
                 "overhead vs shm"});
  double base[2] = {0.0, 0.0};
  for (int gi = 0; gi < 2; ++gi) {
    const auto gran = gi == 0 ? core::TaskGranularity::ion
                              : core::TaskGranularity::level;
    for (int mode = 0; mode < 2; ++mode) {
      auto cfg = bench::spectral_sim_config(model, 3, 10, gran);
      const double rt = mode == 0 ? cal.shm_scheduler_overhead_s
                                  : cal.mps_scheduler_overhead_s;
      // Client-server scheduling costs the round trip on submission too
      // (request + response), not just on completion.
      cfg.sched_overhead_s = rt;
      cfg.prep_s += mode == 0 ? rt : 2.0 * rt;
      const auto res = sim::simulate_hybrid(cfg);
      if (mode == 0) base[gi] = res.makespan_s;
      char overhead[32];
      std::snprintf(overhead, sizeof overhead, "+%.2f%%",
                    100.0 * (res.makespan_s - base[gi]) / base[gi]);
      t.add_row({core::to_string(gran),
                 mode == 0 ? "shared memory" : "MPS-style client-server",
                 mode == 0 ? "2 us" : "200 us",
                 util::Table::num(res.makespan_s, 4),
                 mode == 0 ? "-" : overhead});
    }
  }
  std::fputs(t.str().c_str(), stdout);
  t.write_csv("ablation_scheduler.csv");

  // Recompute penalties for the checks.
  auto penalty = [&](core::TaskGranularity gran) {
    auto shm_cfg = bench::spectral_sim_config(model, 3, 10, gran);
    shm_cfg.prep_s += cal.shm_scheduler_overhead_s;
    shm_cfg.sched_overhead_s = cal.shm_scheduler_overhead_s;
    auto mps_cfg = bench::spectral_sim_config(model, 3, 10, gran);
    mps_cfg.prep_s += 2.0 * cal.mps_scheduler_overhead_s;
    mps_cfg.sched_overhead_s = cal.mps_scheduler_overhead_s;
    return sim::simulate_hybrid(mps_cfg).makespan_s /
           sim::simulate_hybrid(shm_cfg).makespan_s;
  };
  const double ion_penalty = penalty(core::TaskGranularity::ion);
  const double level_penalty = penalty(core::TaskGranularity::level);
  std::printf("\nshape checks:\n");
  bench::check(ion_penalty > 1.0, "client-server costs extra time at ion "
                                  "granularity");
  bench::check(level_penalty > ion_penalty,
               "penalty grows with scheduling frequency (Level > Ion)");
  std::printf("\ncsv: ablation_scheduler.csv\n");
  return 0;
}
