// ablation_scheduler — two scheduler ablations in one binary.
//
// 1. The real policy sweep (DESIGN.md §15): run the same workload through
//    the actual HybridExecutor once per core::SchedulingPolicyKind at both
//    task granularities, and report the measured per-task scheduling
//    latency (median/mean from the shm histogram), CPU fallbacks and
//    per-device load imbalance. Spectra must stay bitwise identical to the
//    dynamic_min_load reference — the policies may only move work between
//    identical virtual GPUs. This is the table ablation_scheduler.csv
//    tracks.
//
// 2. The paper's §II-B/§V design argument, replayed on the DES: "the MPS
//    ... client-server architecture will introduce much extra overhead if
//    each task is fast and scheduling is quite frequent like in the
//    spectral calculation." Same workload with the per-task scheduling
//    round trip set to (a) the shm cost and (b) an IPC round trip.

#include <cstdio>
#include <cstring>

#include "common.h"
#include "core/hybrid_executor.h"
#include "core/sched_policy.h"
#include "util/table.h"

namespace {

/// max device history over the even share (1.0 = perfectly balanced).
double load_imbalance(const std::vector<std::int64_t>& history) {
  std::int64_t total = 0, max_dev = 0;
  for (const std::int64_t h : history) {
    total += h;
    if (h > max_dev) max_dev = h;
  }
  if (total <= 0 || history.empty()) return 1.0;
  return static_cast<double>(max_dev) * static_cast<double>(history.size()) /
         static_cast<double>(total);
}

bool bitwise_equal(const std::vector<hspec::apec::Spectrum>& a,
                   const std::vector<hspec::apec::Spectrum>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t p = 0; p < a.size(); ++p) {
    if (a[p].bin_count() != b[p].bin_count()) return false;
    for (std::size_t i = 0; i < a[p].bin_count(); ++i) {
      const double x = a[p][i];
      const double y = b[p][i];
      if (std::memcmp(&x, &y, sizeof(double)) != 0) return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace hspec;
  std::fputs(util::bench_banner(
                 "Ablation — scheduling policy sweep + shm vs MPS-style "
                 "client-server",
                 "static table cuts the per-task pick to one directed CAS; "
                 "IPC round trips price the paper's shm design argument")
                 .c_str(),
             stdout);

  // ---- 1. Real-executor sweep over core::SchedulingPolicyKind ----------
  atomic::AtomicDatabase db(bench::bench_db_config(/*max_z=*/8,
                                                   /*level_cap=*/2));
  const auto grid = apec::EnergyGrid::wavelength(5.0, 40.0, 64);
  apec::SpectrumCalculator calc(db, grid, bench::bench_kernel_options());
  std::vector<apec::GridPoint> points(8);
  for (std::size_t p = 0; p < points.size(); ++p) {
    points[p].kT_keV = 0.2 + 0.05 * static_cast<double>(p);
    points[p].ne_cm3 = 1.0;
    points[p].time_s = 0.0;
    points[p].index = p;
  }

  constexpr core::SchedulingPolicyKind kPolicies[] = {
      core::SchedulingPolicyKind::dynamic_min_load,
      core::SchedulingPolicyKind::static_cost_partition,
      core::SchedulingPolicyKind::hybrid_static_steal,
  };

  util::Table sweep({"granularity", "policy", "tasks", "fallbacks",
                     "median (ns)", "mean (ns)", "imbalance", "bitwise"});
  bool all_bitwise = true;
  bool accounting_ok = true;
  for (int gi = 0; gi < 2; ++gi) {
    const auto gran = gi == 0 ? core::TaskGranularity::ion
                              : core::TaskGranularity::level;
    std::vector<apec::Spectrum> reference;
    for (const core::SchedulingPolicyKind kind : kPolicies) {
      core::HybridConfig cfg = bench::bench_hybrid_config(/*devices=*/4);
      cfg.granularity = gran;
      cfg.scheduling_policy = kind;
      core::HybridExecutor executor(calc, cfg);
      const core::HybridResult res = executor.run_batch(points);
      const bool first = kind == core::SchedulingPolicyKind::dynamic_min_load;
      if (first) reference = res.spectra;
      const bool same = first || bitwise_equal(reference, res.spectra);
      all_bitwise = all_bitwise && same;
      accounting_ok =
          accounting_ok &&
          res.sched.decisions == static_cast<std::int64_t>(res.tasks_total);
      sweep.add_row({core::to_string(gran), core::to_string(kind),
                     util::Table::num(static_cast<double>(res.tasks_total), 6),
                     util::Table::num(
                         static_cast<double>(res.scheduling.cpu_fallbacks), 6),
                     util::Table::num(res.sched.median_ns(), 4),
                     util::Table::num(res.sched.mean_ns(), 4),
                     util::Table::num(load_imbalance(res.history), 3),
                     same ? "yes" : "NO"});
    }
  }
  std::fputs(sweep.str().c_str(), stdout);
  sweep.write_csv("ablation_scheduler.csv");

  // ---- 2. DES replay of the shm-vs-MPS design argument -----------------
  const perfmodel::PaperCalibration cal;
  const perfmodel::SpectralCostModel model(cal, perfmodel::paper_workload());

  util::Table t({"granularity", "scheduler", "round trip", "total (s)",
                 "overhead vs shm"});
  double base[2] = {0.0, 0.0};
  for (int gi = 0; gi < 2; ++gi) {
    const auto gran = gi == 0 ? core::TaskGranularity::ion
                              : core::TaskGranularity::level;
    for (int mode = 0; mode < 2; ++mode) {
      auto cfg = bench::spectral_sim_config(model, 3, 10, gran);
      const double rt = mode == 0 ? cal.shm_scheduler_overhead_s
                                  : cal.mps_scheduler_overhead_s;
      // Client-server scheduling costs the round trip on submission too
      // (request + response), not just on completion.
      cfg.sched_overhead_s = rt;
      cfg.prep_s += mode == 0 ? rt : 2.0 * rt;
      const auto res = sim::simulate_hybrid(cfg);
      if (mode == 0) base[gi] = res.makespan_s;
      char overhead[32];
      std::snprintf(overhead, sizeof overhead, "+%.2f%%",
                    100.0 * (res.makespan_s - base[gi]) / base[gi]);
      t.add_row({core::to_string(gran),
                 mode == 0 ? "shared memory" : "MPS-style client-server",
                 mode == 0 ? "2 us" : "200 us",
                 util::Table::num(res.makespan_s, 4),
                 mode == 0 ? "-" : overhead});
    }
  }
  std::fputs(t.str().c_str(), stdout);

  // Recompute penalties for the checks.
  auto penalty = [&](core::TaskGranularity gran) {
    auto shm_cfg = bench::spectral_sim_config(model, 3, 10, gran);
    shm_cfg.prep_s += cal.shm_scheduler_overhead_s;
    shm_cfg.sched_overhead_s = cal.shm_scheduler_overhead_s;
    auto mps_cfg = bench::spectral_sim_config(model, 3, 10, gran);
    mps_cfg.prep_s += 2.0 * cal.mps_scheduler_overhead_s;
    mps_cfg.sched_overhead_s = cal.mps_scheduler_overhead_s;
    return sim::simulate_hybrid(mps_cfg).makespan_s /
           sim::simulate_hybrid(shm_cfg).makespan_s;
  };
  const double ion_penalty = penalty(core::TaskGranularity::ion);
  const double level_penalty = penalty(core::TaskGranularity::level);
  std::printf("\nshape checks:\n");
  bench::check(all_bitwise,
               "every policy reproduces dynamic_min_load bit for bit");
  bench::check(accounting_ok,
               "latency histogram clocks every task exactly once");
  bench::check(ion_penalty > 1.0, "client-server costs extra time at ion "
                                  "granularity");
  bench::check(level_penalty > ion_penalty,
               "penalty grows with scheduling frequency (Level > Ion)");
  std::printf("\ncsv: ablation_scheduler.csv\n");
  return 0;
}
