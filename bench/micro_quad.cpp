// micro_quad — google-benchmark microbenchmarks of the integration kernels
// on the actual RRC integrand, the per-bin workload every figure rests on.

#include <benchmark/benchmark.h>

#include <cmath>

#include "atomic/levels.h"
#include "quad/integrate.h"
#include "rrc/rrc.h"
#include "util/units.h"

namespace {

using namespace hspec;
using namespace hspec::util::unit_literals;
using hspec::util::KeV;

rrc::RrcChannel bench_channel(bool gaunt = true) {
  rrc::RrcChannel ch;
  ch.recombining_charge = 8;
  ch.level = atomic::make_levels(8, {2, false}).front();
  ch.gaunt_correction = gaunt;
  return ch;
}

void BM_RrcIntegrandEval(benchmark::State& state) {
  const auto ch = bench_channel();
  const rrc::PlasmaState p{0.6_keV, 1.0_per_cm3, 1.0_per_cm3};
  double e = ch.level.binding_keV * 1.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rrc::rrc_power_density(ch, p, KeV{e}));
    e += 1e-9;  // defeat value caching
  }
}
BENCHMARK(BM_RrcIntegrandEval);

void BM_SimpsonBin(benchmark::State& state) {
  const auto panels = static_cast<std::size_t>(state.range(0));
  const auto ch = bench_channel();
  const rrc::PlasmaState p{0.6_keV, 1.0_per_cm3, 1.0_per_cm3};
  const KeV lo{ch.level.binding_keV * 1.05};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rrc::rrc_bin_emissivity(ch, p, lo, lo + 0.01_keV,
                                quad::KernelMethod::simpson, panels));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimpsonBin)->Arg(16)->Arg(64)->Arg(256);

void BM_RombergBin(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto ch = bench_channel();
  const rrc::PlasmaState p{0.6_keV, 1.0_per_cm3, 1.0_per_cm3};
  const KeV lo{ch.level.binding_keV * 1.05};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rrc::rrc_bin_emissivity(ch, p, lo, lo + 0.01_keV,
                                quad::KernelMethod::romberg, k));
  }
}
BENCHMARK(BM_RombergBin)->Arg(7)->Arg(9)->Arg(11)->Arg(13);

void BM_QagsBinSmooth(benchmark::State& state) {
  const auto ch = bench_channel();
  const rrc::PlasmaState p{0.6_keV, 1.0_per_cm3, 1.0_per_cm3};
  const KeV lo{ch.level.binding_keV * 1.05};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rrc::rrc_bin_emissivity_qags(ch, p, lo, lo + 0.01_keV));
  }
}
BENCHMARK(BM_QagsBinSmooth);

void BM_QagsBinEdge(benchmark::State& state) {
  // A bin containing the recombination edge: the expensive QAGS case.
  const auto ch = bench_channel();
  const rrc::PlasmaState p{0.6_keV, 1.0_per_cm3, 1.0_per_cm3};
  const KeV edge{ch.level.binding_keV};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rrc::rrc_bin_emissivity_qags(ch, p, edge - 0.05_keV, edge + 0.05_keV));
  }
}
BENCHMARK(BM_QagsBinEdge);

void BM_GaussKronrod21(benchmark::State& state) {
  auto f = [](double x) { return std::exp(-x) * x; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quad::gauss_kronrod(f, 0.0, 1.0, quad::KronrodRule::k21));
  }
}
BENCHMARK(BM_GaussKronrod21);

}  // namespace
