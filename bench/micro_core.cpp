// micro_core — google-benchmark microbenchmarks of the framework hot paths:
// the shared-memory scheduler (Algorithm 1), the virtual-GPU launch path,
// and the stiff/non-stiff ODE solvers behind the NEI study.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "core/scheduler.h"
#include "nei/system.h"
#include "ode/bdf.h"
#include "ode/lsoda.h"
#include "ode/rk45.h"
#include "sim/hybrid_sim.h"
#include "vgpu/device.h"

namespace {

using namespace hspec;

void BM_SchedulerAllocFree(benchmark::State& state) {
  auto shm = core::ShmRegion::create_inprocess(4, 10);
  core::TaskScheduler sched(shm.view());
  for (auto _ : state) {
    const int dev = sched.sche_alloc();
    if (dev >= 0) sched.sche_free(dev);
    benchmark::DoNotOptimize(dev);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerAllocFree);

void BM_SchedulerAllocFreeContended(benchmark::State& state) {
  // Shared shm across google-benchmark threads: the real contention path.
  static core::ShmRegion shm = core::ShmRegion::create_inprocess(4, 10);
  core::TaskScheduler sched(shm.view());
  for (auto _ : state) {
    const int dev = sched.sche_alloc();
    if (dev >= 0) sched.sche_free(dev);
  }
}
BENCHMARK(BM_SchedulerAllocFreeContended)->Threads(1)->Threads(4);

void BM_PickDevicePolicy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int32_t> loads(n, 3);
  std::vector<std::int64_t> hist(n, 100);
  loads[n / 2] = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::pick_device(loads, hist, 10));
}
BENCHMARK(BM_PickDevicePolicy)->Arg(4)->Arg(16)->Arg(64);

void BM_VgpuLaunchOverhead(benchmark::State& state) {
  vgpu::Device dev(vgpu::tesla_c2075(), 0);
  for (auto _ : state)
    dev.launch({1, 1, 1}, {32, 1, 1}, {}, [](const vgpu::KernelCtx&) {});
}
BENCHMARK(BM_VgpuLaunchOverhead);

void BM_HybridSimulation(benchmark::State& state) {
  sim::HybridSimConfig cfg;
  cfg.devices = static_cast<int>(state.range(0));
  cfg.total_tasks = 24 * 496;
  cfg.prep_s = 0.115;
  cfg.cpu_task_s = 1.47;
  cfg.gpu_task_s = 0.008;
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate_hybrid(cfg).makespan_s);
  state.SetItemsProcessed(state.iterations() * cfg.total_tasks);
}
BENCHMARK(BM_HybridSimulation)->Arg(1)->Arg(4);

struct Decay final : ode::OdeSystem {
  std::size_t dimension() const override { return 1; }
  void rhs(double, std::span<const double> y,
           std::span<double> d) const override {
    d[0] = -y[0];
  }
};

void BM_Rk45Decay(benchmark::State& state) {
  Decay sys;
  for (auto _ : state) {
    std::vector<double> y{1.0};
    ode::rk45_integrate(sys, 0.0, 2.0, y);
    benchmark::DoNotOptimize(y[0]);
  }
}
BENCHMARK(BM_Rk45Decay);

void BM_NeiWindowLsoda(benchmark::State& state) {
  // One element chain, one packed ten-step window — the §IV-D task body.
  nei::PlasmaHistory h;
  h.ne_cm3 = util::PerCm3{1.0};
  h.kT_keV = [](double) { return 2.0; };
  nei::NeiSystem sys(8, h);
  for (auto _ : state) {
    auto y = nei::equilibrium_state(8, util::KeV{0.1});
    for (int s = 0; s < 10; ++s)
      ode::lsoda_integrate(sys, s * 1e8, (s + 1) * 1e8, y);
    benchmark::DoNotOptimize(y[0]);
  }
}
BENCHMARK(BM_NeiWindowLsoda);

}  // namespace
