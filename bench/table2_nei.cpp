// table2_nei — reproduce Table II: NEI speedup of the hybrid approach over
// the 24-rank pure-MPI baseline, for 1-4 GPUs (maximum queue length 8,
// ten timesteps packed per task).
//
// Paper row:  1 GPU 2.8x (3137 s) | 2 GPUs 5.9x (1494 s) |
//             3 GPUs 10.8x (810 s) | 4 GPUs 15.1x (582 s)
// Shape criteria: near-linear growth in GPU count, reaching >=12x at 4.
//
// The DES runs a 50x-reduced point count (deterministic workload; time
// scales linearly in grid points) and reports rescaled absolute seconds.

#include <cstdio>

#include "common.h"
#include "perfmodel/nei_cost.h"
#include "util/table.h"

int main() {
  using namespace hspec;
  std::fputs(util::bench_banner(
                 "Table II — NEI speedup on 1-4 GPUs",
                 "speedup 2.8 / 5.9 / 10.8 / 15.1 vs 24-rank MPI "
                 "(times 3137/1494/810/582 s)")
                 .c_str(),
             stdout);

  const perfmodel::PaperCalibration cal;
  perfmodel::NeiWorkload workload;           // paper: 1e6 points x 1000 steps
  const double kScale = 50.0;                // simulate 1/50 of the points
  workload.grid_points = static_cast<std::size_t>(1'000'000 / kScale);
  const perfmodel::NeiCostModel model(cal, workload);
  const double mpi_s = model.mpi_only_s();

  constexpr double kPaperSpeedup[] = {2.8, 5.9, 10.8, 15.1};
  constexpr double kPaperTime[] = {3137.0, 1494.0, 810.0, 582.0};

  util::Table t({"GPUs", "speedup", "paper", "time (s, rescaled)", "paper"});
  double speedup[4];
  for (int g = 1; g <= 4; ++g) {
    sim::HybridSimConfig cfg;
    cfg.ranks = 24;
    cfg.devices = g;
    cfg.max_queue_length = 8;
    cfg.total_tasks = workload.total_tasks();
    cfg.prep_s = model.prep_s();
    cfg.cpu_task_s = model.cpu_task_s();
    cfg.gpu_task_s = model.gpu_task_s();
    cfg.sched_overhead_s = cal.shm_scheduler_overhead_s;
    const auto res = sim::simulate_hybrid(cfg);
    speedup[g - 1] = mpi_s / res.makespan_s;
    t.add_row({std::to_string(g), util::Table::num(speedup[g - 1], 3),
               util::Table::num(kPaperSpeedup[g - 1], 3),
               util::Table::num(res.makespan_s * kScale, 4),
               util::Table::num(kPaperTime[g - 1], 4)});
  }
  std::fputs(t.str().c_str(), stdout);
  t.write_csv("table2_nei.csv");

  std::printf("\nper-task costs: prep %.3f ms, CPU (LSODA) %.3f ms, "
              "GPU %.3f ms; MPI-24 baseline (rescaled) %.0f s (paper 8784)\n",
              model.prep_s() * 1e3, model.cpu_task_s() * 1e3,
              model.gpu_task_s() * 1e3, mpi_s * kScale);

  std::printf("\nshape checks:\n");
  bool grows = true;
  for (int i = 0; i + 1 < 4; ++i) grows &= speedup[i + 1] > speedup[i];
  bench::check(grows, "speedup grows with every added GPU");
  bench::check(speedup[3] >= 12.0, "4-GPU speedup >= 12x (paper: 15.1x)");
  bench::check(speedup[0] >= 2.0 && speedup[0] <= 6.0,
               "1-GPU speedup in the paper's region (2.8x)");
  bench::check(speedup[3] / speedup[0] > 2.5,
               "scaling 1->4 GPUs is near-linear (paper: 5.4x)");
  std::printf("\ncsv: table2_nei.csv\n");
  return 0;
}
