// ablation_async — quantify the paper's §V limitation and proposed remedy:
// "Only synchronous mode is supported in the task scheduler ... For
// integral tasks in spectral calculation, the waiting time only account for
// a very small portion of the total time ... But when the single task is
// time-consuming to GPU, some asynchronous task queuing mechanism must be
// introduced to keep CPUs busy and reduce the waiting time."
//
// The ablation replays the workload in both modes across the Romberg
// complexity dial: for cheap tasks (k=7, the Simpson regime) async barely
// matters; as tasks grow to 2^13, the synchronous ranks spend their lives
// blocked on the queue and async submission wins visibly.

#include <cstdio>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace hspec;
  std::fputs(util::bench_banner(
                 "Ablation — synchronous (paper) vs asynchronous submission",
                 "sync is fine for small tasks; async keeps CPUs busy when "
                 "a single task is time-consuming to GPU")
                 .c_str(),
             stdout);

  const perfmodel::PaperCalibration cal;
  util::Table t({"computation/task", "sync (s)", "async (s)", "async gain"});
  double gain_k7 = 0.0;
  double gain_k13 = 0.0;
  for (std::size_t k = 7; k <= 13; k += 2) {
    auto w = perfmodel::paper_workload();
    w.method = quad::KernelMethod::romberg;
    w.method_param = k;
    const perfmodel::SpectralCostModel model(cal, w);
    auto cfg = bench::spectral_sim_config(model, 2, 12);
    const auto sync = sim::simulate_hybrid(cfg);
    cfg.asynchronous = true;
    const auto async = sim::simulate_hybrid(cfg);
    const double gain = sync.makespan_s / async.makespan_s;
    if (k == 7) gain_k7 = gain;
    if (k == 13) gain_k13 = gain;
    char gain_str[32];
    std::snprintf(gain_str, sizeof gain_str, "%.2fx", gain);
    t.add_row({"2^" + std::to_string(k), util::Table::num(sync.makespan_s, 4),
               util::Table::num(async.makespan_s, 4), gain_str});
  }
  std::fputs(t.str().c_str(), stdout);
  t.write_csv("ablation_async.csv");

  std::printf("\nshape checks:\n");
  bench::check(gain_k7 < 1.15,
               "small tasks: async gains little (the paper's rationale for "
               "shipping synchronous mode)");
  bench::check(gain_k13 > 1.2,
               "expensive tasks: async submission wins clearly (the paper's "
               "future-work prediction)");
  std::printf("\ncsv: ablation_async.csv\n");
  return 0;
}
