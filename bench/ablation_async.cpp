// ablation_async — quantify the paper's §V limitation and its remedy, now
// on the REAL executor instead of the DES stub model: "Only synchronous
// mode is supported in the task scheduler ... some asynchronous task
// queuing mechanism must be introduced to keep CPUs busy."
//
// Both modes run the actual hybrid driver on the actual RRC integrals; the
// spectra are bit-identical, only the virtual device timeline and the PCIe
// byte counts differ. Two overlap regimes show up:
//
//  * Fermi (copy/compute overlap + resident edge cache): the win is the
//    per-task H2D that no longer exists plus the D2H readback hiding under
//    the next task's kernels — largest where transfers are a big share,
//    i.e. for CHEAP kernels, shrinking as Romberg depth k grows;
//  * Kepler (Hyper-Q, 32-wide): concurrent ranks' kernels overlap, so the
//    win grows with per-task computation — the paper's §V prediction that
//    async queuing pays off exactly when "the single task is time-consuming
//    to GPU".

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apec/calculator.h"
#include "common.h"
#include "core/hybrid.h"
#include "util/table.h"

namespace {

struct ModeRun {
  double makespan_s = 0.0;
  std::uint64_t bytes_h2d = 0;
  hspec::core::HybridResult result;
};

ModeRun run_mode(const hspec::apec::SpectrumCalculator& calc,
                 hspec::core::ExecutionMode mode,
                 const std::vector<hspec::apec::GridPoint>& pts) {
  hspec::core::HybridDriver driver(
      calc, hspec::bench::bench_hybrid_config(/*devices=*/2,
                                              /*max_queue_length=*/32,
                                              /*ranks=*/4, mode));
  ModeRun r;
  r.result = driver.run(pts);
  r.makespan_s = r.result.virtual_makespan_s;
  for (const auto& st : r.result.device_stats) r.bytes_h2d += st.bytes_h2d;
  return r;
}

bool spectra_identical(const hspec::core::HybridResult& a,
                       const hspec::core::HybridResult& b) {
  for (std::size_t p = 0; p < a.spectra.size(); ++p)
    for (std::size_t bin = 0; bin < a.spectra[p].bin_count(); ++bin)
      if (a.spectra[p][bin] != b.spectra[p][bin]) return false;
  return true;
}

}  // namespace

int main() {
  using namespace hspec;
  std::fputs(util::bench_banner(
                 "Ablation — synchronous (paper) vs pipelined executor "
                 "(streams + resident cache + work stealing)",
                 "same spectra, shorter device timeline, ~zero per-task H2D")
                 .c_str(),
             stdout);

  atomic::AtomicDatabase db(bench::bench_db_config(/*max_z=*/8,
                                                   /*level_cap=*/2));
  const auto grid = apec::EnergyGrid::wavelength(5.0, 40.0, 64);
  const std::vector<apec::GridPoint> pts{{0.3, 1.0, 0.0, 0},
                                         {0.8, 1.0, 0.0, 1}};

  struct Row {
    const char* label;
    quad::KernelMethod method;
    std::size_t param;
    const char* arch;
  };
  const Row rows[] = {
      {"simpson-64", quad::KernelMethod::simpson, 64, "fermi"},
      {"romberg 2^7", quad::KernelMethod::romberg, 7, "fermi"},
      {"romberg 2^9", quad::KernelMethod::romberg, 9, "fermi"},
      {"romberg 2^9", quad::KernelMethod::romberg, 9, "kepler"},
  };

  util::Table t({"computation/task", "arch", "sync (s)", "async (s)",
                 "async gain", "H2D saved"});
  double fermi_gain_cheap = 0.0;
  double fermi_gain_costly = 0.0;
  double kepler_gain_costly = 0.0;
  bool all_identical = true;
  bool all_h2d_halved = true;
  bool all_faster = true;

  for (const Row& row : rows) {
    ::setenv("HSPEC_VGPU_ARCH", row.arch, 1);
    apec::SpectrumCalculator calc(
        db, grid, bench::bench_kernel_options(row.method, row.param));

    const ModeRun sync = run_mode(calc, core::ExecutionMode::synchronous, pts);
    const ModeRun async = run_mode(calc, core::ExecutionMode::pipelined, pts);
    const double gain = sync.makespan_s / async.makespan_s;
    const double saved =
        1.0 - static_cast<double>(async.bytes_h2d) /
                  static_cast<double>(sync.bytes_h2d);

    all_identical = all_identical && spectra_identical(sync.result,
                                                       async.result);
    all_h2d_halved = all_h2d_halved && saved >= 0.5;
    all_faster = all_faster && async.makespan_s < sync.makespan_s;
    if (std::string(row.arch) == "fermi") {
      if (row.method == quad::KernelMethod::simpson) fermi_gain_cheap = gain;
      if (row.param == 9) fermi_gain_costly = gain;
    } else if (row.param == 9) {
      kepler_gain_costly = gain;
    }

    char gain_str[32];
    std::snprintf(gain_str, sizeof gain_str, "%.2fx", gain);
    char saved_str[32];
    std::snprintf(saved_str, sizeof saved_str, "%.1f%%", 100.0 * saved);
    t.add_row({row.label, row.arch, util::Table::num(sync.makespan_s, 4),
               util::Table::num(async.makespan_s, 4), gain_str, saved_str});
  }
  ::unsetenv("HSPEC_VGPU_ARCH");
  std::fputs(t.str().c_str(), stdout);
  t.write_csv("ablation_async.csv");

  std::printf("\nshape checks:\n");
  bench::check(all_identical,
               "pipelined spectra bit-identical to synchronous in every row");
  bench::check(all_faster,
               "pipelined virtual timeline shorter in every configuration");
  bench::check(all_h2d_halved,
               "resident edge cache cuts H2D bytes by >= 50% everywhere");
  bench::check(fermi_gain_cheap > fermi_gain_costly,
               "Fermi overlap gain concentrates where transfers dominate "
               "(cheap kernels)");
  bench::check(kepler_gain_costly > fermi_gain_costly,
               "Hyper-Q adds kernel concurrency on top: expensive tasks gain "
               "more on Kepler (the paper's §V prediction)");
  std::printf("\ncsv: ablation_async.csv\n");
  return 0;
}
