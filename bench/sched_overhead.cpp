// Scheduling-overhead bench (DESIGN.md §15): per-policy scheduling-latency
// histograms and per-device load imbalance for the three pluggable
// policies, over the same real-executor workload.
//
// Each policy owns one long-lived HybridExecutor; an untimed warm-up batch
// per executor pins the §15 identity contract (all three policies must
// produce bitwise-identical spectra — deep queues, so no task overflows to
// QAGS) before any measurement. The `--repeats` measured batches then
// interleave the policies round-robin so clock-frequency drift and
// background interference land on every policy evenly rather than
// penalising whichever runs last. Per policy the bench merges the
// per-batch shm latency histograms and reports the median / p90 / mean
// per-task scheduling latency plus the per-device history imbalance (max
// device share over the even share: 1.0 = perfectly even).
//
// Writes a JSON record (schema hspec-bench-sched-v1) that the CI
// bench-smoke job validates; BENCH_sched.json is the tracked baseline,
// regenerated with --require-hybrid-faster so the checked-in record always
// certifies hybrid_static_steal beating dynamic_min_load on median
// per-task scheduling latency.
//
// Exit codes: 0 ok; 1 latency gate failed (--max-median-ns /
// --require-hybrid-faster); 2 bitwise mismatch; 3 usage error.
//
// Usage:
//   sched_overhead [--points N] [--repeats R] [--ranks K] [--devices D]
//                  [--out FILE] [--max-median-ns X] [--require-hybrid-faster]

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "core/hybrid_executor.h"
#include "core/sched_policy.h"

namespace {

struct Args {
  int points = 16;
  int repeats = 6;
  int ranks = 4;
  int devices = 8;
  std::string out = "BENCH_sched.json";
  double max_median_ns = 0.0;       // gate on hybrid_static_steal's median
  bool require_hybrid_faster = false;
};

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--points") {
      const char* v = next();
      if (v == nullptr) return false;
      args.points = std::stoi(v);
    } else if (flag == "--repeats") {
      const char* v = next();
      if (v == nullptr) return false;
      args.repeats = std::stoi(v);
    } else if (flag == "--ranks") {
      const char* v = next();
      if (v == nullptr) return false;
      args.ranks = std::stoi(v);
    } else if (flag == "--devices") {
      const char* v = next();
      if (v == nullptr) return false;
      args.devices = std::stoi(v);
    } else if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args.out = v;
    } else if (flag == "--max-median-ns") {
      const char* v = next();
      if (v == nullptr) return false;
      args.max_median_ns = std::stod(v);
    } else if (flag == "--require-hybrid-faster") {
      args.require_hybrid_faster = true;
    } else {
      return false;
    }
  }
  return args.points > 0 && args.repeats > 0 && args.ranks > 0 &&
         args.devices > 0;
}

/// One policy's merged telemetry over all repeats.
struct PolicyReport {
  hspec::core::SchedulingPolicyKind kind;
  hspec::core::SchedulingStats merged;  // histograms summed across repeats
  std::vector<std::int64_t> history;    // per-device, summed across repeats
  std::int64_t cpu_fallbacks = 0;
  std::size_t tasks_total = 0;

  /// max device history over the even share (1.0 = perfectly balanced).
  double load_imbalance() const {
    std::int64_t total = 0, max_dev = 0;
    for (const std::int64_t h : history) {
      total += h;
      if (h > max_dev) max_dev = h;
    }
    if (total <= 0 || history.empty()) return 1.0;
    const double even =
        static_cast<double>(total) / static_cast<double>(history.size());
    return static_cast<double>(max_dev) / even;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hspec;
  using core::SchedulingPolicyKind;

  Args args;
  if (!parse_args(argc, argv, args)) {
    std::cerr << "usage: sched_overhead [--points N] [--repeats R] "
                 "[--ranks K] [--devices D] [--out FILE] "
                 "[--max-median-ns X] [--require-hybrid-faster]\n";
    return 3;
  }

  atomic::AtomicDatabase db(bench::bench_db_config(/*max_z=*/8,
                                                   /*level_cap=*/2));
  const auto grid = apec::EnergyGrid::wavelength(5.0, 40.0, 64);
  apec::SpectrumCalculator calc(db, grid, bench::bench_kernel_options());

  std::vector<apec::GridPoint> points(static_cast<std::size_t>(args.points));
  for (std::size_t p = 0; p < points.size(); ++p) {
    points[p].kT_keV = 0.2 + 0.05 * static_cast<double>(p);
    points[p].ne_cm3 = 1.0;
    points[p].time_s = 0.0;
    points[p].index = p;
  }

  constexpr SchedulingPolicyKind kPolicies[] = {
      SchedulingPolicyKind::dynamic_min_load,
      SchedulingPolicyKind::static_cost_partition,
      SchedulingPolicyKind::hybrid_static_steal,
  };

  std::vector<std::unique_ptr<core::HybridExecutor>> executors;
  std::vector<PolicyReport> reports;
  for (const SchedulingPolicyKind kind : kPolicies) {
    core::HybridConfig cfg = bench::bench_hybrid_config(
        args.devices, /*max_queue_length=*/32, args.ranks);
    cfg.scheduling_policy = kind;
    executors.push_back(std::make_unique<core::HybridExecutor>(calc, cfg));

    PolicyReport report;
    report.kind = kind;
    report.merged.policy = kind;
    report.history.assign(static_cast<std::size_t>(args.devices), 0);
    reports.push_back(std::move(report));
  }

  // Untimed warm-up batch per policy: faults in code/data caches and pins
  // the identity gate — every policy's spectra must match the first
  // policy's bit for bit (deep queues keep every task on the GPU kernels,
  // so scheduling cannot change the math).
  std::vector<apec::Spectrum> reference;
  for (std::size_t i = 0; i < executors.size(); ++i) {
    const core::HybridResult res = executors[i]->run_batch(points);
    if (i == 0) {
      reference = res.spectra;
      continue;
    }
    for (std::size_t p = 0; p < reference.size(); ++p)
      for (std::size_t b = 0; b < reference[p].bin_count(); ++b) {
        const double x = reference[p][b];
        const double y = res.spectra[p][b];
        if (std::memcmp(&x, &y, sizeof(double)) != 0) {
          std::cerr << "sched_overhead: policy "
                    << core::to_string(reports[i].kind)
                    << " differs bitwise at point " << p << " bin " << b
                    << "\n";
          return 2;
        }
      }
  }

  // Measured batches, policies interleaved per repeat with a rotating
  // start, so over a multiple-of-3 repeat count every policy occupies
  // every position in the round equally often — within-round drift
  // (frequency ramps, cache state inherited from the previous batch)
  // cancels instead of always taxing whichever policy runs last.
  for (int r = 0; r < args.repeats; ++r) {
    for (std::size_t j = 0; j < executors.size(); ++j) {
      const std::size_t i =
          (static_cast<std::size_t>(r) + j) % executors.size();
      PolicyReport& report = reports[i];
      const core::HybridResult res = executors[i]->run_batch(points);
      for (int b = 0; b < core::kSchedLatencyBuckets; ++b)
        report.merged.hist[b] += res.sched.hist[b];
      report.merged.decisions += res.sched.decisions;
      report.merged.latency_ns_total += res.sched.latency_ns_total;
      report.cpu_fallbacks += res.scheduling.cpu_fallbacks;
      report.tasks_total += res.tasks_total;
      for (std::size_t d = 0; d < res.history.size(); ++d)
        report.history[d] += res.history[d];
    }
  }

  const PolicyReport& dynamic_rep = reports[0];
  const PolicyReport& hybrid_rep = reports[2];
  const double hybrid_over_dynamic =
      dynamic_rep.merged.median_ns() > 0.0
          ? hybrid_rep.merged.median_ns() / dynamic_rep.merged.median_ns()
          : 0.0;

  std::ofstream out(args.out);
  if (!out) {
    std::cerr << "sched_overhead: cannot write " << args.out << "\n";
    return 3;
  }
  out << "{\n"
      << "  \"schema\": \"hspec-bench-sched-v1\",\n"
      << "  \"points\": " << args.points << ",\n"
      << "  \"repeats\": " << args.repeats << ",\n"
      << "  \"ranks\": " << args.ranks << ",\n"
      << "  \"devices\": " << args.devices << ",\n"
      << "  \"bitwise_identical\": true,\n"
      << "  \"hybrid_over_dynamic_median\": ";
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4f", hybrid_over_dynamic);
    out << buf << ",\n";
  }
  out << "  \"policies\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const PolicyReport& rep = reports[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"policy\": \"%s\", \"decisions\": %lld,"
        " \"tasks_total\": %zu, \"cpu_fallbacks\": %lld,"
        " \"median_ns\": %.1f, \"p90_ns\": %.1f, \"mean_ns\": %.1f,"
        " \"latency_ns_total\": %lld, \"load_imbalance\": %.4f}%s\n",
        core::to_string(rep.kind),
        static_cast<long long>(rep.merged.decisions), rep.tasks_total,
        static_cast<long long>(rep.cpu_fallbacks), rep.merged.median_ns(),
        rep.merged.quantile_ns(0.9), rep.merged.mean_ns(),
        static_cast<long long>(rep.merged.latency_ns_total),
        rep.load_imbalance(), i + 1 < reports.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  out.close();

  std::printf("scheduling overhead (%d points x %d repeats, %d ranks, %d "
              "devices):\n",
              args.points, args.repeats, args.ranks, args.devices);
  for (const PolicyReport& rep : reports)
    std::printf(
        "  %-22s median %7.1f ns  p90 %8.1f ns  mean %8.1f ns  "
        "imbalance %.3f  fallbacks %lld/%zu\n",
        core::to_string(rep.kind), rep.merged.median_ns(),
        rep.merged.quantile_ns(0.9), rep.merged.mean_ns(),
        rep.load_imbalance(), static_cast<long long>(rep.cpu_fallbacks),
        rep.merged.decisions > 0
            ? static_cast<std::size_t>(rep.merged.decisions)
            : std::size_t{0});
  bench::check(true, "all policies bitwise identical");
  bench::check(hybrid_over_dynamic < 1.0,
               "hybrid_static_steal median below dynamic_min_load");
  std::printf("  -> %s\n", args.out.c_str());

  if (args.max_median_ns > 0.0 &&
      hybrid_rep.merged.median_ns() > args.max_median_ns) {
    std::cerr << "sched_overhead: hybrid median "
              << hybrid_rep.merged.median_ns() << " ns above required "
              << args.max_median_ns << " ns\n";
    return 1;
  }
  if (args.require_hybrid_faster &&
      !(hybrid_rep.merged.median_ns() < dynamic_rep.merged.median_ns())) {
    std::cerr << "sched_overhead: hybrid median "
              << hybrid_rep.merged.median_ns()
              << " ns is not below dynamic median "
              << dynamic_rep.merged.median_ns() << " ns\n";
    return 1;
  }
  return 0;
}
