// Service throughput bench: the always-on SpectralService under a many-
// client storm (DESIGN.md §13).
//
// A pool of client threads hammers one service with small spectrum
// requests drawn from a shared set of grid points — the survey-fit shape
// where distinct users keep re-requesting overlapping (T, n_e) points.
// The run measures the service-level quantities the subsystem exists for:
// sustained requests/s, the memoized-cache hit rate once the point pool is
// warm, queue-wait latency quantiles under admission control, and how
// deeply cross-request coalescing packs the executor batches.
//
// Before timing anything the bench pins the cache's core contract: a
// cache-served spectrum must be bitwise identical to a direct
// HybridDriver run of the same point. Any differing bin voids the run.
//
// Writes a JSON record (schema hspec-bench-service-v1) that the CI
// bench-smoke job validates and the tracked BENCH_service.json baselines.
//
// Exit codes: 0 ok; 1 throughput below --min-rps; 2 bitwise mismatch;
// 3 usage error.
//
// Usage:
//   service_throughput [--clients N] [--requests R] [--pool P]
//                      [--out FILE] [--min-rps X]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "service/service.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Args {
  int clients = 4;
  int requests = 24;  // per client
  int pool = 12;      // distinct grid points shared by all clients
  std::string out = "BENCH_service.json";
  double min_rps = 0.0;
};

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--clients") {
      const char* v = next();
      if (v == nullptr) return false;
      args.clients = std::stoi(v);
    } else if (flag == "--requests") {
      const char* v = next();
      if (v == nullptr) return false;
      args.requests = std::stoi(v);
    } else if (flag == "--pool") {
      const char* v = next();
      if (v == nullptr) return false;
      args.pool = std::stoi(v);
    } else if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args.out = v;
    } else if (flag == "--min-rps") {
      const char* v = next();
      if (v == nullptr) return false;
      args.min_rps = std::stod(v);
    } else {
      return false;
    }
  }
  return args.clients > 0 && args.requests > 0 && args.pool > 0;
}

double quantile(std::vector<double> sorted_values, double q) {
  if (sorted_values.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_values.size() - 1) + 0.5);
  return sorted_values[std::min(idx, sorted_values.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hspec;

  Args args;
  if (!parse_args(argc, argv, args)) {
    std::cerr << "usage: service_throughput [--clients N] [--requests R] "
                 "[--pool P] [--out FILE] [--min-rps X]\n";
    return 3;
  }

  atomic::AtomicDatabase db(bench::bench_db_config(/*max_z=*/8,
                                                   /*level_cap=*/2));
  const auto grid = apec::EnergyGrid::wavelength(5.0, 40.0, 64);
  apec::SpectrumCalculator calc(db, grid, bench::bench_kernel_options());

  // The shared point pool: one temperature ladder at fixed density/epoch.
  std::vector<apec::GridPoint> pool(static_cast<std::size_t>(args.pool));
  for (std::size_t p = 0; p < pool.size(); ++p) {
    pool[p].kT_keV = 0.2 + 0.05 * static_cast<double>(p);
    pool[p].ne_cm3 = 1.0;
    pool[p].time_s = 0.0;
    pool[p].index = p;
  }

  service::ServiceConfig scfg;
  scfg.hybrid = bench::bench_hybrid_config(/*devices=*/2);
  scfg.cache.capacity = 256;
  scfg.max_pending_points = 256;
  service::SpectralService svc(calc, scfg);

  // --- Gate: cached exact hits are bitwise identical to a direct run. ---
  // Warm the pool's first point through the service, re-request it (cache
  // hit), and compare every bin against a fresh one-shot HybridDriver.
  const std::vector<apec::GridPoint> probe{pool.front()};
  svc.submit(probe).wait();
  const service::ServiceReply cached = svc.submit(probe).wait();
  core::HybridDriver direct(calc, scfg.hybrid);
  const core::HybridResult fresh = direct.run(probe);
  if (cached.stats.cache_hits != 1) {
    std::cerr << "service_throughput: warm re-request was not an exact hit\n";
    return 2;
  }
  std::size_t mismatches = 0;
  for (std::size_t b = 0; b < grid.bin_count(); ++b) {
    const double a = cached.spectra[0][b];
    const double c = fresh.spectra[0][b];
    if (std::memcmp(&a, &c, sizeof(double)) != 0) ++mismatches;
  }
  if (mismatches != 0) {
    std::cerr << "service_throughput: " << mismatches << " of "
              << grid.bin_count()
              << " bins differ bitwise between cache hit and direct run\n";
    return 2;
  }

  // --- The storm: every client walks the pool at its own offset, two ----
  // points per request, so concurrent requests overlap on cache buckets
  // and coalesce into shared batches while they are still cold.
  const int total_requests = args.clients * args.requests;
  std::vector<std::vector<service::ServiceStats>> stats_per_client(
      static_cast<std::size_t>(args.clients));
  const Clock::time_point t0 = Clock::now();
  {
    std::vector<std::thread> clients;
    clients.reserve(static_cast<std::size_t>(args.clients));
    for (int c = 0; c < args.clients; ++c) {
      clients.emplace_back([&, c] {
        auto& stats = stats_per_client[static_cast<std::size_t>(c)];
        stats.reserve(static_cast<std::size_t>(args.requests));
        for (int r = 0; r < args.requests; ++r) {
          const std::size_t base =
              static_cast<std::size_t>(c * 3 + r) % pool.size();
          std::vector<apec::GridPoint> points{
              pool[base], pool[(base + 1) % pool.size()]};
          stats.push_back(svc.submit(std::move(points)).wait().stats);
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  const double storm_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  std::vector<double> waits;
  std::uint64_t hits = 0, misses = 0;
  for (const auto& stats : stats_per_client)
    for (const service::ServiceStats& s : stats) {
      waits.push_back(s.queue_wait_s);
      hits += s.cache_hits;
      misses += s.cache_misses;
    }
  std::sort(waits.begin(), waits.end());

  const double rps = static_cast<double>(total_requests) / storm_s;
  const double hit_rate =
      static_cast<double>(hits) / static_cast<double>(hits + misses);
  const double p50 = quantile(waits, 0.50);
  const double p99 = quantile(waits, 0.99);
  const service::SpectralService::Telemetry tel = svc.telemetry();
  const service::GridCacheStats cache = svc.cache_stats();

  std::ofstream out(args.out);
  if (!out) {
    std::cerr << "service_throughput: cannot write " << args.out << "\n";
    return 3;
  }
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"schema\": \"hspec-bench-service-v1\",\n"
      "  \"clients\": %d,\n"
      "  \"requests_per_client\": %d,\n"
      "  \"pool_points\": %d,\n"
      "  \"requests_per_s\": %.6e,\n"
      "  \"cache_hit_rate\": %.4f,\n"
      "  \"queue_wait_p50_s\": %.6e,\n"
      "  \"queue_wait_p99_s\": %.6e,\n"
      "  \"batches\": %llu,\n"
      "  \"coalesced_batches\": %llu,\n"
      "  \"max_batch_points\": %llu,\n"
      "  \"max_batch_requests\": %llu,\n"
      "  \"cache_entries\": %zu,\n"
      "  \"cache_evictions\": %llu,\n"
      "  \"exact_hit_bitwise\": true\n"
      "}\n",
      args.clients, args.requests, args.pool, rps, hit_rate, p50, p99,
      static_cast<unsigned long long>(tel.batches),
      static_cast<unsigned long long>(tel.coalesced_batches),
      static_cast<unsigned long long>(tel.max_batch_points),
      static_cast<unsigned long long>(tel.max_batch_requests),
      cache.entries, static_cast<unsigned long long>(cache.evictions));
  out << buf;
  out.close();

  std::cout << "service storm: " << args.clients << " clients x "
            << args.requests << " requests  " << rps << " req/s, hit rate "
            << hit_rate << ", queue wait p50 " << p50 << "s p99 " << p99
            << "s, " << tel.coalesced_batches << "/" << tel.batches
            << " batches coalesced (deepest " << tel.max_batch_points
            << " points / " << tel.max_batch_requests << " requests) -> "
            << args.out << "\n";

  if (args.min_rps > 0.0 && rps < args.min_rps) {
    std::cerr << "service_throughput: " << rps << " req/s below required "
              << args.min_rps << "\n";
    return 1;
  }
  return 0;
}
