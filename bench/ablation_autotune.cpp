// ablation_autotune — exercise §III-A's automatic maximum-queue-length
// selection: "the scheduler will try to find the most proper maximum queue
// length by increasing the value of it gradually until the performance
// inflexion occurs." The tuned value must land at the Fig. 4 knee and its
// runtime must be within a few percent of the best fixed choice.

#include <cstdio>

#include "common.h"
#include "core/autotune.h"
#include "util/table.h"

int main() {
  using namespace hspec;
  std::fputs(util::bench_banner(
                 "Ablation — automatic maximum-queue-length tuning",
                 "the tuner lands on the Fig. 4 knee (qlen ~10-12) for "
                 "every GPU count")
                 .c_str(),
             stdout);

  const perfmodel::SpectralCostModel model({}, perfmodel::paper_workload());
  util::Table t({"GPUs", "tuned qlen", "tuned time (s)", "best fixed (s)",
                 "probes"});
  bool knee_ok = true;
  bool close_ok = true;
  for (int g = 1; g <= 4; ++g) {
    auto measure = [&](int q) {
      return sim::simulate_hybrid(bench::spectral_sim_config(model, g, q))
          .makespan_s;
    };
    const auto tuned = core::autotune_max_queue_length(measure);
    // Exhaustive best over the same probe range for reference.
    double best = 1e300;
    for (int q = 2; q <= 32; q += 2) best = std::min(best, measure(q));
    t.add_row({std::to_string(g),
               std::to_string(tuned.best_max_queue_length),
               util::Table::num(tuned.best_time_s, 4),
               util::Table::num(best, 4),
               std::to_string(tuned.probes.size())});
    knee_ok &= tuned.best_max_queue_length >= 4 &&
               tuned.best_max_queue_length <= 20;
    close_ok &= tuned.best_time_s <= best * 1.05;
  }
  std::fputs(t.str().c_str(), stdout);
  t.write_csv("ablation_autotune.csv");

  std::printf("\nshape checks:\n");
  bench::check(knee_ok, "tuned queue length lands near the Fig. 4 knee");
  bench::check(close_ok, "tuned time within 5% of the best fixed setting");
  std::printf("\ncsv: ablation_autotune.csv\n");
  return 0;
}
