// fig4_queue_length — reproduce Fig. 4: total computing time of the 24-grid
// workload vs maximum queue length, for 1-4 GPUs.
//
// Paper series (seconds; qlen = 2..14 step 2):
//   1 GPU : 356 251 221 194 186 176 179
//   2 GPUs: 221 182 178 135 124 124 128
//   3 GPUs: 184 124 119 155 119 114 117   (the 155 is a reported outlier)
//   4 GPUs: 111 113 118 ... (4-GPU row flattens near the 3-GPU one)
// Shape criteria: time falls steeply from qlen 2, knee by qlen ~10-12,
// roughly flat after; 1 GPU is slowest; 3 and 4 GPUs nearly coincide.

#include <cstdio>
#include <vector>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace hspec;
  std::fputs(util::bench_banner(
                 "Fig. 4 — total computing time vs maximum queue length",
                 "1 GPU: 356..176 s falling to a knee at qlen 10-12; "
                 "3 GPUs ~ 4 GPUs")
                 .c_str(),
             stdout);

  const perfmodel::SpectralCostModel model({}, perfmodel::paper_workload());
  std::vector<int> qlens{2, 4, 6, 8, 10, 12, 14};

  util::Table t({"max queue length", "1 GPU (s)", "2 GPUs (s)", "3 GPUs (s)",
                 "4 GPUs (s)"});
  // time[g-1][qi]
  std::vector<std::vector<double>> time(4,
                                        std::vector<double>(qlens.size()));
  for (std::size_t qi = 0; qi < qlens.size(); ++qi) {
    std::vector<std::string> row{std::to_string(qlens[qi])};
    for (int g = 1; g <= 4; ++g) {
      const auto res = sim::simulate_hybrid(
          bench::spectral_sim_config(model, g, qlens[qi]));
      time[g - 1][qi] = res.makespan_s;
      row.push_back(util::Table::num(res.makespan_s, 4));
    }
    t.add_row(row);
  }
  std::fputs(t.str().c_str(), stdout);
  t.write_csv("fig4_queue_length.csv");

  std::printf("\nshape checks:\n");
  bench::check(time[0][0] / time[0][5] > 1.4,
               "1 GPU: qlen 2 much slower than qlen 12 (paper: 2.0x)");
  bool ordered = true;
  for (std::size_t qi = 0; qi < qlens.size(); ++qi)
    ordered &= time[0][qi] >= time[1][qi] * 0.999 &&
               time[1][qi] >= time[2][qi] * 0.98;
  bench::check(ordered, "more GPUs never slower at any queue length");
  double worst34 = 0.0;
  for (std::size_t qi = 2; qi < qlens.size(); ++qi)
    worst34 = std::max(worst34,
                       std::abs(time[2][qi] - time[3][qi]) / time[2][qi]);
  bench::check(worst34 < 0.05,
               "3 GPUs and 4 GPUs nearly coincide beyond qlen 4 (paper: "
               "'almost the same')");
  bench::check(time[0][5] <= time[0][0] && time[0][5] <= time[0][1] &&
                   time[0][5] <= time[0][2],
               "knee reached by qlen 12 for 1 GPU");
  const double tail_change =
      std::abs(time[0][6] - time[0][5]) / time[0][5];
  bench::check(tail_change < 0.05,
               "flat-to-mild tail after the knee (paper: 176 -> 179 s)");
  std::printf("\ncsv: fig4_queue_length.csv\n");
  return 0;
}
