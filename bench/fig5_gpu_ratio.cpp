// fig5_gpu_ratio — reproduce Fig. 5: percentage of tasks executed on GPUs
// vs maximum queue length (Simpson kernels).
//
// Paper series (%):
//   1 GPU : 95.57 97.25 98.12 98.78 98.93 99.40 99.54
//   2 GPUs: 97.47 99.00 99.25 99.76 99.90 100.0 100.0
//   3 GPUs: 98.88 99.68 99.90 ... -> 100
//   4 GPUs: 99.22 99.85 100.0 ...
// Shape criteria: >=95% even at qlen 2; monotone-ish growth to ~100%; more
// GPUs -> higher ratio at the same qlen.

#include <cstdio>
#include <vector>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace hspec;
  std::fputs(util::bench_banner(
                 "Fig. 5 — task ratio on GPUs vs maximum queue length",
                 ">=95.57% at qlen 2 (1 GPU), reaching 100% for >=2 GPUs")
                 .c_str(),
             stdout);

  const perfmodel::SpectralCostModel model({}, perfmodel::paper_workload());
  const std::vector<int> qlens{2, 4, 6, 8, 10, 12, 14};

  util::Table t({"max queue length", "1 GPU", "2 GPUs", "3 GPUs", "4 GPUs"});
  std::vector<std::vector<double>> ratio(4,
                                         std::vector<double>(qlens.size()));
  for (std::size_t qi = 0; qi < qlens.size(); ++qi) {
    std::vector<std::string> row{std::to_string(qlens[qi])};
    for (int g = 1; g <= 4; ++g) {
      const auto res = sim::simulate_hybrid(
          bench::spectral_sim_config(model, g, qlens[qi]));
      ratio[g - 1][qi] = res.gpu_task_ratio();
      row.push_back(util::Table::pct(ratio[g - 1][qi]));
    }
    t.add_row(row);
  }
  std::fputs(t.str().c_str(), stdout);
  t.write_csv("fig5_gpu_ratio.csv");

  std::printf("\nshape checks:\n");
  bench::check(ratio[0][0] > 0.90,
               "1 GPU at qlen 2 already runs >90% of tasks (paper: 95.57%)");
  bench::check(ratio[0].back() > 0.99, "1 GPU approaches 100% at qlen 14");
  bool grows = true;
  for (std::size_t qi = 0; qi + 1 < qlens.size(); ++qi)
    grows &= ratio[0][qi + 1] >= ratio[0][qi] - 0.005;
  bench::check(grows, "ratio grows with queue length (1 GPU)");
  bool more_gpus_higher = true;
  for (int g = 0; g < 3; ++g)
    more_gpus_higher &= ratio[g + 1][0] >= ratio[g][0] - 0.005;
  bench::check(more_gpus_higher, "more GPUs raise the ratio at qlen 2");
  bench::check(ratio[3][2] > 0.999, "4 GPUs saturate at ~100% by qlen 6");
  std::printf("\ncsv: fig5_gpu_ratio.csv\n");
  return 0;
}
