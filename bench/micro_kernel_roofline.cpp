// Kernel roofline microbench: scalar vs batched integration hot path.
//
// Times integr_edges_host over a realistic RRC channel in both shapes —
// the scalar reference (one indirect call per abscissa, libm-free
// deterministic transcendentals) and the batched structure-of-arrays path
// (record / lane-parallel evaluate / replay) — on the same edges, method,
// and cutoff. Verifies the two emissivity arrays are bitwise identical,
// then writes a JSON record (schema hspec-bench-kernel-v1) that the CI
// bench-smoke job validates and the tracked BENCH_kernel.json baselines.
//
// Raw bins/sec is machine-bound, so the record also carries a calibrated
// host FMA throughput measurement and the bins/sec normalized by it —
// comparable across machines to first order — plus the kernel's modeled
// bytes/flop (the roofline abscissa).
//
// Exit codes: 0 ok; 1 speedup below --min-speedup; 2 bitwise mismatch;
// 3 usage error.
//
// Usage:
//   micro_kernel_roofline [--bins N] [--panels P] [--repeat R]
//                         [--out FILE] [--min-speedup X]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "quad/integrate.h"
#include "rrc/rrc.h"
#include "rrc/rrc_batch.h"
#include "vgpu/arena.h"
#include "vgpu/integr_kernel.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Calibrate sustained host FMA throughput [GFLOP/s]: eight independent
/// fma chains (enough ILP to fill the pipes), 2 flops per fma.
double calibrate_fma_gflops() {
  constexpr std::size_t kIters = 4'000'000;
  double a0 = 1.0, a1 = 1.1, a2 = 1.2, a3 = 1.3;
  double a4 = 1.4, a5 = 1.5, a6 = 1.6, a7 = 1.7;
  const double m = 0.9999999;
  const double c = 1e-9;
  const Clock::time_point t0 = Clock::now();
  for (std::size_t i = 0; i < kIters; ++i) {
    a0 = std::fma(a0, m, c);
    a1 = std::fma(a1, m, c);
    a2 = std::fma(a2, m, c);
    a3 = std::fma(a3, m, c);
    a4 = std::fma(a4, m, c);
    a5 = std::fma(a5, m, c);
    a6 = std::fma(a6, m, c);
    a7 = std::fma(a7, m, c);
  }
  const double dt = seconds_since(t0);
  // Keep the accumulators observable so the loop cannot be elided.
  const double sink = a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7;
  if (sink == 42.0) std::fprintf(stderr, "unlikely\n");
  return static_cast<double>(kIters) * 8.0 * 2.0 / dt / 1e9;
}

struct Args {
  std::size_t bins = 20'000;
  std::size_t panels = hspec::quad::kPaperSimpsonPanels;
  int repeat = 5;
  std::string out = "BENCH_kernel.json";
  double min_speedup = 0.0;
};

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--bins") {
      const char* v = next();
      if (v == nullptr) return false;
      args.bins = static_cast<std::size_t>(std::stoull(v));
    } else if (flag == "--panels") {
      const char* v = next();
      if (v == nullptr) return false;
      args.panels = static_cast<std::size_t>(std::stoull(v));
    } else if (flag == "--repeat") {
      const char* v = next();
      if (v == nullptr) return false;
      args.repeat = std::stoi(v);
    } else if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args.out = v;
    } else if (flag == "--min-speedup") {
      const char* v = next();
      if (v == nullptr) return false;
      args.min_speedup = std::stod(v);
    } else {
      return false;
    }
  }
  return args.bins > 0 && args.panels > 0 && args.repeat > 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hspec;

  Args args;
  if (!parse_args(argc, argv, args)) {
    std::cerr << "usage: micro_kernel_roofline [--bins N] [--panels P] "
                 "[--repeat R] [--out FILE] [--min-speedup X]\n";
    return 3;
  }

  // A mid-Z RRC channel at coronal temperature — the shape the production
  // kernels integrate all day. The grid spans the recombination edge so the
  // run exercises the cutoff select as well as the smooth tail.
  rrc::RrcChannel ch;
  ch.recombining_charge = 8;
  ch.level.n = 1;
  ch.level.binding_keV = 0.871;  // O VIII K-shell
  ch.gaunt_correction = true;
  rrc::PlasmaState plasma{util::KeV{1.0}, util::PerCm3{1.0}, util::PerCm3{1.0}};

  std::vector<double> edges(args.bins + 1);
  const double lo = 0.1, hi = 12.0;
  for (std::size_t i = 0; i <= args.bins; ++i)
    edges[i] =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(args.bins);

  vgpu::IntegrLaunchConfig cfg;
  cfg.method = quad::KernelMethod::simpson;
  cfg.method_param = args.panels;
  cfg.lower_cutoff = ch.level.binding_keV;

  auto scalar_f = [&](double e) {
    return rrc::rrc_power_density(ch, plasma, util::KeV{e}).value();
  };
  const rrc::RrcBatchIntegrand batch_f(ch, plasma);

  std::vector<double> emi_scalar(args.bins, 0.0);
  std::vector<double> emi_batch(args.bins, 0.0);
  vgpu::ScratchArena arena;

  // One untimed warmup of each path (page faults, arena growth), then the
  // best of `repeat` timed runs — minimum, not mean: the quantity being
  // measured is the kernel's speed, and every source of variance is slowdown.
  vgpu::integr_edges_host(edges, args.bins, scalar_f, emi_scalar, cfg);
  arena.reset();
  vgpu::integr_edges_host(edges, args.bins, batch_f, emi_batch, arena, cfg);

  double scalar_best_s = 1e300;
  for (int r = 0; r < args.repeat; ++r) {
    const Clock::time_point t0 = Clock::now();
    vgpu::integr_edges_host(edges, args.bins, scalar_f, emi_scalar, cfg);
    scalar_best_s = std::min(scalar_best_s, seconds_since(t0));
  }
  double batch_best_s = 1e300;
  for (int r = 0; r < args.repeat; ++r) {
    arena.reset();
    const Clock::time_point t0 = Clock::now();
    vgpu::integr_edges_host(edges, args.bins, batch_f, emi_batch, arena, cfg);
    batch_best_s = std::min(batch_best_s, seconds_since(t0));
  }

  // The whole point of the batched path is that it is a pure speedup:
  // bitwise-identical output or the run is void.
  std::size_t mismatches = 0;
  for (std::size_t b = 0; b < args.bins; ++b)
    if (std::memcmp(&emi_scalar[b], &emi_batch[b], sizeof(double)) != 0)
      ++mismatches;
  if (mismatches != 0) {
    std::cerr << "micro_kernel_roofline: " << mismatches << " of " << args.bins
              << " bins differ bitwise between scalar and batched paths\n";
    return 2;
  }

  const double n_bins = static_cast<double>(args.bins);
  const double scalar_bins_per_s = n_bins / scalar_best_s;
  const double batch_bins_per_s = n_bins / batch_best_s;
  const double speedup = batch_bins_per_s / scalar_bins_per_s;
  const double fma_gflops = calibrate_fma_gflops();

  const vgpu::WorkEstimate work = vgpu::integr_work(args.bins, cfg);
  const double bytes_per_flop =
      static_cast<double>(work.device_bytes) / work.flops;
  const std::size_t evals_per_bin =
      quad::kernel_cost_evals(cfg.method, cfg.method_param);

  std::ofstream out(args.out);
  if (!out) {
    std::cerr << "micro_kernel_roofline: cannot write " << args.out << "\n";
    return 3;
  }
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"schema\": \"hspec-bench-kernel-v1\",\n"
      "  \"method\": \"simpson\",\n"
      "  \"panels\": %zu,\n"
      "  \"bins\": %zu,\n"
      "  \"evals_per_bin\": %zu,\n"
      "  \"repeat\": %d,\n"
      "  \"scalar_bins_per_s\": %.6e,\n"
      "  \"batch_bins_per_s\": %.6e,\n"
      "  \"speedup\": %.4f,\n"
      "  \"host_fma_gflops\": %.4f,\n"
      "  \"scalar_bins_per_s_per_gflops\": %.6e,\n"
      "  \"batch_bins_per_s_per_gflops\": %.6e,\n"
      "  \"model_bytes_per_flop\": %.6e,\n"
      "  \"bitwise_identical\": true\n"
      "}\n",
      args.panels, args.bins, evals_per_bin, args.repeat, scalar_bins_per_s,
      batch_bins_per_s, speedup, fma_gflops, scalar_bins_per_s / fma_gflops,
      batch_bins_per_s / fma_gflops, bytes_per_flop);
  out << buf;
  out.close();

  std::cout << "kernel roofline: " << args.bins << " bins x " << evals_per_bin
            << " evals  scalar " << scalar_bins_per_s << " bins/s, batched "
            << batch_bins_per_s << " bins/s, speedup " << speedup
            << "x, host fma " << fma_gflops << " GFLOP/s -> " << args.out
            << "\n";

  if (args.min_speedup > 0.0 && speedup < args.min_speedup) {
    std::cerr << "micro_kernel_roofline: speedup " << speedup
              << "x below required " << args.min_speedup << "x\n";
    return 1;
  }
  return 0;
}
