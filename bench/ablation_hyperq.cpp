// ablation_hyperq — the paper's architecture note (§III-A): "application-
// level context switching is necessary on Fermi, that is the queued tasks
// are performed serially in their submission orders. Meanwhile, the Hyper-Q
// technique can allow for up to 32 simultaneous connections from multiple
// MPI processes on some Kepler GPUs, and this feature can get higher
// effective GPU utilization. So for some Kepler GPUs, the count of active
// task may be more than one."
//
// The ablation compares Fermi-style serial execution (1 active kernel)
// against Kepler Hyper-Q (32-way) on the fine-grained Level workload, where
// many small kernels queue up and concurrency pays the most.

#include <cstdio>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace hspec;
  std::fputs(util::bench_banner(
                 "Ablation — Fermi serial execution vs Kepler Hyper-Q",
                 "more than one active task per GPU raises effective "
                 "utilization for fine-grained workloads")
                 .c_str(),
             stdout);

  const perfmodel::SpectralCostModel model({}, perfmodel::paper_workload());
  util::Table t({"granularity", "GPUs", "Fermi 1-way (s)",
                 "Hyper-Q 32-way (s)", "gain"});
  double level_gain_1gpu = 0.0;
  for (const auto gran :
       {core::TaskGranularity::ion, core::TaskGranularity::level}) {
    for (int g = 1; g <= 2; ++g) {
      auto cfg = bench::spectral_sim_config(model, g, 10, gran);
      const auto fermi = sim::simulate_hybrid(cfg);
      cfg.concurrent_kernels = 32;
      const auto kepler = sim::simulate_hybrid(cfg);
      const double gain = fermi.makespan_s / kepler.makespan_s;
      if (gran == core::TaskGranularity::level && g == 1)
        level_gain_1gpu = gain;
      char gain_str[32];
      std::snprintf(gain_str, sizeof gain_str, "%.2fx", gain);
      t.add_row({core::to_string(gran), std::to_string(g),
                 util::Table::num(fermi.makespan_s, 4),
                 util::Table::num(kepler.makespan_s, 4), gain_str});
    }
  }
  std::fputs(t.str().c_str(), stdout);
  t.write_csv("ablation_hyperq.csv");

  std::printf("\nshape checks:\n");
  bench::check(level_gain_1gpu > 1.3,
               "Hyper-Q clearly helps the fine-grained Level workload on "
               "one GPU");
  std::printf("\ncsv: ablation_hyperq.csv\n");
  return 0;
}
