// table1_complexity — reproduce Table I: the task distribution between GPU
// and CPU as the computation amount per task grows (Romberg k; 2 GPUs,
// maximum queue length 6).
//
// Paper rows (computation/task, tasks on GPU, GPU ratio, load>=3 share):
//   2^7  : 6674  98.26%  37.85%
//   2^9  : 6344  93.40%  65.46%
//   2^11 : 4518  66.52%  70.76%
//   2^13 : 2779  40.92%  66.64%
// Shape criteria: GPU share falls monotonically with k, from ~all tasks at
// k=7 to roughly half at k=13; high-load residency rises with k.

#include <cstdio>
#include <vector>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace hspec;
  std::fputs(util::bench_banner(
                 "Table I — task distribution vs computational complexity",
                 "GPU ratio 98.26% (2^7) -> 40.92% (2^13); load>=3 share "
                 "37.85% -> 66.64%")
                 .c_str(),
             stdout);

  const perfmodel::PaperCalibration cal;
  constexpr double kPaperRatio[] = {0.9826, 0.9340, 0.6652, 0.4092};
  const std::vector<std::size_t> ks{7, 9, 11, 13};

  util::Table t({"computation/task", "tasks on GPU", "ratio on GPU",
                 "paper ratio", "load>=3 share", "paper"});
  std::vector<double> ratio(ks.size());
  std::vector<double> high_load(ks.size());
  constexpr double kPaperHigh[] = {0.3785, 0.6546, 0.7076, 0.6664};
  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    auto w = perfmodel::paper_workload();
    w.method = quad::KernelMethod::romberg;
    w.method_param = ks[ki];
    const perfmodel::SpectralCostModel model(cal, w);
    const auto res =
        sim::simulate_hybrid(bench::spectral_sim_config(model, 2, 6));
    ratio[ki] = res.gpu_task_ratio();
    high_load[ki] = res.load0_fraction_at_least(3);
    t.add_row({"2^" + std::to_string(ks[ki]),
               std::to_string(res.tasks_gpu), util::Table::pct(ratio[ki]),
               util::Table::pct(kPaperRatio[ki]),
               util::Table::pct(high_load[ki]),
               util::Table::pct(kPaperHigh[ki])});
  }
  std::fputs(t.str().c_str(), stdout);
  t.write_csv("table1_complexity.csv");

  std::printf("\nshape checks:\n");
  bench::check(ratio[0] > 0.95, "k=7: nearly all tasks land on the GPUs");
  bool falls = true;
  for (std::size_t ki = 0; ki + 1 < ks.size(); ++ki)
    falls &= ratio[ki + 1] < ratio[ki];
  bench::check(falls, "GPU share falls monotonically with k");
  bench::check(ratio[3] > 0.25 && ratio[3] < 0.65,
               "k=13 share in the paper's ~41% region");
  bench::check(high_load[3] > high_load[0],
               "high-load residency rises with complexity");
  std::printf("\ncsv: table1_complexity.csv\n");
  return 0;
}
