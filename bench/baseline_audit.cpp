// baseline_audit — recompute the paper's §I/§IV anchor numbers from the
// calibrated cost model, so every figure bench can be traced back to them.
//
// Paper anchors:
//   * serial APEC: ~800 s per grid point, >90% in integrals (§I, §IV);
//   * 24-rank MPI-only speedup: 13.5x (§IV);
//   * per-grid-point RRC integral count ~1e8 ("up to 2.0e8", Fig. 1);
//   * Tesla C2075: 448 cores @ 1.15 GHz, 515 DP GFLOPS (§IV).

#include <cmath>
#include <cstdio>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace hspec;
  std::fputs(util::bench_banner(
                 "baseline_audit (cost-model anchors)",
                 "serial ~800 s/point; MPI-24 speedup 13.5x; ~1e8 "
                 "integrals/point; C2075 testbed")
                 .c_str(),
             stdout);

  const perfmodel::PaperCalibration cal;
  const perfmodel::SpectralCostModel model(cal, perfmodel::paper_workload());
  const auto& w = model.workload();

  util::Table t({"anchor", "paper", "model", "unit"});
  t.add_row({"serial time per grid point", "~800", util::Table::num(model.serial_point_s(), 4), "s"});
  t.add_row({"integral share of serial time", ">90%",
             util::Table::pct(model.ion_cpu_s() /
                              (model.ion_cpu_s() + model.ion_prep_s())),
             "-"});
  t.add_row({"RRC integrals per grid point", "up to 2.0e8",
             util::Table::num(static_cast<double>(w.integrals_per_point()), 4),
             "-"});
  t.add_row({"MPI-only speedup (24 ranks)", "13.5",
             util::Table::num(24.0 * model.serial_point_s() /
                              model.mpi_only_s(24), 4),
             "x"});
  t.add_row({"GPU cores (C2075)", "448",
             util::Table::num(cal.gpu.total_cores(), 4), "-"});
  t.add_row({"GPU DP peak", "515",
             util::Table::num(cal.gpu.dp_peak_gflops, 4), "GFLOPS"});
  t.add_row({"ion task on GPU", "-", util::Table::num(model.ion_gpu_s() * 1e3, 4), "ms"});
  t.add_row({"ion task on CPU (QAGS)", "-", util::Table::num(model.ion_cpu_s(), 4), "s"});
  t.add_row({"ion task preparation", "-", util::Table::num(model.ion_prep_s() * 1e3, 4), "ms"});
  std::fputs(t.str().c_str(), stdout);
  t.write_csv("baseline_audit.csv");

  std::printf("\nshape checks:\n");
  bench::check(std::abs(model.serial_point_s() - 800.0) < 60.0,
               "serial point time within 800 +- 60 s");
  bench::check(model.ion_cpu_s() / (model.ion_cpu_s() + model.ion_prep_s()) >
                   0.9,
               "integrals dominate serial time (>90%)");
  const double mpi_speedup =
      24.0 * model.serial_point_s() / model.mpi_only_s(24);
  bench::check(std::abs(mpi_speedup - 13.5) < 0.2, "MPI-24 speedup ~13.5x");
  bench::check(w.integrals_per_point() >= 5e7 &&
                   w.integrals_per_point() <= 2e8,
               "integral count per point in the paper's range");
  std::printf("\ncsv: baseline_audit.csv\n");
  return 0;
}
