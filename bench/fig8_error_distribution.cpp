// fig8_error_distribution — reproduce Fig. 8: the distribution of relative
// error between the serial (QAGS) and hybrid (Simpson-64 on GPU) spectra.
//
// Paper: "the relative error value ranges -0.0003% to 0.0033%, and more
// than 99% errors are located in the interval of 0% to 0.0005%."
// Shape criteria: tight distribution around zero, small one-sided positive
// tail (Simpson overshoot just above recombination edges), bounded worst
// case. Our synthetic-AtomDB integrands are smoother than real APEC data,
// so the absolute error scale comes out *below* the paper's — the shape
// checks assert the paper's bounds as upper limits.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "apec/calculator.h"
#include "common.h"
#include "core/hybrid.h"
#include "util/histogram.h"
#include "util/table.h"

int main() {
  using namespace hspec;
  std::fputs(util::bench_banner(
                 "Fig. 8 — distribution of numerical error (serial vs hybrid)",
                 "errors within [-0.0003%, 0.0033%], >99% within "
                 "[0%, 0.0005%]")
                 .c_str(),
             stdout);

  atomic::DatabaseConfig db_cfg;
  db_cfg.levels = {3, true};
  atomic::AtomicDatabase db(db_cfg);
  const auto grid = apec::EnergyGrid::wavelength(1.0, 50.0, 360);

  apec::CalcOptions serial_opt;
  serial_opt.integration.adaptive = true;
  apec::CalcOptions hybrid_opt;
  hybrid_opt.integration.adaptive = false;
  apec::SpectrumCalculator serial_calc(db, grid, serial_opt);
  apec::SpectrumCalculator hybrid_calc(db, grid, hybrid_opt);

  // Two grid points widen the sample, as the paper's full run does.
  const std::vector<apec::GridPoint> points{{0.6, 1.0, 0.0, 0},
                                            {1.2, 1.0, 0.0, 1}};
  core::HybridDriver driver(hybrid_calc,
                            {4, 10, core::TaskGranularity::ion, 2});
  const auto hybrid = driver.run(points);

  std::vector<double> rel_errors;
  for (std::size_t p = 0; p < points.size(); ++p) {
    const apec::Spectrum serial = serial_calc.calculate(points[p]);
    const double peak = serial.peak();
    for (std::size_t b = 0; b < grid.bin_count(); ++b) {
      if (serial[b] < 1e-9 * peak) continue;  // empty-bin noise
      rel_errors.push_back((hybrid.spectra[p][b] - serial[b]) / serial[b]);
    }
  }
  const auto [lo_it, hi_it] =
      std::minmax_element(rel_errors.begin(), rel_errors.end());
  const double lo = *lo_it;
  const double hi = *hi_it;

  // Histogram over the observed range (padded), like the paper's panel.
  const double span = std::max(hi - lo, 1e-12);
  util::Histogram hist(lo - 0.05 * span, hi + 0.05 * span, 24);
  std::size_t in_paper_band = 0;   // [0%, 0.0005%] plus symmetric slack
  std::size_t in_paper_range = 0;  // [-0.0003%, 0.0033%]
  for (double r : rel_errors) {
    hist.add(r);
    if (r >= -5e-6 && r <= 5e-6) ++in_paper_band;
    if (r >= -3e-6 && r <= 3.3e-5) ++in_paper_range;
  }
  std::fputs(hist.ascii(40, "relative error distribution (fraction)").c_str(),
             stdout);

  const double band_share =
      static_cast<double>(in_paper_band) /
      static_cast<double>(rel_errors.size());
  std::printf("\nsamples: %zu, range [%.4g%%, %.4g%%] "
              "(paper: [-0.0003%%, 0.0033%%])\n",
              rel_errors.size(), lo * 100.0, hi * 100.0);
  std::printf("share within +-0.0005%%: %.2f%% (paper: >99%%)\n",
              100.0 * band_share);

  util::Table t({"quantity", "paper", "measured"});
  t.add_row({"min relative error (%)", "-0.0003",
             util::Table::num(lo * 100.0, 3)});
  t.add_row({"max relative error (%)", "0.0033",
             util::Table::num(hi * 100.0, 3)});
  t.add_row({"share within 0.0005% band (%)", ">99",
             util::Table::num(100.0 * band_share, 4)});
  std::fputs(t.str().c_str(), stdout);
  t.write_csv("fig8_error_distribution.csv");

  std::printf("\nshape checks:\n");
  bench::check(rel_errors.size() > 100, "enough flux-carrying bins sampled");
  bench::check(hi <= 3.3e-5 && lo >= -3e-5,
               "error range within the paper's envelope");
  bench::check(band_share > 0.99,
               ">99% of errors within the paper's 0.0005% band");
  bench::check(hi >= -lo, "tail skews positive (Simpson edge overshoot)");
  bench::check(in_paper_range == rel_errors.size(),
               "every sample inside the paper's reported interval");
  std::printf("\ncsv: fig8_error_distribution.csv\n");
  return 0;
}
