// fig3_granularity — reproduce Fig. 3: speedup over serial APEC for 1-4
// GPUs at the two task granularities.
//
// Paper series (speedup vs original serial APEC):
//   Ion   (coarse): 196.4  278.7  305.8  311.4
//   Level (fine):    97.9  132.9  155.7  158.5
// Shape criteria: Ion ~2x Level at 1 GPU; both rise with diminishing
// returns; Ion stays above Level at every device count.

#include <cmath>
#include <cstdio>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace hspec;
  std::fputs(util::bench_banner(
                 "Fig. 3 — speedup on different task granularities",
                 "Ion 196.4/278.7/305.8/311.4; Level 97.9/132.9/155.7/158.5")
                 .c_str(),
             stdout);

  const perfmodel::SpectralCostModel model({}, perfmodel::paper_workload());
  const double serial_s = 24.0 * model.serial_point_s();
  constexpr double kPaperIon[] = {196.4, 278.7, 305.8, 311.4};
  constexpr double kPaperLevel[] = {97.9, 132.9, 155.7, 158.5};

  util::Table t({"GPUs", "Ion speedup", "paper", "Level speedup", "paper"});
  double ion[4];
  double level[4];
  for (int g = 1; g <= 4; ++g) {
    const auto ion_res = sim::simulate_hybrid(bench::spectral_sim_config(
        model, g, 10, core::TaskGranularity::ion));
    const auto level_res = sim::simulate_hybrid(bench::spectral_sim_config(
        model, g, 10, core::TaskGranularity::level));
    ion[g - 1] = serial_s / ion_res.makespan_s;
    level[g - 1] = serial_s / level_res.makespan_s;
    t.add_row({std::to_string(g), util::Table::num(ion[g - 1], 4),
               util::Table::num(kPaperIon[g - 1], 4),
               util::Table::num(level[g - 1], 4),
               util::Table::num(kPaperLevel[g - 1], 4)});
  }
  std::fputs(t.str().c_str(), stdout);
  t.write_csv("fig3_granularity.csv");

  std::printf("\nshape checks:\n");
  bench::check(ion[0] / level[0] > 1.5 && ion[0] / level[0] < 2.6,
               "Ion ~2x Level at 1 GPU");
  bool ion_above = true;
  for (int i = 0; i < 4; ++i) ion_above &= ion[i] > level[i];
  bench::check(ion_above, "Ion above Level at every GPU count");
  bench::check(ion[3] >= ion[2] * 0.98 && ion[2] >= ion[1] * 0.98 &&
                   ion[1] > ion[0],
               "Ion speedup rises then saturates");
  bench::check((ion[1] - ion[0]) > (ion[3] - ion[2]),
               "diminishing returns from extra GPUs");
  bench::check(std::fabs(ion[0] - 196.4) / 196.4 < 0.25 &&
                   std::fabs(ion[2] - 305.8) / 305.8 < 0.25,
               "Ion 1- and 3-GPU speedups within 25% of the paper");
  std::printf("\ncsv: fig3_granularity.csv\n");
  return 0;
}
