#pragma once
// Shared helpers for the reproduction benches.

#include <cstdio>
#include <string>

#include "apec/calculator.h"
#include "core/hybrid.h"
#include "perfmodel/calibration.h"
#include "sim/hybrid_sim.h"

namespace hspec::bench {

// ---- Real-executor scenario boilerplate -----------------------------------
// The ablation, Fig. 7 and service benches all stand up the same synthetic
// workload: a small deterministic atomic database, a wavelength grid, fixed
// (non-adaptive) integration kernels and a HybridConfig sized for a
// single-core container. Hoisted here so a bench states only what it varies.

/// Synthetic database truncated at `max_z` with `level_cap` sampled levels.
inline atomic::DatabaseConfig bench_db_config(int max_z, int level_cap) {
  atomic::DatabaseConfig cfg;
  cfg.max_z = max_z;
  cfg.levels = {level_cap, true};
  return cfg;
}

/// Fixed-kernel CalcOptions (the GPU path: no adaptive QAGS fallback), so
/// that every executor mode runs the exact same integrator.
inline apec::CalcOptions bench_kernel_options(
    quad::KernelMethod method = quad::KernelMethod::simpson,
    std::size_t kernel_param = 64) {
  apec::CalcOptions opt;
  opt.integration.adaptive = false;
  opt.integration.kernel = method;
  opt.integration.kernel_param = kernel_param;
  return opt;
}

/// Container-scale HybridConfig. max_queue_length defaults to 32: large
/// enough that no task falls back to QAGS, which keeps spectra comparable
/// bit-for-bit across executor modes.
inline core::HybridConfig bench_hybrid_config(
    int devices, int max_queue_length = 32, int ranks = 4,
    core::ExecutionMode mode = core::ExecutionMode::pipelined) {
  core::HybridConfig cfg;
  cfg.ranks = ranks;
  cfg.devices = devices;
  cfg.max_queue_length = max_queue_length;
  cfg.mode = mode;
  return cfg;
}

/// DES configuration for the paper's spectral experiment: 24 grid points,
/// 24 MPI ranks, 496 ion tasks per point.
inline sim::HybridSimConfig spectral_sim_config(
    const perfmodel::SpectralCostModel& model, int devices,
    int max_queue_length,
    core::TaskGranularity granularity = core::TaskGranularity::ion) {
  sim::HybridSimConfig cfg;
  cfg.ranks = 24;
  cfg.devices = devices;
  cfg.max_queue_length = max_queue_length;
  const std::uint64_t ion_tasks =
      24ull * model.workload().ions_per_point;
  if (granularity == core::TaskGranularity::ion) {
    cfg.total_tasks = ion_tasks;
    cfg.prep_s = model.ion_prep_s();
    cfg.cpu_task_s = model.ion_cpu_s();
    cfg.gpu_task_s = model.ion_gpu_s();
  } else {
    cfg.total_tasks = ion_tasks * model.workload().avg_levels_per_ion;
    cfg.prep_s = model.level_prep_s();
    cfg.cpu_task_s = model.level_cpu_s();
    cfg.gpu_task_s = model.level_gpu_s();
  }
  cfg.sched_overhead_s =
      model.calibration().shm_scheduler_overhead_s;
  return cfg;
}

/// PASS/MISS marker for the shape criteria printed at the end of a bench.
inline void check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "MISS", what.c_str());
}

}  // namespace hspec::bench
