#pragma once
// Shared helpers for the reproduction benches.

#include <cstdio>
#include <string>

#include "perfmodel/calibration.h"
#include "sim/hybrid_sim.h"

namespace hspec::bench {

/// DES configuration for the paper's spectral experiment: 24 grid points,
/// 24 MPI ranks, 496 ion tasks per point.
inline sim::HybridSimConfig spectral_sim_config(
    const perfmodel::SpectralCostModel& model, int devices,
    int max_queue_length,
    core::TaskGranularity granularity = core::TaskGranularity::ion) {
  sim::HybridSimConfig cfg;
  cfg.ranks = 24;
  cfg.devices = devices;
  cfg.max_queue_length = max_queue_length;
  const std::uint64_t ion_tasks =
      24ull * model.workload().ions_per_point;
  if (granularity == core::TaskGranularity::ion) {
    cfg.total_tasks = ion_tasks;
    cfg.prep_s = model.ion_prep_s();
    cfg.cpu_task_s = model.ion_cpu_s();
    cfg.gpu_task_s = model.ion_gpu_s();
  } else {
    cfg.total_tasks = ion_tasks * model.workload().avg_levels_per_ion;
    cfg.prep_s = model.level_prep_s();
    cfg.cpu_task_s = model.level_cpu_s();
    cfg.gpu_task_s = model.level_gpu_s();
  }
  cfg.sched_overhead_s =
      model.calibration().shm_scheduler_overhead_s;
  return cfg;
}

/// PASS/MISS marker for the shape criteria printed at the end of a bench.
inline void check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "MISS", what.c_str());
}

}  // namespace hspec::bench
