// cluster_scaling — the paper's production framing (§I): "for a parameter
// space of a moderate real-world astrophysical simulation containing 128^3
// sampled points, it will take approximately 0.5 millions CPU hours."
// The inter-node strategy (§III-A) divides the space into equal subspaces,
// one per node, each with its own local scheduler — so scaling across
// nodes should be near-linear and the static split's imbalance small.
//
// This bench scales the per-node Fig. 3 configuration (24 ranks + 3 GPUs,
// Ion granularity) from 1 to 16 nodes over a proportionally growing grid
// and reports speedup, parallel efficiency, and split imbalance. It also
// extrapolates the 128^3-point production run the paper motivates.

#include <cstdio>

#include "common.h"
#include "sim/cluster_sim.h"
#include "util/table.h"

int main() {
  using namespace hspec;
  std::fputs(util::bench_banner(
                 "Cluster scaling — equal-subspace split across nodes",
                 "near-linear node scaling; 128^3-point run ~0.5M CPU-hours "
                 "serial")
                 .c_str(),
             stdout);

  const perfmodel::SpectralCostModel model({}, perfmodel::paper_workload());

  util::Table t({"nodes", "grid points", "makespan (s)", "speedup",
                 "efficiency", "imbalance"});
  double base = 0.0;
  bool linear_ok = true;
  bool balance_ok = true;
  for (int nodes : {1, 2, 4, 8, 16}) {
    sim::ClusterSimConfig cfg;
    cfg.nodes = nodes;
    cfg.node = bench::spectral_sim_config(model, 3, 10);
    cfg.node.total_tasks =
        static_cast<std::uint64_t>(nodes) * 24 * 496;  // weak scaling
    const auto res = sim::simulate_cluster(cfg);
    if (nodes == 1) base = res.makespan_s;
    const double speedup =
        base * static_cast<double>(nodes) / res.makespan_s;
    const double efficiency = speedup / static_cast<double>(nodes);
    linear_ok &= efficiency > 0.9;
    balance_ok &= res.imbalance() < 0.1;
    t.add_row({std::to_string(nodes), std::to_string(nodes * 24),
               util::Table::num(res.makespan_s, 4),
               util::Table::num(speedup, 4), util::Table::pct(efficiency),
               util::Table::pct(res.imbalance())});
  }
  std::fputs(t.str().c_str(), stdout);
  t.write_csv("cluster_scaling.csv");

  // Production extrapolation: 128^3 grid points.
  const double points = 128.0 * 128.0 * 128.0;
  const double serial_hours = points * model.serial_point_s() / 3600.0;
  const double node_rate = 24.0 / base;  // grid points per second per node
  const double hybrid_node_hours = points / node_rate / 3600.0;
  std::printf("\nproduction extrapolation (128^3 = %.3g points):\n", points);
  std::printf("  serial APEC      : %.3g CPU-hours (paper: ~0.5 million)\n",
              serial_hours);
  std::printf("  one hybrid node  : %.3g node-hours (24 cores + 3 GPUs)\n",
              hybrid_node_hours);
  std::printf("  16 hybrid nodes  : %.3g hours wall clock\n",
              hybrid_node_hours / 16.0);

  std::printf("\nshape checks:\n");
  bench::check(serial_hours > 2.5e5 && serial_hours < 1e6,
               "serial cost lands near the paper's ~0.5M CPU-hours");
  bench::check(linear_ok, "weak scaling efficiency > 90% through 16 nodes");
  bench::check(balance_ok, "equal-subspace imbalance stays below 10%");
  std::printf("\ncsv: cluster_scaling.csv\n");
  return 0;
}
