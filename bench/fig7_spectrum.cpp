// fig7_spectrum — reproduce Fig. 7: the emissivity spectrum (normalized
// flux vs wavelength, 1-50 Angstrom) computed by (a) the serial APEC path
// (adaptive QAGS per bin) and (b) the hybrid CPU/GPU path (Simpson-64
// kernels on virtual GPUs through the shared-memory scheduler).
//
// This bench runs the REAL pipeline — actual RRC integrals on the synthetic
// atomic database — at a bin count scaled for a single-core container.
// Shape criterion: the two normalized-flux series are visually identical
// (the paper prints them as indistinguishable panels).

#include <cmath>
#include <cstdio>

#include "apec/calculator.h"
#include "common.h"
#include "core/hybrid.h"
#include "util/table.h"

int main() {
  using namespace hspec;
  std::fputs(util::bench_banner(
                 "Fig. 7 — serial vs hybrid spectra (normalized flux, "
                 "1-50 Angstrom)",
                 "the two panels are visually identical")
                 .c_str(),
             stdout);

  // 6 levels/ion at bench scale; full element range.
  atomic::AtomicDatabase db(
      bench::bench_db_config(atomic::kMaxZ, /*level_cap=*/3));
  const auto grid = apec::EnergyGrid::wavelength(1.0, 50.0, 240);
  const apec::GridPoint pt{0.6, 1.0, 0.0, 0};

  apec::CalcOptions serial_opt;
  serial_opt.integration.adaptive = true;  // original serial APEC: QAGS
  apec::SpectrumCalculator serial_calc(db, grid, serial_opt);
  const apec::Spectrum serial = serial_calc.calculate(pt);

  // GPU kernels: Simpson-64 (non-adaptive), per bench_kernel_options.
  apec::SpectrumCalculator hybrid_calc(db, grid, bench::bench_kernel_options());
  const core::HybridConfig cfg =
      bench::bench_hybrid_config(/*devices=*/3, /*max_queue_length=*/10);
  core::HybridDriver driver(hybrid_calc, cfg);
  const auto result = driver.run({pt});
  const apec::Spectrum& hybrid = result.spectra.at(0);

  // Same workload once more through the paper's synchronous executor, to
  // put the pipelined device timeline and PCIe traffic in context.
  core::HybridConfig sync_cfg = cfg;
  sync_cfg.mode = core::ExecutionMode::synchronous;
  const auto sync_result = core::HybridDriver(hybrid_calc, sync_cfg).run({pt});

  serial.write_csv("fig7_serial.csv", "serial");
  hybrid.write_csv("fig7_gpu.csv", "gpu");

  // Coarse ASCII rendering of both panels (16 wavelength bands).
  const auto s_series = serial.wavelength_series();
  const auto h_series = hybrid.wavelength_series();
  std::printf("wavelength band   serial  hybrid   (normalized flux)\n");
  const std::size_t stride = s_series.size() / 16;
  double worst = 0.0;
  for (std::size_t i = 0; i < s_series.size(); ++i) {
    worst = std::max(worst,
                     std::fabs(s_series[i].second - h_series[i].second));
    if (i % stride == 0) {
      auto bar = [](double v) {
        return std::string(static_cast<std::size_t>(std::lround(v * 30)), '#');
      };
      std::printf("%7.2f A  %6.4f | %-30s\n           %6.4f | %-30s\n",
                  s_series[i].first, s_series[i].second,
                  bar(s_series[i].second).c_str(), h_series[i].second,
                  bar(h_series[i].second).c_str());
    }
  }

  std::printf("\nGPU tasks: %lld, CPU fallbacks: %lld (%zu virtual GPUs)\n",
              static_cast<long long>(result.scheduling.gpu_allocations),
              static_cast<long long>(result.scheduling.cpu_fallbacks),
              result.device_stats.size());
  std::printf("max |serial - hybrid| normalized flux difference: %.3e\n",
              worst);

  std::uint64_t sync_h2d = 0;
  std::uint64_t async_h2d = 0;
  for (const auto& st : sync_result.device_stats) sync_h2d += st.bytes_h2d;
  for (const auto& st : result.device_stats) async_h2d += st.bytes_h2d;
  std::printf(
      "\npipelined executor: %llu streams, %llu cache hits, %llu tasks "
      "in flight at peak, %llu steals\n",
      static_cast<unsigned long long>(result.pipeline.streams_used),
      static_cast<unsigned long long>(result.pipeline.cache_hits),
      static_cast<unsigned long long>(result.pipeline.max_in_flight),
      static_cast<unsigned long long>(result.pipeline.steals));
  std::printf(
      "virtual device timeline: sync %.4fs -> pipelined %.4fs (%.2fx); "
      "H2D %llu -> %llu bytes (%.1f%% saved)\n",
      sync_result.virtual_makespan_s, result.virtual_makespan_s,
      sync_result.virtual_makespan_s / result.virtual_makespan_s,
      static_cast<unsigned long long>(sync_h2d),
      static_cast<unsigned long long>(async_h2d),
      100.0 * (1.0 - static_cast<double>(async_h2d) /
                         static_cast<double>(sync_h2d)));

  std::printf("\nshape checks:\n");
  bench::check(serial.total() > 0.0 && hybrid.total() > 0.0,
               "both pipelines produce flux");
  bench::check(worst < 2e-3,
               "normalized-flux panels visually identical (max diff < 2e-3)");
  bench::check(result.scheduling.gpu_allocations > 0,
               "the hybrid run actually used the virtual GPUs");
  bench::check(result.virtual_makespan_s < sync_result.virtual_makespan_s,
               "pipelined device timeline beats the synchronous executor");
  bench::check(async_h2d * 2 <= sync_h2d,
               "resident edge cache cuts H2D traffic by >= 50%");
  std::printf("\ncsv: fig7_serial.csv, fig7_gpu.csv\n");
  return 0;
}
