#!/usr/bin/env python3
"""Validate a tracked hspec JSON record against its registered schema.

Dispatches on the record's "schema" key:

  hspec-bench-kernel-v1   — bench/micro_kernel_roofline
  hspec-bench-service-v1  — bench/service_throughput
  hspec-bench-sched-v1    — bench/sched_overhead
  hspec-hlint-v3          — tools/hlint --json findings report

The bench records are consumed by the CI bench-smoke job and baselined at
the repo root (BENCH_kernel.json, BENCH_service.json, BENCH_sched.json);
the hlint report is validated and archived by the CI lint job.

Standard library only. Exit 0 when the file conforms, 1 with a message per
defect otherwise.
"""

import json
import sys

# Per-schema required keys (name -> type) and the subset that must be > 0.
SCHEMAS = {
    "hspec-bench-kernel-v1": {
        "required": {
            "schema": str,
            "method": str,
            "panels": int,
            "bins": int,
            "evals_per_bin": int,
            "repeat": int,
            "scalar_bins_per_s": float,
            "batch_bins_per_s": float,
            "speedup": float,
            "host_fma_gflops": float,
            "scalar_bins_per_s_per_gflops": float,
            "batch_bins_per_s_per_gflops": float,
            "model_bytes_per_flop": float,
            "bitwise_identical": bool,
        },
        "positive": [
            "panels",
            "bins",
            "evals_per_bin",
            "repeat",
            "scalar_bins_per_s",
            "batch_bins_per_s",
            "speedup",
            "host_fma_gflops",
            "model_bytes_per_flop",
        ],
        "true_flags": ["bitwise_identical"],
    },
    "hspec-bench-service-v1": {
        "required": {
            "schema": str,
            "clients": int,
            "requests_per_client": int,
            "pool_points": int,
            "requests_per_s": float,
            "cache_hit_rate": float,
            "queue_wait_p50_s": float,
            "queue_wait_p99_s": float,
            "batches": int,
            "coalesced_batches": int,
            "max_batch_points": int,
            "max_batch_requests": int,
            "cache_entries": int,
            "cache_evictions": int,
            "exact_hit_bitwise": bool,
        },
        "positive": [
            "clients",
            "requests_per_client",
            "pool_points",
            "requests_per_s",
            "batches",
            "max_batch_points",
        ],
        "true_flags": ["exact_hit_bitwise"],
    },
    "hspec-bench-sched-v1": {
        "required": {
            "schema": str,
            "points": int,
            "repeats": int,
            "ranks": int,
            "devices": int,
            "bitwise_identical": bool,
            "hybrid_over_dynamic_median": float,
            "policies": list,
        },
        "positive": [
            "points",
            "repeats",
            "ranks",
            "devices",
            "hybrid_over_dynamic_median",
        ],
        "true_flags": ["bitwise_identical"],
    },
    "hspec-hlint-v3": {
        "required": {
            "schema": str,
            "files_scanned": int,
            "violations": int,
            "baselined": int,
            "rule_counts": dict,
            "pass_counts": dict,
            "pass_wall_ms": dict,
            "suggestions": list,
            "findings": list,
        },
        "positive": ["files_scanned"],
        "true_flags": [],
    },
}


def check(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            record = json.load(f)
    except (OSError, ValueError) as e:
        return ["%s: unreadable or not JSON: %s" % (path, e)]
    if not isinstance(record, dict):
        return ["%s: top level must be an object" % path]
    schema_name = record.get("schema")
    if schema_name not in SCHEMAS:
        return [
            "%s: schema is %r, expected one of %s"
            % (path, schema_name, sorted(SCHEMAS))
        ]
    spec = SCHEMAS[schema_name]
    for key, expected in spec["required"].items():
        if key not in record:
            errors.append("%s: missing key %r" % (path, key))
            continue
        value = record[key]
        # bool is an int subclass; keep the check strict.
        if expected is int and isinstance(value, bool):
            errors.append("%s: key %r must be an integer, got bool" % (path, key))
        elif expected is float and isinstance(value, bool):
            errors.append("%s: key %r must be a number, got bool" % (path, key))
        elif expected is float and not isinstance(value, (int, float)):
            errors.append("%s: key %r must be a number" % (path, key))
        elif expected in (str, int, bool, dict, list) and not isinstance(
            value, expected
        ):
            errors.append(
                "%s: key %r must be %s" % (path, key, expected.__name__)
            )
    if errors:
        return errors
    for key in spec["positive"]:
        if record[key] <= 0:
            errors.append("%s: key %r must be positive" % (path, key))
    for key in spec["true_flags"]:
        if not record[key]:
            errors.append("%s: %s must be true" % (path, key))
    if schema_name == "hspec-bench-service-v1":
        if not 0.0 <= record["cache_hit_rate"] <= 1.0:
            errors.append("%s: cache_hit_rate must be in [0, 1]" % path)
        if record["queue_wait_p50_s"] < 0 or record["queue_wait_p99_s"] < 0:
            errors.append("%s: queue-wait quantiles must be >= 0" % path)
        if record["queue_wait_p99_s"] < record["queue_wait_p50_s"]:
            errors.append("%s: queue_wait_p99_s below p50" % path)
    if schema_name == "hspec-bench-sched-v1":
        names = []
        for i, entry in enumerate(record["policies"]):
            if not isinstance(entry, dict):
                errors.append("%s: policies[%d] must be an object" % (path, i))
                continue
            for key in ("policy", "decisions", "tasks_total", "cpu_fallbacks"):
                if key not in entry:
                    errors.append(
                        "%s: policies[%d] missing key %r" % (path, i, key)
                    )
            for key in ("median_ns", "p90_ns", "mean_ns", "load_imbalance"):
                value = entry.get(key)
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    errors.append(
                        "%s: policies[%d].%s must be a number" % (path, i, key)
                    )
                elif value <= 0:
                    errors.append(
                        "%s: policies[%d].%s must be positive" % (path, i, key)
                    )
            if entry.get("decisions") != entry.get("tasks_total"):
                errors.append(
                    "%s: policies[%d] decisions != tasks_total (the latency"
                    " histogram must clock every task exactly once)"
                    % (path, i)
                )
            names.append(entry.get("policy"))
        expected = [
            "dynamic_min_load",
            "static_cost_partition",
            "hybrid_static_steal",
        ]
        if sorted(n for n in names if n) != sorted(expected):
            errors.append(
                "%s: policies must cover %s exactly" % (path, expected)
            )
    if schema_name == "hspec-hlint-v3":
        for section in ("rule_counts", "pass_counts"):
            for rule, count in record[section].items():
                if isinstance(count, bool) or not isinstance(count, int):
                    errors.append(
                        "%s: %s[%r] must be an integer" % (path, section, rule)
                    )
                elif count < 0:
                    errors.append(
                        "%s: %s[%r] must be >= 0" % (path, section, rule)
                    )
        for name, ms in record["pass_wall_ms"].items():
            if isinstance(ms, bool) or not isinstance(ms, (int, float)):
                errors.append(
                    "%s: pass_wall_ms[%r] must be a number" % (path, name)
                )
            elif ms < 0:
                errors.append(
                    "%s: pass_wall_ms[%r] must be >= 0" % (path, name)
                )
        # Every pass with a finding count must also report a wall time.
        for name in record["pass_counts"]:
            if name not in record["pass_wall_ms"]:
                errors.append(
                    "%s: pass %r has a count but no wall time" % (path, name)
                )
        for section, keys in (
            ("findings", ("file", "line", "rule", "message")),
            ("suggestions", ("file", "line", "rule", "text")),
        ):
            for i, entry in enumerate(record[section]):
                if not isinstance(entry, dict):
                    errors.append(
                        "%s: %s[%d] must be an object" % (path, section, i)
                    )
                    continue
                for key in keys:
                    if key not in entry:
                        errors.append(
                            "%s: %s[%d] missing key %r"
                            % (path, section, i, key)
                        )
    return errors


def main(argv):
    if len(argv) != 2:
        print(
            "usage: check_bench_schema.py BENCH_<name>.json", file=sys.stderr
        )
        return 1
    errors = check(argv[1])
    for err in errors:
        print(err, file=sys.stderr)
    if not errors:
        with open(argv[1], encoding="utf-8") as f:
            print("%s: conforms to %s" % (argv[1], json.load(f)["schema"]))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
