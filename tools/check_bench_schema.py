#!/usr/bin/env python3
"""Validate a BENCH_kernel.json record against the hspec-bench-kernel-v1
schema (written by bench/micro_kernel_roofline, consumed by the CI
bench-smoke job and the tracked baseline at the repo root).

Standard library only. Exit 0 when the file conforms, 1 with a message per
defect otherwise.
"""

import json
import sys

REQUIRED = {
    "schema": str,
    "method": str,
    "panels": int,
    "bins": int,
    "evals_per_bin": int,
    "repeat": int,
    "scalar_bins_per_s": float,
    "batch_bins_per_s": float,
    "speedup": float,
    "host_fma_gflops": float,
    "scalar_bins_per_s_per_gflops": float,
    "batch_bins_per_s_per_gflops": float,
    "model_bytes_per_flop": float,
    "bitwise_identical": bool,
}

POSITIVE = [
    "panels",
    "bins",
    "evals_per_bin",
    "repeat",
    "scalar_bins_per_s",
    "batch_bins_per_s",
    "speedup",
    "host_fma_gflops",
    "model_bytes_per_flop",
]


def check(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            record = json.load(f)
    except (OSError, ValueError) as e:
        return ["%s: unreadable or not JSON: %s" % (path, e)]
    if not isinstance(record, dict):
        return ["%s: top level must be an object" % path]
    for key, expected in REQUIRED.items():
        if key not in record:
            errors.append("%s: missing key %r" % (path, key))
            continue
        value = record[key]
        # bool is an int subclass; keep the check strict.
        if expected is int and isinstance(value, bool):
            errors.append("%s: key %r must be an integer, got bool" % (path, key))
        elif expected is float and isinstance(value, bool):
            errors.append("%s: key %r must be a number, got bool" % (path, key))
        elif expected is float and not isinstance(value, (int, float)):
            errors.append("%s: key %r must be a number" % (path, key))
        elif expected in (str, int, bool) and not isinstance(value, expected):
            errors.append(
                "%s: key %r must be %s" % (path, key, expected.__name__)
            )
    if errors:
        return errors
    if record["schema"] != "hspec-bench-kernel-v1":
        errors.append(
            "%s: schema is %r, expected 'hspec-bench-kernel-v1'"
            % (path, record["schema"])
        )
    for key in POSITIVE:
        if record[key] <= 0:
            errors.append("%s: key %r must be positive" % (path, key))
    if not record["bitwise_identical"]:
        errors.append("%s: bitwise_identical must be true" % path)
    return errors


def main(argv):
    if len(argv) != 2:
        print("usage: check_bench_schema.py BENCH_kernel.json", file=sys.stderr)
        return 1
    errors = check(argv[1])
    for err in errors:
        print(err, file=sys.stderr)
    if not errors:
        print("%s: conforms to hspec-bench-kernel-v1" % argv[1])
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
