// hspec — the main program of the hybrid framework (Fig. 2): "The main
// program is responsible for reading the input parameters, invoke all MPI
// processes, and assign sub parameter spaces to them."
//
// Reads a run configuration, computes the spectra of every grid point
// through the hybrid CPU/GPU driver, and writes one CSV per point plus a
// scheduling report.
//
//   $ ./hspec --config run.ini [--output-dir .]
//   $ ./hspec --print-config          # emit a template configuration
//
// Configuration (INI; see util/config.h):
//   [temperature]  lo/hi/count/log     parameter-space axes (Fig. 1)
//   [density]      lo/hi/count/log
//   [time]         lo/hi/count/log
//   [grid]         lambda_min, lambda_max, bins
//   [run]          ranks, gpus, max_queue_length, granularity (ion|level),
//                  adaptive (true => QAGS everywhere, the serial method)
//   [atomic]       max_z, max_n

#include <cstdio>
#include <string>

#include "apec/calculator.h"
#include "apec/parameter_space.h"
#include "core/hybrid.h"
#include "util/cli.h"
#include "util/config.h"
#include "util/table.h"

namespace {

constexpr const char* kTemplate = R"([temperature]
lo = 0.2
hi = 2.0
count = 3
log = true

[density]
lo = 1.0
count = 1

[time]
lo = 0.0
count = 1

[grid]
lambda_min = 1.0
lambda_max = 50.0
bins = 240

[run]
ranks = 4
gpus = 2
max_queue_length = 10
granularity = ion
adaptive = false

[atomic]
max_z = 30
max_n = 3
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace hspec;
  const util::Cli cli(argc, argv);
  if (cli.get_bool("print-config")) {
    std::fputs(kTemplate, stdout);
    return 0;
  }
  const std::string config_path = cli.get("config", "");
  if (config_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --config run.ini [--output-dir DIR]\n"
                 "       %s --print-config > run.ini\n",
                 cli.program().c_str(), cli.program().c_str());
    return 2;
  }

  const util::Config cfg = util::Config::load(config_path);
  const std::string out_dir = cli.get("output-dir", ".");

  // Parameter space (Fig. 1) and spectral grid.
  const apec::ParameterSpace space = apec::parameter_space_from_config(cfg);
  const auto grid = apec::EnergyGrid::wavelength(
      cfg.get_double("grid.lambda_min", 1.0),
      cfg.get_double("grid.lambda_max", 50.0),
      static_cast<std::size_t>(cfg.get_int("grid.bins", 240)));

  atomic::DatabaseConfig db_cfg;
  db_cfg.max_z = static_cast<int>(cfg.get_int("atomic.max_z", 30));
  db_cfg.levels.max_n = static_cast<int>(cfg.get_int("atomic.max_n", 3));
  const atomic::AtomicDatabase db(db_cfg);

  apec::CalcOptions calc_opt;
  calc_opt.integration.adaptive = cfg.get_bool("run.adaptive", false);
  const apec::SpectrumCalculator calc(db, grid, calc_opt);

  core::HybridConfig run_cfg;
  run_cfg.ranks = static_cast<int>(cfg.get_int("run.ranks", 4));
  run_cfg.devices = static_cast<int>(cfg.get_int("run.gpus", -1));
  run_cfg.max_queue_length =
      static_cast<int>(cfg.get_int("run.max_queue_length", 10));
  run_cfg.granularity = cfg.get("run.granularity", "ion") == "level"
                            ? core::TaskGranularity::level
                            : core::TaskGranularity::ion;

  std::printf("hspec: %zu grid points, %zu bins, %zu ion units, %d ranks\n",
              space.size(), grid.bin_count(), db.ion_count(), run_cfg.ranks);

  core::HybridDriver driver(calc, run_cfg);
  const core::HybridResult result = driver.run(space.all_points());

  for (std::size_t p = 0; p < space.size(); ++p) {
    const auto pt = space.point(p);
    char name[128];
    std::snprintf(name, sizeof name, "%s/spectrum_%04zu.csv", out_dir.c_str(),
                  p);
    result.spectra[p].write_csv(name, "model");
    std::printf("  point %3zu: kT=%.4g keV ne=%.4g cm^-3 t=%.4g s -> %s\n",
                p, pt.kT_keV, pt.ne_cm3, pt.time_s, name);
  }

  util::Table report({"metric", "value"});
  report.add_row({"tasks", std::to_string(result.tasks_total)});
  report.add_row({"GPU share", util::Table::pct(
                                   result.scheduling.gpu_task_ratio())});
  for (std::size_t d = 0; d < result.device_stats.size(); ++d) {
    const auto& st = result.device_stats[d];
    report.add_row({"vGPU " + std::to_string(d) + " kernels",
                    std::to_string(st.kernels_launched)});
    report.add_row({"vGPU " + std::to_string(d) + " busy (virtual)",
                    util::Table::num(st.kernel_time_s + st.transfer_time_s, 4) +
                        " s"});
  }
  std::fputs(report.str().c_str(), stdout);
  return 0;
}
