// hlint — the repo's concurrency-correctness lint.
//
// Enforces repo-specific rules the compiler cannot (and that code review
// keeps re-litigating), over the directories given on the command line:
//
//  [memory-order]  every atomic load/store/RMW in src/core and src/vgpu
//                  names an explicit std::memory_order — a defaulted
//                  seq_cst on a scheduler hot path is either a missing
//                  decision or a hidden fence; either way it must be
//                  written down (files under other roots are exempt:
//                  tests favour brevity over fence discipline);
//  [naked-new]     no naked `new`/`delete` outside RAII owners — placement
//                  new, `::operator new/delete` (the vgpu allocator), and
//                  `= delete` declarations are the sanctioned forms;
//  [volatile]      `volatile` is not a synchronization primitive; use
//                  std::atomic;
//  [pragma-once]   every header starts its include guard with #pragma once;
//  [fault-hook]    a vgpu injection point may throw util::FaultError only on
//                  a FaultPlan verdict: every FaultError construction under
//                  src/vgpu must sit within a few lines of a `query(` /
//                  `fault_plan` call (DESIGN.md §11) — a free-floating
//                  FaultError is an undeclared injection point the
//                  deterministic replay machinery cannot see;
//  [hot-alloc]     no Device::alloc in the kernel/stream hot paths of
//                  src/vgpu (files named *kernel* / *stream*): per-launch
//                  cudaMalloc serializes the device — lease from a
//                  BufferPool (device buffers) or bump-allocate from a
//                  ScratchArena (host scratch) instead; a deliberate
//                  cold-path exception carries `hlint:allow(hot-alloc)`.
//  [service-block] no blocking call while a GridCache shard lock is held:
//                  in src/service, a scope that takes a util::MutexLock on
//                  a shard mutex (the lock argument names a shard) must not
//                  call the executor (`run_batch`), re-enter the service
//                  (`submit`) or block on a future/thread (`.wait(`,
//                  `.get(`, `.join(`) before the lock dies — a shard lock
//                  is for map/LRU surgery only, anything longer stalls
//                  every client hashing into that shard (DESIGN.md §13);
//
// Numerics pack (DESIGN.md §10) — the dimensional-correctness rules that
// back the util::Quantity layer:
//
//  [fp-equal]      no `==` / `!=` against a floating-point literal anywhere
//                  under src/ — exact fp comparison is either a bug or a
//                  sentinel test that must be spelled `util::fp_equal` /
//                  `util::fp_exact_equal`; a deliberate exception carries a
//                  `hlint:allow(fp-equal)` marker on the same line;
//  [no-float]      no bare `float` in the physics tree (src/apec, atomic,
//                  rrc, quad, nei): spectral numerics are double-precision
//                  end-to-end, a float is silent precision loss;
//  [unit-suffix]   raw `double` parameters on public physics APIs (headers
//                  under src/apec, atomic, rrc, nei) must carry a unit
//                  suffix (_keV, _cm3, _s, ...) or be a util:: quantity
//                  type; dimensionless names (fractions, tolerances,
//                  weights) and generic ODE variables (t, y, ...) pass;
//  [narrowing]     no f-suffixed literals and no C-style (float)/(int)
//                  casts in physics arithmetic — both narrow silently
//                  where a static_cast would have to say so.
//
// Output: one `file:line: [rule] message` per violation, plus an
// always-printed per-rule count line CI graphs, exit 1 when any rule
// fired (exit 2 on usage/IO errors) — the format CI and editors both
// parse. Registered as a ctest (label: lint/tier1) so a regression fails
// `ctest` locally before it ever reaches CI; a WILL_FAIL ctest runs hlint
// over tools/hlint_fixtures, and one PASS_REGULAR_EXPRESSION ctest per
// numerics rule proves each rule still bites its fixture.

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Blank out comments and string/char literals so token scans cannot match
/// inside them; newlines survive so line numbers stay exact.
std::string strip_comments_and_strings(const std::string& src) {
  std::string out = src;
  enum class State { code, line_comment, block_comment, str, chr } state =
      State::code;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::code:
        if (c == '/' && next == '/') {
          state = State::line_comment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::block_comment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::str;
        } else if (c == '\'') {
          state = State::chr;
        }
        break;
      case State::line_comment:
        if (c == '\n')
          state = State::code;
        else
          out[i] = ' ';
        break;
      case State::block_comment:
        if (c == '*' && next == '/') {
          state = State::code;
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::str:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < src.size() && src[i + 1] != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::chr:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < src.size() && src[i + 1] != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<long>(pos),
                            '\n'));
}

/// The argument text of the call whose opening parenthesis is at `open`,
/// up to the matching close (or end of file on imbalance).
std::string_view call_arguments(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0)
      return std::string_view(text).substr(open + 1, i - open - 1);
  }
  return std::string_view(text).substr(open + 1);
}

const char* const kAtomicOps[] = {
    "load",          "store",          "exchange",
    "fetch_add",     "fetch_sub",      "fetch_and",
    "fetch_or",      "fetch_xor",      "test_and_set",
    "compare_exchange_weak",           "compare_exchange_strong",
};

void check_memory_order(const std::string& path, const std::string& text,
                        std::vector<Violation>& out) {
  for (const char* op : kAtomicOps) {
    const std::size_t oplen = std::strlen(op);
    std::size_t pos = 0;
    while ((pos = text.find(op, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += oplen;
      // Must be a member call: `.op(` or `->op(`, with `op` a whole word.
      if (start == 0) continue;
      const char before = text[start - 1];
      const bool member = before == '.' ||
                          (before == '>' && start >= 2 && text[start - 2] == '-');
      if (!member) continue;
      if (pos < text.size() && ident_char(text[pos])) continue;
      std::size_t open = pos;
      while (open < text.size() &&
             std::isspace(static_cast<unsigned char>(text[open])) != 0)
        ++open;
      if (open >= text.size() || text[open] != '(') continue;
      const std::string_view args = call_arguments(text, open);
      if (args.find("memory_order") == std::string_view::npos)
        out.push_back({path, line_of(text, start), "memory-order",
                       std::string("atomic ") + op +
                           " without an explicit std::memory_order"});
    }
  }
}

void check_naked_new_delete(const std::string& path, const std::string& text,
                            std::vector<Violation>& out) {
  for (const char* kw : {"new", "delete"}) {
    const std::size_t kwlen = std::strlen(kw);
    std::size_t pos = 0;
    while ((pos = text.find(kw, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += kwlen;
      if (start > 0 && ident_char(text[start - 1])) continue;
      if (pos < text.size() && ident_char(text[pos])) continue;
      // Preceding token: `operator new` / `operator delete` / `= delete`
      // are sanctioned; so is placement new `new (addr) T`.
      std::size_t p = start;
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(text[p - 1])) != 0)
        --p;
      if (p >= 8 && std::string_view(text).substr(p - 8, 8) == "operator")
        continue;
      if (p >= 1 && text[p - 1] == '<') continue;  // #include <new>
      if (kw[0] == 'd' && p >= 1 && text[p - 1] == '=')
        continue;  // deleted special member
      std::size_t q = pos;
      while (q < text.size() &&
             std::isspace(static_cast<unsigned char>(text[q])) != 0)
        ++q;
      if (kw[0] == 'n' && q < text.size() && text[q] == '(')
        continue;  // placement new constructs into storage someone else owns
      out.push_back({path, line_of(text, start), "naked-new",
                     std::string("naked `") + kw +
                         "` outside an RAII owner (use make_unique, "
                         "DeviceBuffer, or placement forms)"});
    }
  }
}

void check_volatile(const std::string& path, const std::string& text,
                    std::vector<Violation>& out) {
  std::size_t pos = 0;
  while ((pos = text.find("volatile", pos)) != std::string::npos) {
    const std::size_t start = pos;
    pos += 8;
    if (start > 0 && ident_char(text[start - 1])) continue;
    if (pos < text.size() && ident_char(text[pos])) continue;
    out.push_back({path, line_of(text, start), "volatile",
                   "`volatile` is not a synchronization primitive; "
                   "use std::atomic"});
  }
}

void check_pragma_once(const std::string& path, const std::string& text,
                       std::vector<Violation>& out) {
  if (text.find("#pragma once") == std::string::npos)
    out.push_back({path, 1, "pragma-once", "header lacks #pragma once"});
}

// ---------------------------------------------------------------------------
// Numerics pack

/// True when the RAW line (comments intact) carries `hlint:allow(<rule>)` —
/// the one sanctioned way to mark a deliberate exception in place.
bool line_allows(const std::vector<std::string>& raw_lines, std::size_t line,
                 const std::string& rule) {
  if (line == 0 || line > raw_lines.size()) return false;
  return raw_lines[line - 1].find("hlint:allow(" + rule + ")") !=
         std::string::npos;
}

bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Lex a numeric literal forward from `i` (after an optional sign); true if
/// it is floating-point (has a '.' or an exponent). Hex literals never match.
bool fp_literal_forward(const std::string& t, std::size_t i) {
  if (i < t.size() && (t[i] == '-' || t[i] == '+')) ++i;
  if (i >= t.size()) return false;
  if (!(digit(t[i]) || (t[i] == '.' && i + 1 < t.size() && digit(t[i + 1]))))
    return false;
  if (t[i] == '0' && i + 1 < t.size() && (t[i + 1] == 'x' || t[i + 1] == 'X'))
    return false;
  bool fp = false;
  while (i < t.size()) {
    const char c = t[i];
    if (digit(c) || c == '\'') {
      ++i;
    } else if (c == '.') {
      fp = true;
      ++i;
    } else if (c == 'e' || c == 'E') {
      std::size_t j = i + 1;
      if (j < t.size() && (t[j] == '+' || t[j] == '-')) ++j;
      if (j < t.size() && digit(t[j])) {
        fp = true;
        i = j;
      } else {
        break;
      }
    } else {
      break;
    }
  }
  return fp;
}

/// Lex a numeric literal backward ending at `end` (exclusive); true if it is
/// floating-point. An identifier tail (`var1`) is not a literal.
bool fp_literal_backward(const std::string& t, std::size_t end) {
  std::size_t i = end;
  bool fp = false;
  if (i > 0 && (t[i - 1] == 'f' || t[i - 1] == 'F')) {
    fp = true;  // 1.0f / 1f — suffix implies fp either way
    --i;
  }
  std::size_t start = i;
  while (start > 0) {
    const char c = t[start - 1];
    if (digit(c) || c == '\'') {
      --start;
    } else if (c == '.') {
      fp = true;
      --start;
    } else if ((c == '+' || c == '-') && start >= 2 &&
               (t[start - 2] == 'e' || t[start - 2] == 'E')) {
      fp = true;
      start -= 2;
    } else if ((c == 'e' || c == 'E') && start >= 2 && digit(t[start - 2])) {
      fp = true;
      --start;
    } else {
      break;
    }
  }
  if (start == i) return false;                             // no digits
  if (start > 0 && ident_char(t[start - 1])) return false;  // identifier
  if (!digit(t[start]) && t[start] != '.') return false;
  return fp;
}

/// [fp-equal]: `==` / `!=` where either operand is a floating-point literal.
/// The tolerant and sentinel spellings live in util/fp_compare.h; defaulted
/// operator== declarations and `hlint:allow(fp-equal)` lines pass.
void check_fp_equal(const std::string& path, const std::string& text,
                    const std::vector<std::string>& raw_lines,
                    std::vector<Violation>& out) {
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    const bool eq = text[i] == '=' && text[i + 1] == '=';
    const bool ne = text[i] == '!' && text[i + 1] == '=';
    if (!eq && !ne) continue;
    if (eq && i > 0 &&
        std::strchr("=!<>+-*/%&|^", text[i - 1]) != nullptr)
      continue;  // compound/relational operator, not a comparison
    std::size_t p = i;
    while (p > 0 && std::isspace(static_cast<unsigned char>(text[p - 1])) != 0)
      --p;
    if (p >= 8 && std::string_view(text).substr(p - 8, 8) == "operator")
      continue;  // operator==/!= declaration
    std::size_t r = i + 2;
    while (r < text.size() && (text[r] == ' ' || text[r] == '\t')) ++r;
    if (!fp_literal_forward(text, r) && !fp_literal_backward(text, p))
      continue;
    const std::size_t line = line_of(text, i);
    if (line_allows(raw_lines, line, "fp-equal")) continue;
    out.push_back({path, line, "fp-equal",
                   std::string("exact `") + (eq ? "==" : "!=") +
                       "` against a floating-point value; use "
                       "util::fp_equal (tolerant) or util::fp_exact_equal "
                       "(sentinel)"});
    ++i;
  }
}

/// [no-float]: bare `float` in the physics tree.
void check_no_float(const std::string& path, const std::string& text,
                    std::vector<Violation>& out) {
  std::size_t pos = 0;
  while ((pos = text.find("float", pos)) != std::string::npos) {
    const std::size_t start = pos;
    pos += 5;
    if (start > 0 && ident_char(text[start - 1])) continue;
    if (pos < text.size() && ident_char(text[pos])) continue;
    out.push_back({path, line_of(text, start), "no-float",
                   "bare `float` in physics code; spectral numerics are "
                   "double-precision end-to-end"});
  }
}

/// [narrowing]: f-suffixed literals and C-style (float)/(int) casts.
void check_narrowing(const std::string& path, const std::string& text,
                     const std::vector<std::string>& raw_lines,
                     std::vector<Violation>& out) {
  // f-suffixed floating literals: 1.0f, 2.f, 1e3f.
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != 'f' && text[i] != 'F') continue;
    if (i + 1 < text.size() && ident_char(text[i + 1])) continue;
    if (!fp_literal_backward(text, i + 1)) continue;
    const std::size_t line = line_of(text, i);
    if (line_allows(raw_lines, line, "narrowing")) continue;
    out.push_back({path, line, "narrowing",
                   "f-suffixed literal narrows to single precision; drop "
                   "the suffix"});
  }
  // C-style narrowing casts.
  for (const char* kw : {"float", "int"}) {
    const std::size_t kwlen = std::strlen(kw);
    std::size_t pos = 0;
    while ((pos = text.find(kw, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += kwlen;
      if (start > 0 && ident_char(text[start - 1])) continue;
      if (pos < text.size() && ident_char(text[pos])) continue;
      std::size_t p = start;
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(text[p - 1])) != 0)
        --p;
      if (p == 0 || text[p - 1] != '(') continue;
      std::size_t q = pos;
      while (q < text.size() &&
             std::isspace(static_cast<unsigned char>(text[q])) != 0)
        ++q;
      if (q >= text.size() || text[q] != ')') continue;
      ++q;
      while (q < text.size() &&
             std::isspace(static_cast<unsigned char>(text[q])) != 0)
        ++q;
      // `(int)` followed by an expression is a cast; followed by `;`, `,`,
      // `)` or a declaration qualifier it is an unnamed-parameter list.
      if (q >= text.size()) continue;
      const char c = text[q];
      if (!(ident_char(c) || c == '(' || c == '-' || c == '+' || c == '.'))
        continue;
      if (ident_char(c)) {
        std::size_t e = q;
        while (e < text.size() && ident_char(text[e])) ++e;
        const std::string_view word(text.data() + q, e - q);
        if (word == "const" || word == "noexcept" || word == "override" ||
            word == "final" || word == "volatile")
          continue;
      }
      const std::size_t line = line_of(text, start);
      if (line_allows(raw_lines, line, "narrowing")) continue;
      out.push_back({path, line, "narrowing",
                     std::string("C-style (") + kw +
                         ") cast narrows silently; use static_cast and say "
                         "so at the call site"});
    }
  }
}

/// [unit-suffix] helper: parameter names that are legitimately raw doubles.
bool unit_suffix_ok(std::string_view name) {
  // Unit-bearing suffixes — the name says what the number is.
  for (const char* s :
       {"_keV", "_kelvin", "_K", "_cm3", "_cm2", "_cm", "_s", "_A",
        "_angstrom", "_amu", "_g", "_hz", "_erg"}) {
    const std::size_t n = std::strlen(s);
    if (name.size() >= n && name.substr(name.size() - n) == s) return true;
  }
  // Generic ODE/solver variables: the unitless integration edge.
  for (const char* s : {"t", "t0", "t1", "x", "y", "z", "u", "v"})
    if (name == s) return true;
  // Dimensionless quantities by construction.
  for (const char* s :
       {"frac", "ratio", "weight", "factor", "norm", "err", "tol", "scale",
        "alpha", "jitter", "floor", "sigma", "cutoff", "param", "count",
        "index", "value", "noise"})
    if (name.find(s) != std::string_view::npos) return true;
  return false;
}

/// [unit-suffix]: raw `double` parameters in physics headers must name
/// their unit (or the API should take a util:: quantity type).
void check_unit_suffix(const std::string& path, const std::string& text,
                       const std::vector<std::string>& raw_lines,
                       std::vector<Violation>& out) {
  std::size_t pos = 0;
  while ((pos = text.find("double", pos)) != std::string::npos) {
    const std::size_t start = pos;
    pos += 6;
    if (start > 0 && ident_char(text[start - 1])) continue;
    if (pos < text.size() && ident_char(text[pos])) continue;
    // Parameter position: preceded (modulo `const`) by '(' or ','.
    std::size_t p = start;
    while (p > 0 && std::isspace(static_cast<unsigned char>(text[p - 1])) != 0)
      --p;
    if (p >= 5 && std::string_view(text).substr(p - 5, 5) == "const" &&
        (p == 5 || !ident_char(text[p - 6]))) {
      p -= 5;
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(text[p - 1])) != 0)
        --p;
    }
    if (p == 0 || (text[p - 1] != '(' && text[p - 1] != ',')) continue;
    // The declarator: a plain named parameter. References, pointers and
    // abstract declarators (function types, template arguments) are the
    // bulk-buffer / generic-code edge and stay raw.
    std::size_t q = start + 6;
    while (q < text.size() &&
           std::isspace(static_cast<unsigned char>(text[q])) != 0)
      ++q;
    if (q >= text.size() || !ident_char(text[q]) || digit(text[q])) continue;
    std::size_t e = q;
    while (e < text.size() && ident_char(text[e])) ++e;
    const std::string_view name(text.data() + q, e - q);
    if (unit_suffix_ok(name)) continue;
    const std::size_t line = line_of(text, start);
    if (line_allows(raw_lines, line, "unit-suffix")) continue;
    out.push_back({path, line, "unit-suffix",
                   "raw double parameter `" + std::string(name) +
                       "` on a public physics API has no unit suffix; "
                       "suffix it (_keV, _cm3, _s, ...) or take a util:: "
                       "quantity type"});
  }
}

/// [fault-hook]: every `FaultError(...)` construction in the device layer
/// must be the consequence of a FaultPlan verdict obtained nearby — a
/// `query(` or `fault_plan` token within the preceding window of lines.
/// Catch clauses and declarations (`FaultError&`, `FaultError e`) pass; only
/// the construction spelling `FaultError(` is policed.
void check_fault_hook(const std::string& path, const std::string& text,
                      const std::vector<std::string>& raw_lines,
                      std::vector<Violation>& out) {
  constexpr int kWindowLines = 8;
  std::size_t pos = 0;
  while ((pos = text.find("FaultError", pos)) != std::string::npos) {
    const std::size_t start = pos;
    pos += 10;
    if (start > 0 && ident_char(text[start - 1])) continue;
    if (pos < text.size() && ident_char(text[pos])) continue;
    std::size_t q = pos;
    while (q < text.size() &&
           std::isspace(static_cast<unsigned char>(text[q])) != 0)
      ++q;
    if (q >= text.size() || text[q] != '(') continue;  // not a construction
    const std::size_t line = line_of(text, start);
    if (line_allows(raw_lines, line, "fault-hook")) continue;
    // Look back through the stripped text (comments cannot satisfy the
    // rule) for the verdict that justifies this throw.
    std::size_t win = start;
    int newlines = 0;
    while (win > 0 && newlines <= kWindowLines) {
      --win;
      if (text[win] == '\n') ++newlines;
    }
    const std::string_view window(text.data() + win, start - win);
    bool hooked = window.find("fault_plan") != std::string_view::npos;
    for (std::size_t w = window.find("query(");
         !hooked && w != std::string_view::npos;
         w = window.find("query(", w + 1)) {
      // Whole member name only: `.query(` / `->query(`, not `enquery(`.
      if (w > 0 && !ident_char(window[w - 1])) hooked = true;
    }
    if (hooked) continue;
    out.push_back({path, line, "fault-hook",
                   "FaultError thrown without a FaultPlan verdict in sight; "
                   "route the injection point through plan->query(site, "
                   "device) (DESIGN.md §11)"});
  }
}

/// [hot-alloc]: member calls `.alloc(` / `->alloc(` in the device layer's
/// kernel/stream files. The receiver distinguishes the sanctioned bump
/// allocator (ScratchArena instances — names carrying "arena"/"scratch")
/// from Device::alloc, which serializes the device per call; BufferPool
/// leases spell `acquire` and never match.
void check_hot_alloc(const std::string& path, const std::string& text,
                     const std::vector<std::string>& raw_lines,
                     std::vector<Violation>& out) {
  std::size_t pos = 0;
  while ((pos = text.find("alloc", pos)) != std::string::npos) {
    const std::size_t start = pos;
    pos += 5;
    if (start == 0) continue;
    if (ident_char(text[start - 1])) continue;
    if (pos < text.size() && ident_char(text[pos])) continue;
    // Member call only: `.alloc(` or `->alloc(`.
    const char before = text[start - 1];
    const bool arrow = before == '>' && start >= 2 && text[start - 2] == '-';
    if (before != '.' && !arrow) continue;
    std::size_t open = pos;
    while (open < text.size() &&
           std::isspace(static_cast<unsigned char>(text[open])) != 0)
      ++open;
    if (open >= text.size() || text[open] != '(') continue;
    // Receiver identifier ending at the access operator.
    std::size_t r_end = arrow ? start - 2 : start - 1;
    std::size_t r_begin = r_end;
    while (r_begin > 0 && ident_char(text[r_begin - 1])) --r_begin;
    const std::string_view recv(text.data() + r_begin, r_end - r_begin);
    if (recv.find("arena") != std::string_view::npos ||
        recv.find("scratch") != std::string_view::npos)
      continue;
    const std::size_t line = line_of(text, start);
    if (line_allows(raw_lines, line, "hot-alloc")) continue;
    out.push_back({path, line, "hot-alloc",
                   "Device::alloc on a kernel/stream hot path serializes the "
                   "device; lease from a BufferPool or bump-allocate from a "
                   "ScratchArena"});
  }
}

/// [service-block]: a blocking call inside the live range of a shard lock.
/// Lexical shape: `MutexLock <name>(<args mentioning "shard">)` opens the
/// guarded window, which extends to the close of the enclosing brace scope;
/// inside it, `run_batch(` / `submit(` (whole-word calls) and the member
/// spellings `.wait(` / `->wait(` / `.get(` / `.join(` are violations.
void check_service_block(const std::string& path, const std::string& text,
                         const std::vector<std::string>& raw_lines,
                         std::vector<Violation>& out) {
  std::size_t pos = 0;
  while ((pos = text.find("MutexLock", pos)) != std::string::npos) {
    const std::size_t start = pos;
    pos += 9;
    if (start > 0 && ident_char(text[start - 1])) continue;
    if (pos < text.size() && ident_char(text[pos])) continue;
    // The declaration's '(': MutexLock <name>( ... );
    std::size_t open = pos;
    while (open < text.size() && text[open] != '(' && text[open] != ';' &&
           text[open] != '\n')
      ++open;
    if (open >= text.size() || text[open] != '(') continue;
    const std::string_view lock_args = call_arguments(text, open);
    if (lock_args.find("shard") == std::string_view::npos &&
        lock_args.find("Shard") == std::string_view::npos)
      continue;  // not a cache shard lock
    // The guarded window: from the end of the declaration to the '}' that
    // closes the scope the lock was declared in.
    std::size_t scan = open + 1 + lock_args.size();
    int depth = 0;
    std::size_t window_end = text.size();
    for (std::size_t i = scan; i < text.size(); ++i) {
      if (text[i] == '{') ++depth;
      if (text[i] == '}') {
        if (depth == 0) {
          window_end = i;
          break;
        }
        --depth;
      }
    }
    const std::string_view window(text.data() + scan, window_end - scan);
    struct Blocking {
      const char* token;
      bool member_only;  ///< require `.` / `->` receiver access
    };
    constexpr Blocking kBlocking[] = {{"run_batch", false},
                                      {"submit", false},
                                      {"wait", true},
                                      {"get", true},
                                      {"join", true}};
    for (const Blocking& b : kBlocking) {
      const std::size_t len = std::strlen(b.token);
      std::size_t w = 0;
      while ((w = window.find(b.token, w)) != std::string_view::npos) {
        const std::size_t hit = w;
        w += len;
        if (hit > 0 && ident_char(window[hit - 1])) continue;
        if (w < window.size() && ident_char(window[w])) continue;
        if (w >= window.size() || window[w] != '(') continue;  // call only
        if (b.member_only) {
          const bool member =
              hit > 0 && (window[hit - 1] == '.' ||
                          (window[hit - 1] == '>' && hit >= 2 &&
                           window[hit - 2] == '-'));
          if (!member) continue;
        }
        const std::size_t line = line_of(text, scan + hit);
        if (line_allows(raw_lines, line, "service-block")) continue;
        out.push_back(
            {path, line, "service-block",
             std::string("blocking call `") + b.token +
                 "` while a cache shard lock is held; shard locks cover "
                 "map/LRU surgery only — drop the lock before dispatching "
                 "or waiting (DESIGN.md §13)"});
      }
    }
  }
}

bool is_header(const fs::path& p) {
  return p.extension() == ".h" || p.extension() == ".hpp";
}

bool is_source(const fs::path& p) {
  return is_header(p) || p.extension() == ".cpp" || p.extension() == ".cc";
}

/// Roots whose atomics must spell out their fences: the lock-free scheduler
/// core and the device layer its counters live in.
bool memory_order_scope(const std::string& path) {
  return path.find("src/core") != std::string::npos ||
         path.find("src/vgpu") != std::string::npos;
}

/// [fault-hook] polices the device layer, where the injection points live.
bool fault_hook_scope(const std::string& path) {
  return path.find("src/vgpu") != std::string::npos;
}

/// [hot-alloc] polices the device layer's launch-path files — the kernel
/// wrappers and the stream machinery every task crosses per launch.
bool hot_alloc_scope(const std::string& path) {
  if (path.find("src/vgpu") == std::string::npos) return false;
  const std::string name = fs::path(path).filename().string();
  return name.find("kernel") != std::string::npos ||
         name.find("stream") != std::string::npos;
}

/// [service-block] polices the service layer, where the shard locks live.
bool service_block_scope(const std::string& path) {
  return path.find("src/service") != std::string::npos;
}

/// [fp-equal] applies to the whole library tree.
bool fp_equal_scope(const std::string& path) {
  return path.find("src/") != std::string::npos;
}

/// The physics tree: where [no-float] and [narrowing] bite.
bool physics_scope(const std::string& path) {
  for (const char* dir :
       {"src/apec", "src/atomic", "src/rrc", "src/quad", "src/nei"})
    if (path.find(dir) != std::string::npos) return true;
  return false;
}

/// [unit-suffix] polices the public physics APIs — headers only, and not
/// src/quad, whose integrators are deliberately unit-agnostic.
bool unit_suffix_scope(const std::string& path) {
  for (const char* dir : {"src/apec", "src/atomic", "src/rrc", "src/nei"})
    if (path.find(dir) != std::string::npos) return true;
  return false;
}

std::vector<std::string> split_lines(const std::string& raw) {
  std::vector<std::string> lines;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= raw.size(); ++i) {
    if (i == raw.size() || raw[i] == '\n') {
      lines.emplace_back(raw.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) roots.emplace_back(argv[i]);
  if (roots.empty()) {
    std::cerr << "usage: hlint <dir-or-file>...\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && is_source(entry.path()))
          files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::cerr << "hlint: cannot open " << root << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> violations;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "hlint: cannot read " << file << "\n";
      return 2;
    }
    std::string raw((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    const std::string text = strip_comments_and_strings(raw);
    const std::string path = file.generic_string();

    const std::vector<std::string> raw_lines = split_lines(raw);

    if (memory_order_scope(path)) check_memory_order(path, text, violations);
    check_naked_new_delete(path, text, violations);
    check_volatile(path, text, violations);
    // Stripped text, not raw: a comment *mentioning* the pragma must not
    // satisfy the rule.
    if (is_header(file)) check_pragma_once(path, text, violations);
    if (fault_hook_scope(path))
      check_fault_hook(path, text, raw_lines, violations);
    if (hot_alloc_scope(path))
      check_hot_alloc(path, text, raw_lines, violations);
    if (service_block_scope(path))
      check_service_block(path, text, raw_lines, violations);
    if (fp_equal_scope(path))
      check_fp_equal(path, text, raw_lines, violations);
    if (physics_scope(path)) {
      check_no_float(path, text, violations);
      check_narrowing(path, text, raw_lines, violations);
    }
    if (is_header(file) && unit_suffix_scope(path))
      check_unit_suffix(path, text, raw_lines, violations);
  }

  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return a.file != b.file ? a.file < b.file : a.line < b.line;
            });
  for (const Violation& v : violations)
    std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  // Per-rule counts, printed on clean runs too: CI graphs them and a later
  // reader can tell "rule never ran" from "rule ran and found nothing".
  std::cout << "hlint: rule counts:";
  for (const char* rule :
       {"memory-order", "naked-new", "volatile", "pragma-once", "fault-hook",
        "hot-alloc", "service-block", "fp-equal", "no-float", "unit-suffix",
        "narrowing"}) {
    const auto n = std::count_if(
        violations.begin(), violations.end(),
        [rule](const Violation& v) { return v.rule == rule; });
    std::cout << " " << rule << "=" << n;
  }
  std::cout << "\n";
  if (!violations.empty()) {
    std::cout << "hlint: " << violations.size() << " violation(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "hlint: clean (" << files.size() << " files)\n";
  return 0;
}
