// hlint — the repo's static analyzer for concurrency and numerics
// correctness (DESIGN.md §14).
//
// What used to be a line-regex linter is now a small pipeline:
//
//   tokens (tools/hlint/lexer.h)
//     → per-TU symbol model: functions, lock scopes, call edges
//       (tools/hlint/model.h)
//       → whole-project call graph + lock-order graph
//         (tools/hlint/analysis.h)
//
// Five analyses run on the linked project:
//
//  [lock-cycle]    nodes are named mutex members; an edge A→B records "held
//                  A while acquiring B" (acquisition scopes plus one-deep
//                  interprocedural propagation). A directed cycle is an
//                  AB/BA deadlock candidate, reported with the full witness
//                  path;
//  [lock-blocking] a blocking operation (condition-variable wait, future
//                  wait/get, thread join, `run_batch` dispatch) reachable
//                  through the call graph while a lock is held — the
//                  call-graph generalization of the old lexical
//                  [service-block] rule, which it subsumes;
//  [lockset]       Eraser-style lockset intersection per member field:
//                  shared fields must keep one common lock across every
//                  access (atomics / const-after-construction exempt);
//  [guard-verify]  declared GUARDED_BY/REQUIRES/EXCLUDES contracts checked
//                  against observed locksets, with ready-to-paste
//                  suggested annotations for guard-worthy bare fields;
//  [hot-reach]     call-graph reachability for the hot-path rules:
//                  Device::alloc from kernel/stream entry points (rule id
//                  `hot-alloc`) and std::exp-family transcendentals from
//                  bit-identity-critical integrand code;
//
// plus the token-based ports of the original rules (tools/hlint/rules.h):
// memory-order, naked-new, volatile, pragma-once, fault-hook, fp-equal,
// no-float, unit-suffix, narrowing — same scopes, same messages.
//
// Suppression is audited in both directions (tools/hlint/report.h): an
// `hlint:allow()` marker that silences nothing, or a --baseline entry that
// matches nothing, is itself an [unused-suppression] finding.
//
// Usage:
//   hlint [--json FILE] [--baseline FILE] [--stats] <dir-or-file>...
//
// Output: one `file:line: [rule] message` per finding with indented
// witness steps, the always-printed per-rule count line CI graphs, exit 1
// when any non-baselined rule fired (exit 2 on usage/IO errors). The
// `--json` report (schema hspec-hlint-v3, with per-pass counts, wall times
// and suggestion payloads) is what CI validates, diffs and archives;
// `--stats` prints the per-pass finding counts and wall times to stdout.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "hlint/analysis.h"
#include "hlint/lexer.h"
#include "hlint/model.h"
#include "hlint/report.h"
#include "hlint/rules.h"

namespace fs = std::filesystem;

namespace {

bool is_source(const fs::path& p) {
  const auto ext = p.extension();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, baseline_path;
  bool print_stats = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "hlint: unknown option " << arg << "\n";
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "usage: hlint [--json FILE] [--baseline FILE] [--stats] "
                 "<dir-or-file>...\n";
    return 2;
  }

  hlint::Baseline baseline;
  if (!baseline_path.empty() && !baseline.load(baseline_path)) return 2;

  std::vector<fs::path> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && is_source(entry.path()))
          files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::cerr << "hlint: cannot open " << root << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  hlint::AllowRegistry allows;
  std::vector<hlint::Finding> findings;
  hlint::ProjectModel project;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "hlint: cannot read " << file << "\n";
      return 2;
    }
    std::string raw((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    const hlint::SourceFile sf = hlint::lex_file(file.generic_string(), raw);
    allows.scan(sf.path, sf.raw_lines);
    hlint::run_token_rules(sf, allows, findings);
    project.absorb(hlint::parse_tu(sf));
  }

  std::vector<hlint::PassStat> passes;
  const hlint::ProjectStats stats =
      hlint::analyze_project(project, allows, findings, passes);
  std::cout << "hlint: model: files=" << files.size()
            << " functions=" << stats.functions
            << " lock-sites=" << stats.lock_sites
            << " call-sites=" << stats.call_sites
            << " graph-nodes=" << stats.graph_nodes
            << " graph-edges=" << stats.graph_edges
            << " blocking-fns=" << stats.blocking_fns
            << " field-decls=" << stats.field_decls
            << " field-accesses=" << stats.field_accesses << "\n";
  if (print_stats) {
    for (const hlint::PassStat& p : passes) {
      char wall[32];
      std::snprintf(wall, sizeof wall, "%.3f", p.wall_ms);
      std::cout << "hlint: pass " << p.pass << ": findings=" << p.findings
                << " wall_ms=" << wall << "\n";
    }
  }

  // Suppression audit: markers and baseline entries that earned nothing.
  for (hlint::Finding& f : allows.unused()) findings.push_back(std::move(f));
  if (baseline.loaded()) {
    for (hlint::Finding& f : findings)
      if (f.rule != "unused-suppression") baseline.apply(f);
    for (hlint::Finding& f : baseline.unused())
      findings.push_back(std::move(f));
  }

  hlint::sort_findings(findings);
  hlint::print_text(findings);
  if (!json_path.empty() &&
      !hlint::write_json(json_path, findings, files.size(), passes))
    return 2;
  return hlint::print_summary(findings, files.size());
}
