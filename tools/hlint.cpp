// hlint — the repo's concurrency-correctness lint.
//
// Enforces repo-specific rules the compiler cannot (and that code review
// keeps re-litigating), over the directories given on the command line:
//
//  [memory-order]  every atomic load/store/RMW in src/core and src/vgpu
//                  names an explicit std::memory_order — a defaulted
//                  seq_cst on a scheduler hot path is either a missing
//                  decision or a hidden fence; either way it must be
//                  written down (files under other roots are exempt:
//                  tests favour brevity over fence discipline);
//  [naked-new]     no naked `new`/`delete` outside RAII owners — placement
//                  new, `::operator new/delete` (the vgpu allocator), and
//                  `= delete` declarations are the sanctioned forms;
//  [volatile]      `volatile` is not a synchronization primitive; use
//                  std::atomic;
//  [pragma-once]   every header starts its include guard with #pragma once.
//
// Output: one `file:line: [rule] message` per violation, exit 1 when any
// fired (exit 2 on usage/IO errors) — the format CI and editors both parse.
// Registered as a ctest (label: lint/tier1) so a regression fails `ctest`
// locally before it ever reaches CI; a second WILL_FAIL ctest runs hlint
// over tools/hlint_fixtures to prove the lint still bites.

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Blank out comments and string/char literals so token scans cannot match
/// inside them; newlines survive so line numbers stay exact.
std::string strip_comments_and_strings(const std::string& src) {
  std::string out = src;
  enum class State { code, line_comment, block_comment, str, chr } state =
      State::code;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::code:
        if (c == '/' && next == '/') {
          state = State::line_comment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::block_comment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::str;
        } else if (c == '\'') {
          state = State::chr;
        }
        break;
      case State::line_comment:
        if (c == '\n')
          state = State::code;
        else
          out[i] = ' ';
        break;
      case State::block_comment:
        if (c == '*' && next == '/') {
          state = State::code;
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::str:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < src.size() && src[i + 1] != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::chr:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < src.size() && src[i + 1] != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<long>(pos),
                            '\n'));
}

/// The argument text of the call whose opening parenthesis is at `open`,
/// up to the matching close (or end of file on imbalance).
std::string_view call_arguments(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0)
      return std::string_view(text).substr(open + 1, i - open - 1);
  }
  return std::string_view(text).substr(open + 1);
}

const char* const kAtomicOps[] = {
    "load",          "store",          "exchange",
    "fetch_add",     "fetch_sub",      "fetch_and",
    "fetch_or",      "fetch_xor",      "test_and_set",
    "compare_exchange_weak",           "compare_exchange_strong",
};

void check_memory_order(const std::string& path, const std::string& text,
                        std::vector<Violation>& out) {
  for (const char* op : kAtomicOps) {
    const std::size_t oplen = std::strlen(op);
    std::size_t pos = 0;
    while ((pos = text.find(op, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += oplen;
      // Must be a member call: `.op(` or `->op(`, with `op` a whole word.
      if (start == 0) continue;
      const char before = text[start - 1];
      const bool member = before == '.' ||
                          (before == '>' && start >= 2 && text[start - 2] == '-');
      if (!member) continue;
      if (pos < text.size() && ident_char(text[pos])) continue;
      std::size_t open = pos;
      while (open < text.size() &&
             std::isspace(static_cast<unsigned char>(text[open])) != 0)
        ++open;
      if (open >= text.size() || text[open] != '(') continue;
      const std::string_view args = call_arguments(text, open);
      if (args.find("memory_order") == std::string_view::npos)
        out.push_back({path, line_of(text, start), "memory-order",
                       std::string("atomic ") + op +
                           " without an explicit std::memory_order"});
    }
  }
}

void check_naked_new_delete(const std::string& path, const std::string& text,
                            std::vector<Violation>& out) {
  for (const char* kw : {"new", "delete"}) {
    const std::size_t kwlen = std::strlen(kw);
    std::size_t pos = 0;
    while ((pos = text.find(kw, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += kwlen;
      if (start > 0 && ident_char(text[start - 1])) continue;
      if (pos < text.size() && ident_char(text[pos])) continue;
      // Preceding token: `operator new` / `operator delete` / `= delete`
      // are sanctioned; so is placement new `new (addr) T`.
      std::size_t p = start;
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(text[p - 1])) != 0)
        --p;
      if (p >= 8 && std::string_view(text).substr(p - 8, 8) == "operator")
        continue;
      if (p >= 1 && text[p - 1] == '<') continue;  // #include <new>
      if (kw[0] == 'd' && p >= 1 && text[p - 1] == '=')
        continue;  // deleted special member
      std::size_t q = pos;
      while (q < text.size() &&
             std::isspace(static_cast<unsigned char>(text[q])) != 0)
        ++q;
      if (kw[0] == 'n' && q < text.size() && text[q] == '(')
        continue;  // placement new constructs into storage someone else owns
      out.push_back({path, line_of(text, start), "naked-new",
                     std::string("naked `") + kw +
                         "` outside an RAII owner (use make_unique, "
                         "DeviceBuffer, or placement forms)"});
    }
  }
}

void check_volatile(const std::string& path, const std::string& text,
                    std::vector<Violation>& out) {
  std::size_t pos = 0;
  while ((pos = text.find("volatile", pos)) != std::string::npos) {
    const std::size_t start = pos;
    pos += 8;
    if (start > 0 && ident_char(text[start - 1])) continue;
    if (pos < text.size() && ident_char(text[pos])) continue;
    out.push_back({path, line_of(text, start), "volatile",
                   "`volatile` is not a synchronization primitive; "
                   "use std::atomic"});
  }
}

void check_pragma_once(const std::string& path, const std::string& text,
                       std::vector<Violation>& out) {
  if (text.find("#pragma once") == std::string::npos)
    out.push_back({path, 1, "pragma-once", "header lacks #pragma once"});
}

bool is_header(const fs::path& p) {
  return p.extension() == ".h" || p.extension() == ".hpp";
}

bool is_source(const fs::path& p) {
  return is_header(p) || p.extension() == ".cpp" || p.extension() == ".cc";
}

/// Roots whose atomics must spell out their fences: the lock-free scheduler
/// core and the device layer its counters live in.
bool memory_order_scope(const std::string& path) {
  return path.find("src/core") != std::string::npos ||
         path.find("src/vgpu") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) roots.emplace_back(argv[i]);
  if (roots.empty()) {
    std::cerr << "usage: hlint <dir-or-file>...\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && is_source(entry.path()))
          files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::cerr << "hlint: cannot open " << root << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> violations;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "hlint: cannot read " << file << "\n";
      return 2;
    }
    std::string raw((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    const std::string text = strip_comments_and_strings(raw);
    const std::string path = file.generic_string();

    if (memory_order_scope(path)) check_memory_order(path, text, violations);
    check_naked_new_delete(path, text, violations);
    check_volatile(path, text, violations);
    // Stripped text, not raw: a comment *mentioning* the pragma must not
    // satisfy the rule.
    if (is_header(file)) check_pragma_once(path, text, violations);
  }

  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return a.file != b.file ? a.file < b.file : a.line < b.line;
            });
  for (const Violation& v : violations)
    std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  if (!violations.empty()) {
    std::cout << "hlint: " << violations.size() << " violation(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "hlint: clean (" << files.size() << " files)\n";
  return 0;
}
