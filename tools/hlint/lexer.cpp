#include "hlint/lexer.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <string_view>
#include <unordered_set>

namespace hlint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// String-literal prefixes; an identifier in this set immediately followed
/// by '"' is part of the literal, not a standalone token.
bool string_prefix(std::string_view s) {
  for (const char* p : {"R", "u8", "u", "U", "L", "uR", "u8R", "UR", "LR"})
    if (s == p) return true;
  return false;
}

const std::unordered_set<std::string>& keyword_set() {
  static const std::unordered_set<std::string> kw = {
      "if",        "else",       "for",       "while",    "do",
      "switch",    "case",       "default",   "break",    "continue",
      "return",    "goto",       "try",       "catch",    "throw",
      "new",       "delete",     "sizeof",    "alignof",  "alignas",
      "decltype",  "typeid",     "namespace", "using",    "typedef",
      "template",  "typename",   "class",     "struct",   "union",
      "enum",      "public",     "private",   "protected","friend",
      "virtual",   "override",   "final",     "const",    "constexpr",
      "consteval", "constinit",  "mutable",   "static",   "extern",
      "inline",    "noexcept",   "explicit",  "operator", "this",
      "nullptr",   "true",       "false",     "auto",     "void",
      "bool",      "char",       "short",     "int",      "long",
      "signed",    "unsigned",   "double",    "requires", "concept",
      "co_await",  "co_return",  "co_yield",  "static_cast",
      "dynamic_cast", "const_cast", "reinterpret_cast", "static_assert",
      "asm",       "register",   "thread_local", "export", "and", "or",
      "not",       "xor",        "wchar_t",   "char8_t",  "char16_t",
      "char32_t",
  };
  // "float"/"volatile" are deliberately absent: rules police those idents.
  return kw;
}

}  // namespace

bool is_cpp_keyword(const std::string& ident) {
  return keyword_set().count(ident) != 0;
}

SourceFile lex_file(const std::string& path, const std::string& contents) {
  SourceFile out;
  out.path = path;
  {
    const auto dot = path.rfind('.');
    const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
    out.is_header = ext == ".h" || ext == ".hpp";
  }
  // Raw lines, for the allow-marker registry.
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= contents.size(); ++i) {
    if (i == contents.size() || contents[i] == '\n') {
      out.raw_lines.emplace_back(contents.substr(begin, i - begin));
      begin = i + 1;
    }
  }

  const std::size_t n = contents.size();
  std::size_t line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline
  std::size_t i = 0;
  auto advance_over = [&](char c) {
    if (c == '\n') {
      ++line;
      at_line_start = true;
    }
  };

  while (i < n) {
    const char c = contents[i];
    const char next = i + 1 < n ? contents[i + 1] : '\0';

    if (c == '\n' || std::isspace(static_cast<unsigned char>(c)) != 0) {
      advance_over(c);
      ++i;
      continue;
    }

    // Preprocessor directive: '#' first on its line, folded continuations.
    if (c == '#' && at_line_start) {
      Directive d;
      d.line = line;
      ++i;
      while (i < n) {
        if (contents[i] == '\\' && i + 1 < n && contents[i + 1] == '\n') {
          ++line;
          d.text += ' ';
          i += 2;
          continue;
        }
        if (contents[i] == '\n') break;
        d.text += contents[i] == '\t' ? ' ' : contents[i];
        ++i;
      }
      out.directives.push_back(std::move(d));
      continue;  // the '\n' is consumed by the whitespace branch
    }
    at_line_start = false;

    // Comments.
    if (c == '/' && next == '/') {
      while (i < n && contents[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && next == '*') {
      i += 2;
      while (i + 1 < n && !(contents[i] == '*' && contents[i + 1] == '/')) {
        advance_over(contents[i]);
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }

    // Identifier (possibly a string-literal prefix).
    if (ident_start(c)) {
      std::size_t e = i;
      while (e < n && ident_char(contents[e])) ++e;
      std::string word = contents.substr(i, e - i);
      if (e < n && contents[e] == '"' && string_prefix(word)) {
        i = e;  // fall through to the string scanner below
        if (word.back() == 'R') {
          // Raw string: R"delim( ... )delim" — no escapes inside.
          const std::size_t tok_line = line;
          ++i;  // past '"'
          std::string delim;
          while (i < n && contents[i] != '(') delim += contents[i++];
          ++i;  // past '('
          const std::string close = ")" + delim + "\"";
          std::string body;
          while (i < n && contents.compare(i, close.size(), close) != 0) {
            advance_over(contents[i]);
            body += contents[i++];
          }
          i = std::min(n, i + close.size());
          out.tokens.push_back({Tok::Str, std::move(body), tok_line});
          continue;
        }
        // Prefixed ordinary string — handled by the generic scanner.
      } else {
        out.tokens.push_back({Tok::Ident, std::move(word), line});
        i = e;
        continue;
      }
    }

    // Ordinary string literal.
    if (contents[i] == '"') {
      const std::size_t tok_line = line;
      ++i;
      std::string body;
      while (i < n && contents[i] != '"') {
        if (contents[i] == '\\' && i + 1 < n) {
          advance_over(contents[i + 1]);
          body += contents[i + 1];
          i += 2;
          continue;
        }
        advance_over(contents[i]);
        body += contents[i++];
      }
      ++i;  // closing quote
      out.tokens.push_back({Tok::Str, std::move(body), tok_line});
      continue;
    }

    // Character literal. A lone '\'' after a number ("1'000") never gets
    // here: the number scanner consumes digit separators itself.
    if (c == '\'') {
      const std::size_t tok_line = line;
      ++i;
      std::string body;
      while (i < n && contents[i] != '\'') {
        if (contents[i] == '\\' && i + 1 < n) {
          body += contents[i + 1];
          i += 2;
          continue;
        }
        body += contents[i++];
      }
      ++i;
      out.tokens.push_back({Tok::Char, std::move(body), tok_line});
      continue;
    }

    // Number: digits, or '.' followed by a digit. Consumes ud-suffixes
    // (2.0_keV) and exponent signs so downstream rules see one token.
    if (digit(c) || (c == '.' && digit(next))) {
      std::size_t e = i;
      std::string body;
      while (e < n) {
        const char ch = contents[e];
        if (ident_char(ch) || ch == '.' || ch == '\'') {
          body += ch;
          ++e;
        } else if ((ch == '+' || ch == '-') && e > i &&
                   (contents[e - 1] == 'e' || contents[e - 1] == 'E') &&
                   (body.size() < 2 || (body.compare(0, 2, "0x") != 0 &&
                                        body.compare(0, 2, "0X") != 0))) {
          body += ch;
          ++e;
        } else {
          break;
        }
      }
      out.tokens.push_back({Tok::Number, std::move(body), line});
      i = e;
      continue;
    }

    // Punctuation. Only the multi-char operators the analyses distinguish
    // are fused; '>' stays single so template-angle matching works.
    static constexpr std::array<const char*, 6> kTwo = {"::", "->", "==",
                                                        "!=", "<=", ">="};
    std::string op(1, c);
    for (const char* two : kTwo) {
      if (c == two[0] && next == two[1]) {
        op = two;
        break;
      }
    }
    out.tokens.push_back({Tok::Punct, op, line});
    i += op.size();
  }
  return out;
}

}  // namespace hlint
