#pragma once
// hlint whole-project analyses — the layer above the per-TU symbol model.
//
// All parsed TUs are linked into one function table; call sites resolve to
// definitions (qualified calls exactly, member calls by receiver/class name
// affinity, unqualified calls by same-class → same-file → project-unique
// fallback). On top run the two concurrency passes:
//
//  * lock-order graph: nodes are canonical mutex ids, an edge A→B records
//    "held A while acquiring B" — from acquisition scopes directly, plus
//    one-deep interprocedural propagation (a call made under A to a
//    function acquiring B also yields A→B). A directed cycle is a potential
//    deadlock; each is reported once with the full witness path
//    ([lock-cycle]).
//
//  * blocking reachability: a function "may block" when it contains a
//    blocking op (cv wait, future wait/get, join, run_batch dispatch) or —
//    by full transitive closure — calls one that does. Any call made while
//    holding a lock to a may-block function, or a direct blocking op under
//    a lock, is a [lock-blocking] finding with the call chain as witness.
//    (This subsumes PR-6's lexical [service-block] rule: the blocking call
//    no longer has to be spelled inside the lock scope's own braces.)

#include <cstddef>
#include <string>
#include <vector>

#include "hlint/model.h"
#include "hlint/report.h"

namespace hlint {

/// Statistics for the always-printed `hlint: model:` line.
struct ProjectStats {
  std::size_t functions = 0;
  std::size_t lock_sites = 0;
  std::size_t call_sites = 0;
  std::size_t graph_nodes = 0;
  std::size_t graph_edges = 0;
  std::size_t blocking_fns = 0;  ///< may-block after transitive closure
};

/// Link all TUs' functions and run both concurrency passes. Findings that
/// carry an `hlint:allow()` marker on their line are consumed silently
/// (marker use is recorded in `allows`).
ProjectStats analyze_project(const std::vector<FunctionDef>& fns,
                             AllowRegistry& allows,
                             std::vector<Finding>& findings);

}  // namespace hlint
