#pragma once
// hlint whole-project analyses — the layer above the per-TU symbol model.
//
// All parsed TUs are linked into one function table; call sites resolve to
// definitions (qualified calls exactly, member calls by receiver/class name
// affinity, unqualified calls by same-class → same-file → project-unique
// fallback). On top run the two concurrency passes:
//
//  * lock-order graph: nodes are canonical mutex ids, an edge A→B records
//    "held A while acquiring B" — from acquisition scopes directly, plus
//    one-deep interprocedural propagation (a call made under A to a
//    function acquiring B also yields A→B). A directed cycle is a potential
//    deadlock; each is reported once with the full witness path
//    ([lock-cycle]).
//
//  * blocking reachability: a function "may block" when it contains a
//    blocking op (cv wait, future wait/get, join, run_batch dispatch) or —
//    by full transitive closure — calls one that does. Any call made while
//    holding a lock to a may-block function, or a direct blocking op under
//    a lock, is a [lock-blocking] finding with the call chain as witness.
//    (This subsumes PR-6's lexical [service-block] rule: the blocking call
//    no longer has to be spelled inside the lock scope's own braces.)
//
//  * [lockset] — Eraser-style lockset intersection per member field: every
//    access to a non-exempt field of a mutex-bearing class is resolved
//    against the project field table; the intersection of held locksets
//    (direct scopes, REQUIRES contracts joined from header declarations,
//    and one-deep caller propagation) must stay non-empty once any access
//    runs under a lock, and writes must be consistently locked. Classes
//    with atomics but no mutex are "lock-free shared structs": their plain
//    fields must not be written outside initialization.
//
//  * [guard-verify] — declared GUARDED_BY guards are cross-checked against
//    observed locksets (mismatch findings), guard-worthy unannotated
//    fields get ready-to-paste suggested annotations, and REQUIRES /
//    EXCLUDES contracts are enforced at every resolved call site.
//
//  * [hot-reach] — call-graph reachability escalation of the hot-path
//    rules: Device::alloc reachable from kernel/stream entry points (rule
//    id stays `hot-alloc` for baseline compatibility) and std::exp-family
//    transcendentals reachable from bit-identity-critical integrand code,
//    each reported with the witness call chain.

#include <cstddef>
#include <iterator>
#include <string>
#include <vector>

#include "hlint/model.h"
#include "hlint/report.h"

namespace hlint {

/// All TUs' models concatenated — the input to the whole-project analyses.
struct ProjectModel {
  std::vector<FunctionDef> functions;
  std::vector<FieldDecl> fields;
  std::vector<FnAnnotation> annotations;

  void absorb(TuModel&& tu) {
    functions.insert(functions.end(),
                     std::make_move_iterator(tu.functions.begin()),
                     std::make_move_iterator(tu.functions.end()));
    fields.insert(fields.end(), std::make_move_iterator(tu.fields.begin()),
                  std::make_move_iterator(tu.fields.end()));
    annotations.insert(annotations.end(),
                       std::make_move_iterator(tu.annotations.begin()),
                       std::make_move_iterator(tu.annotations.end()));
  }
};

/// Statistics for the always-printed `hlint: model:` line.
struct ProjectStats {
  std::size_t functions = 0;
  std::size_t lock_sites = 0;
  std::size_t call_sites = 0;
  std::size_t graph_nodes = 0;
  std::size_t graph_edges = 0;
  std::size_t blocking_fns = 0;  ///< may-block after transitive closure
  std::size_t field_decls = 0;
  std::size_t field_accesses = 0;  ///< accesses resolved to a known field
};

/// Link all TUs and run the whole-project passes. Findings that carry an
/// `hlint:allow()` marker on their line are consumed silently (marker use
/// is recorded in `allows`). Each pass appends its finding count and wall
/// time to `passes` for `--stats` and the JSON report.
ProjectStats analyze_project(const ProjectModel& model,
                             AllowRegistry& allows,
                             std::vector<Finding>& findings,
                             std::vector<PassStat>& passes);

}  // namespace hlint
