#include "hlint/model.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <string>

namespace hlint {

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

bool macro_like(const std::string& s) {
  if (s.size() < 2) return false;
  bool has_upper = false;
  for (const char c : s) {
    if (std::isupper(static_cast<unsigned char>(c)) != 0)
      has_upper = true;
    else if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '_')
      return false;
  }
  return has_upper;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// The parser for one translation unit. Heuristic by design: it must accept
/// any text without crashing and recover the constructs the analyses need;
/// regions it cannot parse are skipped, never fatal.
class TuParser {
 public:
  explicit TuParser(const SourceFile& file) : file_(file), toks_(file.tokens) {
    const auto slash = file.path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? file.path : file.path.substr(slash + 1);
    const auto dot = base.rfind('.');
    stem_ = dot == std::string::npos ? base : base.substr(0, dot);
  }

  TuModel run() {
    scan_top_level();
    return std::move(model_);
  }

 private:
  // ---- token helpers -------------------------------------------------------

  bool punct(std::size_t i, const char* p) const {
    return i < toks_.size() && toks_[i].kind == Tok::Punct &&
           toks_[i].text == p;
  }
  bool ident(std::size_t i) const {
    return i < toks_.size() && toks_[i].kind == Tok::Ident;
  }
  bool ident(std::size_t i, const char* name) const {
    return ident(i) && toks_[i].text == name;
  }

  /// Index of the ')' matching the '(' at `open`; npos on imbalance.
  std::size_t match_paren(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < toks_.size(); ++i) {
      if (punct(i, "(")) ++depth;
      if (punct(i, ")") && --depth == 0) return i;
    }
    return npos;
  }

  /// Matching opener for the closer (')', '}', ']') at `close`, walking
  /// backward; npos on imbalance.
  std::size_t match_back(std::size_t close) const {
    const std::string& c = toks_[close].text;
    const char* open = c == ")" ? "(" : c == "}" ? "{" : "[";
    int depth = 0;
    for (std::size_t i = close + 1; i-- > 0;) {
      if (toks_[i].kind != Tok::Punct) continue;
      if (toks_[i].text == c) ++depth;
      if (toks_[i].text == open && --depth == 0) return i;
    }
    return npos;
  }

  /// Matching ']' / '}' forward from an opener.
  std::size_t match_forward(std::size_t open) const {
    const std::string& o = toks_[open].text;
    const char* close = o == "(" ? ")" : o == "{" ? "}" : "]";
    int depth = 0;
    for (std::size_t i = open; i < toks_.size(); ++i) {
      if (toks_[i].kind != Tok::Punct) continue;
      if (toks_[i].text == o) ++depth;
      if (toks_[i].text == close && --depth == 0) return i;
    }
    return npos;
  }

  /// Matching '>' for the '<' at `open` (template argument list). Bounded:
  /// gives up at statement boundaries — a comparison, not a template.
  std::size_t match_angle(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < toks_.size() && i < open + 256; ++i) {
      if (toks_[i].kind != Tok::Punct) continue;
      const std::string& t = toks_[i].text;
      if (t == "<") ++depth;
      if (t == ">" && --depth == 0) return i;
      if (t == ";" || t == "{") return npos;
    }
    return npos;
  }

  std::size_t match_angle_back(std::size_t close) const {
    int depth = 0;
    for (std::size_t i = close + 1; i-- > 0 && close - i < 256;) {
      if (toks_[i].kind != Tok::Punct) continue;
      const std::string& t = toks_[i].text;
      if (t == ">") ++depth;
      if (t == "<" && --depth == 0) return i;
      if (t == ";" || t == "{" || t == "}") return npos;
    }
    return npos;
  }

  // ---- function-header recovery -------------------------------------------

  struct Header {
    bool found = false;
    bool lambda = false;
    std::string name;
    std::vector<std::string> quals;  ///< Class chain before the name
    /// Mutex expressions from REQUIRES/EXCLUDES annotation macros spelled
    /// between the parameter list and the body (not yet canonicalized —
    /// the class prefix is only known once the enclosing scope is).
    std::vector<std::string> requires_exprs;
    std::vector<std::string> excludes_exprs;
  };

  bool skippable_qualifier(std::size_t j) const {
    if (!ident(j)) return false;
    const std::string& t = toks_[j].text;
    return t == "const" || t == "noexcept" || t == "override" ||
           t == "final" || t == "mutable" || macro_like(t);
  }

  /// Walk back from the name token before a parameter list '(' collecting
  /// `A::B::name`; fills `h` and validates the token before the chain.
  bool extract_name(std::size_t k, Header& h) const {
    if (!ident(k)) {
      // Operator overloads: `operator==` and friends. Named uniformly
      // "operator" — the analyses never link them.
      if (k >= 1 && ident(k - 1, "operator")) {
        h.name = "operator";
        h.found = true;
        return true;
      }
      if (punct(k, "]")) {  // lambda introducer directly before the params
        h.lambda = true;
        h.found = true;
        return true;
      }
      return false;
    }
    std::size_t nm = k;
    h.name = toks_[nm].text;
    if (is_cpp_keyword(h.name)) return false;
    if (nm >= 1 && punct(nm - 1, "~")) {
      h.name = "~" + h.name;
      --nm;
    }
    while (nm >= 2 && punct(nm - 1, "::")) {
      if (ident(nm - 2)) {
        h.quals.insert(h.quals.begin(), toks_[nm - 2].text);
        nm -= 2;
      } else if (punct(nm - 2, ">")) {
        const std::size_t lt = match_angle_back(nm - 2);
        if (lt == npos || lt == 0 || !ident(lt - 1)) break;
        h.quals.insert(h.quals.begin(), toks_[lt - 1].text);
        nm = lt - 1;
      } else {
        break;
      }
    }
    if (nm >= 1 && (punct(nm - 1, ".") || punct(nm - 1, "->"))) return false;
    h.found = true;
    return true;
  }

  /// `open` is the '(' of what may be a parameter list; finish recognizing
  /// the function header to its left.
  Header from_param_open(std::size_t open, int depth_budget) const {
    Header h;
    if (open == 0 || depth_budget <= 0) return h;
    const std::size_t k = open - 1;
    if (punct(k, "]")) {
      h.lambda = true;
      h.found = true;
      return h;
    }
    if (!extract_name(k, h)) return h;
    // The name may actually be a constructor-initializer element
    // (`: calc_(x), cache_(y) {`): walk the element chain back to the ':'
    // and re-anchor on the real parameter list before it.
    std::size_t nm = k;  // recompute chain start cheaply: scan back over ::
    {
      std::size_t steps = h.quals.size() * 2;
      if (!h.name.empty() && h.name[0] == '~') ++steps;
      nm = k - steps;
    }
    if (nm >= 1 && (punct(nm - 1, ",") || punct(nm - 1, ":"))) {
      std::size_t pos = nm - 1;
      int guard = 64;
      while (punct(pos, ",") && guard-- > 0) {
        if (pos == 0) return {};
        std::size_t close = pos - 1;
        if (!punct(close, ")") && !punct(close, "}")) return {};
        const std::size_t op2 = match_back(close);
        if (op2 == npos || op2 == 0) return {};
        std::size_t id2 = op2 - 1;
        if (punct(id2, ">")) {
          const std::size_t lt = match_angle_back(id2);
          if (lt == npos || lt == 0) return {};
          id2 = lt - 1;
        }
        if (!ident(id2)) return {};
        while (id2 >= 2 && punct(id2 - 1, "::") && ident(id2 - 2)) id2 -= 2;
        if (id2 == 0) return {};
        pos = id2 - 1;
        if (!punct(pos, ",") && !punct(pos, ":")) return {};
      }
      if (!punct(pos, ":")) return {};
      if (pos == 0 || !punct(pos - 1, ")")) return {};
      const std::size_t real_open = match_back(pos - 1);
      if (real_open == npos) return {};
      return from_param_open(real_open, depth_budget - 1);
    }
    return h;
  }

  /// Decide whether the '{' at `brace` opens a function body, and if so
  /// recover its header.
  Header analyze_brace(std::size_t brace) const {
    if (brace == 0) return {};
    std::size_t j = brace - 1;
    int guard = 8;
    std::vector<std::string> req, exc;
    while (guard-- > 0) {
      while (j > 0 && skippable_qualifier(j)) --j;
      if (punct(j, ")")) {
        const std::size_t open = match_back(j);
        if (open == npos || open == 0) return {};
        const std::size_t k = open - 1;
        if (ident(k, "noexcept") || (ident(k) && macro_like(toks_[k].text))) {
          if (k == 0) return {};
          // A REQUIRES/EXCLUDES annotation macro spelled on the definition
          // itself: capture its mutex expressions for the lockset passes.
          if (ident(k) && macro_like(toks_[k].text)) {
            const std::string& m = toks_[k].text;
            if (m.find("REQUIRES") != std::string::npos) {
              const auto args = flatten_args(open, j);
              req.insert(req.end(), args.begin(), args.end());
            } else if (m.find("EXCLUDES") != std::string::npos ||
                       m.find("LOCKS_EXCLUDED") != std::string::npos) {
              const auto args = flatten_args(open, j);
              exc.insert(exc.end(), args.begin(), args.end());
            }
          }
          j = k - 1;
          continue;  // noexcept(...) / HSPEC_REQUIRES(...) qualifier
        }
        Header h = from_param_open(open, 4);
        h.requires_exprs = std::move(req);
        h.excludes_exprs = std::move(exc);
        return h;
      }
      // Trailing return type `-> T` between the param list and the body.
      std::size_t t = j;
      int budget = 24;
      bool found_arrow = false;
      while (budget-- > 0) {
        if (punct(t, "->")) {
          found_arrow = true;
          break;
        }
        const bool type_tok =
            ident(t) || punct(t, "::") || punct(t, "<") || punct(t, ">") ||
            punct(t, "*") || punct(t, "&") || punct(t, ",");
        if (!type_tok || t == 0) break;
        --t;
      }
      if (found_arrow && t > 0) {
        j = t - 1;
        continue;
      }
      return {};
    }
    return {};
  }

  // ---- top-level scan with class tracking ----------------------------------

  void scan_top_level() {
    struct ClassScope {
      std::string name;
      int depth;
    };
    std::vector<ClassScope> classes;
    int depth = 0;
    bool pending_class = false;
    std::size_t class_kw = 0;
    std::size_t stmt_start = 0;  ///< first token of the current statement

    std::size_t i = 0;
    while (i < toks_.size()) {
      const Token& t = toks_[i];
      if (t.kind == Tok::Ident && (t.text == "class" || t.text == "struct" ||
                                   t.text == "union")) {
        const bool enum_class = i > 0 && ident(i - 1, "enum");
        const bool tmpl_param =
            i > 0 && (punct(i - 1, "<") || punct(i - 1, ","));
        if (!enum_class && !tmpl_param) {
          pending_class = true;
          class_kw = i;
        }
        ++i;
        continue;
      }
      if (punct(i, ";")) {
        // At class-body depth a `;`-terminated statement is a candidate
        // member declaration (field, annotated method declaration, ...).
        if (!pending_class && !classes.empty() &&
            classes.back().depth == depth && stmt_start < i)
          maybe_member_decl(stmt_start, i, classes.back().name);
        pending_class = false;  // forward declaration
        ++i;
        stmt_start = i;
        continue;
      }
      if (punct(i, "{")) {
        const Header h = analyze_brace(i);
        if (h.found && !h.lambda) {
          FunctionDef fn;
          fn.name = h.name;
          fn.cls = !h.quals.empty()
                       ? h.quals.back()
                       : (!classes.empty() ? classes.back().name : "");
          fn.qual = fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name;
          fn.file = file_.path;
          fn.line = toks_[i].line;
          for (const std::string& e : h.requires_exprs)
            fn.requires_ids.push_back(canon_lock(e, fn.cls));
          for (const std::string& e : h.excludes_exprs)
            fn.excludes_ids.push_back(canon_lock(e, fn.cls));
          i = parse_function(i, std::move(fn));
          pending_class = false;
          stmt_start = i;
          continue;
        }
        ++depth;
        if (pending_class) {
          // The class name: last identifier between the keyword and the
          // base-clause ':' (or this '{').
          std::string name;
          std::size_t angle = 0;
          for (std::size_t p = class_kw + 1; p < i; ++p) {
            if (punct(p, "<")) ++angle;
            if (punct(p, ">") && angle > 0) --angle;
            if (angle == 0 && punct(p, ":")) break;
            if (angle == 0 && ident(p)) name = toks_[p].text;
          }
          if (!name.empty()) classes.push_back({name, depth});
          pending_class = false;
        }
        ++i;
        stmt_start = i;
        continue;
      }
      if (punct(i, "}")) {
        while (!classes.empty() && classes.back().depth >= depth)
          classes.pop_back();
        if (depth > 0) --depth;
        ++i;
        stmt_start = i;
        continue;
      }
      if (punct(i, ":") && i > 0 &&
          (ident(i - 1, "public") || ident(i - 1, "protected") ||
           ident(i - 1, "private"))) {
        ++i;
        stmt_start = i;  // access specifier is not part of the next decl
        continue;
      }
      ++i;
    }
  }

  // ---- member-declaration recovery -----------------------------------------

  static bool mutexish_type(const std::string& w) {
    return w == "Mutex" || w == "mutex" || w == "shared_mutex" ||
           w == "recursive_mutex" || w == "timed_mutex" ||
           w == "condition_variable" || w == "condition_variable_any";
  }

  /// Try to interpret the tokens [b, e) — a `;`-terminated statement at
  /// class-body depth inside `cls` — as a member-variable declaration or an
  /// annotated member-function declaration. Unrecognized shapes are skipped.
  void maybe_member_decl(std::size_t b, std::size_t e, const std::string& cls) {
    if (e <= b || cls.empty()) return;
    if (toks_[b].kind == Tok::Ident) {
      static const char* kSkipLead[] = {
          "using",  "friend", "typedef",       "template", "operator",
          "public", "private", "protected",    "class",    "struct",
          "union",  "enum",   "static_assert", "namespace", "extern"};
      for (const char* s : kSkipLead)
        if (toks_[b].text == s) return;
    }

    bool is_const = false, is_atomic = false, is_mutex = false, is_ref = false;
    std::size_t name_tok = npos;
    std::string guard_expr;
    bool fn_decl = false;
    std::string fn_name;
    std::vector<std::string> req, exc;
    int angle = 0;
    for (std::size_t i = b; i < e; ++i) {
      if (toks_[i].kind == Tok::Punct) {
        const std::string& t = toks_[i].text;
        if (t == "<") {
          ++angle;
          continue;
        }
        if (t == ">") {
          if (angle > 0) --angle;
          continue;
        }
        if (angle != 0) continue;
        if (t == "(") {
          const std::size_t close = match_forward(i);
          if (close == npos || close >= e) return;
          const std::string macro =
              i > b && ident(i - 1) && macro_like(toks_[i - 1].text)
                  ? toks_[i - 1].text
                  : "";
          if (macro.find("GUARDED_BY") != std::string::npos) {
            const auto args = flatten_args(i, close);
            if (!args.empty()) guard_expr = args[0];
            if (name_tok == npos && i >= b + 2 && ident(i - 2))
              name_tok = i - 2;
            i = close;
            continue;
          }
          if (macro.find("REQUIRES") != std::string::npos) {
            const auto args = flatten_args(i, close);
            req.insert(req.end(), args.begin(), args.end());
            i = close;
            continue;
          }
          if (macro.find("EXCLUDES") != std::string::npos ||
              macro.find("LOCKS_EXCLUDED") != std::string::npos) {
            const auto args = flatten_args(i, close);
            exc.insert(exc.end(), args.begin(), args.end());
            i = close;
            continue;
          }
          if (macro.find("ACQUIRE") != std::string::npos ||
              macro.find("RELEASE") != std::string::npos ||
              macro.find("RETURN_CAPABILITY") != std::string::npos) {
            i = close;
            continue;  // other capability macros: skip, keep scanning
          }
          // A plain '(' — a member-function declaration (or paren-init,
          // which we conservatively treat the same way).
          if (!fn_decl && i > b && ident(i - 1) &&
              !is_cpp_keyword(toks_[i - 1].text))
            fn_name = toks_[i - 1].text;
          fn_decl = true;
          i = close;
          continue;
        }
        if (t == "=") {
          if (name_tok == npos && i > b && ident(i - 1)) name_tok = i - 1;
          break;  // initializer (or `= 0` / `= default` on a method)
        }
        if (t == "{") {
          if (name_tok == npos && i > b && ident(i - 1)) name_tok = i - 1;
          break;  // brace initializer
        }
        if (t == "[") {
          if (name_tok == npos && i > b && ident(i - 1)) name_tok = i - 1;
          const std::size_t close = match_forward(i);
          if (close == npos || close >= e) return;
          i = close;
          continue;
        }
        if (t == "&") is_ref = true;
        if (t == ":") return;  // bitfield / stray label: skip
        continue;
      }
      if (toks_[i].kind == Tok::Ident) {
        const std::string& w = toks_[i].text;
        if (w == "static" || w == "const" || w == "constexpr") is_const = true;
        if (w == "atomic" || w == "atomic_flag") is_atomic = true;
        if (mutexish_type(w)) is_mutex = true;
      }
    }

    if (fn_decl) {
      // Method declaration: keep only its lock contract, joined onto the
      // out-of-line definition by (class, name) in the analysis.
      if (fn_name.empty() || (req.empty() && exc.empty())) return;
      FnAnnotation an;
      an.cls = cls;
      an.name = fn_name;
      for (const std::string& x : req) {
        const std::string id = canon_lock(x, cls);
        if (!id.empty()) an.requires_ids.push_back(id);
      }
      for (const std::string& x : exc) {
        const std::string id = canon_lock(x, cls);
        if (!id.empty()) an.excludes_ids.push_back(id);
      }
      model_.annotations.push_back(std::move(an));
      return;
    }

    if (name_tok == npos) {
      if (!ident(e - 1)) return;  // `Type name;` — name is the last token
      name_tok = e - 1;
    }
    if (!ident(name_tok) || name_tok == b) return;  // need a type before it
    const std::string& name = toks_[name_tok].text;
    if (is_cpp_keyword(name) || macro_like(name)) return;

    FieldDecl fd;
    fd.name = name;
    fd.cls = cls;
    fd.file = file_.path;
    fd.line = toks_[name_tok].line;
    for (std::size_t i = b; i < name_tok; ++i) {
      if (toks_[i].kind != Tok::Ident && toks_[i].kind != Tok::Punct) continue;
      if (ident(i) && macro_like(toks_[i].text)) break;  // annotation starts
      if (!fd.type.empty() && ident(i) && ident(i - 1)) fd.type += ' ';
      fd.type += toks_[i].text;
    }
    fd.guard = canon_lock(guard_expr, cls);
    fd.is_atomic = is_atomic;
    fd.is_const = is_const || is_ref;
    fd.is_mutex = is_mutex;
    model_.fields.push_back(std::move(fd));
  }

  // ---- function-body parse -------------------------------------------------

  static bool lock_class(const std::string& s) {
    return s == "MutexLock" || s == "lock_guard" || s == "unique_lock" ||
           s == "scoped_lock";
  }

  std::vector<HeldLock> flatten(
      const std::vector<std::vector<HeldLock>>& scopes) const {
    std::vector<HeldLock> out;
    for (const auto& s : scopes) out.insert(out.end(), s.begin(), s.end());
    return out;
  }

  /// Flatten the argument list between `(` at `open` and `)` at `close`
  /// into one normalized mutex-expression string per top-level comma:
  /// `this->`/`std::` stripped, `->` mapped to `.` (a->mu ≡ a.mu). Shared
  /// by lock declarations, annotation macros, and GUARDED_BY members.
  std::vector<std::string> flatten_args(std::size_t open,
                                        std::size_t close) const {
    std::vector<std::string> args;
    std::string cur;
    int depth = 0;
    for (std::size_t p = open + 1; p < close; ++p) {
      if (punct(p, "(") || punct(p, "[") || punct(p, "{")) ++depth;
      if (punct(p, ")") || punct(p, "]") || punct(p, "}")) --depth;
      if (depth == 0 && punct(p, ",")) {
        args.push_back(cur);
        cur.clear();
        continue;
      }
      if (ident(p)) {
        const std::string& w = toks_[p].text;
        if (w == "this" || w == "std" || w == "adopt_lock" ||
            w == "defer_lock" || w == "try_to_lock")
          continue;
        cur += w;
      } else if (toks_[p].kind == Tok::Punct) {
        const std::string& w = toks_[p].text;
        if (w == "." || w == "->" || w == "::" || w == "[" || w == "]") {
          if (w == "->" && cur.empty()) continue;  // stripped this->
          cur += w == "->" ? "." : w;              // a->mu ≡ a.mu
        }
      } else if (toks_[p].kind == Tok::Number) {
        cur += toks_[p].text;
      }
    }
    args.push_back(cur);
    return args;
  }

  /// Canonicalize a flattened mutex expression into a project-wide node id
  /// under the class (or file-stem) prefix; empty for empty expressions.
  std::string canon_lock(std::string expr, const std::string& cls) const {
    while (!expr.empty() && expr.front() == ':') expr.erase(0, 1);
    if (expr.empty()) return {};
    return (cls.empty() ? stem_ : cls) + "::" + expr;
  }

  /// Try to parse a lock declaration at ident `i`; returns the index just
  /// past the declaration's ')' (0 if this is not a lock declaration).
  std::size_t try_lock_decl(std::size_t i,
                            std::vector<std::vector<HeldLock>>& scopes,
                            FunctionDef& fn) {
    std::size_t j = i + 1;
    if (punct(j, "<")) {
      const std::size_t gt = match_angle(j);
      if (gt == npos) return 0;
      j = gt + 1;
    }
    if (!ident(j)) return 0;  // `MutexLock(mu)` temporary: not a guard
    const std::string var = toks_[j].text;
    if (!punct(j + 1, "(") && !punct(j + 1, "{")) return 0;
    const std::size_t open = j + 1;
    const std::size_t close = match_forward(open);
    if (close == npos) return 0;

    // Split the arguments at top-level commas; each argument that names a
    // mutex becomes an acquisition (scoped_lock may take several).
    const std::vector<std::string> args = flatten_args(open, close);
    bool deferred = false;
    for (std::size_t p = open + 1; p < close; ++p)
      if (ident(p, "defer_lock") || ident(p, "try_to_lock")) deferred = true;
    if (deferred) return close + 1;

    const bool multi = toks_[i].text == "scoped_lock";
    const std::size_t nargs = multi ? args.size() : std::size_t{1};
    const std::vector<HeldLock> held = flatten(scopes);
    for (std::size_t a = 0; a < nargs && a < args.size(); ++a) {
      const std::string id = canon_lock(args[a], fn.cls);
      if (id.empty()) continue;
      const std::size_t line = toks_[i].line;
      for (const HeldLock& h : held)
        fn.edges.push_back({h.id, id, line});
      fn.locks.push_back({id, var, line});
      scopes.back().push_back({id, var, line});
    }
    return close + 1;
  }

  bool receiver_has(const std::string& recv, const char* needle) const {
    return lower(recv).find(needle) != std::string::npos;
  }

  /// Classify & record the call / blocking op at ident `i` (next is '(').
  void record_call(std::size_t i,
                   const std::vector<std::vector<HeldLock>>& scopes,
                   FunctionDef& fn) {
    const std::string& name = toks_[i].text;
    std::string receiver, qualifier;
    bool member = false;
    if (i >= 1) {
      if (punct(i - 1, ".") || punct(i - 1, "->")) {
        member = true;
        if (i >= 2 && ident(i - 2)) receiver = toks_[i - 2].text;
      } else if (punct(i - 1, "::")) {
        if (i >= 2 && ident(i - 2)) qualifier = toks_[i - 2].text;
      } else if (ident(i - 1)) {
        // `Type name(args)` — a declaration, not a call.
        const std::string& prev = toks_[i - 1].text;
        static const char* kStmtKeywords[] = {"return", "throw",     "else",
                                              "do",     "co_return", "co_yield",
                                              "co_await"};
        bool stmt = false;
        for (const char* kw : kStmtKeywords) stmt = stmt || prev == kw;
        if (!stmt) return;
      } else if (punct(i - 1, "~")) {
        return;  // explicit destructor call
      }
    }

    const std::vector<HeldLock> held = flatten(scopes);
    const std::size_t line = toks_[i].line;

    // Direct blocking operations (DESIGN.md §14): recognized here so the
    // reachability pass can treat the containing function as blocking even
    // when the call target cannot be resolved.
    if (member && name == "wait" && receiver_has(receiver, "cv")) {
      // cv.wait(lock) releases `lock` for the duration of the wait: that
      // lock is discounted; any OTHER lock still held blocks for real.
      std::string first_arg;
      if (ident(i + 2) && (punct(i + 3, ")") || punct(i + 3, ",")))
        first_arg = toks_[i + 2].text;
      std::vector<HeldLock> residual;
      for (const HeldLock& h : held)
        if (h.var != first_arg || first_arg.empty()) residual.push_back(h);
      fn.blocks.push_back({BlockKind::cv_wait,
                           "condition-variable wait on `" + receiver + "`",
                           line, std::move(residual)});
      return;
    }
    const bool future_like = receiver_has(receiver, "future") ||
                             receiver_has(receiver, "fut") ||
                             receiver_has(receiver, "ticket");
    if (member && (name == "wait" || name == "get") && future_like) {
      fn.blocks.push_back({BlockKind::future_wait,
                           "future `" + receiver + "`." + name + "()", line,
                           held});
      return;
    }
    if (member && name == "join") {
      fn.blocks.push_back({BlockKind::thread_join,
                           "thread `" + receiver + "`.join()", line, held});
      return;
    }
    if (name == "run_batch") {
      fn.blocks.push_back({BlockKind::dispatch,
                           "executor dispatch `run_batch` (a full device "
                           "batch round-trip)",
                           line, held});
      return;
    }
    fn.calls.push_back({name, receiver, qualifier, member, line, held});
  }

  /// Parse the body opened by the '{' at `open`; appends `fn` (and any
  /// lambdas inside it) to fns_. Returns the index past the closing '}'.
  std::size_t parse_function(std::size_t open, FunctionDef fn) {
    std::vector<std::vector<HeldLock>> scopes(1);
    std::size_t i = open + 1;
    while (i < toks_.size()) {
      if (punct(i, "{")) {
        scopes.emplace_back();
        ++i;
        continue;
      }
      if (punct(i, "}")) {
        scopes.pop_back();
        ++i;
        if (scopes.empty()) break;
        continue;
      }
      if (punct(i, "[")) {
        const std::size_t body = lambda_body(i);
        if (body != npos) {
          FunctionDef lam;
          lam.name = "<lambda>";
          lam.cls = fn.cls;
          lam.qual = fn.qual + "::<lambda@" +
                     std::to_string(toks_[body].line) + ">";
          lam.file = file_.path;
          lam.line = toks_[body].line;
          lam.is_lambda = true;
          // Deferred execution: the lambda body runs with NO inherited
          // lock context (and possibly on another thread entirely).
          i = parse_function(body, std::move(lam));
          continue;
        }
        ++i;
        continue;
      }
      if (ident(i)) {
        const std::string& text = toks_[i].text;
        if (lock_class(text)) {
          const std::size_t past = try_lock_decl(i, scopes, fn);
          if (past != 0) {
            i = past;
            continue;
          }
        }
        if (punct(i + 1, "(") && !is_cpp_keyword(text) && text != "float" &&
            text != "volatile" && !lock_class(text)) {
          record_call(i, scopes, fn);
        } else if (!punct(i + 1, "(")) {
          record_access(i, scopes, fn);
        }
      }
      ++i;
    }
    model_.functions.push_back(std::move(fn));
    return i;
  }

  // ---- field-access recording ----------------------------------------------

  static bool mutator_method(const std::string& m) {
    return m == "push_back" || m == "pop_back" || m == "push_front" ||
           m == "pop_front" || m == "push" || m == "pop" || m == "insert" ||
           m == "erase" || m == "clear" || m == "resize" || m == "reserve" ||
           m == "assign" || m == "store" || m == "exchange" ||
           m == "fetch_add" || m == "fetch_sub" || m == "fetch_or" ||
           m == "fetch_and" || m == "fetch_xor" || m == "reset" ||
           m == "release" || m == "swap" || m == "splice" || m == "merge" ||
           m == "emplace" || m == "emplace_back" || m == "emplace_front" ||
           m == "acquire" || m == "notify_one" || m == "notify_all";
  }

  /// Does the expression rooted at ident `i` mutate it? Checks assignment,
  /// compound assignment, pre/post increment, and mutating method calls.
  bool classify_write(std::size_t i) const {
    std::size_t j = i + 1;
    while (punct(j, "[")) {  // subscripted element writes count for the field
      const std::size_t c = match_forward(j);
      if (c == npos) return false;
      j = c + 1;
    }
    if (punct(j, "=")) return true;  // `==` lexes fused, so this is assignment
    static const char* kCompound[] = {"+", "-", "*", "/", "%", "&", "|", "^"};
    for (const char* op : kCompound)
      if (punct(j, op) && punct(j + 1, "=")) return true;
    if ((punct(j, "+") && punct(j + 1, "+")) ||
        (punct(j, "-") && punct(j + 1, "-")))
      return true;  // post-increment/-decrement
    if (i >= 2 && ((punct(i - 1, "+") && punct(i - 2, "+")) ||
                   (punct(i - 1, "-") && punct(i - 2, "-"))))
      return true;  // pre-increment/-decrement
    if ((punct(j, ".") || punct(j, "->")) && ident(j + 1) &&
        punct(j + 2, "("))
      return mutator_method(toks_[j + 1].text);
    return false;
  }

  /// Record the (possible) member-field access at ident `i`. Local
  /// variables are recorded too — the analysis resolves each access against
  /// the project field table and drops the ones that match nothing.
  void record_access(std::size_t i,
                     const std::vector<std::vector<HeldLock>>& scopes,
                     FunctionDef& fn) {
    const std::string& name = toks_[i].text;
    if (is_cpp_keyword(name) || macro_like(name) || name == "operator" ||
        name == "this")
      return;
    if (punct(i + 1, "::")) return;  // qualifier, not a data access
    if (i >= 1 && punct(i - 1, "::")) return;  // `Class::member` constants
    std::string receiver;
    if (i >= 1 && (punct(i - 1, ".") || punct(i - 1, "->"))) {
      if (i >= 2 && ident(i - 2, "this")) {
        // bare form: this->field
      } else if (i >= 2 && ident(i - 2) && !is_cpp_keyword(toks_[i - 2].text)) {
        receiver = toks_[i - 2].text;  // recv.field / recv->field
      } else {
        return;  // foo().bar / (*p).bar — receiver unresolvable
      }
    } else {
      // Bare identifier. Skip declarator names (`Type name`) — preceded by
      // a non-keyword identifier or a closing template angle.
      if (i >= 1 && ident(i - 1) && !is_cpp_keyword(toks_[i - 1].text)) return;
      if (i >= 1 && punct(i - 1, ">")) return;
      if (i >= 1 && punct(i - 1, "~")) return;  // destructor name
    }
    FieldAccess a;
    a.field = name;
    a.receiver = std::move(receiver);
    a.write = classify_write(i);
    a.line = toks_[i].line;
    a.held = flatten(scopes);
    fn.accesses.push_back(std::move(a));
  }

  /// If the '[' at `i` introduces a lambda with a body, the index of its
  /// '{'; npos otherwise.
  std::size_t lambda_body(std::size_t i) const {
    if (i > 0) {
      const Token& p = toks_[i - 1];
      if (p.kind == Tok::Ident && !is_cpp_keyword(p.text)) return npos;
      if (p.kind == Tok::Number || p.kind == Tok::Str || p.kind == Tok::Char)
        return npos;
      if (p.kind == Tok::Punct && (p.text == "]" || p.text == ")"))
        return npos;  // subscript on an expression
    }
    const std::size_t close = match_forward(i);
    if (close == npos) return npos;
    std::size_t k = close + 1;
    if (punct(k, "(")) {
      const std::size_t pc = match_paren(k);
      if (pc == npos) return npos;
      k = pc + 1;
    }
    int guard = 24;
    while (guard-- > 0) {
      if (ident(k, "mutable") || ident(k, "constexpr")) {
        ++k;
        continue;
      }
      if (ident(k, "noexcept")) {
        ++k;
        if (punct(k, "(")) {
          const std::size_t pc = match_paren(k);
          if (pc == npos) return npos;
          k = pc + 1;
        }
        continue;
      }
      if (punct(k, "->")) {  // trailing return type
        ++k;
        while (guard-- > 0 &&
               (ident(k) || punct(k, "::") || punct(k, "<") ||
                punct(k, ">") || punct(k, "*") || punct(k, "&")))
          ++k;
        continue;
      }
      break;
    }
    return punct(k, "{") ? k : npos;
  }

  const SourceFile& file_;
  const std::vector<Token>& toks_;
  std::string stem_;
  TuModel model_;
};

}  // namespace

TuModel parse_tu(const SourceFile& file) {
  return TuParser(file).run();
}

}  // namespace hlint
