#pragma once
// hlint per-file rules — the token-based ports of the original lexical
// rules. Same scopes, same messages, same counts; but matching over the
// token stream, so string literals, comments, and raw strings can never
// produce a hit, and every rule honours `hlint:allow()` markers uniformly
// (use is recorded, so stale markers surface as unused-suppression).
//
// The one rule that did NOT survive the port is [service-block]: its job —
// "no blocking call while a shard lock is held" — is subsumed by the
// call-graph-aware [lock-blocking] pass in analysis.h, which also catches
// the blocking call hiding one function call away from the lock scope.

#include <vector>

#include "hlint/lexer.h"
#include "hlint/report.h"

namespace hlint {

/// Run every scoped token rule over one file, appending findings. Scope
/// selection (physics tree, device layer, headers) is path-based and
/// internal, exactly as before.
void run_token_rules(const SourceFile& file, AllowRegistry& allows,
                     std::vector<Finding>& findings);

}  // namespace hlint
