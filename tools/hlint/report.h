#pragma once
// hlint reporting — findings, suppression machinery, and the output
// surfaces (text for humans/editors, JSON for CI).
//
// Two suppression channels, both audited:
//  * allow-markers: a raw-source comment carrying `hlint:allow(<rule>)` on
//    the reported line silences that rule there. Markers are registered up
//    front and each use is recorded; a marker no suppressed finding ever
//    consumed is itself a finding (unused-suppression), so stale markers
//    cannot accumulate.
//  * the baseline: a checked-in file of known findings (rule + file +
//    message signature, line-number free so edits elsewhere in the file do
//    not churn it). Baselined findings are reported but do not fail the
//    run; NEW findings always do; a baseline entry matching nothing is an
//    unused-suppression finding, so paid-down debt leaves the ledger.

#include <cstddef>
#include <string>
#include <vector>

namespace hlint {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
  /// Witness chain (deadlock cycle path, blocking-reachability call chain,
  /// lockset access sites): one "file:line: note" step per entry, printed
  /// indented under the finding and carried verbatim into the JSON report.
  std::vector<std::string> witness;
  bool baselined = false;  ///< matched the suppression baseline
  /// Ready-to-paste fix text (e.g. a `HSPEC_GUARDED_BY(mu_)` annotation for
  /// a guard-worthy field). Printed under the finding and collected into
  /// the JSON report's `suggestions` array.
  std::string suggestion;
};

/// Per-pass execution record for `--stats` and the JSON report: the
/// whole-project passes report their finding count and wall time here.
struct PassStat {
  std::string pass;
  std::size_t findings = 0;
  double wall_ms = 0.0;
};

/// All `hlint:allow(<rule>)` markers of one run, with use tracking.
class AllowRegistry {
 public:
  /// Scan a file's raw lines for markers and register them.
  void scan(const std::string& path,
            const std::vector<std::string>& raw_lines);

  /// True (and marks the marker used) when `path:line` carries an
  /// `hlint:allow(<rule>)` marker naming this rule.
  bool allows(const std::string& path, std::size_t line,
              const std::string& rule);

  /// One unused-suppression finding per marker never consumed.
  std::vector<Finding> unused() const;

 private:
  struct Marker {
    std::string path;
    std::size_t line;
    std::string rule;
    bool used = false;
  };
  std::vector<Marker> markers_;
};

/// The checked-in suppression baseline. Line format:
///   <rule>\t<file>\t<message signature>
/// '#' comments and blank lines are skipped. The signature is the finding
/// message verbatim (messages are written line-number free by construction).
class Baseline {
 public:
  /// Load from `path`. Returns false (with a message on stderr) on IO or
  /// parse errors; an absent baseline is an error — CI must not silently
  /// run ungated.
  bool load(const std::string& path);

  /// Match `f` against the baseline; marks the entry consumed and sets
  /// `f.baselined` on a hit.
  void apply(Finding& f);

  /// One unused-suppression finding per entry that matched nothing.
  std::vector<Finding> unused() const;

  bool loaded() const { return loaded_; }

 private:
  struct Entry {
    std::string rule, file, signature;
    bool used = false;
  };
  std::string path_;
  std::vector<Entry> entries_;
  bool loaded_ = false;
};

/// Sort by (file, line, rule) — the stable order every surface prints in.
void sort_findings(std::vector<Finding>& findings);

/// The `file:line: [rule] message` lines plus indented witness steps.
void print_text(const std::vector<Finding>& findings);

/// Always-printed per-rule count line (CI graphs it; a silent rule shows as
/// a flat zero) followed by the verdict line. Returns the process exit
/// code: 0 clean, 1 when any non-baselined finding fired.
int print_summary(const std::vector<Finding>& findings,
                  std::size_t files_scanned);

/// Machine-readable report for CI: schema hspec-hlint-v3 (per-pass counts
/// and wall times under `pass_counts`/`pass_wall_ms`, ready-to-paste fix
/// payloads under `suggestions`).
bool write_json(const std::string& path,
                const std::vector<Finding>& findings,
                std::size_t files_scanned,
                const std::vector<PassStat>& passes);

/// Every rule the analyzer can emit, in count-line order.
const std::vector<std::string>& all_rules();

}  // namespace hlint
