#include "hlint/rules.h"

#include <cctype>
#include <cstring>
#include <string>
#include <string_view>

namespace hlint {

namespace {

// ---- scopes (path-based, unchanged from the lexical linter) ---------------

bool in(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

/// Roots whose atomics must spell out their fences: the lock-free scheduler
/// core and the device layer its counters live in.
bool memory_order_scope(const std::string& p) {
  return in(p, "src/core") || in(p, "src/vgpu");
}

/// [fault-hook] polices the device layer, where the injection points live.
bool fault_hook_scope(const std::string& p) { return in(p, "src/vgpu"); }

// [hot-alloc] moved out of the lexical layer: the whole-project [hot-reach]
// pass (tools/hlint/analysis.cpp) now reports Device::alloc by call-graph
// reachability from the kernel/stream entry points, same rule id + message.

/// [fp-equal] applies to the whole library tree.
bool fp_equal_scope(const std::string& p) { return in(p, "src/"); }

/// The physics tree: where [no-float] and [narrowing] bite.
bool physics_scope(const std::string& p) {
  return in(p, "src/apec") || in(p, "src/atomic") || in(p, "src/rrc") ||
         in(p, "src/quad") || in(p, "src/nei");
}

/// [unit-suffix] polices the public physics APIs — headers only, and not
/// src/quad, whose integrators are deliberately unit-agnostic.
bool unit_suffix_scope(const std::string& p) {
  return in(p, "src/apec") || in(p, "src/atomic") || in(p, "src/rrc") ||
         in(p, "src/nei");
}

// ---- token helpers --------------------------------------------------------

bool tok_is(const std::vector<Token>& t, std::size_t i, Tok k,
            const char* text) {
  return i < t.size() && t[i].kind == k && t[i].text == text;
}

bool member_access(const std::vector<Token>& t, std::size_t i) {
  return i >= 1 && t[i - 1].kind == Tok::Punct &&
         (t[i - 1].text == "." || t[i - 1].text == "->");
}

/// Is this Number token a floating-point literal? ('.' anywhere, an
/// exponent, or an f-suffix; hex literals never qualify.)
bool fp_number(const std::string& body) {
  if (body.size() >= 2 && (body[1] == 'x' || body[1] == 'X')) return false;
  if (body.find('.') != std::string::npos) return true;
  if (!body.empty() && (body.back() == 'f' || body.back() == 'F')) return true;
  for (std::size_t i = 1; i < body.size(); ++i)
    if ((body[i] == 'e' || body[i] == 'E') && i + 1 < body.size() &&
        (std::isdigit(static_cast<unsigned char>(body[i + 1])) != 0 ||
         body[i + 1] == '+' || body[i + 1] == '-'))
      return true;
  return false;
}

void emit(const SourceFile& f, std::size_t line, const char* rule,
          std::string message, AllowRegistry& allows,
          std::vector<Finding>& out) {
  if (allows.allows(f.path, line, rule)) return;
  out.push_back({f.path, line, rule, std::move(message), {}, false, {}});
}

// ---- the rules ------------------------------------------------------------

void check_memory_order(const SourceFile& f, AllowRegistry& allows,
                        std::vector<Finding>& out) {
  static const char* const kAtomicOps[] = {
      "load",      "store",     "exchange",     "fetch_add",
      "fetch_sub", "fetch_and", "fetch_or",     "fetch_xor",
      "test_and_set", "compare_exchange_weak", "compare_exchange_strong",
  };
  const std::vector<Token>& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::Ident || !member_access(t, i)) continue;
    bool is_op = false;
    for (const char* op : kAtomicOps) is_op = is_op || t[i].text == op;
    if (!is_op || !tok_is(t, i + 1, Tok::Punct, "(")) continue;
    int depth = 0;
    bool ordered = false;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      if (tok_is(t, j, Tok::Punct, "(")) ++depth;
      if (tok_is(t, j, Tok::Punct, ")") && --depth == 0) break;
      if (t[j].kind == Tok::Ident &&
          t[j].text.find("memory_order") != std::string::npos)
        ordered = true;
    }
    if (!ordered)
      emit(f, t[i].line, "memory-order",
           "atomic " + t[i].text + " without an explicit std::memory_order",
           allows, out);
  }
}

void check_naked_new_delete(const SourceFile& f, AllowRegistry& allows,
                            std::vector<Finding>& out) {
  const std::vector<Token>& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::Ident) continue;
    const bool is_new = t[i].text == "new";
    const bool is_del = t[i].text == "delete";
    if (!is_new && !is_del) continue;
    if (i >= 1 && tok_is(t, i - 1, Tok::Ident, "operator")) continue;
    if (is_del && i >= 1 && tok_is(t, i - 1, Tok::Punct, "="))
      continue;  // deleted special member
    if (is_new && tok_is(t, i + 1, Tok::Punct, "("))
      continue;  // placement new constructs into storage someone else owns
    emit(f, t[i].line, "naked-new",
         std::string("naked `") + t[i].text +
             "` outside an RAII owner (use make_unique, DeviceBuffer, or "
             "placement forms)",
         allows, out);
  }
}

void check_volatile(const SourceFile& f, AllowRegistry& allows,
                    std::vector<Finding>& out) {
  for (const Token& tok : f.tokens)
    if (tok.kind == Tok::Ident && tok.text == "volatile")
      emit(f, tok.line, "volatile",
           "`volatile` is not a synchronization primitive; use std::atomic",
           allows, out);
}

void check_pragma_once(const SourceFile& f, AllowRegistry& allows,
                       std::vector<Finding>& out) {
  for (const Directive& d : f.directives)
    if (d.text.find("pragma once") != std::string::npos) return;
  emit(f, 1, "pragma-once", "header lacks #pragma once", allows, out);
}

void check_fault_hook(const SourceFile& f, AllowRegistry& allows,
                      std::vector<Finding>& out) {
  constexpr std::size_t kWindowLines = 8;
  const std::vector<Token>& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!tok_is(t, i, Tok::Ident, "FaultError") ||
        !tok_is(t, i + 1, Tok::Punct, "("))
      continue;  // declarations / catch clauses pass; constructions don't
    bool hooked = false;
    for (std::size_t j = i; j-- > 0 && t[j].line + kWindowLines >= t[i].line;) {
      if (t[j].kind != Tok::Ident) continue;
      if (t[j].text.find("fault_plan") != std::string::npos) hooked = true;
      if (t[j].text == "query" && member_access(t, j) &&
          tok_is(t, j + 1, Tok::Punct, "("))
        hooked = true;
      if (hooked) break;
    }
    if (!hooked)
      emit(f, t[i].line, "fault-hook",
           "FaultError thrown without a FaultPlan verdict in sight; route "
           "the injection point through plan->query(site, device) "
           "(DESIGN.md §11)",
           allows, out);
  }
}

void check_fp_equal(const SourceFile& f, AllowRegistry& allows,
                    std::vector<Finding>& out) {
  const std::vector<Token>& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::Punct || (t[i].text != "==" && t[i].text != "!="))
      continue;
    if (i >= 1 && tok_is(t, i - 1, Tok::Ident, "operator"))
      continue;  // operator==/!= declaration
    bool fp = i >= 1 && t[i - 1].kind == Tok::Number && fp_number(t[i - 1].text);
    std::size_t r = i + 1;  // allow a unary sign on the right operand
    if (r < t.size() && t[r].kind == Tok::Punct &&
        (t[r].text == "-" || t[r].text == "+"))
      ++r;
    fp = fp || (r < t.size() && t[r].kind == Tok::Number &&
                fp_number(t[r].text));
    if (!fp) continue;
    emit(f, t[i].line, "fp-equal",
         std::string("exact `") + t[i].text +
             "` against a floating-point value; use util::fp_equal "
             "(tolerant) or util::fp_exact_equal (sentinel)",
         allows, out);
  }
}

void check_no_float(const SourceFile& f, AllowRegistry& allows,
                    std::vector<Finding>& out) {
  for (const Token& tok : f.tokens)
    if (tok.kind == Tok::Ident && tok.text == "float")
      emit(f, tok.line, "no-float",
           "bare `float` in physics code; spectral numerics are "
           "double-precision end-to-end",
           allows, out);
}

void check_narrowing(const SourceFile& f, AllowRegistry& allows,
                     std::vector<Finding>& out) {
  const std::vector<Token>& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    // f-suffixed floating literals: 1.0f, 2.f, 1e3f (hex 0xf is not one).
    if (t[i].kind == Tok::Number) {
      const std::string& b = t[i].text;
      const bool hex = b.size() >= 2 && (b[1] == 'x' || b[1] == 'X');
      if (!hex && !b.empty() && (b.back() == 'f' || b.back() == 'F'))
        emit(f, t[i].line, "narrowing",
             "f-suffixed literal narrows to single precision; drop the "
             "suffix",
             allows, out);
      continue;
    }
    // C-style narrowing casts: `(float)` / `(int)` followed by an operand.
    if (t[i].kind != Tok::Ident || (t[i].text != "float" && t[i].text != "int"))
      continue;
    if (!(i >= 1 && tok_is(t, i - 1, Tok::Punct, "(")) ||
        !tok_is(t, i + 1, Tok::Punct, ")"))
      continue;
    const std::size_t a = i + 2;
    if (a >= t.size()) continue;
    bool operand = false;
    if (t[a].kind == Tok::Number) operand = true;
    if (t[a].kind == Tok::Ident && t[a].text != "const" &&
        t[a].text != "noexcept" && t[a].text != "override" &&
        t[a].text != "final" && t[a].text != "volatile")
      operand = true;
    if (t[a].kind == Tok::Punct &&
        (t[a].text == "(" || t[a].text == "-" || t[a].text == "+" ||
         t[a].text == "."))
      operand = true;
    if (operand)
      emit(f, t[i].line, "narrowing",
           "C-style (" + t[i].text +
               ") cast narrows silently; use static_cast and say so at the "
               "call site",
           allows, out);
  }
}

/// [unit-suffix] helper: parameter names that are legitimately raw doubles.
bool unit_suffix_ok(std::string_view name) {
  // Unit-bearing suffixes — the name says what the number is.
  for (const char* s :
       {"_keV", "_kelvin", "_K", "_cm3", "_cm2", "_cm", "_s", "_A",
        "_angstrom", "_amu", "_g", "_hz", "_erg"}) {
    const std::size_t n = std::strlen(s);
    if (name.size() >= n && name.substr(name.size() - n) == s) return true;
  }
  // Generic ODE/solver variables: the unitless integration edge.
  for (const char* s : {"t", "t0", "t1", "x", "y", "z", "u", "v"})
    if (name == s) return true;
  // Dimensionless quantities by construction.
  for (const char* s :
       {"frac", "ratio", "weight", "factor", "norm", "err", "tol", "scale",
        "alpha", "jitter", "floor", "sigma", "cutoff", "param", "count",
        "index", "value", "noise"})
    if (name.find(s) != std::string_view::npos) return true;
  return false;
}

void check_unit_suffix(const SourceFile& f, AllowRegistry& allows,
                       std::vector<Finding>& out) {
  const std::vector<Token>& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!tok_is(t, i, Tok::Ident, "double")) continue;
    // Parameter position: preceded (modulo `const`) by '(' or ','.
    std::size_t p = i;
    if (p >= 1 && tok_is(t, p - 1, Tok::Ident, "const")) --p;
    if (p == 0 || t[p - 1].kind != Tok::Punct ||
        (t[p - 1].text != "(" && t[p - 1].text != ","))
      continue;
    // The declarator: a plain named parameter. References, pointers and
    // abstract declarators are the bulk-buffer / generic-code edge.
    if (i + 1 >= t.size() || t[i + 1].kind != Tok::Ident) continue;
    const std::string& name = t[i + 1].text;
    if (unit_suffix_ok(name)) continue;
    emit(f, t[i].line, "unit-suffix",
         "raw double parameter `" + name +
             "` on a public physics API has no unit suffix; suffix it "
             "(_keV, _cm3, _s, ...) or take a util:: quantity type",
         allows, out);
  }
}

}  // namespace

void run_token_rules(const SourceFile& file, AllowRegistry& allows,
                     std::vector<Finding>& findings) {
  const std::string& p = file.path;
  if (memory_order_scope(p)) check_memory_order(file, allows, findings);
  check_naked_new_delete(file, allows, findings);
  check_volatile(file, allows, findings);
  if (file.is_header) check_pragma_once(file, allows, findings);
  if (fault_hook_scope(p)) check_fault_hook(file, allows, findings);
  if (fp_equal_scope(p)) check_fp_equal(file, allows, findings);
  if (physics_scope(p)) {
    check_no_float(file, allows, findings);
    check_narrowing(file, allows, findings);
  }
  if (file.is_header && unit_suffix_scope(p))
    check_unit_suffix(file, allows, findings);
}

}  // namespace hlint
