#pragma once
// hlint lexer — a comment/string/raw-string aware C++ tokenizer.
//
// Everything above this layer (the legacy lexical rules, the symbol model,
// the lock-order and reachability analyses) operates on the token stream it
// produces, never on raw text, so a `MutexLock` inside a raw string literal
// or a banned keyword inside a comment can no longer fool a rule. Line
// numbers are carried per token; the raw source lines are kept alongside so
// suppression markers (which deliberately live in comments) stay findable.

#include <cstddef>
#include <string>
#include <vector>

namespace hlint {

enum class Tok {
  Ident,   ///< identifiers and keywords (the parser distinguishes them)
  Number,  ///< numeric literals including ud-literal suffixes (1.0_keV)
  Str,     ///< string literal (any prefix, raw included); text excludes quotes
  Char,    ///< character literal
  Punct,   ///< operators/punctuation; multi-char: ::  ->  ==  !=  <=  >=
};

struct Token {
  Tok kind;
  std::string text;
  std::size_t line = 0;
};

/// One preprocessor directive (leading '#' line, continuations folded),
/// kept out of the token stream: rules that scan tokens never see macro
/// bodies or include paths, and the pragma-once rule reads these directly.
struct Directive {
  std::size_t line = 0;
  std::string text;  ///< directive text after '#', single-spaced
};

struct SourceFile {
  std::string path;
  bool is_header = false;
  std::vector<std::string> raw_lines;  ///< verbatim, for allow-markers
  std::vector<Token> tokens;
  std::vector<Directive> directives;
};

/// Tokenize `contents`; never throws on malformed input — an unterminated
/// literal simply ends at EOF (the linter must survive any text it is
/// pointed at).
SourceFile lex_file(const std::string& path, const std::string& contents);

/// True for the identifiers that can never start a call or a declaration
/// the symbol model cares about (control keywords, casts, literals...).
bool is_cpp_keyword(const std::string& ident);

}  // namespace hlint
