#pragma once
// hlint symbol model — the per-TU layer between the token stream and the
// whole-project analyses.
//
// From each file's tokens the parser recovers:
//  * function definitions (free, out-of-class `Class::name`, in-class with
//    the enclosing class tracked, lambdas as anonymous functions);
//  * lock acquisition scopes: `util::MutexLock l(expr)` and the std
//    lock_guard/unique_lock/scoped_lock spellings, live from declaration to
//    the close of the enclosing brace scope. Each mutex expression is
//    canonicalized to a project-wide node id `<Class-or-file>::<expr>` so
//    the same member mutex acquired in two TUs is one graph node;
//  * intra-function lock-order edges: "held A while acquiring B";
//  * call sites, each carrying the snapshot of locks held at the call, the
//    receiver (for `x.f()` / `x->f()`), an explicit qualifier (for
//    `Class::f()`), and the first argument identifier (so a
//    condition-variable `cv.wait(lock)` can discount the lock it releases);
//  * direct blocking operations: condition-variable waits, future
//    wait/get, thread join, and `run_batch` — the executor dispatch;
//  * member-field accesses: every read/write of what is plausibly a member
//    variable (`field_`, `this->field`, `recv.field`), with access kind and
//    the held-lockset snapshot — the raw material of the Eraser-style
//    [lockset] pass and the GUARDED_BY cross-check;
//  * class member-variable declarations (name, flattened type, whether the
//    type is an atomic / a mutex / const-after-construction, and any
//    `GUARDED_BY` annotation) plus `REQUIRES`/`EXCLUDES` annotations on
//    member-function declarations, so the analysis can join a header's
//    contract onto out-of-line definitions that do not repeat it.
//
// Lambdas are deferred execution: their bodies become separate anonymous
// functions with an empty held-lock context (a worker thread body does NOT
// run under the lock its spawner held), and nothing links to them by name.

#include <cstddef>
#include <string>
#include <vector>

#include "hlint/lexer.h"

namespace hlint {

/// One lock acquisition site inside a function body.
struct LockSite {
  std::string id;    ///< canonical graph node, e.g. "GridCache::shard.mu"
  std::string var;   ///< guard variable name, e.g. "lock"
  std::size_t line = 0;
};

/// A lock held at some program point (snapshot entry).
struct HeldLock {
  std::string id;
  std::string var;
  std::size_t acquired_line = 0;
};

/// Intra-function lock-order edge: `from` was held when `to` was acquired.
struct LockEdge {
  std::string from, to;
  std::size_t line = 0;  ///< acquisition line of `to`
};

/// Why a program point blocks.
enum class BlockKind {
  cv_wait,      ///< condition-variable wait (releases the lock it is given)
  future_wait,  ///< future/ticket .wait()/.get()
  thread_join,  ///< .join()
  dispatch,     ///< run_batch — the executor round-trip
};

struct BlockOp {
  BlockKind kind;
  std::string desc;      ///< human text, line-number free
  std::size_t line = 0;
  /// Locks still held once the op's own lock release is discounted (a
  /// cv.wait(lock) drops `lock`; everything else drops nothing).
  std::vector<HeldLock> held;
};

struct CallSite {
  std::string name;       ///< unqualified callee name
  std::string receiver;   ///< `x` in x.f()/x->f(); empty otherwise
  std::string qualifier;  ///< `C` in C::f(); empty otherwise
  bool member = false;
  std::size_t line = 0;
  std::vector<HeldLock> held;
};

/// One member-field read or write inside a function body. `receiver` is
/// empty for the bare / `this->` forms (a field of the enclosing class);
/// for `recv.field` / `recv->field` it names the receiver so the analysis
/// can resolve the field's class by name affinity.
struct FieldAccess {
  std::string field;
  std::string receiver;
  bool write = false;
  std::size_t line = 0;
  std::vector<HeldLock> held;
};

struct FunctionDef {
  std::string name;   ///< unqualified ("submit", "~SpectralService")
  std::string cls;    ///< enclosing/qualifying class ("" for free functions)
  std::string qual;   ///< display name "Class::name" or "name"
  std::string file;
  std::size_t line = 0;
  bool is_lambda = false;
  std::vector<LockSite> locks;
  std::vector<LockEdge> edges;
  std::vector<CallSite> calls;
  std::vector<BlockOp> blocks;
  std::vector<FieldAccess> accesses;
  /// Canonical lock ids from REQUIRES/EXCLUDES annotation macros spelled on
  /// THIS definition's header (out-of-line definitions usually carry none —
  /// the analysis joins FnAnnotation entries from the declaring header).
  std::vector<std::string> requires_ids;
  std::vector<std::string> excludes_ids;
};

/// One member-variable declaration recovered from a class body.
struct FieldDecl {
  std::string name;
  std::string cls;
  std::string file;
  std::size_t line = 0;
  std::string type;   ///< flattened declaration-type text, for messages
  /// Canonical guard id from a GUARDED_BY annotation ("Shard::mu"); empty
  /// when the field is unannotated.
  std::string guard;
  bool is_atomic = false;  ///< std::atomic member — exempt from locksets
  bool is_const = false;   ///< const/constexpr/static/reference — exempt
  bool is_mutex = false;   ///< a lock/cv object, not data the locks protect
};

/// REQUIRES/EXCLUDES contract attached to a member-function *declaration*
/// (the `;`-terminated kind). Joined to definitions by (cls, name).
struct FnAnnotation {
  std::string cls;
  std::string name;
  std::vector<std::string> requires_ids;
  std::vector<std::string> excludes_ids;
};

/// Everything the parser recovers from one translation unit.
struct TuModel {
  std::vector<FunctionDef> functions;
  std::vector<FieldDecl> fields;
  std::vector<FnAnnotation> annotations;
};

/// Parse one lexed file into its symbol model (lambdas included as trailing
/// anonymous function entries). Never throws: unparseable regions are
/// skipped, not fatal — the linter must survive any source it is shown.
TuModel parse_tu(const SourceFile& file);

/// Model-wide statistics for the always-printed `hlint: model:` line.
struct ModelStats {
  std::size_t files = 0;
  std::size_t functions = 0;
  std::size_t lock_sites = 0;
  std::size_t call_sites = 0;
};

}  // namespace hlint
