#include "hlint/report.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>

namespace hlint {

namespace {

/// Rule names are lowercase kebab-case; anything else after "hlint:allow("
/// is not a marker (doc text writes the placeholder form `hlint:allow(<rule>)`,
/// which this rejects via '<').
bool rule_name_char(char c) {
  return (std::islower(static_cast<unsigned char>(c)) != 0) || c == '-';
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void AllowRegistry::scan(const std::string& path,
                         const std::vector<std::string>& raw_lines) {
  static const std::string kTag = "hlint:allow(";
  for (std::size_t ln = 0; ln < raw_lines.size(); ++ln) {
    const std::string& text = raw_lines[ln];
    for (std::size_t pos = text.find(kTag); pos != std::string::npos;
         pos = text.find(kTag, pos + 1)) {
      std::size_t s = pos + kTag.size();
      std::string rule;
      while (s < text.size() && rule_name_char(text[s])) rule += text[s++];
      if (rule.empty() || s >= text.size() || text[s] != ')') continue;
      markers_.push_back({path, ln + 1, rule, false});
    }
  }
}

bool AllowRegistry::allows(const std::string& path, std::size_t line,
                           const std::string& rule) {
  bool hit = false;
  for (Marker& m : markers_) {
    if (m.path == path && m.line == line && m.rule == rule) {
      m.used = true;
      hit = true;
    }
  }
  return hit;
}

std::vector<Finding> AllowRegistry::unused() const {
  std::vector<Finding> out;
  for (const Marker& m : markers_) {
    if (m.used) continue;
    out.push_back({m.path, m.line, "unused-suppression",
                   "hlint:allow(" + m.rule +
                       ") marker suppresses nothing; delete it (or the rule "
                       "name is misspelled)",
                   {}, false, {}});
  }
  return out;
}

bool Baseline::load(const std::string& path) {
  path_ = path;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "hlint: cannot read baseline " << path << "\n";
    return false;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t t1 = line.find('\t');
    const std::size_t t2 = t1 == std::string::npos ? std::string::npos
                                                   : line.find('\t', t1 + 1);
    if (t2 == std::string::npos) {
      std::cerr << "hlint: baseline " << path << ":" << lineno
                << ": expected <rule>\\t<file>\\t<signature>\n";
      return false;
    }
    entries_.push_back({line.substr(0, t1),
                        line.substr(t1 + 1, t2 - t1 - 1), line.substr(t2 + 1),
                        false});
  }
  loaded_ = true;
  return true;
}

void Baseline::apply(Finding& f) {
  for (Entry& e : entries_) {
    if (e.rule == f.rule && e.file == f.file && e.signature == f.message) {
      e.used = true;
      f.baselined = true;
      return;
    }
  }
}

std::vector<Finding> Baseline::unused() const {
  std::vector<Finding> out;
  for (const Entry& e : entries_) {
    if (e.used) continue;
    out.push_back({path_, 1, "unused-suppression",
                   "baseline entry matches no finding (debt paid down — "
                   "delete the line): " +
                       e.rule + "\t" + e.file + "\t" + e.signature,
                   {}, false, {}});
  }
  return out;
}

void sort_findings(std::vector<Finding>& findings) {
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
}

void print_text(const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << (f.baselined ? " (baselined)" : "") << "\n";
    for (const std::string& step : f.witness)
      std::cout << "    " << step << "\n";
    if (!f.suggestion.empty())
      std::cout << "    suggested: " << f.suggestion << "\n";
  }
}

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> rules = {
      "memory-order", "naked-new",     "volatile",
      "pragma-once",  "fault-hook",    "hot-alloc",
      "fp-equal",     "no-float",      "unit-suffix",
      "narrowing",    "lock-cycle",    "lock-blocking",
      "lockset",      "guard-verify",  "hot-reach",
      "unused-suppression",
  };
  return rules;
}

int print_summary(const std::vector<Finding>& findings,
                  std::size_t files_scanned) {
  std::size_t live = 0, baselined = 0;
  for (const Finding& f : findings) (f.baselined ? baselined : live) += 1;
  std::cout << "hlint: rule counts:";
  for (const std::string& rule : all_rules()) {
    const auto count = std::count_if(
        findings.begin(), findings.end(), [&rule](const Finding& f) {
          return f.rule == rule && !f.baselined;
        });
    std::cout << " " << rule << "=" << count;
  }
  std::cout << "\n";
  if (baselined != 0)
    std::cout << "hlint: " << baselined
              << " baselined finding(s) tolerated (pre-existing debt)\n";
  if (live != 0) {
    std::cout << "hlint: " << live << " violation(s) in " << files_scanned
              << " file(s)\n";
    return 1;
  }
  std::cout << "hlint: clean (" << files_scanned << " files)\n";
  return 0;
}

bool write_json(const std::string& path,
                const std::vector<Finding>& findings,
                std::size_t files_scanned,
                const std::vector<PassStat>& passes) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "hlint: cannot write " << path << "\n";
    return false;
  }
  std::size_t live = 0, baselined = 0;
  for (const Finding& f : findings) (f.baselined ? baselined : live) += 1;
  out << "{\n  \"schema\": \"hspec-hlint-v3\",\n";
  out << "  \"files_scanned\": " << files_scanned << ",\n";
  out << "  \"violations\": " << live << ",\n";
  out << "  \"baselined\": " << baselined << ",\n";
  out << "  \"rule_counts\": {";
  bool first = true;
  for (const std::string& rule : all_rules()) {
    const auto count = std::count_if(
        findings.begin(), findings.end(), [&rule](const Finding& f) {
          return f.rule == rule && !f.baselined;
        });
    out << (first ? "" : ", ") << "\"" << rule << "\": " << count;
    first = false;
  }
  out << "},\n  \"pass_counts\": {";
  first = true;
  for (const PassStat& p : passes) {
    out << (first ? "" : ", ") << "\"" << json_escape(p.pass)
        << "\": " << p.findings;
    first = false;
  }
  out << "},\n  \"pass_wall_ms\": {";
  first = true;
  for (const PassStat& p : passes) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", p.wall_ms);
    out << (first ? "" : ", ") << "\"" << json_escape(p.pass) << "\": " << buf;
    first = false;
  }
  out << "},\n  \"suggestions\": [";
  first = true;
  for (const Finding& f : findings) {
    if (f.suggestion.empty()) continue;
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"file\": \"" << json_escape(f.file)
        << "\", \"line\": " << f.line << ", \"rule\": \""
        << json_escape(f.rule) << "\", \"text\": \""
        << json_escape(f.suggestion) << "\"}";
  }
  out << (first ? "" : "\n  ") << "],\n  \"findings\": [";
  first = true;
  for (const Finding& f : findings) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"file\": \"" << json_escape(f.file) << "\", \"line\": "
        << f.line << ", \"rule\": \"" << json_escape(f.rule)
        << "\", \"baselined\": " << (f.baselined ? "true" : "false")
        << ",\n     \"message\": \"" << json_escape(f.message) << "\"";
    if (!f.witness.empty()) {
      out << ",\n     \"witness\": [";
      for (std::size_t w = 0; w < f.witness.size(); ++w)
        out << (w == 0 ? "" : ", ") << "\"" << json_escape(f.witness[w])
            << "\"";
      out << "]";
    }
    if (!f.suggestion.empty())
      out << ",\n     \"suggestion\": \"" << json_escape(f.suggestion) << "\"";
    out << "}";
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
  return out.good();
}

}  // namespace hlint
