#include "hlint/analysis.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace hlint {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// Names too generic for the project-unique fallback: resolving `find(` to
/// the one project function named `find` would link every container lookup.
bool too_common(const std::string& name) {
  static const std::unordered_set<std::string> kCommon = {
      "insert", "erase",     "find",  "get",       "set",      "wait",
      "lock",   "unlock",    "begin", "end",       "size",     "empty",
      "clear",  "count",     "at",    "swap",      "reset",    "front",
      "back",   "push_back", "data",  "pop_back",  "pop_front","str",
      "c_str",  "emplace",   "run",   "stop",      "start",    "value",
      "values", "push_front","emplace_back",
  };
  return name.size() < 4 || kCommon.count(name) != 0;
}

/// Does the receiver of a member call plausibly name an instance of `cls`?
/// `cache_` ↔ GridCache, `executor_` ↔ HybridExecutor, `device_` ↔ Device.
bool receiver_matches_class(const std::string& recv, const std::string& cls) {
  std::string r = recv;
  while (!r.empty() && r.back() == '_') r.pop_back();
  while (!r.empty() && r.front() == '_') r.erase(0, 1);
  r = lower(r);
  if (r.size() < 3) return false;
  const std::string c = lower(cls);
  return c.find(r) != std::string::npos || r.find(c) != std::string::npos;
}

std::string lock_list(const std::vector<HeldLock>& held) {
  std::string out;
  for (const HeldLock& h : held) {
    if (!out.empty()) out += ", ";
    out += "`" + h.id + "`";
  }
  return out;
}

/// The trailing mutex-member component of a canonical lock id:
/// "GridCache::shard.mu" → "mu", "Shard::mu" → "mu". Guard matching is
/// loose on purpose — the same member mutex canonicalizes with different
/// prefixes depending on where the acquiring expression is spelled.
std::string last_component(const std::string& id) {
  const std::size_t p = id.rfind("::");
  std::string s = p == std::string::npos ? id : id.substr(p + 2);
  const std::size_t d = s.rfind('.');
  return d == std::string::npos ? s : s.substr(d + 1);
}

bool guard_satisfied(const std::string& guard,
                     const std::set<std::string>& lockset) {
  if (lockset.count(guard) != 0) return true;
  const std::string g = last_component(guard);
  for (const std::string& l : lockset)
    if (last_component(l) == g) return true;
  return false;
}

class Project {
 public:
  explicit Project(const ProjectModel& model)
      : fns_(model.functions), fields_(model.fields) {
    for (std::size_t i = 0; i < fns_.size(); ++i)
      if (!fns_[i].is_lambda) by_name_[fns_[i].name].push_back(i);
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      field_by_key_.emplace(std::make_pair(fields_[i].cls, fields_[i].name),
                            i);
      fields_by_name_[fields_[i].name].push_back(i);
      if (fields_[i].is_mutex) mutex_classes_.insert(fields_[i].cls);
      if (fields_[i].is_atomic) atomic_classes_.insert(fields_[i].cls);
    }
    for (const FnAnnotation& a : model.annotations) {
      auto& slot = annot_by_key_[{a.cls, a.name}];
      slot.first.insert(slot.first.end(), a.requires_ids.begin(),
                        a.requires_ids.end());
      slot.second.insert(slot.second.end(), a.excludes_ids.begin(),
                         a.excludes_ids.end());
    }
    resolve_all();
    close_may_block();
    compute_ambient();
    resolve_accesses();
  }

  ProjectStats stats() const {
    ProjectStats s;
    s.functions = fns_.size();
    for (const FunctionDef& f : fns_) {
      s.lock_sites += f.locks.size();
      s.call_sites += f.calls.size();
    }
    s.graph_nodes = nodes_.size();
    s.graph_edges = edges_.size();
    for (const char b : may_block_) s.blocking_fns += b != 0;
    s.field_decls = fields_.size();
    for (const auto& recs : recs_) s.field_accesses += recs.size();
    return s;
  }
  // ---- call resolution -----------------------------------------------------

  std::vector<std::size_t> resolve(const CallSite& c,
                                   const FunctionDef& caller) const {
    std::vector<std::size_t> out;
    const auto it = by_name_.find(c.name);
    if (it == by_name_.end()) return out;
    const std::vector<std::size_t>& cands = it->second;

    if (!c.qualifier.empty()) {  // Class::f() — exact
      for (const std::size_t i : cands)
        if (fns_[i].cls == c.qualifier) out.push_back(i);
      return out;
    }
    if (c.member) {  // x.f() / x->f() — receiver/class affinity
      // Generic names stay unresolved here: `resident_.clear()` is a
      // container clear, not a recursive ResidentCache::clear, even though
      // the receiver happens to echo the class name.
      if (c.receiver.empty() || too_common(c.name)) return out;
      for (const std::size_t i : cands)
        if (!fns_[i].cls.empty() &&
            receiver_matches_class(c.receiver, fns_[i].cls))
          out.push_back(i);
      return out;
    }
    // Unqualified: same class, then free function in the same file, then a
    // project-unique name that is not hopelessly generic.
    if (!caller.cls.empty()) {
      for (const std::size_t i : cands)
        if (fns_[i].cls == caller.cls) out.push_back(i);
      if (!out.empty()) return out;
    }
    for (const std::size_t i : cands)
      if (fns_[i].cls.empty() && fns_[i].file == caller.file) out.push_back(i);
    if (!out.empty()) return out;
    if (cands.size() == 1 && !too_common(c.name)) out.push_back(cands[0]);
    return out;
  }

  void resolve_all() {
    resolved_.resize(fns_.size());
    for (std::size_t f = 0; f < fns_.size(); ++f) {
      resolved_[f].reserve(fns_[f].calls.size());
      for (const CallSite& c : fns_[f].calls)
        resolved_[f].push_back(resolve(c, fns_[f]));
    }
  }

  // ---- blocking reachability -----------------------------------------------

  void close_may_block() {
    may_block_.assign(fns_.size(), 0);
    hop_call_.assign(fns_.size(), static_cast<std::size_t>(-1));
    hop_to_.assign(fns_.size(), static_cast<std::size_t>(-1));
    for (std::size_t f = 0; f < fns_.size(); ++f)
      if (!fns_[f].blocks.empty()) may_block_[f] = 1;
    // Transitive closure to fixpoint; the hop records ONE exemplar callee so
    // findings can print a concrete chain down to the primitive that blocks.
    for (bool changed = true; changed;) {
      changed = false;
      for (std::size_t f = 0; f < fns_.size(); ++f) {
        if (may_block_[f] != 0) continue;
        for (std::size_t ci = 0; ci < fns_[f].calls.size(); ++ci) {
          for (const std::size_t g : resolved_[f][ci]) {
            if (may_block_[g] == 0) continue;
            may_block_[f] = 1;
            hop_call_[f] = ci;
            hop_to_[f] = g;
            changed = true;
            break;
          }
          if (may_block_[f] != 0) break;
        }
      }
    }
  }

  /// Exemplar chain from `start` down to a primitive blocking op.
  std::vector<std::string> block_chain(std::size_t start) const {
    std::vector<std::string> steps;
    std::size_t cur = start;
    for (int guard = 0; guard < 8; ++guard) {
      const FunctionDef& f = fns_[cur];
      if (!f.blocks.empty()) {
        steps.push_back(f.file + ":" + std::to_string(f.blocks[0].line) +
                        ": `" + f.qual + "` blocks here: " + f.blocks[0].desc);
        return steps;
      }
      if (hop_to_[cur] == static_cast<std::size_t>(-1)) return steps;
      const CallSite& c = f.calls[hop_call_[cur]];
      steps.push_back(f.file + ":" + std::to_string(c.line) + ": `" + f.qual +
                      "` calls `" + fns_[hop_to_[cur]].qual + "`");
      cur = hop_to_[cur];
    }
    return steps;
  }

  void blocking_findings(AllowRegistry& allows, std::vector<Finding>& out) {
    for (std::size_t fi = 0; fi < fns_.size(); ++fi) {
      const FunctionDef& f = fns_[fi];
      for (const BlockOp& b : f.blocks) {
        if (b.held.empty()) continue;
        if (allows.allows(f.file, b.line, "lock-blocking")) continue;
        Finding fd{f.file, b.line, "lock-blocking",
                   "blocking operation (" + b.desc + ") while holding " +
                       lock_list(b.held) +
                       "; shrink the lock scope or move the wait outside it",
                   {}, false, {}};
        for (const HeldLock& h : b.held)
          fd.witness.push_back(f.file + ":" + std::to_string(h.acquired_line) +
                               ": `" + h.id + "` acquired here (in `" +
                               f.qual + "`)");
        out.push_back(std::move(fd));
      }
      for (std::size_t ci = 0; ci < f.calls.size(); ++ci) {
        const CallSite& c = f.calls[ci];
        if (c.held.empty()) continue;
        std::size_t target = static_cast<std::size_t>(-1);
        for (const std::size_t g : resolved_[fi][ci])
          if (may_block_[g] != 0) {
            target = g;
            break;
          }
        if (target == static_cast<std::size_t>(-1)) continue;
        if (allows.allows(f.file, c.line, "lock-blocking")) continue;
        Finding fd{f.file, c.line, "lock-blocking",
                   "call to `" + fns_[target].qual +
                       "` can block while holding " + lock_list(c.held) +
                       "; restructure so the lock is released first",
                   {}, false, {}};
        for (const HeldLock& h : c.held)
          fd.witness.push_back(f.file + ":" + std::to_string(h.acquired_line) +
                               ": `" + h.id + "` acquired here (in `" +
                               f.qual + "`)");
        fd.witness.push_back(f.file + ":" + std::to_string(c.line) + ": `" +
                             f.qual + "` calls `" + fns_[target].qual +
                             "` with the lock held");
        for (std::string& step : block_chain(target))
          fd.witness.push_back(std::move(step));
        out.push_back(std::move(fd));
      }
    }
  }

  // ---- lock-order graph ----------------------------------------------------

  struct EdgeInfo {
    std::string file;
    std::size_t line = 0;
    std::vector<std::string> steps;
  };

  void add_edge(const std::string& from, const std::string& to,
                EdgeInfo info) {
    nodes_.insert(from);
    nodes_.insert(to);
    edges_.emplace(std::make_pair(from, to), std::move(info));  // first wins
  }

  void build_lock_graph() {
    for (std::size_t fi = 0; fi < fns_.size(); ++fi) {
      const FunctionDef& f = fns_[fi];
      for (const LockSite& l : f.locks) nodes_.insert(l.id);
      for (const LockEdge& e : f.edges) {
        EdgeInfo info;
        info.file = f.file;
        info.line = e.line;
        info.steps.push_back(f.file + ":" + std::to_string(e.line) + ": `" +
                             f.qual + "` acquires `" + e.to +
                             "` while holding `" + e.from + "`");
        add_edge(e.from, e.to, std::move(info));
      }
      // One-deep interprocedural propagation: a call made under lock A to a
      // function that acquires B is itself an A→B ordering.
      for (std::size_t ci = 0; ci < f.calls.size(); ++ci) {
        const CallSite& c = f.calls[ci];
        if (c.held.empty()) continue;
        for (const std::size_t gi : resolved_[fi][ci]) {
          const FunctionDef& g = fns_[gi];
          for (const LockSite& l : g.locks) {
            for (const HeldLock& h : c.held) {
              EdgeInfo info;
              info.file = f.file;
              info.line = c.line;
              info.steps.push_back(f.file + ":" + std::to_string(c.line) +
                                   ": `" + f.qual + "` holds `" + h.id +
                                   "` and calls `" + g.qual + "`");
              info.steps.push_back(g.file + ":" + std::to_string(l.line) +
                                   ": `" + g.qual + "` acquires `" + l.id +
                                   "`");
              add_edge(h.id, l.id, std::move(info));
            }
          }
        }
      }
    }
  }

  void cycle_findings(AllowRegistry& allows, std::vector<Finding>& out) {
    // Adjacency over sorted node names; DFS from each start node visiting
    // only names >= start, so every simple cycle is found exactly once
    // (anchored at its lexicographically smallest node).
    std::vector<std::string> order(nodes_.begin(), nodes_.end());
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto& [key, info] : edges_) adj[key.first].push_back(key.second);
    for (auto& [from, tos] : adj) std::sort(tos.begin(), tos.end());

    std::vector<std::vector<std::string>> cycles;
    std::vector<std::string> path;
    std::set<std::string> on_path;
    constexpr std::size_t kMaxCycles = 16, kMaxDepth = 12;

    auto dfs = [&](auto&& self, const std::string& u,
                   const std::string& start) -> void {
      if (cycles.size() >= kMaxCycles || path.size() > kMaxDepth) return;
      for (const std::string& v : adj[u]) {
        if (v == start) {
          cycles.push_back(path);
          continue;
        }
        if (v < start || on_path.count(v) != 0) continue;
        path.push_back(v);
        on_path.insert(v);
        self(self, v, start);
        on_path.erase(v);
        path.pop_back();
      }
    };
    for (const std::string& s : order) {
      path = {s};
      on_path = {s};
      dfs(dfs, s, s);
    }

    for (const std::vector<std::string>& cyc : cycles) {
      const EdgeInfo& head = edges_.at({cyc[0], cyc.size() > 1 ? cyc[1]
                                                               : cyc[0]});
      if (allows.allows(head.file, head.line, "lock-cycle")) continue;
      std::string ring;
      for (const std::string& n : cyc) ring += "`" + n + "` -> ";
      ring += "`" + cyc[0] + "`";
      Finding fd{head.file, head.line, "lock-cycle",
                 cyc.size() == 1
                     ? "potential deadlock: " + ring +
                           " (re-acquisition of a non-recursive mutex)"
                     : "potential deadlock: lock-order cycle " + ring +
                           "; two threads taking these locks in opposite "
                           "order can each wait on the other forever",
                 {}, false, {}};
      for (std::size_t i = 0; i < cyc.size(); ++i) {
        const EdgeInfo& e = edges_.at({cyc[i], cyc[(i + 1) % cyc.size()]});
        for (const std::string& step : e.steps) fd.witness.push_back(step);
      }
      out.push_back(std::move(fd));
    }
  }

  // ---- field table & lockset machinery -------------------------------------

  /// One resolved field access with its effective lockset (direct scopes ∪
  /// the function's ambient contract).
  struct AccessRec {
    std::size_t fn = 0;
    std::size_t line = 0;
    bool write = false;
    bool init = false;  ///< ctor/dtor/initialize context — Eraser-exempt
    std::set<std::string> lockset;
  };

  /// REQUIRES contract in effect for `f`: spelled on the definition, or
  /// joined from the declaring header's FnAnnotation by (class, name).
  const std::vector<std::string>& effective_requires(std::size_t f) const {
    if (!fns_[f].requires_ids.empty()) return fns_[f].requires_ids;
    const auto it = annot_by_key_.find({fns_[f].cls, fns_[f].name});
    static const std::vector<std::string> kNone;
    return it == annot_by_key_.end() ? kNone : it->second.first;
  }

  const std::vector<std::string>& effective_excludes(std::size_t f) const {
    if (!fns_[f].excludes_ids.empty()) return fns_[f].excludes_ids;
    const auto it = annot_by_key_.find({fns_[f].cls, fns_[f].name});
    static const std::vector<std::string> kNone;
    return it == annot_by_key_.end() ? kNone : it->second.second;
  }

  /// Ambient lockset: locks a function's body runs under beyond its own
  /// scopes — its REQUIRES contract plus one-deep caller propagation (a
  /// lock held at EVERY resolved incoming call site is ambient too).
  void compute_ambient() {
    ambient_.resize(fns_.size());
    for (std::size_t f = 0; f < fns_.size(); ++f)
      for (const std::string& id : effective_requires(f))
        ambient_[f].insert(id);
    std::vector<std::set<std::string>> common(fns_.size());
    std::vector<char> has_caller(fns_.size(), 0);
    for (std::size_t f = 0; f < fns_.size(); ++f) {
      for (std::size_t ci = 0; ci < fns_[f].calls.size(); ++ci) {
        std::set<std::string> held;
        for (const HeldLock& h : fns_[f].calls[ci].held) held.insert(h.id);
        for (const std::string& id : effective_requires(f)) held.insert(id);
        for (const std::size_t g : resolved_[f][ci]) {
          if (has_caller[g] == 0) {
            common[g] = held;
            has_caller[g] = 1;
          } else {
            for (auto it = common[g].begin(); it != common[g].end();)
              it = held.count(*it) != 0 ? std::next(it) : common[g].erase(it);
          }
        }
      }
    }
    for (std::size_t f = 0; f < fns_.size(); ++f)
      if (has_caller[f] != 0)
        ambient_[f].insert(common[f].begin(), common[f].end());
  }

  /// Is `fn` an initialization/teardown context for `fd`? Constructor and
  /// destructor writes are exclusive by construction; `initialize()`-style
  /// setup and `operator=` are treated the same way.
  bool init_context(const FunctionDef& fn, const FieldDecl& fd) const {
    if (fn.name == fd.cls || fn.name == "~" + fd.cls) return true;
    if (!fn.cls.empty() && (fn.name == fn.cls || fn.name == "~" + fn.cls))
      return true;
    if (fn.name == "operator") return true;
    return lower(fn.name).find("init") != std::string::npos;
  }

  /// Resolve one recorded access to a project field index (npos if it is a
  /// local / unknown identifier — the common case, dropped silently).
  std::size_t resolve_field(const FieldAccess& a,
                            const FunctionDef& fn) const {
    if (a.receiver.empty()) {
      if (fn.cls.empty()) return static_cast<std::size_t>(-1);
      const auto it = field_by_key_.find({fn.cls, a.field});
      return it == field_by_key_.end() ? static_cast<std::size_t>(-1)
                                       : it->second;
    }
    const auto it = fields_by_name_.find(a.field);
    if (it == fields_by_name_.end()) return static_cast<std::size_t>(-1);
    std::size_t hit = static_cast<std::size_t>(-1);
    for (const std::size_t fi : it->second) {
      if (!receiver_matches_class(a.receiver, fields_[fi].cls)) continue;
      if (hit != static_cast<std::size_t>(-1) &&
          fields_[hit].cls != fields_[fi].cls)
        return static_cast<std::size_t>(-1);  // ambiguous across classes
      hit = fi;
    }
    return hit;
  }

  void resolve_accesses() {
    recs_.resize(fields_.size());
    for (std::size_t f = 0; f < fns_.size(); ++f) {
      for (const FieldAccess& a : fns_[f].accesses) {
        const std::size_t fi = resolve_field(a, fns_[f]);
        if (fi == static_cast<std::size_t>(-1)) continue;
        AccessRec r;
        r.fn = f;
        r.line = a.line;
        r.write = a.write;
        r.init = init_context(fns_[f], fields_[fi]);
        for (const HeldLock& h : a.held) r.lockset.insert(h.id);
        r.lockset.insert(ambient_[f].begin(), ambient_[f].end());
        recs_[fi].push_back(std::move(r));
      }
    }
  }

  std::string access_site(const AccessRec& r, const FieldDecl& fd) const {
    const FunctionDef& f = fns_[r.fn];
    std::string locks;
    for (const std::string& id : r.lockset) {
      if (!locks.empty()) locks += ", ";
      locks += "`" + id + "`";
    }
    return f.file + ":" + std::to_string(r.line) + ": " +
           (r.write ? "write" : "read") + " of `" + fd.cls + "::" + fd.name +
           "` in `" + f.qual + "` holding " +
           (locks.empty() ? "no locks" : locks);
  }

  bool field_exempt(const FieldDecl& fd) const {
    return fd.is_atomic || fd.is_const || fd.is_mutex || fd.cls.empty() ||
           fd.name.empty();
  }

  // ---- pass: [lockset] -----------------------------------------------------

  void lockset_findings(AllowRegistry& allows, std::vector<Finding>& out) {
    constexpr std::size_t kMaxWitness = 8;
    for (std::size_t fi = 0; fi < fields_.size(); ++fi) {
      const FieldDecl& fd = fields_[fi];
      if (field_exempt(fd) || !fd.guard.empty()) continue;
      std::vector<const AccessRec*> live;
      for (const AccessRec& r : recs_[fi])
        if (!r.init) live.push_back(&r);
      if (live.empty()) continue;

      const bool has_mutex = mutex_classes_.count(fd.cls) != 0;
      const bool has_atomic = atomic_classes_.count(fd.cls) != 0;
      if (!has_mutex && !has_atomic) continue;  // not a shared-state class

      if (has_mutex) {
        bool any_write = false, ever_locked = false;
        bool locked_write = false, unlocked_write = false;
        std::set<std::string> inter = live[0]->lockset;
        for (const AccessRec* r : live) {
          any_write |= r->write;
          ever_locked |= !r->lockset.empty();
          if (r->write) (r->lockset.empty() ? unlocked_write : locked_write) =
              true;
          for (auto it = inter.begin(); it != inter.end();)
            it = r->lockset.count(*it) != 0 ? std::next(it) : inter.erase(it);
        }
        // Eraser: a field is suspect once (a) it is ever touched under a
        // lock yet no single lock covers every access, or (b) writes happen
        // both with and without locks. Read-only-after-init fields pass.
        const bool eraser_empty = inter.empty() && ever_locked && any_write;
        const bool mixed_writes = locked_write && unlocked_write;
        if (!eraser_empty && !mixed_writes) continue;
        if (allows.allows(fd.file, fd.line, "lockset")) continue;
        std::size_t unprotected = 0;
        for (const AccessRec* r : live) unprotected += r->lockset.empty();
        Finding f{fd.file, fd.line, "lockset",
                  "lockset for `" + fd.cls + "::" + fd.name +
                      "` is inconsistent: " +
                      (mixed_writes
                           ? "written both with and without a lock held"
                           : "no single lock covers every access (" +
                                 std::to_string(unprotected) + " of " +
                                 std::to_string(live.size()) +
                                 " accesses hold no lock)") +
                      "; guard every access with one mutex, make the field "
                      "std::atomic, or confine writes to initialization",
                  {}, false, {}};
        for (std::size_t w = 0; w < live.size() && w < kMaxWitness; ++w)
          f.witness.push_back(access_site(*live[w], fd));
        if (live.size() > kMaxWitness)
          f.witness.push_back("(" + std::to_string(live.size() - kMaxWitness) +
                              " more access sites elided)");
        out.push_back(std::move(f));
      } else if (has_atomic) {
        // Lock-free shared struct: plain fields must be init-only.
        std::vector<const AccessRec*> writes;
        for (const AccessRec* r : live)
          if (r->write) writes.push_back(r);
        if (writes.empty()) continue;
        if (allows.allows(fd.file, fd.line, "lockset")) continue;
        Finding f{fd.file, fd.line, "lockset",
                  "plain field `" + fd.cls + "::" + fd.name +
                      "` of a lock-free shared struct is written outside "
                      "initialization while sibling fields are atomic; make "
                      "it std::atomic or confine writes to initialize()",
                  {}, false, {}};
        for (std::size_t w = 0; w < writes.size() && w < kMaxWitness; ++w)
          f.witness.push_back(access_site(*writes[w], fd));
        out.push_back(std::move(f));
      }
    }
  }

  // ---- pass: [guard-verify] ------------------------------------------------

  void guard_verify_findings(AllowRegistry& allows,
                             std::vector<Finding>& out) {
    constexpr std::size_t kMaxWitness = 8;
    // (a) declared guards vs observed locksets.
    for (std::size_t fi = 0; fi < fields_.size(); ++fi) {
      const FieldDecl& fd = fields_[fi];
      if (fd.guard.empty() || fd.is_mutex) continue;
      std::vector<const AccessRec*> bad;
      for (const AccessRec& r : recs_[fi])
        if (!r.init && !guard_satisfied(fd.guard, r.lockset))
          bad.push_back(&r);
      if (bad.empty()) continue;
      const FunctionDef& first_fn = fns_[bad[0]->fn];
      if (allows.allows(first_fn.file, bad[0]->line, "guard-verify")) continue;
      if (allows.allows(fd.file, fd.line, "guard-verify")) continue;
      Finding f{first_fn.file, bad[0]->line, "guard-verify",
                "field `" + fd.cls + "::" + fd.name +
                    "` is declared GUARDED_BY `" + fd.guard + "` but " +
                    std::to_string(bad.size()) +
                    " access(es) do not hold it; take the lock or extract a "
                    "REQUIRES-annotated locked helper",
                {}, false, {}};
      f.witness.push_back(fd.file + ":" + std::to_string(fd.line) +
                          ": `" + fd.cls + "::" + fd.name +
                          "` declared GUARDED_BY `" + fd.guard + "` here");
      for (std::size_t w = 0; w < bad.size() && w < kMaxWitness; ++w)
        f.witness.push_back(access_site(*bad[w], fd));
      out.push_back(std::move(f));
    }
    // (b) guard-worthy unannotated fields → ready-to-paste suggestion.
    for (std::size_t fi = 0; fi < fields_.size(); ++fi) {
      const FieldDecl& fd = fields_[fi];
      if (field_exempt(fd) || !fd.guard.empty()) continue;
      if (mutex_classes_.count(fd.cls) == 0) continue;
      std::vector<const AccessRec*> live;
      bool any_write = false;
      for (const AccessRec& r : recs_[fi])
        if (!r.init) {
          live.push_back(&r);
          any_write |= r.write;
        }
      if (live.size() < 2 || !any_write) continue;
      std::set<std::string> inter = live[0]->lockset;
      for (const AccessRec* r : live)
        for (auto it = inter.begin(); it != inter.end();)
          it = r->lockset.count(*it) != 0 ? std::next(it) : inter.erase(it);
      if (inter.empty()) continue;  // racy fields belong to [lockset]
      if (allows.allows(fd.file, fd.line, "guard-verify")) continue;
      const std::string& lock = *inter.begin();
      const std::size_t sep = lock.rfind("::");
      const std::string expr =
          sep == std::string::npos ? lock : lock.substr(sep + 2);
      Finding f{fd.file, fd.line, "guard-verify",
                "field `" + fd.cls + "::" + fd.name + "` is always accessed (" +
                    std::to_string(live.size()) + " sites) holding `" + lock +
                    "` but carries no annotation; declare the invariant so "
                    "the compiler enforces it",
                {}, false, "HSPEC_GUARDED_BY(" + expr + ")"};
      for (std::size_t w = 0; w < live.size() && w < kMaxWitness; ++w)
        f.witness.push_back(access_site(*live[w], fd));
      out.push_back(std::move(f));
    }
    // (c)+(d) REQUIRES/EXCLUDES contracts at uniquely-resolved call sites.
    for (std::size_t f = 0; f < fns_.size(); ++f) {
      for (std::size_t ci = 0; ci < fns_[f].calls.size(); ++ci) {
        if (resolved_[f][ci].size() != 1) continue;
        const std::size_t g = resolved_[f][ci][0];
        const CallSite& c = fns_[f].calls[ci];
        std::set<std::string> held;
        for (const HeldLock& h : c.held) held.insert(h.id);
        for (const std::string& id : effective_requires(f)) held.insert(id);
        for (const std::string& req : effective_requires(g)) {
          std::set<std::string> with_ambient = held;
          with_ambient.insert(ambient_[f].begin(), ambient_[f].end());
          if (guard_satisfied(req, with_ambient)) continue;
          if (allows.allows(fns_[f].file, c.line, "guard-verify")) continue;
          Finding fd{fns_[f].file, c.line, "guard-verify",
                     "call to `" + fns_[g].qual + "` REQUIRES `" + req +
                         "` but the caller does not hold it",
                     {}, false, {}};
          fd.witness.push_back(fns_[g].file + ":" +
                               std::to_string(fns_[g].line) + ": `" +
                               fns_[g].qual + "` declared REQUIRES `" + req +
                               "`");
          out.push_back(std::move(fd));
        }
        for (const std::string& exc : effective_excludes(g)) {
          if (held.count(exc) == 0) continue;  // strict match only
          if (allows.allows(fns_[f].file, c.line, "guard-verify")) continue;
          Finding fd{fns_[f].file, c.line, "guard-verify",
                     "call to `" + fns_[g].qual + "` EXCLUDES `" + exc +
                         "` but the caller holds it (re-acquisition would "
                         "self-deadlock)",
                     {}, false, {}};
          fd.witness.push_back(fns_[g].file + ":" +
                               std::to_string(fns_[g].line) + ": `" +
                               fns_[g].qual + "` declared EXCLUDES `" + exc +
                               "`");
          out.push_back(std::move(fd));
        }
      }
    }
  }

  // ---- pass: [hot-reach] ---------------------------------------------------

  static bool hot_alloc_root_file(const std::string& p) {
    if (p.find("src/vgpu") == std::string::npos) return false;
    const auto slash = p.find_last_of('/');
    const std::string name =
        slash == std::string::npos ? p : p.substr(slash + 1);
    return name.find("kernel") != std::string::npos ||
           name.find("stream") != std::string::npos;
  }

  static bool sanctioned_alloc_class(const std::string& cls) {
    return cls == "BufferPool" || cls == "ScratchArena" ||
           cls == "PooledBuffer" || cls == "ResidentCache";
  }

  /// BFS over resolved calls from `roots`; `parent`/`parent_call` record
  /// the discovery tree so findings can print a witness chain.
  void reach_bfs(std::vector<std::size_t> roots, std::vector<char>& visited,
                 std::vector<std::size_t>& parent,
                 std::vector<std::size_t>& parent_call,
                 bool stop_at_sanctioned) const {
    visited.assign(fns_.size(), 0);
    parent.assign(fns_.size(), static_cast<std::size_t>(-1));
    parent_call.assign(fns_.size(), static_cast<std::size_t>(-1));
    for (const std::size_t r : roots) visited[r] = 1;
    std::size_t head = 0;
    while (head < roots.size()) {
      const std::size_t f = roots[head++];
      for (std::size_t ci = 0; ci < fns_[f].calls.size(); ++ci) {
        for (const std::size_t g : resolved_[f][ci]) {
          if (visited[g] != 0) continue;
          if (stop_at_sanctioned && sanctioned_alloc_class(fns_[g].cls))
            continue;
          visited[g] = 1;
          parent[g] = f;
          parent_call[g] = ci;
          roots.push_back(g);
        }
      }
    }
  }

  /// Witness chain root → ... → `f` along the BFS discovery tree.
  std::vector<std::string> reach_chain(std::size_t f,
                                       const std::vector<std::size_t>& parent,
                                       const std::vector<std::size_t>&
                                           parent_call) const {
    std::vector<std::string> steps;
    std::size_t cur = f;
    for (int guard = 0; guard < 12; ++guard) {
      const std::size_t p = parent[cur];
      if (p == static_cast<std::size_t>(-1)) break;
      const CallSite& c = fns_[p].calls[parent_call[cur]];
      steps.push_back(fns_[p].file + ":" + std::to_string(c.line) + ": `" +
                      fns_[p].qual + "` calls `" + fns_[cur].qual + "`");
      cur = p;
    }
    std::reverse(steps.begin(), steps.end());
    return steps;
  }

  void hot_reach_findings(AllowRegistry& allows, std::vector<Finding>& out) {
    std::vector<char> visited;
    std::vector<std::size_t> parent, parent_call;

    // (a) Device::alloc reachable from kernel/stream entry points — the
    // call-graph escalation of the old lexical [hot-alloc] rule (same rule
    // id and message, so the CI baseline diff stays meaningful).
    std::vector<std::size_t> roots;
    for (std::size_t f = 0; f < fns_.size(); ++f)
      if (hot_alloc_root_file(fns_[f].file)) roots.push_back(f);
    reach_bfs(std::move(roots), visited, parent, parent_call, true);
    for (std::size_t f = 0; f < fns_.size(); ++f) {
      if (visited[f] == 0) continue;
      if (sanctioned_alloc_class(fns_[f].cls)) continue;
      for (const CallSite& c : fns_[f].calls) {
        if (c.name != "alloc" || !c.member) continue;
        const std::string recv = lower(c.receiver);
        if (recv.find("arena") != std::string::npos ||
            recv.find("scratch") != std::string::npos ||
            recv.find("pool") != std::string::npos)
          continue;  // the sanctioned bump allocator / pool lease
        if (allows.allows(fns_[f].file, c.line, "hot-alloc")) continue;
        Finding fd{fns_[f].file, c.line, "hot-alloc",
                   "Device::alloc on a kernel/stream hot path serializes "
                   "the device; lease from a BufferPool or bump-allocate "
                   "from a ScratchArena",
                   {}, false, {}};
        for (std::string& s : reach_chain(f, parent, parent_call))
          fd.witness.push_back(std::move(s));
        fd.witness.push_back(fns_[f].file + ":" + std::to_string(c.line) +
                             ": `" + fns_[f].qual + "` calls `" +
                             (c.receiver.empty() ? "" : c.receiver + ".") +
                             "alloc` here");
        out.push_back(std::move(fd));
      }
    }

    // (b) std::exp-family transcendentals reachable from bit-identity-
    // critical integrand code, which must use util::fm:: (DESIGN.md §6).
    roots.clear();
    for (std::size_t f = 0; f < fns_.size(); ++f)
      if (lower(fns_[f].cls).find("integrand") != std::string::npos ||
          lower(fns_[f].name).find("integrand") != std::string::npos)
        roots.push_back(f);
    reach_bfs(std::move(roots), visited, parent, parent_call, false);
    static const std::unordered_set<std::string> kTranscendental = {
        "exp", "log", "pow", "expm1", "log1p", "exp2", "log2"};
    for (std::size_t f = 0; f < fns_.size(); ++f) {
      if (visited[f] == 0) continue;
      for (const CallSite& c : fns_[f].calls) {
        if (kTranscendental.count(c.name) == 0) continue;
        const bool std_call =
            c.qualifier == "std" || (c.qualifier.empty() && !c.member);
        if (!std_call) continue;
        if (allows.allows(fns_[f].file, c.line, "hot-reach")) continue;
        Finding fd{fns_[f].file, c.line, "hot-reach",
                   "`std::" + c.name +
                       "` is reachable from a bit-identity-critical "
                       "integrand path; batch/scalar spectra must match "
                       "bitwise — use the util::fm:: equivalent",
                   {}, false, {}};
        for (std::string& s : reach_chain(f, parent, parent_call))
          fd.witness.push_back(std::move(s));
        fd.witness.push_back(fns_[f].file + ":" + std::to_string(c.line) +
                             ": `" + fns_[f].qual + "` calls `" + c.name +
                             "` here");
        out.push_back(std::move(fd));
      }
    }
  }

  const std::vector<FunctionDef>& fns_;
  const std::vector<FieldDecl>& fields_;
  std::unordered_map<std::string, std::vector<std::size_t>> by_name_;
  std::map<std::pair<std::string, std::string>, std::size_t> field_by_key_;
  std::unordered_map<std::string, std::vector<std::size_t>> fields_by_name_;
  std::map<std::pair<std::string, std::string>,
           std::pair<std::vector<std::string>, std::vector<std::string>>>
      annot_by_key_;
  std::set<std::string> mutex_classes_, atomic_classes_;
  std::vector<std::set<std::string>> ambient_;
  std::vector<std::vector<AccessRec>> recs_;
  std::vector<std::vector<std::vector<std::size_t>>> resolved_;
  std::vector<char> may_block_;
  std::vector<std::size_t> hop_call_, hop_to_;
  std::set<std::string> nodes_;
  std::map<std::pair<std::string, std::string>, EdgeInfo> edges_;
};

}  // namespace

ProjectStats analyze_project(const ProjectModel& model,
                             AllowRegistry& allows,
                             std::vector<Finding>& findings,
                             std::vector<PassStat>& passes) {
  Project p(model);
  const auto timed = [&](const char* name, auto&& pass) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t before = findings.size();
    pass();
    const auto t1 = std::chrono::steady_clock::now();
    passes.push_back(
        {name, findings.size() - before,
         std::chrono::duration<double, std::milli>(t1 - t0).count()});
  };
  timed("lock-blocking", [&] { p.blocking_findings(allows, findings); });
  timed("lock-cycle", [&] {
    p.build_lock_graph();
    p.cycle_findings(allows, findings);
  });
  timed("lockset", [&] { p.lockset_findings(allows, findings); });
  timed("guard-verify", [&] { p.guard_verify_findings(allows, findings); });
  timed("hot-reach", [&] { p.hot_reach_findings(allows, findings); });
  return p.stats();
}

}  // namespace hlint
