#include "hlint/analysis.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace hlint {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// Names too generic for the project-unique fallback: resolving `find(` to
/// the one project function named `find` would link every container lookup.
bool too_common(const std::string& name) {
  static const std::unordered_set<std::string> kCommon = {
      "insert", "erase",     "find",  "get",       "set",      "wait",
      "lock",   "unlock",    "begin", "end",       "size",     "empty",
      "clear",  "count",     "at",    "swap",      "reset",    "front",
      "back",   "push_back", "data",  "pop_back",  "pop_front","str",
      "c_str",  "emplace",   "run",   "stop",      "start",    "value",
      "values", "push_front","emplace_back",
  };
  return name.size() < 4 || kCommon.count(name) != 0;
}

/// Does the receiver of a member call plausibly name an instance of `cls`?
/// `cache_` ↔ GridCache, `executor_` ↔ HybridExecutor, `device_` ↔ Device.
bool receiver_matches_class(const std::string& recv, const std::string& cls) {
  std::string r = recv;
  while (!r.empty() && r.back() == '_') r.pop_back();
  while (!r.empty() && r.front() == '_') r.erase(0, 1);
  r = lower(r);
  if (r.size() < 3) return false;
  const std::string c = lower(cls);
  return c.find(r) != std::string::npos || r.find(c) != std::string::npos;
}

std::string lock_list(const std::vector<HeldLock>& held) {
  std::string out;
  for (const HeldLock& h : held) {
    if (!out.empty()) out += ", ";
    out += "`" + h.id + "`";
  }
  return out;
}

class Project {
 public:
  explicit Project(const std::vector<FunctionDef>& fns) : fns_(fns) {
    for (std::size_t i = 0; i < fns_.size(); ++i)
      if (!fns_[i].is_lambda) by_name_[fns_[i].name].push_back(i);
    resolve_all();
    close_may_block();
  }

  void run(AllowRegistry& allows, std::vector<Finding>& findings) {
    blocking_findings(allows, findings);
    build_lock_graph();
    cycle_findings(allows, findings);
  }

  ProjectStats stats() const {
    ProjectStats s;
    s.functions = fns_.size();
    for (const FunctionDef& f : fns_) {
      s.lock_sites += f.locks.size();
      s.call_sites += f.calls.size();
    }
    s.graph_nodes = nodes_.size();
    s.graph_edges = edges_.size();
    for (const char b : may_block_) s.blocking_fns += b != 0;
    return s;
  }

 private:
  // ---- call resolution -----------------------------------------------------

  std::vector<std::size_t> resolve(const CallSite& c,
                                   const FunctionDef& caller) const {
    std::vector<std::size_t> out;
    const auto it = by_name_.find(c.name);
    if (it == by_name_.end()) return out;
    const std::vector<std::size_t>& cands = it->second;

    if (!c.qualifier.empty()) {  // Class::f() — exact
      for (const std::size_t i : cands)
        if (fns_[i].cls == c.qualifier) out.push_back(i);
      return out;
    }
    if (c.member) {  // x.f() / x->f() — receiver/class affinity
      // Generic names stay unresolved here: `resident_.clear()` is a
      // container clear, not a recursive ResidentCache::clear, even though
      // the receiver happens to echo the class name.
      if (c.receiver.empty() || too_common(c.name)) return out;
      for (const std::size_t i : cands)
        if (!fns_[i].cls.empty() &&
            receiver_matches_class(c.receiver, fns_[i].cls))
          out.push_back(i);
      return out;
    }
    // Unqualified: same class, then free function in the same file, then a
    // project-unique name that is not hopelessly generic.
    if (!caller.cls.empty()) {
      for (const std::size_t i : cands)
        if (fns_[i].cls == caller.cls) out.push_back(i);
      if (!out.empty()) return out;
    }
    for (const std::size_t i : cands)
      if (fns_[i].cls.empty() && fns_[i].file == caller.file) out.push_back(i);
    if (!out.empty()) return out;
    if (cands.size() == 1 && !too_common(c.name)) out.push_back(cands[0]);
    return out;
  }

  void resolve_all() {
    resolved_.resize(fns_.size());
    for (std::size_t f = 0; f < fns_.size(); ++f) {
      resolved_[f].reserve(fns_[f].calls.size());
      for (const CallSite& c : fns_[f].calls)
        resolved_[f].push_back(resolve(c, fns_[f]));
    }
  }

  // ---- blocking reachability -----------------------------------------------

  void close_may_block() {
    may_block_.assign(fns_.size(), 0);
    hop_call_.assign(fns_.size(), static_cast<std::size_t>(-1));
    hop_to_.assign(fns_.size(), static_cast<std::size_t>(-1));
    for (std::size_t f = 0; f < fns_.size(); ++f)
      if (!fns_[f].blocks.empty()) may_block_[f] = 1;
    // Transitive closure to fixpoint; the hop records ONE exemplar callee so
    // findings can print a concrete chain down to the primitive that blocks.
    for (bool changed = true; changed;) {
      changed = false;
      for (std::size_t f = 0; f < fns_.size(); ++f) {
        if (may_block_[f] != 0) continue;
        for (std::size_t ci = 0; ci < fns_[f].calls.size(); ++ci) {
          for (const std::size_t g : resolved_[f][ci]) {
            if (may_block_[g] == 0) continue;
            may_block_[f] = 1;
            hop_call_[f] = ci;
            hop_to_[f] = g;
            changed = true;
            break;
          }
          if (may_block_[f] != 0) break;
        }
      }
    }
  }

  /// Exemplar chain from `start` down to a primitive blocking op.
  std::vector<std::string> block_chain(std::size_t start) const {
    std::vector<std::string> steps;
    std::size_t cur = start;
    for (int guard = 0; guard < 8; ++guard) {
      const FunctionDef& f = fns_[cur];
      if (!f.blocks.empty()) {
        steps.push_back(f.file + ":" + std::to_string(f.blocks[0].line) +
                        ": `" + f.qual + "` blocks here: " + f.blocks[0].desc);
        return steps;
      }
      if (hop_to_[cur] == static_cast<std::size_t>(-1)) return steps;
      const CallSite& c = f.calls[hop_call_[cur]];
      steps.push_back(f.file + ":" + std::to_string(c.line) + ": `" + f.qual +
                      "` calls `" + fns_[hop_to_[cur]].qual + "`");
      cur = hop_to_[cur];
    }
    return steps;
  }

  void blocking_findings(AllowRegistry& allows, std::vector<Finding>& out) {
    for (std::size_t fi = 0; fi < fns_.size(); ++fi) {
      const FunctionDef& f = fns_[fi];
      for (const BlockOp& b : f.blocks) {
        if (b.held.empty()) continue;
        if (allows.allows(f.file, b.line, "lock-blocking")) continue;
        Finding fd{f.file, b.line, "lock-blocking",
                   "blocking operation (" + b.desc + ") while holding " +
                       lock_list(b.held) +
                       "; shrink the lock scope or move the wait outside it",
                   {}, false};
        for (const HeldLock& h : b.held)
          fd.witness.push_back(f.file + ":" + std::to_string(h.acquired_line) +
                               ": `" + h.id + "` acquired here (in `" +
                               f.qual + "`)");
        out.push_back(std::move(fd));
      }
      for (std::size_t ci = 0; ci < f.calls.size(); ++ci) {
        const CallSite& c = f.calls[ci];
        if (c.held.empty()) continue;
        std::size_t target = static_cast<std::size_t>(-1);
        for (const std::size_t g : resolved_[fi][ci])
          if (may_block_[g] != 0) {
            target = g;
            break;
          }
        if (target == static_cast<std::size_t>(-1)) continue;
        if (allows.allows(f.file, c.line, "lock-blocking")) continue;
        Finding fd{f.file, c.line, "lock-blocking",
                   "call to `" + fns_[target].qual +
                       "` can block while holding " + lock_list(c.held) +
                       "; restructure so the lock is released first",
                   {}, false};
        for (const HeldLock& h : c.held)
          fd.witness.push_back(f.file + ":" + std::to_string(h.acquired_line) +
                               ": `" + h.id + "` acquired here (in `" +
                               f.qual + "`)");
        fd.witness.push_back(f.file + ":" + std::to_string(c.line) + ": `" +
                             f.qual + "` calls `" + fns_[target].qual +
                             "` with the lock held");
        for (std::string& step : block_chain(target))
          fd.witness.push_back(std::move(step));
        out.push_back(std::move(fd));
      }
    }
  }

  // ---- lock-order graph ----------------------------------------------------

  struct EdgeInfo {
    std::string file;
    std::size_t line = 0;
    std::vector<std::string> steps;
  };

  void add_edge(const std::string& from, const std::string& to,
                EdgeInfo info) {
    nodes_.insert(from);
    nodes_.insert(to);
    edges_.emplace(std::make_pair(from, to), std::move(info));  // first wins
  }

  void build_lock_graph() {
    for (std::size_t fi = 0; fi < fns_.size(); ++fi) {
      const FunctionDef& f = fns_[fi];
      for (const LockSite& l : f.locks) nodes_.insert(l.id);
      for (const LockEdge& e : f.edges) {
        EdgeInfo info;
        info.file = f.file;
        info.line = e.line;
        info.steps.push_back(f.file + ":" + std::to_string(e.line) + ": `" +
                             f.qual + "` acquires `" + e.to +
                             "` while holding `" + e.from + "`");
        add_edge(e.from, e.to, std::move(info));
      }
      // One-deep interprocedural propagation: a call made under lock A to a
      // function that acquires B is itself an A→B ordering.
      for (std::size_t ci = 0; ci < f.calls.size(); ++ci) {
        const CallSite& c = f.calls[ci];
        if (c.held.empty()) continue;
        for (const std::size_t gi : resolved_[fi][ci]) {
          const FunctionDef& g = fns_[gi];
          for (const LockSite& l : g.locks) {
            for (const HeldLock& h : c.held) {
              EdgeInfo info;
              info.file = f.file;
              info.line = c.line;
              info.steps.push_back(f.file + ":" + std::to_string(c.line) +
                                   ": `" + f.qual + "` holds `" + h.id +
                                   "` and calls `" + g.qual + "`");
              info.steps.push_back(g.file + ":" + std::to_string(l.line) +
                                   ": `" + g.qual + "` acquires `" + l.id +
                                   "`");
              add_edge(h.id, l.id, std::move(info));
            }
          }
        }
      }
    }
  }

  void cycle_findings(AllowRegistry& allows, std::vector<Finding>& out) {
    // Adjacency over sorted node names; DFS from each start node visiting
    // only names >= start, so every simple cycle is found exactly once
    // (anchored at its lexicographically smallest node).
    std::vector<std::string> order(nodes_.begin(), nodes_.end());
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto& [key, info] : edges_) adj[key.first].push_back(key.second);
    for (auto& [from, tos] : adj) std::sort(tos.begin(), tos.end());

    std::vector<std::vector<std::string>> cycles;
    std::vector<std::string> path;
    std::set<std::string> on_path;
    constexpr std::size_t kMaxCycles = 16, kMaxDepth = 12;

    auto dfs = [&](auto&& self, const std::string& u,
                   const std::string& start) -> void {
      if (cycles.size() >= kMaxCycles || path.size() > kMaxDepth) return;
      for (const std::string& v : adj[u]) {
        if (v == start) {
          cycles.push_back(path);
          continue;
        }
        if (v < start || on_path.count(v) != 0) continue;
        path.push_back(v);
        on_path.insert(v);
        self(self, v, start);
        on_path.erase(v);
        path.pop_back();
      }
    };
    for (const std::string& s : order) {
      path = {s};
      on_path = {s};
      dfs(dfs, s, s);
    }

    for (const std::vector<std::string>& cyc : cycles) {
      const EdgeInfo& head = edges_.at({cyc[0], cyc.size() > 1 ? cyc[1]
                                                               : cyc[0]});
      if (allows.allows(head.file, head.line, "lock-cycle")) continue;
      std::string ring;
      for (const std::string& n : cyc) ring += "`" + n + "` -> ";
      ring += "`" + cyc[0] + "`";
      Finding fd{head.file, head.line, "lock-cycle",
                 cyc.size() == 1
                     ? "potential deadlock: " + ring +
                           " (re-acquisition of a non-recursive mutex)"
                     : "potential deadlock: lock-order cycle " + ring +
                           "; two threads taking these locks in opposite "
                           "order can each wait on the other forever",
                 {}, false};
      for (std::size_t i = 0; i < cyc.size(); ++i) {
        const EdgeInfo& e = edges_.at({cyc[i], cyc[(i + 1) % cyc.size()]});
        for (const std::string& step : e.steps) fd.witness.push_back(step);
      }
      out.push_back(std::move(fd));
    }
  }

  const std::vector<FunctionDef>& fns_;
  std::unordered_map<std::string, std::vector<std::size_t>> by_name_;
  std::vector<std::vector<std::vector<std::size_t>>> resolved_;
  std::vector<char> may_block_;
  std::vector<std::size_t> hop_call_, hop_to_;
  std::set<std::string> nodes_;
  std::map<std::pair<std::string, std::string>, EdgeInfo> edges_;
};

}  // namespace

ProjectStats analyze_project(const std::vector<FunctionDef>& fns,
                             AllowRegistry& allows,
                             std::vector<Finding>& findings) {
  Project p(fns);
  p.run(allows, findings);
  return p.stats();
}

}  // namespace hlint
