// hlint fixture: [unused-suppression] — a marker that suppresses nothing is
// itself a finding, so stale escapes cannot accumulate in the tree.
// Not compiled; parser shapes only.

int identity(int v) {
  return v;  // hlint:allow(fp-equal) — nothing here for the rule to suppress
}
