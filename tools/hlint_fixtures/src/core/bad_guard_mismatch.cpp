// hlint fixture: [guard-verify] must flag `Ledger::balance_` — declared
// GUARDED_BY(mu_), but the fast path holds the wrong mutex and the peek
// path holds nothing. The declaration site rides along as witness, and
// [lockset] must stay silent (annotated fields belong to guard-verify).
#include <mutex>

namespace fixture {

class Ledger {
 public:
  void deposit(long amount) {
    std::lock_guard<std::mutex> lock(mu_);
    balance_ += amount;  // ok: holds the declared guard
  }
  void fast_adjust(long amount) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    balance_ += amount;  // BAD: wrong mutex
  }
  long peek() const { return balance_; }  // BAD: no lock at all

 private:
  std::mutex mu_;
  std::mutex stats_mu_;
  long balance_ HSPEC_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
