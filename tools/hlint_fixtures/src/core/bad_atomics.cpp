// hlint fixture: every line marked BAD must be reported. The fixture tree
// mirrors src/core so the memory-order rule's scope filter applies to it;
// a WILL_FAIL ctest runs hlint here to prove the lint still bites.

#include <atomic>

namespace hspec::fixture {

int defaulted_order() {
  std::atomic<int> counter{0};
  counter.store(1);                                 // BAD: defaulted seq_cst
  counter.fetch_add(2);                             // BAD: defaulted seq_cst
  counter.fetch_add(1, std::memory_order_relaxed);  // ok: explicit
  return counter.load();                            // BAD: defaulted seq_cst
}

int naked_ownership() {
  int* p = new int(7);  // BAD: naked new outside an RAII owner
  const int v = *p;
  delete p;  // BAD: naked delete
  return v;
}

volatile int spin_flag = 0;  // BAD: volatile as a synchronization primitive

}  // namespace hspec::fixture
