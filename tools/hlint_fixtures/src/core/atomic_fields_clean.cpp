// hlint fixture: CLEAN under [lockset]. Every shared field here is either
// std::atomic, const-after-construction, or written only inside the
// initialize() context — each exemption must hold, and `hlint <this file>`
// must print "hlint: clean". Any finding here is a false positive.
#include <atomic>
#include <cstdint>

namespace fixture {

struct Telemetry {
  std::atomic<std::int64_t> samples{0};
  std::atomic<std::int64_t> dropped{0};
  const double scale = 1.0;       // const-after-construction: exempt
  std::int32_t capacity = 0;      // written only by initialize(): exempt

  void initialize(std::int32_t cap) {
    capacity = cap;
    samples.store(0, std::memory_order_relaxed);
    dropped.store(0, std::memory_order_relaxed);
  }
  void record(bool ok) {
    if (ok)
      samples.fetch_add(1, std::memory_order_relaxed);
    else
      dropped.fetch_add(1, std::memory_order_relaxed);
  }
  std::int64_t seen() const {
    return samples.load(std::memory_order_relaxed) +
           dropped.load(std::memory_order_relaxed);
  }
  std::int32_t limit() const { return capacity; }  // non-init read: still ok
  double scaled() const { return scale * static_cast<double>(seen()); }
};

}  // namespace fixture
