// hlint fixture: header without #pragma once — the pragma-once rule must
// flag this file (and nothing in the real tree, where every header has it).

namespace hspec::fixture {
inline int answer() { return 42; }
}  // namespace hspec::fixture
