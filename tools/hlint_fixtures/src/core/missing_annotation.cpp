// hlint fixture: every access to `Window::total_` already holds mu_, yet
// the declaration carries no annotation — [guard-verify] must report the
// guard-worthy field and emit the ready-to-paste HSPEC_GUARDED_BY(mu_)
// suggestion (surfaced under "suggested:" in text and in the --json
// suggestions array).
#include <mutex>

namespace fixture {

class Window {
 public:
  void add(double v) {
    std::lock_guard<std::mutex> lock(mu_);
    total_ += v;
  }
  double drain() {
    std::lock_guard<std::mutex> lock(mu_);
    const double out = total_;
    total_ = 0.0;
    return out;
  }

 private:
  std::mutex mu_;
  double total_ = 0.0;  // BAD: consistently locked but undeclared
};

}  // namespace fixture
