// hlint fixture (entry half): a stream-file entry point whose per-launch
// Device::alloc lives one call away in alloc_helper.cpp — a file the old
// file-scoped lexical rule never looked at. [hot-reach] must walk the
// call graph from here and report rule id `hot-alloc` in the helper, with
// the launch_points → stage_buffers witness chain.
#include <cstddef>

struct FakeBuffer;
struct FakeDevice;

void stage_buffers(FakeDevice& device, std::size_t n);

void launch_points(FakeDevice& device, std::size_t n) {
  stage_buffers(device, n);
}
