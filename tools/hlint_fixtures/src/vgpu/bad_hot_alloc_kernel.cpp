// hlint fixture: [hot-alloc] must flag a per-launch Device::alloc in a
// kernel-path file, and must NOT flag the sanctioned ScratchArena form.
#include <cstddef>

struct FakeBuffer {};
struct FakeDevice {
  FakeBuffer alloc(std::size_t) { return {}; }
};
struct FakeArena {
  double* alloc(std::size_t) { return nullptr; }
};

void launch_wrapper(FakeDevice& device, FakeArena& arena, std::size_t n) {
  FakeBuffer emi = device.alloc(n);  // BAD: cudaMalloc on the hot path
  (void)emi;
  double* xs = arena.alloc(n);  // OK: bump allocation
  (void)xs;
}
