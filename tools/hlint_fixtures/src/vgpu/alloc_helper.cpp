// hlint fixture (helper half): neither "kernel" nor "stream" in the file
// name, so this file contributes no roots of its own — the Device::alloc
// below is a violation only because bad_alloc_stream.cpp's launch_points
// reaches stage_buffers through the call graph.
#include <cstddef>

struct FakeBuffer {};
struct FakeDevice {
  FakeBuffer alloc(std::size_t) { return {}; }
};

void stage_buffers(FakeDevice& device, std::size_t n) {
  FakeBuffer emi = device.alloc(n);  // BAD: reached from the stream entry
  (void)emi;
}
