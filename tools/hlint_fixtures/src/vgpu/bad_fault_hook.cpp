// Fixture for the [fault-hook] rule: a device-layer path that throws
// FaultError with no FaultPlan verdict anywhere nearby — an undeclared
// injection point. hlint must flag the throw below.

// Stand-in for util::FaultError so the fixture compiles nowhere near the
// real tree (fixtures are linted, never built).
struct FaultError {
  explicit FaultError(int device_id) : device(device_id) {}
  int device;
};

int copy_without_a_verdict(int device) {
  if (device < 0) {
    // No plan->query(...) preceding this: the lint fires here.
    throw FaultError(device);
  }
  return device;
}
