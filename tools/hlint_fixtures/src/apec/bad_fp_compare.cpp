// hlint fixture: exact floating-point comparisons the [fp-equal] rule must
// flag. The fixture tree mirrors src/apec so the physics-scope filters see
// it; a PASS_REGULAR_EXPRESSION ctest asserts "[fp-equal]" appears.

namespace hspec::fixture {

bool exact_compares(double x, double y) {
  if (x == 0.5) return true;        // BAD: exact == against an fp literal
  if (y != 1e-6) return false;      // BAD: exact != against an fp literal
  if (1.25 == x) return true;       // BAD: literal on the left too
  return x == 0.25;  // hlint:allow(fp-equal) — sanctioned sentinel, not flagged
}

}  // namespace hspec::fixture
