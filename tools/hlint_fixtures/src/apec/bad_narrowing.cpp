// hlint fixture: silent narrowing in physics arithmetic — the [narrowing]
// rule must flag the f-suffixed literal and both C-style casts.

namespace hspec::fixture {

double narrowed(double e_keV) {
  const double kk = 1.5f;              // BAD: f-suffixed literal
  const double lost = (float)e_keV;    // BAD: C-style cast to float
  const int bins = (int)(e_keV * kk);  // BAD: C-style cast truncates
  return lost + bins;
}

}  // namespace hspec::fixture
