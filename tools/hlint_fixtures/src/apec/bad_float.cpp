// hlint fixture: bare `float` in physics code — the [no-float] rule must
// flag every declaration below (double-only literals, so [narrowing] has
// its own dedicated fixture).

namespace hspec::fixture {

float sigma_cm2 = 1.0;  // BAD: float storage silently halves the mantissa

double accumulate(float emissivity) {  // BAD: float parameter
  return emissivity;
}

}  // namespace hspec::fixture
