#pragma once
// hlint fixture: raw double parameters with no unit suffix on a physics
// header — the [unit-suffix] rule must flag both parameters of rrc_rate and
// pass the suffixed/dimensionless ones.

namespace hspec::fixture {

double rrc_rate(double kt, double ne);          // BAD x2: kt, ne unsuffixed
double ok_rate(double kT_keV, double ne_cm3);   // ok: unit suffixes
double ok_frac(double ion_fraction, double t);  // ok: dimensionless + ODE time

}  // namespace hspec::fixture
