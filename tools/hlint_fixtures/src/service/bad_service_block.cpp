// hlint fixture: [lock-blocking], direct form — blocking operations inside
// the live range of a cache shard lock. Two violations (run_batch dispatch,
// future wait), one sanctioned escape, one condition-variable wait the
// exemption must clear, and one wait after the lock dies that is clean.
// Not compiled; parser shapes only.

#include "util/thread_annotations.h"

struct FakeShard {
  util::Mutex mu;
};

struct FakeExecutor {
  int run_batch(int points) { return points; }
};

struct FakeTicket {
  void wait() {}
};

int bad_dispatch_under_shard_lock(FakeShard& shard, FakeExecutor& executor) {
  util::MutexLock lock(shard.mu);
  return executor.run_batch(3);  // VIOLATION: dispatch under shard lock
}

void bad_wait_under_shard_lock(FakeShard& shard, FakeTicket& ticket) {
  util::MutexLock lock(shard.mu);
  ticket.wait();  // VIOLATION: future wait under shard lock
}

int allowed_under_shard_lock(FakeShard& shard, FakeExecutor& executor) {
  util::MutexLock lock(shard.mu);
  return executor.run_batch(1);  // hlint:allow(lock-blocking) — fixture escape
}

struct FakeCv {
  template <typename L>
  void wait(L& lock) { (void)lock; }
};

void fine_cv_wait_releases_its_lock(FakeShard& shard, FakeCv& work_cv) {
  util::MutexLock lock(shard.mu);
  // A condition-variable wait releases the lock it is handed for the
  // duration of the wait: with no OTHER lock held this is the sanctioned
  // producer/consumer idiom, not a violation.
  work_cv.wait(lock);
}

void fine_wait_after_lock_dies(FakeShard& shard, FakeTicket& ticket) {
  {
    util::MutexLock lock(shard.mu);
  }
  ticket.wait();  // the lock scope closed above: clean
}
