// hlint fixture: [service-block] — blocking calls inside the live range of
// a cache shard lock. Two violations (run_batch, ticket.wait), one
// sanctioned escape, and one clean non-shard lock the rule must ignore.
// Not compiled; lexical shapes only.

#include "util/thread_annotations.h"

struct FakeShard {
  util::Mutex mu;
};

struct FakeExecutor {
  int run_batch(int points) { return points; }
};

struct FakeTicket {
  void wait() {}
};

int bad_dispatch_under_shard_lock(FakeShard& shard, FakeExecutor& executor) {
  util::MutexLock lock(shard.mu);
  return executor.run_batch(3);  // VIOLATION: executor call under shard lock
}

void bad_wait_under_shard_lock(FakeShard& shard, FakeTicket& ticket) {
  util::MutexLock lock(shard.mu);
  ticket.wait();  // VIOLATION: future wait under shard lock
}

int allowed_under_shard_lock(FakeShard& shard, FakeExecutor& executor) {
  util::MutexLock lock(shard.mu);
  return executor.run_batch(1);  // hlint:allow(service-block) — fixture escape
}

void fine_outside_shard_lock(util::Mutex& service_mu, FakeTicket& ticket) {
  util::MutexLock lock(service_mu);  // not a shard lock: rule must not fire
  ticket.wait();
}
