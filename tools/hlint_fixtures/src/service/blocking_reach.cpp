// hlint fixture: [lock-blocking], reachability form — the blocking call is
// one function call removed from the lock scope. The old lexical
// [service-block] rule scanned only the text between the MutexLock
// declaration and its closing brace, so `drain()` looked harmless; the
// call-graph pass must follow tick → drain → flush → future.get() and flag
// the call made with the lock held. Not compiled; parser shapes only.

#include "util/thread_annotations.h"

struct FakeFuture {
  int get() { return 0; }
};

class Pipeline {
 public:
  void tick() {
    util::MutexLock lock(state_mu_);
    drain();  // VIOLATION: drain() reaches a future get with the lock held
    ++ticks_;
  }

  void drain() { flush(); }

  void flush() { result_future_.get(); }

 private:
  util::Mutex state_mu_;
  FakeFuture result_future_;
  int ticks_ = 0;
};
