// hlint fixture: [lock-cycle] — the classic AB/BA deadlock, twice over.
// Ledger seeds it directly (two acquisition scopes in opposite order);
// Journal seeds it through a call (the A→B edge only exists because a
// function holding A calls one that acquires B — the one-deep
// interprocedural propagation must see it). Each cycle is reported once,
// with the full witness path. Not compiled; parser shapes only.

#include "util/thread_annotations.h"

struct Ledger {
  util::Mutex accounts_mu;
  util::Mutex audit_mu;
  int balance = 0;
  int audits = 0;

  void credit(int amount) {
    util::MutexLock hold_accounts(accounts_mu);
    util::MutexLock hold_audit(audit_mu);  // order: accounts, then audit
    balance += amount;
    ++audits;
  }

  void reconcile() {
    util::MutexLock hold_audit(audit_mu);
    util::MutexLock hold_accounts(accounts_mu);  // VIOLATION: audit, then
    ++audits;                                    // accounts — AB/BA cycle
  }
};

struct Journal {
  util::Mutex log_mu;
  util::Mutex index_mu;
  int entries = 0;

  void append() {
    util::MutexLock hold(log_mu);
    reindex_entry();  // acquires index_mu: the edge lives one call deep
  }

  void reindex_entry() {
    util::MutexLock hold(index_mu);
    ++entries;
  }

  void rotate() {
    util::MutexLock hold_index(index_mu);
    util::MutexLock hold_log(log_mu);  // VIOLATION: closes the cycle the
    entries = 0;                       // append() call edge opened
  }
};
