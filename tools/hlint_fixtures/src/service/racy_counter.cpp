// hlint fixture: [lockset] must flag `HitCounter::hits_` — the recording
// path takes the mutex but the reset path writes bare, so the field is
// written both with and without a lock held (the Eraser intersection over
// all access sites is empty). The witness must name the unlocked write.
#include <mutex>

namespace fixture {

class HitCounter {
 public:
  void record() {
    std::lock_guard<std::mutex> lock(mu_);
    hits_ += 1;  // ok on its own: holds mu_
  }
  void reset() {
    hits_ = 0;  // BAD: bare write racing record()
  }
  long peek() const { return hits_; }  // BAD: bare read

 private:
  std::mutex mu_;
  long hits_ = 0;
};

}  // namespace fixture
