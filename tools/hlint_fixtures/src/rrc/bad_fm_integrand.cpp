// hlint fixture: [hot-reach] must flag the std::exp one call away from
// integrand code — batch/scalar spectra must match bitwise, so integrand
// paths use the util::fm:: equivalents (DESIGN.md §6). The witness pins
// the integrand_at → boltzmann_factor chain.
#include <cmath>

namespace fixture {

double boltzmann_factor(double e, double kt) {
  return std::exp(-e / kt);  // BAD: reached from the integrand path
}

struct GauntTable {
  double kt = 1.0;
  double integrand_at(double e) const { return boltzmann_factor(e, kt); }
};

}  // namespace fixture
