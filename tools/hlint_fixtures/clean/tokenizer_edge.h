#pragma once
// hlint clean fixture (header half): nested-template members, a
// lambda-typed field with a default initializer, and declaration shapes
// that must all tokenize and parse without a single finding.

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

namespace fixture {

struct Registry {
  std::mutex mu;
  std::map<std::size_t, std::vector<double>> table;  // '>>' is two tokens
  std::function<double(double)> transform = [](double v) { return v; };
  // Atomic: read lock-free by describe(), bumped under mu by the writer —
  // the [lockset] pass must exempt it, not demand a common lock.
  std::atomic<int> count{0};
};

auto describe(const Registry& reg) -> std::size_t;

}  // namespace fixture
