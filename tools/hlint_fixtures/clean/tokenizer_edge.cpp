// hlint clean fixture: tokenizer and parser edge cases. Everything in this
// file is CLEAN — raw strings carrying banned tokens, a multi-line lock
// acquisition with a nested template argument, trailing return types.
// `hlint <this file>` must print "hlint: clean"; any finding here is a
// false positive.

#include "tokenizer_edge.h"

#include <string>

namespace fixture {

// Banned tokens, safely fenced inside a raw string: the lexer must carry
// this entire block as one string token the rules never look inside.
const char* const kDoc = R"doc(
  volatile float x = 1.0f;
  int* p = new int[4];
  if (x == 0.5f) { delete p; }
  util::MutexLock lock(shard.mu); ticket.wait();
)doc";

std::string render() {
  return std::string(kDoc) + "(int)1 == 2.0";  // cast/compare text, in a string
}

auto describe(const Registry& reg) -> std::size_t {
  return static_cast<std::size_t>(reg.count);
}

void multi_line_acquisition(Registry& reg) {
  // The acquisition below spans four physical lines and carries a nested
  // template argument; the parser must still see one lock_guard on reg.mu.
  std::lock_guard<
      std::mutex>
      guard(
          reg.mu);
  reg.count += 1;
}

}  // namespace fixture
