// spectral_survey — the workload of Fig. 1: a three-dimensional parameter
// space (temperature x density x time) swept point by point through the
// hybrid driver, the way a simulation post-processing pipeline would.
//
//   $ ./spectral_survey [--nt 4] [--nd 3] [--ranks 6] [--gpus 2]

#include <cstdio>

#include "apec/calculator.h"
#include "apec/parameter_space.h"
#include "core/hybrid.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hspec;
  const util::Cli cli(argc, argv);
  const auto nt = static_cast<std::size_t>(cli.get_int("nt", 4));
  const auto nd = static_cast<std::size_t>(cli.get_int("nd", 3));
  const int ranks = static_cast<int>(cli.get_int("ranks", 6));
  const int gpus = static_cast<int>(cli.get_int("gpus", 2));

  // The parameter space of Fig. 1 (time axis kept short at example scale).
  const apec::ParameterSpace space({0.2, 2.0, nt, true},
                                   {0.5, 50.0, nd, true},
                                   {0.0, 0.0, 1, false});
  std::printf("parameter space: %zu x %zu x 1 = %zu grid points\n", nt, nd,
              space.size());

  atomic::DatabaseConfig db_cfg;
  db_cfg.max_z = 14;          // H..Si at example scale
  db_cfg.levels = {3, true};
  const atomic::AtomicDatabase db(db_cfg);
  const auto grid = apec::EnergyGrid::wavelength(2.0, 40.0, 96);

  apec::CalcOptions opt;
  opt.integration.adaptive = false;  // GPU kernels
  const apec::SpectrumCalculator calc(db, grid, opt);

  core::HybridConfig cfg;
  cfg.ranks = ranks;
  cfg.devices = gpus;
  cfg.max_queue_length = 10;
  core::HybridDriver driver(calc, cfg);
  const auto result = driver.run(space.all_points());

  util::Table t({"kT (keV)", "ne (cm^-3)", "total emissivity",
                 "peak wavelength (A)"});
  for (std::size_t p = 0; p < space.size(); ++p) {
    const auto pt = space.point(p);
    const auto& spec = result.spectra[p];
    // Wavelength of the brightest bin.
    std::size_t peak_bin = 0;
    for (std::size_t b = 1; b < spec.bin_count(); ++b)
      if (spec[b] > spec[peak_bin]) peak_bin = b;
    t.add_row({util::Table::num(pt.kT_keV, 3), util::Table::num(pt.ne_cm3, 3),
               util::Table::num(spec.total(), 4),
               util::Table::num(grid.center_wavelength(peak_bin), 4)});
  }
  std::fputs(t.str().c_str(), stdout);
  t.write_csv("spectral_survey.csv");

  std::printf("\nscheduling: %zu tasks, %.2f%% on GPU; per-device history:",
              result.tasks_total,
              100.0 * result.scheduling.gpu_task_ratio());
  for (auto h : result.history) std::printf(" %lld", static_cast<long long>(h));
  std::printf("\nwrote spectral_survey.csv\n");
  return 0;
}
