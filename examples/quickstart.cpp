// quickstart — the smallest end-to-end use of the library:
// build the atomic database, define a spectral grid and a plasma state,
// run the serial APEC path, then the hybrid CPU/GPU driver, and compare.
//
//   $ ./quickstart [--kt 0.6] [--gpus 2] [--ranks 4] [--bins 160]

#include <cmath>
#include <cstdio>

#include "apec/calculator.h"
#include "core/hybrid.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace hspec;
  const util::Cli cli(argc, argv);
  const double kT = cli.get_double("kt", 0.6);
  const int gpus = static_cast<int>(cli.get_int("gpus", 2));
  const int ranks = static_cast<int>(cli.get_int("ranks", 4));
  const auto bins = static_cast<std::size_t>(cli.get_int("bins", 160));

  // 1. The synthetic AtomDB: 30 elements, all charge states, 496 ion units.
  atomic::DatabaseConfig db_cfg;
  db_cfg.levels = {3, true};  // 6 recombination levels per ion
  const atomic::AtomicDatabase db(db_cfg);
  std::printf("atomic database: %zu ion units (%zu RRC emitters)\n",
              db.ion_count(), db.rrc_ions().size());

  // 2. A wavelength grid covering the paper's 1-50 Angstrom band.
  const auto grid = apec::EnergyGrid::wavelength(1.0, 50.0, bins);

  // 3. The serial APEC path: adaptive QAGS for every bin integral.
  apec::CalcOptions serial_opt;
  serial_opt.integration.adaptive = true;
  const apec::SpectrumCalculator serial_calc(db, grid, serial_opt);
  const apec::GridPoint point{kT, 1.0, 0.0, 0};
  const apec::Spectrum serial = serial_calc.calculate(point);
  std::printf("serial spectrum: total emissivity %.4e, peak bin %.4e\n",
              serial.total(), serial.peak());

  // 4. The hybrid driver: ranks prepare per-ion tasks and the shared-memory
  //    scheduler (Algorithm 1) dispatches them to virtual GPUs running the
  //    Simpson-64 kernel (Algorithm 2), with QAGS as the CPU fallback.
  apec::CalcOptions hybrid_opt;
  hybrid_opt.integration.adaptive = false;
  const apec::SpectrumCalculator hybrid_calc(db, grid, hybrid_opt);
  core::HybridConfig cfg;
  cfg.ranks = ranks;
  cfg.devices = gpus;
  cfg.max_queue_length = 10;
  core::HybridDriver driver(hybrid_calc, cfg);
  const core::HybridResult result = driver.run({point});

  std::printf("hybrid run: %zu tasks, %.1f%% on GPU (%lld GPU / %lld CPU)\n",
              result.tasks_total, 100.0 * result.scheduling.gpu_task_ratio(),
              static_cast<long long>(result.scheduling.gpu_allocations),
              static_cast<long long>(result.scheduling.cpu_fallbacks));
  for (std::size_t d = 0; d < result.device_stats.size(); ++d)
    std::printf("  vGPU %zu: %llu kernels, %.3f ms busy (virtual)\n", d,
                static_cast<unsigned long long>(
                    result.device_stats[d].kernels_launched),
                1e3 * (result.device_stats[d].kernel_time_s +
                       result.device_stats[d].transfer_time_s));

  // 5. Accuracy: the Fig. 7/8 comparison in two lines.
  double worst = 0.0;
  for (std::size_t b = 0; b < grid.bin_count(); ++b) {
    if (serial[b] < 1e-9 * serial.peak()) continue;
    worst = std::max(worst,
                     std::fabs(result.spectra[0][b] - serial[b]) / serial[b]);
  }
  std::printf("worst relative difference vs serial: %.3e "
              "(paper Fig. 8: <= 3.3e-5)\n",
              worst);
  serial.write_csv("quickstart_spectrum.csv", "serial");
  std::printf("wrote quickstart_spectrum.csv\n");
  return 0;
}
