// spectral_fit — the paper's motivating workflow end to end: "fit the
// observed spectrum with the spectrum calculated from theoretical models".
// A synthetic observation is generated at a hidden temperature, then an
// XSPEC-style one-temperature chi-squared fit runs with the hybrid CPU/GPU
// driver evaluating every trial model — the repeated spectral calculations
// the paper's framework accelerates.
//
//   $ ./spectral_fit [--true-kt 0.7] [--noise 0.03] [--gpus 2] [--seed 11]

#include <cstdio>

#include "apec/calculator.h"
#include "apec/fitting.h"
#include "core/hybrid.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hspec;
  const util::Cli cli(argc, argv);
  const double true_kt = cli.get_double("true-kt", 0.7);
  const double noise = cli.get_double("noise", 0.03);
  const int gpus = static_cast<int>(cli.get_int("gpus", 2));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));

  atomic::DatabaseConfig db_cfg;
  db_cfg.max_z = 14;
  db_cfg.levels = {3, true};
  const atomic::AtomicDatabase db(db_cfg);
  const auto grid = apec::EnergyGrid::wavelength(2.0, 40.0, 96);
  apec::CalcOptions opt;
  opt.integration.adaptive = false;
  const apec::SpectrumCalculator calc(db, grid, opt);

  // The "telescope": observe a plasma at the hidden temperature.
  const apec::Spectrum truth = calc.calculate({true_kt, 1.0, 0.0, 0});
  const apec::ObservedSpectrum observed =
      apec::make_observation(truth, 3.0, noise, seed);
  std::printf("synthetic observation: %zu bins, true kT = %.3f keV, "
              "normalization 3.0, %.0f%% noise\n",
              observed.counts.size(), true_kt, 100.0 * noise);

  // The "fitting engine": every model evaluation runs the hybrid pipeline.
  core::HybridConfig hybrid_cfg;
  hybrid_cfg.ranks = 4;
  hybrid_cfg.devices = gpus;
  std::size_t pipeline_runs = 0;
  auto model = [&](double kT) {
    ++pipeline_runs;
    core::HybridDriver driver(calc, hybrid_cfg);
    return driver.run({{kT, 1.0, 0.0, 0}}).spectra.at(0);
  };

  apec::FitOptions fit_opt;
  fit_opt.kt_min_keV = 0.1;
  fit_opt.kt_max_keV = 5.0;
  const apec::FitResult fit =
      apec::fit_temperature(observed, model, fit_opt);

  util::Table t({"quantity", "true", "fitted"});
  t.add_row({"kT (keV)", util::Table::num(true_kt, 4),
             util::Table::num(fit.kT_keV, 4)});
  t.add_row({"normalization", "3.0", util::Table::num(fit.normalization, 4)});
  t.add_row({"reduced chi^2", "~1", util::Table::num(fit.reduced_chi2, 3)});
  std::fputs(t.str().c_str(), stdout);
  std::printf("\nhybrid pipeline invocations: %zu (each one is a full "
              "spectral calculation)\nconverged: %s\n",
              pipeline_runs, fit.converged ? "yes" : "no");
  return 0;
}
