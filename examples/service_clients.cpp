// service_clients — the always-on service under the paper's "many users"
// deployment shape (DESIGN.md §13): one long-lived SpectralService inside
// the process, minimpi ranks acting as independent clients that submit
// overlapping spectrum requests and read back per-request telemetry.
//
// Each rank walks its own slice of a temperature ladder plus a shared
// "popular" point, so the run shows all three service behaviours at once:
// cold misses coalescing into shared executor batches, cross-request
// deduplication of the popular point, and warm cache hits on the second
// sweep.
//
//   $ ./service_clients [--clients 4] [--sweeps 2] [--gpus 2]

#include <cstdio>
#include <vector>

#include "apec/calculator.h"
#include "minimpi/minimpi.h"
#include "service/service.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hspec;
  const util::Cli cli(argc, argv);
  const int clients = static_cast<int>(cli.get_int("clients", 4));
  const int sweeps = static_cast<int>(cli.get_int("sweeps", 2));
  const int gpus = static_cast<int>(cli.get_int("gpus", 2));

  atomic::DatabaseConfig db_cfg;
  db_cfg.max_z = 8;
  db_cfg.levels = {2, true};
  const atomic::AtomicDatabase db(db_cfg);
  const auto grid = apec::EnergyGrid::wavelength(5.0, 40.0, 64);
  apec::CalcOptions opt;
  opt.integration.adaptive = false;
  const apec::SpectrumCalculator calc(db, grid, opt);

  service::ServiceConfig cfg;
  cfg.hybrid.ranks = 4;
  cfg.hybrid.devices = gpus;
  cfg.hybrid.max_queue_length = 32;
  cfg.cache.capacity = 256;
  service::SpectralService svc(calc, cfg);
  std::printf("service up: %d virtual GPUs, cache capacity %zu\n",
              svc.device_count(), cfg.cache.capacity);

  // One row per (client, sweep): what the rank asked for and what the
  // service told it about its own request.
  struct RowData {
    int client, sweep;
    service::ServiceStats stats;
    double total;
  };
  std::vector<RowData> rows(static_cast<std::size_t>(clients * sweeps));

  minimpi::run(clients, [&](minimpi::Communicator& comm) {
    const int rank = comm.rank();
    for (int sweep = 0; sweep < sweeps; ++sweep) {
      // Two private temperatures plus the shared popular point at 1 keV.
      std::vector<apec::GridPoint> pts(3);
      pts[0].kT_keV = 0.3 + 0.2 * rank;
      pts[1].kT_keV = 0.4 + 0.2 * rank;
      pts[2].kT_keV = 1.0;
      for (std::size_t i = 0; i < pts.size(); ++i) pts[i].index = i;

      const service::ServiceReply reply = svc.submit(std::move(pts)).wait();
      double total = 0.0;
      for (const auto& spectrum : reply.spectra) total += spectrum.total();
      rows[static_cast<std::size_t>(rank * sweeps + sweep)] =
          {rank, sweep, reply.stats, total};
      // Ranks sweep in lock-step so sweep 1 runs against a warm cache.
      comm.barrier();
    }
  });

  util::Table t({"client", "sweep", "hits", "misses", "batch pts",
                 "batch reqs", "queue wait (ms)", "total emissivity"});
  for (const RowData& r : rows)
    t.add_row({util::Table::num(r.client, 0), util::Table::num(r.sweep, 0),
               util::Table::num(static_cast<double>(r.stats.cache_hits), 0),
               util::Table::num(static_cast<double>(r.stats.cache_misses), 0),
               util::Table::num(static_cast<double>(r.stats.batch_points), 0),
               util::Table::num(static_cast<double>(r.stats.batch_requests), 0),
               util::Table::num(1e3 * r.stats.queue_wait_s, 3),
               util::Table::num(r.total, 4)});
  std::fputs(t.str().c_str(), stdout);

  const auto tel = svc.telemetry();
  const auto cache = svc.cache_stats();
  std::printf(
      "\nservice telemetry: %llu requests, %llu batches (%llu coalesced), "
      "deepest batch %llu points from %llu requests\n",
      static_cast<unsigned long long>(tel.requests_completed),
      static_cast<unsigned long long>(tel.batches),
      static_cast<unsigned long long>(tel.coalesced_batches),
      static_cast<unsigned long long>(tel.max_batch_points),
      static_cast<unsigned long long>(tel.max_batch_requests));
  std::printf(
      "grid cache: %llu hits / %llu misses, %zu entries, %llu evictions\n",
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses), cache.entries,
      static_cast<unsigned long long>(cache.evictions));
  return 0;
}
