// hybrid_playground — interactive exploration of the scheduler design
// space on the calibrated discrete-event simulator: GPU count, maximum
// queue length, task granularity, Romberg complexity, and the autotuner.
//
//   $ ./hybrid_playground --gpus 2 --qlen 8
//   $ ./hybrid_playground --sweep-qlen --gpus 1
//   $ ./hybrid_playground --autotune --gpus 3
//   $ ./hybrid_playground --romberg-k 11 --granularity level

#include <cstdio>
#include <string>

#include "core/autotune.h"
#include "perfmodel/calibration.h"
#include "sim/hybrid_sim.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace hspec;

sim::HybridSimConfig build_config(const perfmodel::SpectralCostModel& model,
                                  int gpus, int qlen,
                                  core::TaskGranularity gran) {
  sim::HybridSimConfig cfg;
  cfg.ranks = 24;
  cfg.devices = gpus;
  cfg.max_queue_length = qlen;
  const std::uint64_t ion_tasks = 24ull * model.workload().ions_per_point;
  if (gran == core::TaskGranularity::ion) {
    cfg.total_tasks = ion_tasks;
    cfg.prep_s = model.ion_prep_s();
    cfg.cpu_task_s = model.ion_cpu_s();
    cfg.gpu_task_s = model.ion_gpu_s();
  } else {
    cfg.total_tasks = ion_tasks * model.workload().avg_levels_per_ion;
    cfg.prep_s = model.level_prep_s();
    cfg.cpu_task_s = model.level_cpu_s();
    cfg.gpu_task_s = model.level_gpu_s();
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int gpus = static_cast<int>(cli.get_int("gpus", 2));
  const int qlen = static_cast<int>(cli.get_int("qlen", 10));
  const auto gran = cli.get("granularity", "ion") == "level"
                        ? core::TaskGranularity::level
                        : core::TaskGranularity::ion;

  auto workload = perfmodel::paper_workload();
  if (cli.has("romberg-k")) {
    workload.method = quad::KernelMethod::romberg;
    workload.method_param =
        static_cast<std::size_t>(cli.get_int("romberg-k", 7));
  }
  const perfmodel::SpectralCostModel model({}, workload);
  const double serial_s = 24.0 * model.serial_point_s();

  if (cli.get_bool("autotune")) {
    auto measure = [&](int q) {
      return sim::simulate_hybrid(build_config(model, gpus, q, gran))
          .makespan_s;
    };
    const auto tuned = core::autotune_max_queue_length(measure);
    util::Table t({"probed qlen", "time (s)"});
    for (const auto& probe : tuned.probes)
      t.add_row({std::to_string(probe.max_queue_length),
                 util::Table::num(probe.time_s, 4)});
    std::fputs(t.str().c_str(), stdout);
    std::printf("autotuned maximum queue length: %d (%.1f s)\n",
                tuned.best_max_queue_length, tuned.best_time_s);
    return 0;
  }

  if (cli.get_bool("sweep-qlen")) {
    util::Table t({"qlen", "time (s)", "speedup", "GPU ratio"});
    for (int q = 2; q <= 16; q += 2) {
      const auto res =
          sim::simulate_hybrid(build_config(model, gpus, q, gran));
      t.add_row({std::to_string(q), util::Table::num(res.makespan_s, 4),
                 util::Table::num(serial_s / res.makespan_s, 4),
                 util::Table::pct(res.gpu_task_ratio())});
    }
    std::fputs(t.str().c_str(), stdout);
    return 0;
  }

  const auto res =
      sim::simulate_hybrid(build_config(model, gpus, qlen, gran));
  std::printf("configuration: %d GPUs, qlen %d, %s granularity\n", gpus, qlen,
              core::to_string(gran).c_str());
  std::printf("  makespan        : %.1f s (virtual)\n", res.makespan_s);
  std::printf("  speedup vs serial: %.1fx\n", serial_s / res.makespan_s);
  std::printf("  GPU task ratio  : %.2f%%\n", 100.0 * res.gpu_task_ratio());
  for (std::size_t d = 0; d < res.device_busy_s.size(); ++d)
    std::printf("  device %zu busy  : %.1f s (%.1f%% of makespan), history "
                "%lld\n",
                d, res.device_busy_s[d],
                100.0 * res.device_busy_s[d] / res.makespan_s,
                static_cast<long long>(res.history[d]));
  return 0;
}
