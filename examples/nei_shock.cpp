// nei_shock — the §IV-D scenario: a plasma equilibrated at a low
// temperature is shock-heated and its ionization state lags the new
// equilibrium (non-equilibrium ionization). Ten timesteps are packed per
// task and evolved on a virtual GPU, exactly like the paper's NEI solver.
//
//   $ ./nei_shock [--kt0 0.08] [--kt1 2.0] [--ne 1.0] [--steps 60]

#include <cstdio>

#include "atomic/element.h"
#include "atomic/ion_balance.h"
#include "nei/evolve.h"
#include "util/cli.h"
#include "util/table.h"
#include "vgpu/device.h"

int main(int argc, char** argv) {
  using namespace hspec;
  const util::Cli cli(argc, argv);
  const double kT0 = cli.get_double("kt0", 0.08);
  const double kT1 = cli.get_double("kt1", 2.0);
  const double ne = cli.get_double("ne", 1.0);
  const auto steps = static_cast<std::size_t>(cli.get_int("steps", 60));

  std::printf("shock scenario: CIE at %.3g keV, heated instantly to %.3g keV "
              "(ne = %.3g cm^-3)\n\n",
              kT0, kT1, ne);

  nei::PlasmaHistory shock;
  shock.ne_cm3 = util::PerCm3{ne};
  shock.kT_keV = [kT1](double) { return kT1; };

  auto state = nei::PointState::equilibrium(nei::default_element_set(),
                                            util::KeV{kT0});
  std::printf("evolving %zu element chains (the paper's 'about a dozen of "
              "ODE groups')\n",
              state.elements.size());

  vgpu::Device device(vgpu::tesla_c2075(), 0);
  const double dt = 1e7 / ne;  // constant n_e * dt per step (partial relaxation per window)

  // Track oxygen through the relaxation.
  const std::size_t o_idx = 4;  // O is the 5th entry of the default set
  util::Table t({"step", "O mean charge", "O+6", "O+7", "O+8"});
  auto mean_charge = [](const std::vector<double>& f) {
    double m = 0.0;
    for (std::size_t j = 0; j < f.size(); ++j)
      m += static_cast<double>(j) * f[j];
    return m;
  };
  nei::EvolveReport total;
  for (std::size_t done = 0; done < steps; done += 10) {
    const auto rep = nei::evolve_point_gpu(
        state, shock, static_cast<double>(done) * dt, dt, 10, device);
    total.tasks += rep.tasks;
    total.solver_steps += rep.solver_steps;
    const auto& o = state.ions[o_idx];
    t.add_row({std::to_string(done + 10),
               util::Table::num(mean_charge(o), 4),
               util::Table::num(o[6], 3), util::Table::num(o[7], 3),
               util::Table::num(o[8], 3)});
  }
  std::fputs(t.str().c_str(), stdout);

  const auto cie_hot = atomic::cie_fractions(8, util::KeV{kT1});
  std::printf("\nCIE target at %.3g keV: O mean charge %.4f\n", kT1,
              mean_charge(cie_hot));
  std::printf("conservation error: %.2e\n", state.conservation_error());
  std::printf("GPU tasks: %zu (10 timesteps packed per task), "
              "solver steps: %zu\n",
              total.tasks, total.solver_steps);
  const auto st = device.stats();
  std::printf("device transfers: %llu H2D + %llu D2H (one each per task)\n",
              static_cast<unsigned long long>(st.h2d_copies),
              static_cast<unsigned long long>(st.d2h_copies));
  return 0;
}
