#include "atomic/element.h"

#include <cmath>
#include <stdexcept>

namespace hspec::atomic {

const std::array<Element, kMaxZ>& element_table() noexcept {
  // Anders & Grevesse (1989)-style photospheric abundances.
  static const std::array<Element, kMaxZ> table = {{
      {1, "H", 1.008, 12.00},   {2, "He", 4.003, 10.99},
      {3, "Li", 6.941, 1.16},   {4, "Be", 9.012, 1.15},
      {5, "B", 10.811, 2.60},   {6, "C", 12.011, 8.56},
      {7, "N", 14.007, 8.05},   {8, "O", 15.999, 8.93},
      {9, "F", 18.998, 4.56},   {10, "Ne", 20.180, 8.09},
      {11, "Na", 22.990, 6.33}, {12, "Mg", 24.305, 7.58},
      {13, "Al", 26.982, 6.47}, {14, "Si", 28.086, 7.55},
      {15, "P", 30.974, 5.45},  {16, "S", 32.065, 7.21},
      {17, "Cl", 35.453, 5.50}, {18, "Ar", 39.948, 6.56},
      {19, "K", 39.098, 5.12},  {20, "Ca", 40.078, 6.36},
      {21, "Sc", 44.956, 3.10}, {22, "Ti", 47.867, 4.99},
      {23, "V", 50.942, 4.00},  {24, "Cr", 51.996, 5.67},
      {25, "Mn", 54.938, 5.39}, {26, "Fe", 55.845, 7.67},
      {27, "Co", 58.933, 4.92}, {28, "Ni", 58.693, 6.25},
      {29, "Cu", 63.546, 4.21}, {30, "Zn", 65.380, 4.60},
  }};
  return table;
}

const Element& element(int z) {
  if (z < 1 || z > kMaxZ)
    throw std::out_of_range("element: Z must be in [1, 30]");
  return element_table()[static_cast<std::size_t>(z - 1)];
}

double abundance_rel_h(int z) {
  return std::pow(10.0, element(z).log_abundance - 12.0);
}

}  // namespace hspec::atomic
