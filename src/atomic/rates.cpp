#include "atomic/rates.h"

#include <cmath>
#include <stdexcept>

#include "atomic/constants.h"
#include "atomic/element.h"

namespace hspec::atomic {

namespace {

/// Principal quantum number of the valence shell of an ion with `electrons`
/// bound electrons (aufbau shell capacities 2n^2).
int valence_shell(int electrons) {
  int n = 1;
  int capacity = 0;
  while (true) {
    capacity += 2 * n * n;
    if (electrons <= capacity) return n;
    ++n;
  }
}

void check_element(int z) {
  if (z < 1 || z > kMaxZ) throw std::out_of_range("rates: Z must be in [1,30]");
}

}  // namespace

util::KeV ionization_potential_keV(int z, int j) {
  check_element(z);
  if (j < 0 || j >= z)
    throw std::out_of_range("ionization_potential: need 0 <= j < Z");
  const int electrons = z - j;
  const int n = valence_shell(electrons);
  // Slater-like screening: inner electrons shield the nucleus.
  const double zeff = static_cast<double>(j) + 1.0 +
                      0.35 * static_cast<double>(std::max(0, electrons - 1)) /
                          static_cast<double>(n);
  return util::KeV{kRydbergKeV * zeff * zeff /
                   (static_cast<double>(n) * static_cast<double>(n))};
}

util::Cm3PerS ionization_rate(int z, int j, util::KeV kT) {
  check_element(z);
  if (j < 0 || j >= z) throw std::out_of_range("ionization_rate: need 0 <= j < Z");
  if (kT.value() <= 0.0) return util::Cm3PerS{0.0};
  const util::KeV ip = ionization_potential_keV(z, j);
  const double u = ip / kT;  // dimensionless by construction
  // Voronov (1997)-style fit with generic shape parameters.
  const double a = 2.5e-8;  // cm^3/s at I = 1 keV scale
  return util::Cm3PerS{a / std::sqrt(ip.value()) * std::pow(u, 0.25) *
                       std::exp(-u) / (1.0 + 0.2 * u)};
}

util::Cm3PerS recombination_rate(int z, int j, util::KeV kT) {
  check_element(z);
  if (j < 1 || j > z) throw std::out_of_range("recombination_rate: need 1 <= j <= Z");
  if (kT.value() <= 0.0) return util::Cm3PerS{0.0};
  const double kt = kT.value();
  const double zz = static_cast<double>(j);
  // Radiative: alpha_rr = A z^2 (kT / 1 keV)^-0.7.
  const double alpha_rr = 2.6e-13 * zz * zz * std::pow(kt, -0.7);
  // Dielectronic: resonant bump near kT ~ I/4 of the recombined ion.
  const util::KeV ip = ionization_potential_keV(z, j - 1);
  const double e_dr = 0.25 * ip.value();
  const double alpha_dr =
      1.0e-11 * zz * std::pow(kt, -1.5) * std::exp(-e_dr / kt);
  return util::Cm3PerS{alpha_rr + alpha_dr};
}

}  // namespace hspec::atomic
