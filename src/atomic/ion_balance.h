#pragma once
// Collisional ionization equilibrium (CIE) ion fractions.
// In equilibrium the ionization/recombination chain of Eq. (4) balances
// link by link:  n_{j+1} / n_j = S_j(T) / alpha_{j+1}(T), which fixes all
// Z+1 charge-state fractions up to normalization. APEC evaluates emission
// for "a hot, optically-thin plasma in collisional ionization equilibrium".

#include <vector>

#include "util/units.h"

namespace hspec::atomic {

/// Fractions f_j, j = 0..Z (sum = 1) of element Z at temperature kT.
/// Computed in log space to survive 30-stage chains at extreme temperatures.
std::vector<double> cie_fractions(int z, util::KeV kT);

/// Convenience: fraction of the single charge state j.
double cie_fraction(int z, int j, util::KeV kT);

}  // namespace hspec::atomic
