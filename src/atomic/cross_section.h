#pragma once
// Recombination cross sections under the Kramers / Milne hydrogenic model.
//
// Kramers photoionization from level n of a hydrogenic ion with effective
// charge z:   sigma_ph(E) = sigma0 * (n / z^2) * (I_n / E)^3   for E >= I_n.
// The Milne relation converts it to the radiative-recombination cross
// section at electron energy Ee (photon energy Eg = Ee + I_n):
//   sigma_rec(Ee) = (g_n / (2 g_+)) * Eg^2 / (me c^2 * Ee) * sigma_ph(Eg).
// This is sigma_n^rec(Eg - I_{Z,j,n}) in Eq. (1) of the paper.
//
// Energies are util::KeV and cross sections util::Cm2: swapping the binding
// and photon energies — the classic silent Milne-relation bug — still
// compiles (same dimension), but passing a density or a raw double does not.

#include "util/units.h"

namespace hspec::atomic {

/// Kramers photoionization cross section for photon energy `photon`
/// from level n of an ion with recombining charge `charge`.
/// Zero below threshold.
util::Cm2 kramers_photoionization_cm2(int charge, int n, util::KeV binding,
                                      util::KeV photon);

/// Radiative recombination cross section at electron kinetic energy
/// `electron` (> 0) onto level n with the given binding energy.
/// `stat_weight_ratio` is g_n / (2 g_+), default 1.
util::Cm2 recombination_cross_section_cm2(int charge, int n, util::KeV binding,
                                          util::KeV electron,
                                          double stat_weight_ratio = 1.0);

}  // namespace hspec::atomic
