#pragma once
// Physical constants in the unit system used throughout the library:
// energies in keV, lengths in cm, times in s, densities in cm^-3.
// Unit-conversion constants live in util/units.h (the dimensional-
// correctness layer); the legacy names here alias them.

#include "util/units.h"

namespace hspec::atomic {

/// Boltzmann constant [keV / K].
inline constexpr double kBoltzmannKeV = util::kBoltzmannKeVPerKelvin;

/// Electron rest mass energy m_e c^2 [keV].
inline constexpr double kElectronRestKeV = 510.99895;

/// Electron mass [g].
inline constexpr double kElectronMassG = 9.1093837015e-28;

/// Speed of light [cm/s].
inline constexpr double kSpeedOfLight = 2.99792458e10;

/// Rydberg energy (hydrogen ionization potential) [keV].
inline constexpr double kRydbergKeV = 13.605693122994e-3;

/// Thomson cross section [cm^2].
inline constexpr double kThomsonCm2 = 6.6524587321e-25;

/// Kramers photoionization cross-section scale at threshold for hydrogen
/// ground state [cm^2] (7.91e-18 cm^2).
inline constexpr double kKramersSigma0 = 7.91e-18;

/// hc [keV * Angstrom]: E[keV] = kHCKeVAngstrom / lambda[Angstrom].
inline constexpr double kHCKeVAngstrom = util::kHCKeVPerAngstrom;

/// Planck constant [keV * s].
inline constexpr double kPlanckKeVs = 4.135667696e-18;

}  // namespace hspec::atomic
