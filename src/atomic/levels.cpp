#include "atomic/levels.h"

#include <stdexcept>

#include "atomic/constants.h"

namespace hspec::atomic {

double binding_energy_keV(int recombining_charge, int n, int l) {
  if (recombining_charge < 1)
    throw std::invalid_argument("binding_energy: recombining charge must be >= 1");
  if (n < 1 || l < 0 || l >= n)
    throw std::invalid_argument("binding_energy: need n >= 1 and 0 <= l < n");
  const double zeff = static_cast<double>(recombining_charge);
  // Quantum defect lowers the effective principal quantum number, binding
  // low-l electrons deeper; it weakens for highly charged (hydrogen-like)
  // ions where the core screening vanishes.
  const double defect = 0.1 / static_cast<double>(l + 1);
  const double n_eff =
      static_cast<double>(n) - defect * (zeff > 1.0 ? 1.0 / zeff : 1.0);
  return kRydbergKeV * zeff * zeff / (n_eff * n_eff);
}

std::vector<Level> make_levels(int recombining_charge, const LevelPolicy& policy) {
  if (policy.max_n < 1)
    throw std::invalid_argument("make_levels: max_n must be >= 1");
  std::vector<Level> levels;
  levels.reserve(level_count(policy));
  for (int n = 1; n <= policy.max_n; ++n) {
    const int lmax = policy.sublevels ? n - 1 : 0;
    for (int l = 0; l <= lmax; ++l) {
      Level lv;
      lv.n = n;
      lv.l = l;
      lv.binding_keV = binding_energy_keV(recombining_charge, n, l);
      lv.stat_weight = 2.0 * (2.0 * l + 1.0);
      levels.push_back(lv);
    }
  }
  return levels;
}

std::size_t level_count(const LevelPolicy& policy) noexcept {
  const auto n = static_cast<std::size_t>(policy.max_n);
  return policy.sublevels ? n * (n + 1) / 2 : n;
}

}  // namespace hspec::atomic
