#include "atomic/cross_section.h"

#include <cmath>
#include <stdexcept>

#include "atomic/constants.h"

namespace hspec::atomic {

util::Cm2 kramers_photoionization_cm2(int charge, int n, util::KeV binding,
                                      util::KeV photon) {
  if (charge < 1 || n < 1)
    throw std::invalid_argument("kramers: charge and n must be >= 1");
  if (binding.value() <= 0.0)
    throw std::invalid_argument("kramers: binding energy must be positive");
  if (photon < binding) return util::Cm2{0.0};
  const double z2 = static_cast<double>(charge) * static_cast<double>(charge);
  const double ratio = binding / photon;  // dimensionless
  return util::Cm2{kKramersSigma0 * (static_cast<double>(n) / z2) * ratio *
                   ratio * ratio};
}

util::Cm2 recombination_cross_section_cm2(int charge, int n, util::KeV binding,
                                          util::KeV electron,
                                          double stat_weight_ratio) {
  if (electron.value() <= 0.0) return util::Cm2{0.0};
  const util::KeV photon = electron + binding;
  const util::Cm2 sigma_ph =
      kramers_photoionization_cm2(charge, n, binding, photon);
  const double milne = stat_weight_ratio * photon.value() * photon.value() /
                       (kElectronRestKeV * electron.value());
  return milne * sigma_ph;
}

}  // namespace hspec::atomic
