#include "atomic/cross_section.h"

#include <cmath>
#include <stdexcept>

#include "atomic/constants.h"

namespace hspec::atomic {

double kramers_photoionization_cm2(int charge, int n, double binding_keV,
                                   double photon_keV) {
  if (charge < 1 || n < 1)
    throw std::invalid_argument("kramers: charge and n must be >= 1");
  if (binding_keV <= 0.0)
    throw std::invalid_argument("kramers: binding energy must be positive");
  if (photon_keV < binding_keV) return 0.0;
  const double z2 = static_cast<double>(charge) * static_cast<double>(charge);
  const double ratio = binding_keV / photon_keV;
  return kKramersSigma0 * (static_cast<double>(n) / z2) * ratio * ratio * ratio;
}

double recombination_cross_section_cm2(int charge, int n, double binding_keV,
                                       double electron_keV,
                                       double stat_weight_ratio) {
  if (electron_keV <= 0.0) return 0.0;
  const double photon_keV = electron_keV + binding_keV;
  const double sigma_ph =
      kramers_photoionization_cm2(charge, n, binding_keV, photon_keV);
  const double milne = stat_weight_ratio * photon_keV * photon_keV /
                       (kElectronRestKeV * electron_keV);
  return milne * sigma_ph;
}

}  // namespace hspec::atomic
