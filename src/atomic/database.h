#pragma once
// The synthetic atomic database: the unit of work enumeration for the whole
// library. One *ion unit* is the paper's coarse-grained task scope —
// "every grid point contains 496 ions ... it is natural that both the energy
// level and the ion can be used to define the task scope."
//
// Unit accounting (Z = 1..30):
//   * 30 neutral stages + 465 charged stages = 495 bound-electron units;
//   * 1 free-free (bremsstrahlung) pseudo-unit for the thermal continuum;
//   * total = 496 schedulable units per grid point, matching the paper.
// RRC emission comes from the 465 charged stages (a recombining ion must
// carry charge >= 1); neutral units contribute no RRC and the free-free
// unit is handled by the apec continuum module.

#include <cstddef>
#include <string>
#include <vector>

#include "atomic/element.h"
#include "atomic/levels.h"

namespace hspec::atomic {

/// One schedulable ion unit.
struct IonUnit {
  int z = 0;       ///< element atomic number; 0 marks the free-free unit
  int charge = 0;  ///< recombining charge state (0 = neutral, no RRC)

  bool is_free_free() const noexcept { return z == 0; }
  bool emits_rrc() const noexcept { return z > 0 && charge >= 1; }
  std::string name() const;
};

struct DatabaseConfig {
  int max_z = kMaxZ;      ///< include elements 1..max_z
  LevelPolicy levels{};   ///< level generation policy per ion
  bool include_free_free = true;
};

/// Immutable atomic database built deterministically from its config.
class AtomicDatabase {
 public:
  explicit AtomicDatabase(DatabaseConfig config = {});

  const DatabaseConfig& config() const noexcept { return config_; }

  /// All schedulable units (496 with the default config).
  const std::vector<IonUnit>& ions() const noexcept { return ions_; }
  std::size_t ion_count() const noexcept { return ions_.size(); }

  /// Only the units that emit RRC (465 with the default config).
  std::vector<IonUnit> rrc_ions() const;

  /// Levels available for recombination onto the given unit.
  /// Free-free and neutral units have no levels.
  std::vector<Level> levels_for(const IonUnit& ion) const;

  /// Level count without materializing the list.
  std::size_t level_count_for(const IonUnit& ion) const noexcept;

 private:
  DatabaseConfig config_;
  std::vector<IonUnit> ions_;
};

}  // namespace hspec::atomic
