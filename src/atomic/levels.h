#pragma once
// Energy levels of recombined ions under a screened-hydrogenic model.
//
// When ion (Z, j+1) (charge j+1) captures an electron into level n of ion
// (Z, j), the electron binds with I_{Z,j,n} = Ry * (j+1)^2 / n^2 in the pure
// hydrogenic picture; we add an l-dependent quantum-defect correction to
// split sublevels so that an ion exposes "thousands of levels" the way the
// paper describes AtomDB level lists.

#include <cstddef>
#include <vector>

namespace hspec::atomic {

/// Identifies a recombination target level of ion (Z, j): the recombining
/// ion is (Z, j+1) and the captured electron lands in (n, l).
struct Level {
  int n = 1;                 ///< principal quantum number
  int l = 0;                 ///< orbital quantum number, 0 <= l < n
  double binding_keV = 0.0;  ///< I_{Z,j,n} [keV]
  double stat_weight = 2.0;  ///< statistical weight g = 2(2l+1)
};

/// Binding energy I_{Z,j,n,l} [keV] for recombination onto ion of charge j
/// (recombining charge j+1 >= 1). Monotone decreasing in n; the quantum
/// defect mu(l) = 0.1 / (l + 1) keeps sublevels distinct and physically
/// ordered (low l binds deeper).
double binding_energy_keV(int recombining_charge, int n, int l = 0);

struct LevelPolicy {
  int max_n = 10;         ///< highest principal quantum number generated
  bool sublevels = true;  ///< generate (n, l) pairs; otherwise one level per n
};

/// Generate the level list for recombination onto charge-j ion.
/// With sublevels, the count is max_n (max_n + 1) / 2 levels.
std::vector<Level> make_levels(int recombining_charge, const LevelPolicy& policy);

/// Number of levels make_levels would produce (no allocation).
std::size_t level_count(const LevelPolicy& policy) noexcept;

}  // namespace hspec::atomic
