#include "atomic/database.h"

#include <stdexcept>

namespace hspec::atomic {

std::string IonUnit::name() const {
  if (is_free_free()) return "free-free";
  std::string s(element(z).symbol);
  s += '+';
  s += std::to_string(charge);
  return s;
}

AtomicDatabase::AtomicDatabase(DatabaseConfig config) : config_(config) {
  if (config_.max_z < 1 || config_.max_z > kMaxZ)
    throw std::invalid_argument("AtomicDatabase: max_z must be in [1, 30]");
  for (int z = 1; z <= config_.max_z; ++z)
    for (int charge = 0; charge <= z; ++charge)
      ions_.push_back({z, charge});
  if (config_.include_free_free) ions_.push_back({0, 0});
}

std::vector<IonUnit> AtomicDatabase::rrc_ions() const {
  std::vector<IonUnit> out;
  out.reserve(ions_.size());
  for (const IonUnit& ion : ions_)
    if (ion.emits_rrc()) out.push_back(ion);
  return out;
}

std::vector<Level> AtomicDatabase::levels_for(const IonUnit& ion) const {
  if (!ion.emits_rrc()) return {};
  return make_levels(ion.charge, config_.levels);
}

std::size_t AtomicDatabase::level_count_for(const IonUnit& ion) const noexcept {
  if (!ion.emits_rrc()) return 0;
  return level_count(config_.levels);
}

}  // namespace hspec::atomic
