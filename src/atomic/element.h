#pragma once
// Chemical elements Z = 1..30 with solar abundances.
//
// SUBSTITUTION NOTE (see DESIGN.md §2): the original APEC reads AtomDB; we
// carry a compiled-in Anders & Grevesse (1989)-style solar abundance table
// and treat every element H..Zn, which is the same element coverage AtomDB
// provides and yields the paper's ~496 per-grid-point task units.

#include <array>
#include <cstddef>
#include <string_view>

namespace hspec::atomic {

inline constexpr int kMaxZ = 30;

struct Element {
  int z = 0;                  ///< atomic number
  std::string_view symbol;    ///< chemical symbol
  double atomic_weight = 0.0; ///< [amu]
  double log_abundance = 0.0; ///< log10 abundance, H = 12 scale
};

/// Table of elements Z = 1..30 (H..Zn). Indexable by Z via element(z).
const std::array<Element, kMaxZ>& element_table() noexcept;

/// Element with atomic number z (1-based). Throws std::out_of_range.
const Element& element(int z);

/// Number abundance relative to hydrogen: 10^(log_abundance - 12).
double abundance_rel_h(int z);

}  // namespace hspec::atomic
