#pragma once
// Collisional ionization and recombination rate coefficients.
//
// SUBSTITUTION NOTE: the original codes use fitted atomic data; we use
// smooth semi-empirical forms (Voronov-style ionization, power-law radiative
// + resonant dielectronic recombination) built on screened-hydrogenic
// ionization potentials. These produce the correct qualitative behaviour:
// ionization switches on exponentially above kT ~ I, recombination falls as
// a power of T, and the resulting NEI systems (Eq. 4) are stiff. The same
// coefficients define the collisional-ionization-equilibrium (CIE) balance
// used by the spectral calculator, so NEI relaxes to CIE exactly.
//
// Signatures are dimension-checked (util/units.h): temperatures arrive as
// util::KeV, rate coefficients leave as util::Cm3PerS, so a density or a
// time passed where a temperature belongs is a compile error.

#include "util/units.h"

namespace hspec::atomic {

/// Ionization potential of ion (Z, j): the energy to remove the
/// outermost electron of the charge-j ion (screened hydrogenic estimate).
/// Requires 0 <= j < Z.
util::KeV ionization_potential_keV(int z, int j);

/// Collisional ionization rate coefficient S_j(T) [cm^3/s] for
/// (Z, j) -> (Z, j+1). Zero-temperature limit is 0. Requires 0 <= j < Z.
util::Cm3PerS ionization_rate(int z, int j, util::KeV kT);

/// Total (radiative + dielectronic) recombination rate coefficient
/// alpha_j(T) [cm^3/s] for (Z, j) -> (Z, j-1). Requires 1 <= j <= Z.
util::Cm3PerS recombination_rate(int z, int j, util::KeV kT);

}  // namespace hspec::atomic
