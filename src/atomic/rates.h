#pragma once
// Collisional ionization and recombination rate coefficients.
//
// SUBSTITUTION NOTE: the original codes use fitted atomic data; we use
// smooth semi-empirical forms (Voronov-style ionization, power-law radiative
// + resonant dielectronic recombination) built on screened-hydrogenic
// ionization potentials. These produce the correct qualitative behaviour:
// ionization switches on exponentially above kT ~ I, recombination falls as
// a power of T, and the resulting NEI systems (Eq. 4) are stiff. The same
// coefficients define the collisional-ionization-equilibrium (CIE) balance
// used by the spectral calculator, so NEI relaxes to CIE exactly.

namespace hspec::atomic {

/// Ionization potential [keV] of ion (Z, j): the energy to remove the
/// outermost electron of the charge-j ion (screened hydrogenic estimate).
/// Requires 0 <= j < Z.
double ionization_potential_keV(int z, int j);

/// Collisional ionization rate coefficient S_j(T) [cm^3/s] for
/// (Z, j) -> (Z, j+1). Zero-temperature limit is 0. Requires 0 <= j < Z.
double ionization_rate(int z, int j, double kT_keV);

/// Total (radiative + dielectronic) recombination rate coefficient
/// alpha_j(T) [cm^3/s] for (Z, j) -> (Z, j-1). Requires 1 <= j <= Z.
double recombination_rate(int z, int j, double kT_keV);

}  // namespace hspec::atomic
