#include "atomic/ion_balance.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "atomic/rates.h"

namespace hspec::atomic {

std::vector<double> cie_fractions(int z, util::KeV kT) {
  if (kT.value() <= 0.0)
    throw std::invalid_argument("cie_fractions: temperature must be positive");
  // log f_{j+1} - log f_j = log(S_j / alpha_{j+1}).
  std::vector<double> logf(static_cast<std::size_t>(z) + 1, 0.0);
  for (int j = 0; j < z; ++j) {
    const double s = ionization_rate(z, j, kT).value();
    const double alpha = recombination_rate(z, j + 1, kT).value();
    double ratio;
    if (s <= 0.0) {
      ratio = -745.0;  // underflow floor: stage j+1 unpopulated
    } else if (alpha <= 0.0) {
      ratio = 745.0;
    } else {
      ratio = std::log(s) - std::log(alpha);
    }
    logf[static_cast<std::size_t>(j) + 1] =
        logf[static_cast<std::size_t>(j)] + ratio;
  }
  const double peak = *std::max_element(logf.begin(), logf.end());
  std::vector<double> f(logf.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = std::exp(std::max(logf[i] - peak, -745.0));
    sum += f[i];
  }
  for (double& x : f) x /= sum;
  return f;
}

double cie_fraction(int z, int j, util::KeV kT) {
  if (j < 0 || j > z) throw std::out_of_range("cie_fraction: need 0 <= j <= Z");
  return cie_fractions(z, kT)[static_cast<std::size_t>(j)];
}

}  // namespace hspec::atomic
