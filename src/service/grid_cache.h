#pragma once
// Memoized grid cache for the always-on spectral service (DESIGN.md §13).
//
// The "millions of users" workload is dominated by repeated and nearby
// (temperature, density, epoch) grid points — survey fits re-request the
// same coarse grid, interactive fits walk tiny neighbourhoods. This cache
// sits in front of the hybrid executor and memoizes completed spectra:
//
//  * keys are quantized grid coordinates: each axis value maps to a bucket
//    on a relative lattice (resolution `rel_resolution`, default 1e-9 — far
//    below any physical grid spacing), so bit-identical requests always
//    collide and near-identical ones merge;
//  * the shard a key lands on is chosen by its (density, epoch) *family*
//    hash only: every temperature along one family shares a shard, which
//    keeps the near-hit search (below) single-shard and single-lock;
//  * within a shard entries live in an ordered map keyed
//    (ne, time, T) with an intrusive LRU list per shard; eviction is
//    per-shard LRU under capacity pressure;
//  * hit / miss / interpolated / eviction / insert counters are atomics,
//    readable without any shard lock;
//  * optional near-hit interpolation (off by default): an exact-bucket miss
//    whose temperature is bracketed by two cached neighbours of the same
//    family within `interp_max_rel_spacing` returns the bin-wise linear
//    interpolation of the two, flagged `interpolated`. Exact hits return
//    the stored bins by shared_ptr — bitwise identical to the run that
//    produced them, which the service's identity tests pin against a
//    direct HybridAPEC run.
//
// Concurrency: any number of threads may lookup/insert concurrently. A
// shard mutex is held only for map/LRU surgery — never across an executor
// call. The hlint [lock-blocking] pass enforces this through the call
// graph for the whole service layer, and the HSPEC_REQUIRES annotations on
// the locked helpers below let the clang thread-safety build prove the
// same contract.

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "apec/parameter_space.h"
#include "util/thread_annotations.h"

namespace hspec::service {

struct GridCacheConfig {
  /// Total cached spectra across all shards (>= shards; each shard holds
  /// capacity / shards, remainder spread over the low shards).
  std::size_t capacity = 1024;
  std::size_t shards = 8;
  /// Relative lattice resolution for key quantization. Two coordinates
  /// within this relative distance may share a bucket; bit-identical
  /// coordinates always do.
  double rel_resolution = 1e-9;
  /// Near-hit interpolation between same-family temperature neighbours.
  /// Off by default: exact hits only.
  bool interpolate = false;
  /// Maximum bracket width, relative to the requested temperature, a pair
  /// of cached neighbours may span and still serve an interpolated hit.
  /// The interpolation-error bound the tests enforce is a property of this
  /// knob: tighter spacing, tighter bound.
  double interp_max_rel_spacing = 0.25;
};

/// Quantized grid coordinates. Ordered family-major (ne, time, T) so that
/// one family's temperatures are contiguous in a shard's ordered map.
struct GridKey {
  std::int64_t ne_q = 0;
  std::int64_t time_q = 0;
  std::int64_t t_q = 0;

  friend bool operator==(const GridKey&, const GridKey&) = default;
  friend auto operator<=>(const GridKey&, const GridKey&) = default;
};

struct GridCacheStats {
  std::uint64_t hits = 0;          ///< exact-bucket hits
  std::uint64_t misses = 0;        ///< lookups that found nothing usable
  std::uint64_t interpolated = 0;  ///< near-hits served by interpolation
  std::uint64_t evictions = 0;     ///< entries LRU-evicted under pressure
  std::uint64_t inserts = 0;       ///< entries stored (re-inserts included)
  std::size_t entries = 0;         ///< live entries across all shards
};

class GridCache {
 public:
  /// Cached per-bin emissivity values, shared between the cache and every
  /// request it served — immutable once published.
  using Bins = std::shared_ptr<const std::vector<double>>;

  explicit GridCache(GridCacheConfig config);

  struct Lookup {
    Bins bins;                  ///< null => miss
    bool interpolated = false;  ///< served by near-hit interpolation
  };

  /// Find the spectrum for `point`: exact-bucket hit, then (when enabled)
  /// the same-family interpolation fallback, else miss.
  Lookup lookup(const apec::GridPoint& point);

  /// Publish a computed spectrum for `point`. Re-inserting an existing key
  /// refreshes the entry (last writer wins — both writers hold spectra of
  /// the same quantized point). May evict the shard's LRU tail.
  void insert(const apec::GridPoint& point, Bins bins);

  /// Quantized key of a point — exposed so the service can deduplicate
  /// same-bucket misses across coalesced requests before dispatch.
  GridKey key_of(const apec::GridPoint& point) const noexcept;

  GridCacheStats stats() const noexcept;
  const GridCacheConfig& config() const noexcept { return config_; }

 private:
  struct Entry;
  using Map = std::map<GridKey, Entry>;
  struct Entry {
    double kT_keV = 0.0;  ///< unquantized, for interpolation weights
    Bins bins;
    /// Position in the shard's LRU list (front = most recently used).
    std::list<Map::iterator>::iterator lru_pos;
  };
  struct Shard {
    mutable util::Mutex mu;
    Map map HSPEC_GUARDED_BY(mu);
    std::list<Map::iterator> lru HSPEC_GUARDED_BY(mu);
  };

  Shard& shard_of(const GridKey& key) noexcept;
  std::size_t shard_capacity(std::size_t shard_index) const noexcept;

  /// Near-hit search within one family: the map neighbours bracketing
  /// `key`, if cached close enough, yield bin-wise interpolated bins (null
  /// on no usable bracket). Pure map read — caller holds shard.mu.
  Bins interpolate_locked(const Shard& shard, const GridKey& key,
                          double kT_keV) const HSPEC_REQUIRES(shard.mu);

  /// Evict the shard's LRU tail down to `cap` entries; returns the number
  /// evicted. Caller holds shard.mu.
  std::uint64_t evict_overflow_locked(Shard& shard, std::size_t cap)
      HSPEC_REQUIRES(shard.mu);

  GridCacheConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> interpolated_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::size_t> entries_{0};
};

}  // namespace hspec::service
