#include "service/service.h"

#include <algorithm>
#include <map>
#include <utility>

namespace hspec::service {

namespace {

/// Raise an atomic maximum (relaxed: telemetry, not synchronization).
void raise_max(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t seen = target.load(std::memory_order_relaxed);
  while (seen < value && !target.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed,
                             std::memory_order_relaxed)) {
  }
}

void fill_spectrum(apec::Spectrum& spectrum, const std::vector<double>& bins) {
  for (std::size_t b = 0; b < bins.size(); ++b) spectrum[b] = bins[b];
}

}  // namespace

SpectralService::SpectralService(const apec::SpectrumCalculator& calculator,
                                 ServiceConfig config)
    : calc_(&calculator),
      config_(config),
      executor_(calculator, config.hybrid),
      cache_(config.cache) {
  if (config_.max_pending_points < 1)
    throw std::invalid_argument(
        "SpectralService: max_pending_points must be >= 1");
  if (config_.max_batch_points < 1)
    throw std::invalid_argument(
        "SpectralService: max_batch_points must be >= 1");
  if (config_.autostart) start();
}

SpectralService::~SpectralService() { stop(); }

void SpectralService::start() {
  util::MutexLock lock(mu_);
  if (running_ || stop_) return;  // a stopped service stays stopped
  running_ = true;
  worker_ = std::thread([this] { worker_loop(); });
}

void SpectralService::stop() {
  std::thread to_join;
  std::deque<std::unique_ptr<Request>> orphans;
  {
    util::MutexLock lock(mu_);
    stop_ = true;
    if (running_) {
      to_join = std::move(worker_);
      running_ = false;
    }
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  if (to_join.joinable()) to_join.join();
  {
    // With a worker the drain loop leaves nothing behind; only requests
    // queued on a never-started service land here.
    util::MutexLock lock(mu_);
    orphans.swap(queue_);
    pending_points_ = 0;
  }
  for (auto& req : orphans)
    req->promise.set_exception(std::make_exception_ptr(ServiceStopped()));
}

SpectralService::Ticket SpectralService::submit(
    std::vector<apec::GridPoint> points) {
  auto req = std::make_unique<Request>();
  req->points = std::move(points);
  req->submitted = std::chrono::steady_clock::now();
  Ticket ticket(req->promise.get_future().share());

  const std::size_t n = req->points.size();
  if (n == 0) {  // trivially complete; never visits the queue
    requests_submitted_.fetch_add(1, std::memory_order_relaxed);
    requests_completed_.fetch_add(1, std::memory_order_relaxed);
    req->promise.set_value(ServiceReply{});
    return ticket;
  }

  {
    util::MutexLock lock(mu_);
    if (stop_) throw ServiceStopped();
    // Admission gate. An oversized request (n > the whole bound) is
    // admitted once the queue is empty — it could never fit otherwise.
    if (config_.admission == ServiceConfig::Admission::reject) {
      if (pending_points_ > 0 &&
          pending_points_ + n > config_.max_pending_points) {
        requests_rejected_.fetch_add(1, std::memory_order_relaxed);
        throw ServiceOverloaded();
      }
    } else {
      while (pending_points_ > 0 &&
             pending_points_ + n > config_.max_pending_points && !stop_)
        space_cv_.wait(lock);
      if (stop_) throw ServiceStopped();
    }
    pending_points_ += n;
    queue_.push_back(std::move(req));
  }
  requests_submitted_.fetch_add(1, std::memory_order_relaxed);
  work_cv_.notify_one();
  return ticket;
}

void SpectralService::worker_loop() {
  for (;;) {
    std::vector<std::unique_ptr<Request>> group;
    {
      util::MutexLock lock(mu_);
      while (queue_.empty() && !stop_) work_cv_.wait(lock);
      if (queue_.empty()) return;  // stop_ set and fully drained
      group = take_group_locked();
    }
    space_cv_.notify_all();  // the gate may have room again
    dispatch(std::move(group));
  }
}

std::vector<std::unique_ptr<SpectralService::Request>>
SpectralService::take_group_locked() {
  // Coalesce whole requests until the batch cap: everything queued right
  // now rides one executor batch (cross-request sharing), capped by
  // max_batch_points so one giant survey cannot starve the gate.
  std::vector<std::unique_ptr<Request>> group;
  std::size_t points_taken = 0;
  while (!queue_.empty()) {
    const std::size_t n = queue_.front()->points.size();
    if (!group.empty() && points_taken + n > config_.max_batch_points) break;
    points_taken += n;
    pending_points_ -= n;
    group.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return group;
}

void SpectralService::dispatch(std::vector<std::unique_ptr<Request>> group) {
  const auto dispatched = std::chrono::steady_clock::now();

  // One batch slot per *distinct quantized point* missing from the cache;
  // consumers fan each slot back out to every (request, point) that asked
  // for it. Dedup across requests means ten clients asking for the same
  // spectrum cost one computation even on a cold cache.
  struct Consumer {
    std::size_t request;
    std::size_t point;
  };
  std::vector<apec::GridPoint> batch_points;
  std::vector<std::vector<Consumer>> consumers;
  std::map<GridKey, std::size_t> slot_of;

  std::vector<ServiceReply> replies(group.size());
  for (std::size_t r = 0; r < group.size(); ++r) {
    Request& req = *group[r];
    ServiceReply& reply = replies[r];
    reply.stats.queue_wait_s =
        std::chrono::duration<double>(dispatched - req.submitted).count();
    reply.spectra.reserve(req.points.size());
    for (std::size_t i = 0; i < req.points.size(); ++i) {
      const apec::GridPoint& point = req.points[i];
      reply.spectra.emplace_back(calc_->grid());
      const GridCache::Lookup found = cache_.lookup(point);
      if (found.bins != nullptr) {
        fill_spectrum(reply.spectra.back(), *found.bins);
        if (found.interpolated)
          ++reply.stats.cache_interpolated;
        else
          ++reply.stats.cache_hits;
        continue;
      }
      ++reply.stats.cache_misses;
      const auto [slot_it, fresh] =
          slot_of.emplace(cache_.key_of(point), batch_points.size());
      if (fresh) {
        batch_points.push_back(point);
        consumers.emplace_back();
      }
      consumers[slot_it->second].push_back({r, i});
    }
  }

  if (!batch_points.empty()) {
    core::HybridResult result;
    try {
      result = executor_.run_batch(batch_points);
    } catch (...) {
      // The whole batch failed: every request in the group learns why.
      for (auto& req : group)
        req->promise.set_exception(std::current_exception());
      return;
    }

    std::size_t contributing = 0;
    for (const ServiceReply& reply : replies)
      if (reply.stats.cache_misses > 0) ++contributing;
    batches_.fetch_add(1, std::memory_order_relaxed);
    if (contributing >= 2)
      coalesced_batches_.fetch_add(1, std::memory_order_relaxed);
    raise_max(max_batch_points_, batch_points.size());
    raise_max(max_batch_requests_, contributing);

    for (std::size_t s = 0; s < batch_points.size(); ++s) {
      auto bins =
          std::make_shared<std::vector<double>>(result.spectra[s].values());
      cache_.insert(batch_points[s], bins);
      for (const Consumer& c : consumers[s])
        fill_spectrum(replies[c.request].spectra[c.point], *bins);
    }
    for (ServiceReply& reply : replies) {
      if (reply.stats.cache_misses == 0) continue;
      reply.stats.batch_points = batch_points.size();
      reply.stats.batch_requests = contributing;
      reply.stats.faults = result.faults;
      reply.stats.device_health = result.device_health;
      reply.stats.sched = result.sched;
    }
  }

  for (std::size_t r = 0; r < group.size(); ++r) {
    // Count before fulfilling: a client observing its ticket ready must
    // also observe itself counted.
    requests_completed_.fetch_add(1, std::memory_order_relaxed);
    group[r]->promise.set_value(std::move(replies[r]));
  }
}

SpectralService::Telemetry SpectralService::telemetry() const {
  Telemetry t;
  t.requests_submitted = requests_submitted_.load(std::memory_order_relaxed);
  t.requests_rejected = requests_rejected_.load(std::memory_order_relaxed);
  t.requests_completed = requests_completed_.load(std::memory_order_relaxed);
  t.batches = batches_.load(std::memory_order_relaxed);
  t.coalesced_batches = coalesced_batches_.load(std::memory_order_relaxed);
  t.max_batch_points = max_batch_points_.load(std::memory_order_relaxed);
  t.max_batch_requests = max_batch_requests_.load(std::memory_order_relaxed);
  return t;
}

}  // namespace hspec::service
