#include "service/grid_cache.h"

#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace hspec::service {

namespace {

/// Quantize one coordinate onto a relative lattice: buckets are uniform in
/// log-space with width `rel` (so bucket neighbours differ by a factor of
/// ~e^rel ≈ 1+rel). Deterministic — identical doubles always share a
/// bucket; zero and sign get dedicated lattice regions so 0.0 and ±x can
/// never collide.
std::int64_t quantize(double value, double rel) noexcept {
  if (value == 0.0) return 0;  // hlint:allow(fp-equal) — exact-zero sentinel
  const double mag = std::log(std::fabs(value)) / rel;
  // log(|v|)/1e-9 stays within ±~7.1e11 for doubles; llround is exact here.
  const auto bucket = static_cast<std::int64_t>(std::llround(mag));
  // Shift away from 0 so a positive bucket can never alias the zero
  // sentinel; negative values mirror to the negative half-lattice.
  return value > 0.0 ? bucket + 1 : -(bucket + 1);
}

std::size_t hash_family(const GridKey& key) noexcept {
  // splitmix64-style mix of the (ne, time) family only: all temperatures
  // of one family must land in one shard for the near-hit search.
  auto mix = [](std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  };
  const auto ne = static_cast<std::uint64_t>(key.ne_q);
  const auto tm = static_cast<std::uint64_t>(key.time_q);
  return static_cast<std::size_t>(mix(ne ^ mix(tm)));
}

}  // namespace

GridCache::GridCache(GridCacheConfig config) : config_(config) {
  if (config_.shards < 1)
    throw std::invalid_argument("GridCache: need at least one shard");
  if (config_.capacity < config_.shards)
    throw std::invalid_argument("GridCache: capacity below shard count");
  if (!(config_.rel_resolution > 0.0))
    throw std::invalid_argument("GridCache: rel_resolution must be positive");
  if (!(config_.interp_max_rel_spacing > 0.0))
    throw std::invalid_argument(
        "GridCache: interp_max_rel_spacing must be positive");
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s)
    shards_.push_back(std::make_unique<Shard>());
}

GridKey GridCache::key_of(const apec::GridPoint& point) const noexcept {
  GridKey key;
  key.ne_q = quantize(point.ne_cm3, config_.rel_resolution);
  key.time_q = quantize(point.time_s, config_.rel_resolution);
  key.t_q = quantize(point.kT_keV, config_.rel_resolution);
  return key;
}

GridCache::Shard& GridCache::shard_of(const GridKey& key) noexcept {
  return *shards_[hash_family(key) % shards_.size()];
}

std::size_t GridCache::shard_capacity(std::size_t shard_index) const noexcept {
  const std::size_t base = config_.capacity / config_.shards;
  const std::size_t extra = config_.capacity % config_.shards;
  return base + (shard_index < extra ? 1 : 0);
}

GridCache::Bins GridCache::interpolate_locked(const Shard& shard,
                                              const GridKey& key,
                                              double kT_keV) const {
  // The two map neighbours of `key` are, by the family-major key order,
  // the nearest cached temperatures of this (ne, time) family — if both
  // exist, bracket the request and sit close enough, interpolate between
  // them.
  const auto hi = shard.map.lower_bound(key);
  if (hi == shard.map.end() || hi == shard.map.begin()) return nullptr;
  const auto lo = std::prev(hi);
  const bool same_family =
      lo->first.ne_q == key.ne_q && lo->first.time_q == key.time_q &&
      hi->first.ne_q == key.ne_q && hi->first.time_q == key.time_q;
  const double t0 = lo->second.kT_keV;
  const double t1 = hi->second.kT_keV;
  if (!same_family || !(t0 < kT_keV && kT_keV < t1) ||
      (t1 - t0) > config_.interp_max_rel_spacing * kT_keV)
    return nullptr;
  const double w = (kT_keV - t0) / (t1 - t0);
  const std::vector<double>& b0 = *lo->second.bins;
  const std::vector<double>& b1 = *hi->second.bins;
  auto mixed = std::make_shared<std::vector<double>>(b0.size());
  for (std::size_t b = 0; b < b0.size(); ++b)
    (*mixed)[b] = b0[b] + (b1[b] - b0[b]) * w;
  return mixed;
}

std::uint64_t GridCache::evict_overflow_locked(Shard& shard,
                                               std::size_t cap) {
  std::uint64_t evicted = 0;
  while (shard.map.size() > cap) {
    Map::iterator victim = shard.lru.back();
    shard.lru.pop_back();
    shard.map.erase(victim);
    ++evicted;
  }
  return evicted;
}

GridCache::Lookup GridCache::lookup(const apec::GridPoint& point) {
  const GridKey key = key_of(point);
  Shard& shard = shard_of(key);
  Lookup out;
  {
    util::MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Exact-bucket hit: refresh LRU position and hand out the stored
      // bins — the bitwise-identity contract.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
      out.bins = it->second.bins;
    } else if (config_.interpolate) {
      out.bins = interpolate_locked(shard, key, point.kT_keV);
      out.interpolated = out.bins != nullptr;
    }
  }
  if (out.interpolated)
    interpolated_.fetch_add(1, std::memory_order_relaxed);
  else if (out.bins != nullptr)
    hits_.fetch_add(1, std::memory_order_relaxed);
  else
    misses_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

void GridCache::insert(const apec::GridPoint& point, Bins bins) {
  if (bins == nullptr)
    throw std::invalid_argument("GridCache::insert: null bins");
  const GridKey key = key_of(point);
  const std::size_t shard_index = hash_family(key) % shards_.size();
  Shard& shard = *shards_[shard_index];
  std::uint64_t evicted = 0;
  std::int64_t entry_delta = 0;
  {
    util::MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second.kT_keV = point.kT_keV;
      it->second.bins = std::move(bins);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    } else {
      const auto pos =
          shard.map.emplace(key, Entry{point.kT_keV, std::move(bins), {}})
              .first;
      shard.lru.push_front(pos);
      pos->second.lru_pos = shard.lru.begin();
      ++entry_delta;
      evicted = evict_overflow_locked(shard, shard_capacity(shard_index));
      entry_delta -= static_cast<std::int64_t>(evicted);
    }
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (evicted != 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
  if (entry_delta > 0)
    entries_.fetch_add(static_cast<std::size_t>(entry_delta),
                       std::memory_order_relaxed);
  else if (entry_delta < 0)
    entries_.fetch_sub(static_cast<std::size_t>(-entry_delta),
                       std::memory_order_relaxed);
}

GridCacheStats GridCache::stats() const noexcept {
  GridCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.interpolated = interpolated_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace hspec::service
