#pragma once
// The always-on spectral service (DESIGN.md §13): a long-lived in-process
// server wrapped around one core::HybridExecutor.
//
// Lifecycle of a request:
//
//   submit(points)            — any thread (minimpi ranks included); the
//     admission gate applies here: with the queue at max_pending_points the
//     call blocks (Admission::block) or throws ServiceOverloaded
//     (Admission::reject);
//   coalescing               — the single worker thread pops every queued
//     request (up to max_batch_points of cache misses), resolves each point
//     against the GridCache, deduplicates same-bucket misses *across*
//     requests, and hands the surviving points to the executor as ONE
//     batch — tasks from distinct requests share device queues, streams
//     and resident edges;
//   completion               — computed spectra are published to the cache
//     and fanned back out to every consuming request; each Ticket::wait()
//     returns the spectra plus per-request ServiceStats (queue wait, batch
//     occupancy, cache and fault telemetry).
//
// Threading: submit/Ticket are thread-safe; one worker thread owns the
// executor (run_batch is single-caller by contract). No lock is ever held
// across an executor call — cache shard locks least of all (hlint
// [lock-blocking], which checks the whole call graph, not just the lock
// scope's own text). The HSPEC_* annotations below let the clang
// thread-safety build prove the same discipline a second way.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "apec/calculator.h"
#include "apec/spectrum.h"
#include "core/hybrid.h"
#include "core/hybrid_executor.h"
#include "service/grid_cache.h"
#include "util/thread_annotations.h"

namespace hspec::service {

struct ServiceConfig {
  core::HybridConfig hybrid;
  GridCacheConfig cache;
  /// Admission bound: grid points allowed in the submit queue before the
  /// gate closes. A request larger than the whole bound is admitted alone
  /// (it could otherwise never run).
  std::size_t max_pending_points = 1024;
  enum class Admission {
    block,   ///< submit() waits for queue space (backpressure)
    reject,  ///< submit() throws ServiceOverloaded immediately
  };
  Admission admission = Admission::block;
  /// Coalescing cap: cache-missing points per executor batch.
  std::size_t max_batch_points = 64;
  /// false: the worker starts on start(), not construction. Deterministic
  /// coalescing seam for tests (queue several requests, then start) and a
  /// warm-up hook for deployments that pre-load the cache.
  bool autostart = true;
};

/// submit() verdict under Admission::reject with the queue full.
class ServiceOverloaded : public std::runtime_error {
 public:
  ServiceOverloaded()
      : std::runtime_error(
            "SpectralService: request queue full (admission control)") {}
};

/// submit() after stop() — the service no longer accepts work.
class ServiceStopped : public std::runtime_error {
 public:
  ServiceStopped()
      : std::runtime_error("SpectralService: service is stopped") {}
};

/// Per-request telemetry, returned alongside the spectra. Satellite of
/// DESIGN.md §13: fault/recovery activity is re-surfaced here so service
/// clients never dig into core::HybridResult.
struct ServiceStats {
  /// Submit-to-dispatch wait (the admission/coalescing queue).
  double queue_wait_s = 0.0;
  /// Points in the executor batch that served this request's misses (0 for
  /// a fully cached request).
  std::size_t batch_points = 0;
  /// Distinct requests that contributed points to that batch. > 1 means
  /// this request shared its device batch — the cross-request coalescing
  /// criterion.
  std::size_t batch_requests = 0;
  std::uint64_t cache_hits = 0;          ///< this request's exact hits
  std::uint64_t cache_misses = 0;        ///< points that went to the batch
  std::uint64_t cache_interpolated = 0;  ///< near-hits served by interpolation
  /// Recovery accounting of the batch that computed this request's misses
  /// (zeroes for a fully cached request or a fault-free run).
  core::FaultStats faults;
  /// Scheduling-latency telemetry of that batch (core/sched_policy.h):
  /// which policy decided, how many decisions, and the latency histogram.
  /// Zero decisions for a fully cached request.
  core::SchedulingStats sched;
  /// Device health after that batch (live executor state; empty for a
  /// fully cached request).
  std::vector<core::DeviceHealth> device_health;
};

struct ServiceReply {
  std::vector<apec::Spectrum> spectra;  ///< one per submitted point, in order
  ServiceStats stats;
};

class SpectralService {
 public:
  /// Builds the long-lived executor (devices, pools, resident caches) and,
  /// unless `config.autostart` is false, starts the worker thread.
  SpectralService(const apec::SpectrumCalculator& calculator,
                  ServiceConfig config);
  ~SpectralService();  // stop() + join

  SpectralService(const SpectralService&) = delete;
  SpectralService& operator=(const SpectralService&) = delete;

  /// A submitted request's handle. Copyable; wait() may be called from any
  /// thread and rethrows the batch's failure if the computation threw.
  class Ticket {
   public:
    ServiceReply wait() { return future_.get(); }
    bool done() const {
      return future_.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready;
    }

   private:
    friend class SpectralService;
    explicit Ticket(std::shared_future<ServiceReply> f)
        : future_(std::move(f)) {}
    std::shared_future<ServiceReply> future_;
  };

  /// Thread-safe submit. Blocks or throws ServiceOverloaded at the
  /// admission gate per config; throws ServiceStopped after stop().
  Ticket submit(std::vector<apec::GridPoint> points) HSPEC_EXCLUDES(mu_);

  /// Start the worker (no-op when running). Only needed with
  /// autostart = false.
  void start() HSPEC_EXCLUDES(mu_);

  /// Drain every queued request, then stop the worker. Idempotent.
  /// Requests submitted after stop() throw ServiceStopped.
  void stop() HSPEC_EXCLUDES(mu_);

  /// Whole-service counters (monotonic; readable any time).
  struct Telemetry {
    std::uint64_t requests_submitted = 0;
    std::uint64_t requests_rejected = 0;   ///< admission gate (reject policy)
    std::uint64_t requests_completed = 0;
    std::uint64_t batches = 0;             ///< executor batches dispatched
    std::uint64_t coalesced_batches = 0;   ///< batches fed by >= 2 requests
    std::uint64_t max_batch_points = 0;    ///< deepest batch occupancy seen
    std::uint64_t max_batch_requests = 0;  ///< most requests in one batch
  };
  Telemetry telemetry() const;

  const GridCache& cache() const noexcept { return cache_; }
  GridCacheStats cache_stats() const noexcept { return cache_.stats(); }
  const ServiceConfig& config() const noexcept { return config_; }
  int device_count() const noexcept { return executor_.device_count(); }

 private:
  struct Request {
    std::vector<apec::GridPoint> points;
    std::chrono::steady_clock::time_point submitted;
    std::promise<ServiceReply> promise;
  };

  void worker_loop() HSPEC_EXCLUDES(mu_);
  /// Pop one coalesced group off the queue (whole requests up to the batch
  /// cap). Caller holds mu_ — the lock covers queue surgery only.
  std::vector<std::unique_ptr<Request>> take_group_locked()
      HSPEC_REQUIRES(mu_);
  /// Resolve one coalesced group of requests: cache pass, one executor
  /// batch for the deduplicated misses, fan-out, promise fulfilment. Must
  /// run lock-free: it blocks on the executor.
  void dispatch(std::vector<std::unique_ptr<Request>> group)
      HSPEC_EXCLUDES(mu_);

  const apec::SpectrumCalculator* calc_;
  ServiceConfig config_;
  core::HybridExecutor executor_;
  GridCache cache_;

  util::Mutex mu_;
  std::condition_variable_any work_cv_;   // worker wakeups
  std::condition_variable_any space_cv_;  // blocked submitters
  std::deque<std::unique_ptr<Request>> queue_ HSPEC_GUARDED_BY(mu_);
  std::size_t pending_points_ HSPEC_GUARDED_BY(mu_) = 0;
  bool stop_ HSPEC_GUARDED_BY(mu_) = false;
  bool running_ HSPEC_GUARDED_BY(mu_) = false;
  /// Written under mu_ (start) and moved out under mu_ (stop); the join
  /// itself happens on the moved-out handle, outside the lock.
  std::thread worker_ HSPEC_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> requests_submitted_{0};
  std::atomic<std::uint64_t> requests_rejected_{0};
  std::atomic<std::uint64_t> requests_completed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> coalesced_batches_{0};
  std::atomic<std::uint64_t> max_batch_points_{0};
  std::atomic<std::uint64_t> max_batch_requests_{0};
};

}  // namespace hspec::service
