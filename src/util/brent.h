#pragma once
// One-dimensional minimization without derivatives: golden-section search
// stabilized with successive parabolic interpolation (Brent's method).
// Used by the spectral-fitting layer to minimize chi-squared over
// temperature.

#include <cstddef>

#include "util/function_ref.h"

namespace hspec::util {

struct BrentResult {
  double x = 0.0;        ///< abscissa of the minimum
  double fx = 0.0;       ///< function value at the minimum
  std::size_t evaluations = 0;
  bool converged = false;
};

struct BrentOptions {
  double x_tolerance = 1e-8;   ///< relative bracket tolerance
  std::size_t max_iterations = 100;
};

/// Minimize f over [lo, hi]. The minimum need not be interior — endpoint
/// minima converge to the endpoint.
BrentResult brent_minimize(FunctionRef<double(double)> f, double lo, double hi,
                           const BrentOptions& opt = {});

}  // namespace hspec::util
