#include "util/fault.h"

#include <string>

#include "util/rng.h"

namespace hspec::util {

const char* to_string(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::h2d_transfer:
      return "h2d_transfer";
    case FaultSite::d2h_transfer:
      return "d2h_transfer";
    case FaultSite::kernel_launch:
      return "kernel_launch";
    case FaultSite::kernel_timeout:
      return "kernel_timeout";
    case FaultSite::stream_stall:
      return "stream_stall";
    case FaultSite::buffer_alloc:
      return "buffer_alloc";
    case FaultSite::device_death:
      return "device_death";
  }
  return "unknown";
}

namespace {

std::string describe(FaultSite site, int device) {
  return std::string("injected fault: ") + to_string(site) + " on device " +
         std::to_string(device);
}

void validate_rate(double rate, const char* name) {
  if (!(rate >= 0.0 && rate <= 1.0))
    throw std::invalid_argument(std::string("FaultPlan: ") + name +
                                " outside [0, 1]");
}

}  // namespace

FaultError::FaultError(FaultSite site, int device)
    : std::runtime_error(describe(site, device)),
      site_(site),
      device_(device) {}

FaultPlan::FaultPlan(const FaultPlanConfig& config) : cfg_(config) {
  validate_rate(cfg_.transfer_fault_rate, "transfer_fault_rate");
  validate_rate(cfg_.kernel_fault_rate, "kernel_fault_rate");
  validate_rate(cfg_.kernel_timeout_rate, "kernel_timeout_rate");
  validate_rate(cfg_.stream_stall_rate, "stream_stall_rate");
  validate_rate(cfg_.alloc_fault_rate, "alloc_fault_rate");
  if (cfg_.dead_device >= kMaxFaultDevices)
    throw std::invalid_argument("FaultPlan: dead_device past kMaxFaultDevices");
  if (cfg_.dies_after_ops < 0)
    throw std::invalid_argument("FaultPlan: dies_after_ops must be >= 0");
}

double FaultPlan::rate_for(FaultSite site) const noexcept {
  switch (site) {
    case FaultSite::h2d_transfer:
    case FaultSite::d2h_transfer:
      return cfg_.transfer_fault_rate;
    case FaultSite::kernel_launch:
      return cfg_.kernel_fault_rate;
    case FaultSite::kernel_timeout:
      return cfg_.kernel_timeout_rate;
    case FaultSite::stream_stall:
      return cfg_.stream_stall_rate;
    case FaultSite::buffer_alloc:
      return cfg_.alloc_fault_rate;
    case FaultSite::device_death:
      return 0.0;  // death is by op count, never by chance
  }
  return 0.0;
}

FaultDecision FaultPlan::query(FaultSite site, int device) noexcept {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (device < 0 || device >= kMaxFaultDevices) return {};
  const auto d = static_cast<std::size_t>(device);

  if (cfg_.dead_device == device) {
    const std::int64_t op =
        device_ops_[d].fetch_add(1, std::memory_order_relaxed);
    if (op >= cfg_.dies_after_ops) {
      if (!dead_[d].exchange(true, std::memory_order_acq_rel))
        deaths_.fetch_add(1, std::memory_order_relaxed);
      injected_[static_cast<std::size_t>(FaultSite::device_death)].fetch_add(
          1, std::memory_order_relaxed);
      injected_total_.fetch_add(1, std::memory_order_relaxed);
      return {true, FaultSite::device_death, 0.0};
    }
  }

  const double rate = rate_for(site);
  if (rate <= 0.0) return {};
  const auto s = static_cast<std::size_t>(site);
  const std::int64_t op = site_ops_[s][d].fetch_add(1, std::memory_order_relaxed);
  // Deterministic verdict: hash (seed, site, device, op) through SplitMix64.
  // The op index — not the thread or the wall clock — selects the faulting
  // operations, so a fixed schedule replays the same fault pattern.
  SplitMix64 mix(cfg_.seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(s) + 1) +
                 0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(d) + 1) +
                 0x94d049bb133111ebULL * (static_cast<std::uint64_t>(op) + 1));
  const double u = static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
  if (u >= rate) return {};

  injected_[s].fetch_add(1, std::memory_order_relaxed);
  injected_total_.fetch_add(1, std::memory_order_relaxed);
  FaultDecision decision;
  decision.fail = true;
  decision.site = site;
  if (site == FaultSite::kernel_timeout)
    decision.penalty_s = cfg_.kernel_timeout_penalty_s;
  else if (site == FaultSite::stream_stall)
    decision.penalty_s = cfg_.stream_stall_penalty_s;
  return decision;
}

bool FaultPlan::device_dead(int device) const noexcept {
  if (device < 0 || device >= kMaxFaultDevices) return false;
  return dead_[static_cast<std::size_t>(device)].load(std::memory_order_acquire);
}

FaultPlan::Stats FaultPlan::stats() const noexcept {
  Stats out;
  out.queries = queries_.load(std::memory_order_relaxed);
  out.injected_total = injected_total_.load(std::memory_order_relaxed);
  out.device_deaths = deaths_.load(std::memory_order_relaxed);
  for (int s = 0; s < kFaultSiteCount; ++s)
    out.injected[static_cast<std::size_t>(s)] =
        injected_[static_cast<std::size_t>(s)].load(std::memory_order_relaxed);
  return out;
}

}  // namespace hspec::util
