#include "util/statistics.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace hspec::util {

double percentile(std::span<const double> sample, double p) {
  if (sample.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::vector<double> xs(sample.begin(), sample.end());
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double max_relative_error(std::span<const double> a, std::span<const double> b,
                          double floor) {
  if (a.size() != b.size())
    throw std::invalid_argument("max_relative_error: size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double denom = std::max({std::abs(a[i]), std::abs(b[i]), floor});
    worst = std::max(worst, std::abs(a[i] - b[i]) / denom);
  }
  return worst;
}

double rms(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x * x;
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

}  // namespace hspec::util
