#pragma once
// Fixed-bin histogram used for the paper's distribution plots:
// Fig. 6 (queue-load residency) and Fig. 8 (relative-error distribution).

#include <cstddef>
#include <string>
#include <vector>

namespace hspec::util {

/// Uniform-bin histogram over [lo, hi). Out-of-range samples are clamped to
/// the first/last bin and counted separately so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  std::size_t bin_count() const noexcept { return counts_.size(); }
  double bin_lo(std::size_t i) const noexcept;
  double bin_hi(std::size_t i) const noexcept;
  double bin_center(std::size_t i) const noexcept;
  double count(std::size_t i) const { return counts_.at(i); }
  double total() const noexcept { return total_; }
  double underflow() const noexcept { return underflow_; }
  double overflow() const noexcept { return overflow_; }

  /// Fraction of total weight in bin i (0 if empty histogram).
  double fraction(std::size_t i) const;
  /// Fraction of total weight with sample value in [a, b).
  double fraction_between(double a, double b) const;

  /// Render a simple fixed-width ASCII bar chart (for bench stdout).
  std::string ascii(std::size_t width = 48, const std::string& label = "") const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<double> counts_;
  double total_ = 0.0;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
};

}  // namespace hspec::util
