#include "util/brent.h"

#include <cmath>
#include <stdexcept>

namespace hspec::util {

BrentResult brent_minimize(FunctionRef<double(double)> f, double lo, double hi,
                           const BrentOptions& opt) {
  if (!(hi > lo)) throw std::invalid_argument("brent: need hi > lo");
  constexpr double kGolden = 0.3819660112501051;  // (3 - sqrt(5)) / 2
  const double eps_abs = 1e-300;

  BrentResult result;
  double a = lo;
  double b = hi;
  double x = a + kGolden * (b - a);
  double w = x;
  double v = x;
  double fx = f(x);
  double fw = fx;
  double fv = fx;
  ++result.evaluations;
  double d = 0.0;
  double e = 0.0;

  for (std::size_t iter = 0; iter < opt.max_iterations; ++iter) {
    const double mid = 0.5 * (a + b);
    const double tol1 = opt.x_tolerance * std::fabs(x) + eps_abs;
    const double tol2 = 2.0 * tol1;
    if (std::fabs(x - mid) <= tol2 - 0.5 * (b - a)) {
      result.converged = true;
      break;
    }
    bool use_golden = true;
    if (std::fabs(e) > tol1) {
      // Parabolic fit through (v, fv), (w, fw), (x, fx).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::fabs(q);
      const double e_prev = e;
      e = d;
      if (std::fabs(p) < std::fabs(0.5 * q * e_prev) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = std::copysign(tol1, mid - x);
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x >= mid ? a : b) - x;
      d = kGolden * e;
    }
    const double u =
        std::fabs(d) >= tol1 ? x + d : x + std::copysign(tol1, d);
    const double fu = f(u);
    ++result.evaluations;
    if (fu <= fx) {
      if (u >= x)
        a = x;
      else
        b = x;
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x)
        a = u;
      else
        b = u;
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  result.x = x;
  result.fx = fx;
  return result;
}

}  // namespace hspec::util
