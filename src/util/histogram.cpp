#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace hspec::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
}

void Histogram::add(double x, double weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    counts_.front() += weight;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
  if (idx >= counts_.size()) {
    if (x > hi_) overflow_ += weight;
    idx = counts_.size() - 1;  // clamp hi edge and overflow into last bin
  }
  counts_[idx] += weight;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + static_cast<double>(i) * bin_width_;
}
double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + static_cast<double>(i + 1) * bin_width_;
}
double Histogram::bin_center(std::size_t i) const noexcept {
  return lo_ + (static_cast<double>(i) + 0.5) * bin_width_;
}

double Histogram::fraction(std::size_t i) const {
  return total_ > 0.0 ? counts_.at(i) / total_ : 0.0;
}

double Histogram::fraction_between(double a, double b) const {
  if (total_ <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = bin_center(i);
    if (c >= a && c < b) acc += counts_[i];
  }
  return acc / total_;
}

std::string Histogram::ascii(std::size_t width, const std::string& label) const {
  std::string out;
  if (!label.empty()) out += label + "\n";
  const double peak = counts_.empty()
                          ? 0.0
                          : *std::max_element(counts_.begin(), counts_.end());
  char line[256];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        peak > 0.0 ? std::lround(counts_[i] / peak * static_cast<double>(width))
                   : 0);
    std::snprintf(line, sizeof line, "[%12.5g,%12.5g) %8.4g%% |",
                  bin_lo(i), bin_hi(i), 100.0 * fraction(i));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace hspec::util
