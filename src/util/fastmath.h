#pragma once
// Deterministic transcendentals for the batched integration path.
//
// The batch kernels (src/vgpu/integr_kernel.cpp) are pinned bitwise to the
// scalar reference, so the integrand math must produce identical bits whether
// it runs one abscissa at a time in scalar code or lane-parallel inside a
// target("avx2,fma") loop. libm's exp/log cannot give that guarantee: the
// scalar call and any vectorized variant are different code with different
// rounding histories. These implementations can, because every operation is
// an elementwise IEEE op (+, -, *, /, compare/select) or an explicit
// std::fma — all of which round identically per element in scalar and SIMD
// form — and because the whole tree builds with -ffp-contract=off, so the
// compiler introduces no fusions of its own.
//
// Accuracy: both functions are within ~1 ulp of libm over the ranges the RRC
// integrand exercises (exp on [-708, 708]; log on normal positive inputs).
// exp() clamps its argument to +/-708 instead of descending into denormals or
// infinities — callers integrate Maxwellian tails where exp(-708) ~ 3e-308 is
// already zero emissivity.
//
// Vectorization notes (why the code looks the way it does):
//  * the exponent extraction in exp() uses the 2^52+2^51 shifter trick
//    instead of lrint/static_cast — AVX2 has no int64<->double converts
//    (those need AVX-512DQ), so a cast would block vectorization;
//  * the branchless clamp and the bit-level scale construction keep the loop
//    body select-only, so GCC turns the whole body into blends.

#include <bit>
#include <cstdint>
#include <cmath>

// Marks a function containing a batch loop for AVX2+FMA code generation.
// Baseline builds (HSPEC_SIMD off, non-x86, non-GNU) compile the identical
// source without the attribute; results are bit-identical either way because
// every op is single-rounding (see above).
#if defined(HSPEC_SIMD) && defined(__x86_64__) && defined(__GNUC__)
#define HSPEC_VEC_TARGET __attribute__((target("avx2,fma")))
#else
#define HSPEC_VEC_TARGET
#endif

namespace hspec::util::fm {

/// Deterministic e^x (clamped to [-708, 708]; ~1 ulp).
inline double exp(double x) noexcept {
  constexpr double kLog2e = 1.4426950408889634074;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  constexpr double kShifter = 6755399441055744.0;  // 2^52 + 2^51
  const double xc = x < -708.0 ? -708.0 : (x > 708.0 ? 708.0 : x);
  // Cody-Waite reduction: n = round(x log2 e), r = x - n ln 2 (hi + lo).
  const double t = std::fma(xc, kLog2e, kShifter);
  const double n = t - kShifter;
  double r = std::fma(-n, kLn2Hi, xc);
  r = std::fma(-n, kLn2Lo, r);
  // Degree-13 Taylor polynomial of e^r on |r| <= ln2/2, Horner with fma.
  double p = 1.0 / 6227020800.0;
  p = std::fma(p, r, 1.0 / 479001600.0);
  p = std::fma(p, r, 1.0 / 39916800.0);
  p = std::fma(p, r, 1.0 / 3628800.0);
  p = std::fma(p, r, 1.0 / 362880.0);
  p = std::fma(p, r, 1.0 / 40320.0);
  p = std::fma(p, r, 1.0 / 5040.0);
  p = std::fma(p, r, 1.0 / 720.0);
  p = std::fma(p, r, 1.0 / 120.0);
  p = std::fma(p, r, 1.0 / 24.0);
  p = std::fma(p, r, 1.0 / 6.0);
  p = std::fma(p, r, 0.5);
  p = std::fma(p, r, 1.0);
  p = std::fma(p, r, 1.0);
  // 2^n via exponent bits: t still holds n in its low mantissa bits (the
  // shifter pins the rounding point), so (t << 52) adds n to the biased
  // exponent of 1.0.
  const std::uint64_t ti = std::bit_cast<std::uint64_t>(t);
  const double scale =
      std::bit_cast<double>((ti << 52) + std::bit_cast<std::uint64_t>(1.0));
  return p * scale;
}

/// Deterministic ln(x) for normal positive x (~1 ulp, fdlibm formulation).
inline double log(double x) noexcept {
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  // Normalize the mantissa into [sqrt(1/2), sqrt(2)): mantissas at or above
  // sqrt(2)'s get exponent -1, pushing m below sqrt(2).
  constexpr std::uint64_t kSqrt2Mant = 0x6A09E667F3BCDull;
  const std::uint64_t mant = bits & 0xFFFFFFFFFFFFFull;
  const std::uint64_t hi = mant >= kSqrt2Mant ? 1u : 0u;
  const double ed =
      static_cast<double>(static_cast<std::int64_t>(bits >> 52) - 1023 +
                          static_cast<std::int64_t>(hi));
  const double m = std::bit_cast<double>(mant | ((1023ull - hi) << 52));
  // log(m) via the atanh identity s = (m-1)/(m+1) with fdlibm's minimax
  // coefficients for the even remainder series.
  const double f = m - 1.0;
  const double s = f / (2.0 + f);
  const double z = s * s;
  double p = 1.479819860511658591e-01;           // Lg7
  p = std::fma(p, z, 1.531383769920937332e-01);  // Lg6
  p = std::fma(p, z, 1.818357216161805012e-01);  // Lg5
  p = std::fma(p, z, 2.222219843214978396e-01);  // Lg4
  p = std::fma(p, z, 2.857142874366239149e-01);  // Lg3
  p = std::fma(p, z, 3.999999999940941908e-01);  // Lg2
  p = std::fma(p, z, 6.666666666666735130e-01);  // Lg1
  const double r = z * p;
  const double hfsq = 0.5 * f * f;
  const double k1 = std::fma(s, hfsq + r, ed * kLn2Lo);
  return std::fma(ed, kLn2Hi, f - (hfsq - k1));
}

}  // namespace hspec::util::fm
