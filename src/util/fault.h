#pragma once
// Deterministic fault injection for the hybrid executor (DESIGN.md §11).
//
// A FaultPlan is a seeded oracle the fallible vgpu entry points consult:
// host<->device transfers, kernel launches (outright failure or a
// watchdog-killed timeout), stream operations (stalls), and device-memory
// allocation. Each query's verdict is a pure hash of
// (seed, site, device, per-site-per-device operation index), so a plan
// replays the same fault pattern for a fixed schedule regardless of wall
// time, and two plans with the same seed agree decision-for-decision.
// A plan can additionally kill one device outright after a fixed number of
// queries ("device death"): from then on every operation on it fails.
//
// The injection points themselves live in src/vgpu (device.cpp, stream.cpp,
// buffer_pool.cpp); the recovery policy — retry, requeue, quarantine,
// graceful CPU degradation — lives in src/core. This header owns only the
// oracle, so util stays dependency-free.

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>

namespace hspec::util {

/// Maximum devices one plan tracks (mirrors core::kMaxDevices; util cannot
/// include core, so the bound is restated and checked by tests).
inline constexpr int kMaxFaultDevices = 64;

/// Where a fault is injected. `device_death` is never queried directly: it
/// is the verdict every site returns once the plan has killed the device.
enum class FaultSite : int {
  h2d_transfer = 0,   ///< cudaMemcpy host -> device
  d2h_transfer = 1,   ///< cudaMemcpy device -> host
  kernel_launch = 2,  ///< launch failed, kernel never ran
  kernel_timeout = 3, ///< watchdog killed the kernel; virtual time was burned
  stream_stall = 4,   ///< a stream operation wedged, then errored out
  buffer_alloc = 5,   ///< device allocator failure
  device_death = 6,   ///< the device is gone; permanent
};
inline constexpr int kFaultSiteCount = 7;

const char* to_string(FaultSite site) noexcept;

/// Thrown by the vgpu injection points on a failing verdict. Carries the
/// site and device so the recovery layer can tell a fatal device death from
/// a transient fault.
class FaultError : public std::runtime_error {
 public:
  FaultError(FaultSite site, int device);

  FaultSite site() const noexcept { return site_; }
  int device() const noexcept { return device_; }

 private:
  FaultSite site_;
  int device_;
};

/// Rates are per-operation probabilities in [0, 1]; penalties are virtual
/// seconds charged before the operation errors out (a hung kernel or a
/// stalled stream costs time even though it produces nothing).
struct FaultPlanConfig {
  std::uint64_t seed = 0;
  double transfer_fault_rate = 0.0;  ///< h2d_transfer and d2h_transfer
  double kernel_fault_rate = 0.0;    ///< kernel_launch
  double kernel_timeout_rate = 0.0;  ///< kernel_timeout
  double stream_stall_rate = 0.0;    ///< stream_stall
  double alloc_fault_rate = 0.0;     ///< buffer_alloc
  double kernel_timeout_penalty_s = 2.0;
  double stream_stall_penalty_s = 0.5;
  /// Device that dies mid-run (-1: none). Death is by query count, not
  /// chance: the device survives its first `dies_after_ops` fault-hook
  /// queries, then every operation on it fails with device_death.
  int dead_device = -1;
  std::int64_t dies_after_ops = 0;
};

struct FaultDecision {
  bool fail = false;
  FaultSite site = FaultSite::device_death;
  double penalty_s = 0.0;  ///< virtual time to charge before throwing
};

/// The seeded oracle. Thread-safe: every rank and stream queries the one
/// plan concurrently; the per-(site, device) operation counters are atomic
/// and the verdict for a given counter value is a pure function.
class FaultPlan {
 public:
  /// Throws std::invalid_argument on a rate outside [0, 1], a dead_device
  /// past kMaxFaultDevices, or negative dies_after_ops.
  explicit FaultPlan(const FaultPlanConfig& config);
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// One injection point asks for a verdict. Never throws; the caller owns
  /// the decision to raise FaultError (see the hlint [fault-hook] rule).
  FaultDecision query(FaultSite site, int device) noexcept;

  /// Has the plan killed `device` yet?
  bool device_dead(int device) const noexcept;

  struct Stats {
    std::int64_t queries = 0;         ///< verdicts asked for
    std::int64_t injected_total = 0;  ///< failing verdicts returned
    std::int64_t device_deaths = 0;   ///< devices transitioned to dead
    std::array<std::int64_t, kFaultSiteCount> injected{};  ///< per site
  };
  Stats stats() const noexcept;

  const FaultPlanConfig& config() const noexcept { return cfg_; }

 private:
  double rate_for(FaultSite site) const noexcept;

  FaultPlanConfig cfg_;
  std::atomic<std::int64_t> queries_{0};
  std::atomic<std::int64_t> injected_total_{0};
  std::atomic<std::int64_t> deaths_{0};
  std::array<std::atomic<std::int64_t>, kFaultSiteCount> injected_{};
  /// Queries the (potentially) dying device has answered, all sites.
  std::array<std::atomic<std::int64_t>, kMaxFaultDevices> device_ops_{};
  /// Per-(site, device) operation index feeding the verdict hash.
  std::array<std::array<std::atomic<std::int64_t>, kMaxFaultDevices>,
             kFaultSiteCount>
      site_ops_{};
  std::array<std::atomic<bool>, kMaxFaultDevices> dead_{};
};

}  // namespace hspec::util
