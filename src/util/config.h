#pragma once
// Minimal INI-style configuration reader. "The parameter space is often
// given by a result of astrophysical simulation or a configuration file" —
// this is the configuration-file path. Format:
//
//   # comment
//   [section]
//   key = value
//
// Keys outside any section live in the "" section. Lookup is by
// "section.key". Values are strings with typed accessors.

#include <cstdint>
#include <map>
#include <string>

namespace hspec::util {

class Config {
 public:
  /// Parse from text. Throws std::invalid_argument on malformed lines.
  static Config parse(const std::string& text);
  /// Parse a file. Throws std::runtime_error if unreadable.
  static Config load(const std::string& path);

  bool has(const std::string& dotted_key) const;
  std::string get(const std::string& dotted_key,
                  const std::string& fallback = "") const;
  double get_double(const std::string& dotted_key, double fallback) const;
  std::int64_t get_int(const std::string& dotted_key,
                       std::int64_t fallback) const;
  bool get_bool(const std::string& dotted_key, bool fallback) const;

  std::size_t size() const noexcept { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace hspec::util
