#include "util/table.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hspec::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, 100.0 * fraction);
  return buf;
}

std::string Table::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "  ";
      out << std::string(widths[c] - row[c].size(), ' ') << row[c];
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("Table: cannot open " + path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) f << ',';
      f << row[c];
    }
    f << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  if (!f) throw std::runtime_error("Table: write failed for " + path);
}

std::string bench_banner(const std::string& experiment_id,
                         const std::string& paper_claim) {
  std::string bar(72, '=');
  return bar + "\n" + experiment_id + "\npaper: " + paper_claim + "\n" + bar +
         "\n";
}

}  // namespace hspec::util
