#pragma once
// Console table and CSV emission for the reproduction benches.
// Every bench prints a human-readable table matching the paper's layout and
// drops a machine-readable CSV beside the binary for plotting.

#include <initializer_list>
#include <string>
#include <vector>

namespace hspec::util {

/// A simple right-aligned console table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row of preformatted cells. Must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with `%.*g`.
  static std::string num(double v, int precision = 6);
  static std::string pct(double fraction, int decimals = 2);

  std::string str() const;
  /// Write the table as CSV (header + rows) to `path`. Throws on I/O error.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Standard banner printed at the top of each reproduction bench.
std::string bench_banner(const std::string& experiment_id,
                         const std::string& paper_claim);

}  // namespace hspec::util
