#pragma once
// The repo's floating-point comparison policy (DESIGN.md §10).
//
// `tools/hlint` rule [fp-equal] forbids `==` / `!=` between floating-point
// expressions anywhere in src/: an exact comparison is either a bug (two
// independently computed values will almost never be bit-equal) or a
// deliberate sentinel/guard test that deserves to be spelled out. The two
// sanctioned spellings live here:
//
//   fp_equal(a, b[, rel, abs])  tolerant equality — use when two values are
//                               expected to agree up to rounding;
//   fp_exact_equal(a, b)        intentional bit-exact comparison — use for
//                               sentinel values (`jitter == 0 means off`),
//                               division guards (`r == 0 would divide by
//                               zero`), and QUADPACK-style exact-zero tests.
//
// Both names contain "fp_equal", which is the substring the lint allowlists,
// so call sites read as policy-compliant on sight.

namespace hspec::util {

/// Tolerant equality: |a - b| <= max(abs_tol, rel_tol * max(|a|, |b|)).
/// The default relative tolerance (1e-12) is ~4500 ulp at magnitude 1 —
/// loose enough for differently-ordered reductions, tight enough that any
/// genuine algorithmic divergence fails it.
constexpr bool fp_equal(double a, double b, double rel_tol = 1e-12,
                        double abs_tol = 0.0) noexcept {
  const double diff = a > b ? a - b : b - a;
  const double abs_a = a < 0.0 ? -a : a;
  const double abs_b = b < 0.0 ? -b : b;
  const double mag = abs_a > abs_b ? abs_a : abs_b;
  const double bound = rel_tol * mag;
  return diff <= (abs_tol > bound ? abs_tol : bound);
}

/// Intentional bit-exact comparison. By calling this instead of writing
/// `a == b` you are asserting the comparison is a sentinel or guard test,
/// not a numeric-agreement check.
constexpr bool fp_exact_equal(double a, double b) noexcept {
  return a == b;  // the one sanctioned exact compare
}

}  // namespace hspec::util
