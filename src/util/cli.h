#pragma once
// Minimal declarative command-line parsing for examples and benches.
// Supports `--name value`, `--name=value`, and boolean `--flag`.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hspec::util {

class Cli {
 public:
  /// Parse argv. Throws std::invalid_argument on malformed input.
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace hspec::util
