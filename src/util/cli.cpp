#include "util/cli.h"

#include <stdexcept>

namespace hspec::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) throw std::invalid_argument("bare '--' not supported");
    if (auto eq = body.find('='); eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "true";  // boolean flag
    }
  }
}

bool Cli::has(const std::string& name) const { return options_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const std::int64_t value = std::stoll(it->second, &consumed);
    if (consumed != it->second.size())
      throw std::invalid_argument("trailing characters");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

double Cli::get_double(const std::string& name, double fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("option --" + name + " expects a boolean, got '" +
                              v + "'");
}

}  // namespace hspec::util
