#pragma once
// Debug-build invariant checks for the scheduler hot paths.
//
// HSPEC_DCHECK(cond, msg) aborts with file:line + msg when `cond` is false.
// Active in debug builds (NDEBUG unset) and whenever HSPEC_ENABLE_DCHECK is
// defined (the sanitizer CI builds define it so TSan/ASan/UBSan runs also
// verify scheduler invariants); compiled out entirely otherwise, so release
// hot paths pay nothing — not even the operand evaluation.

#include <cstdio>
#include <cstdlib>

#if !defined(NDEBUG) && !defined(HSPEC_ENABLE_DCHECK)
#define HSPEC_ENABLE_DCHECK 1
#endif

#if defined(HSPEC_ENABLE_DCHECK)
#define HSPEC_DCHECK(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "%s:%d: HSPEC_DCHECK failed: %s — %s\n",   \
                   __FILE__, __LINE__, #cond, (msg));                 \
      std::abort();                                                   \
    }                                                                 \
  } while (false)
#else
#define HSPEC_DCHECK(cond, msg) \
  do {                          \
  } while (false)
#endif
