#pragma once
// Compile-time dimensional correctness for the physics pipeline.
//
// Every temperature/density/energy quantity used to travel the
// apec -> atomic -> rrc -> quad -> nei chain as a raw `double` whose unit
// lived only in a field-name suffix (`kT_keV`, `ne_cm3`, `time_s`). The
// paper's accuracy claim (Fig. 8: relative error < 1e-6 over ~2e8
// integrals) rests on every one of those doubles reaching the right
// formula in the right unit — a class of silent bug hybrid integrators in
// related work report as their dominant validation cost. This header makes
// it a *build failure* instead:
//
//   Quantity<Dim<...>> is a strong type holding one double. Dimensions are
//   compile-time exponent tuples over the repo's basis (energy [keV],
//   length [cm], time [s], thermodynamic temperature [K]). `*` and `/`
//   compose dimensions; `+`, `-` and comparisons require identical ones, so
//   `KeV + Seconds` does not compile (proved by a negative-compile test).
//   Products whose dimensions cancel collapse to plain `double`.
//
// Zero overhead by construction: a Quantity is exactly one double —
// static_asserted below — so GPU-kernel and shm layouts are untouched.
// Raw doubles remain legal at exactly two kinds of edge:
//   * the vgpu kernel / quad::Integrand boundary (device code is unitless;
//     callers unwrap with .value() when building the integrand lambda), and
//   * shm / serialization records (core::Task, apec::GridPoint fields),
//     which carry unit-suffixed field names checked by `tools/hlint`
//     rule [unit-suffix] instead.
// See DESIGN.md §10 for the full units-and-numerics model.

#include <ostream>
#include <type_traits>

namespace hspec::util {

/// Dimension exponents over the library's unit basis: energy is carried in
/// keV, length in cm, time in s, temperature in K (constants below convert).
template <int EnergyExp, int LengthExp, int TimeExp, int TemperatureExp>
struct Dim {
  static constexpr int energy = EnergyExp;
  static constexpr int length = LengthExp;
  static constexpr int time = TimeExp;
  static constexpr int temperature = TemperatureExp;
};

using DimNone = Dim<0, 0, 0, 0>;

template <class A, class B>
using DimMultiply = Dim<A::energy + B::energy, A::length + B::length,
                        A::time + B::time, A::temperature + B::temperature>;

template <class A, class B>
using DimDivide = Dim<A::energy - B::energy, A::length - B::length,
                      A::time - B::time, A::temperature - B::temperature>;

/// One double with a compile-time dimension. Construction from a raw
/// double is explicit (that is the point); unwrapping is spelled .value().
template <class D>
class Quantity {
 public:
  using dimension = D;

  constexpr Quantity() noexcept = default;
  constexpr explicit Quantity(double v) noexcept : v_(v) {}

  constexpr double value() const noexcept { return v_; }

  constexpr Quantity operator-() const noexcept { return Quantity{-v_}; }
  constexpr Quantity operator+() const noexcept { return *this; }

  constexpr Quantity& operator+=(Quantity o) noexcept {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) noexcept {
    v_ -= o.v_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) noexcept {
    v_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) noexcept {
    v_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) noexcept {
    return Quantity{a.v_ + b.v_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) noexcept {
    return Quantity{a.v_ - b.v_};
  }
  friend constexpr Quantity operator*(Quantity a, double s) noexcept {
    return Quantity{a.v_ * s};
  }
  friend constexpr Quantity operator*(double s, Quantity a) noexcept {
    return Quantity{s * a.v_};
  }
  friend constexpr Quantity operator/(Quantity a, double s) noexcept {
    return Quantity{a.v_ / s};
  }

  friend constexpr bool operator==(Quantity a, Quantity b) noexcept = default;
  friend constexpr auto operator<=>(Quantity a, Quantity b) noexcept = default;

  friend std::ostream& operator<<(std::ostream& os, Quantity q) {
    return os << q.v_;  // bare magnitude; the type carries the unit
  }

 private:
  double v_ = 0.0;
};

/// Cross-dimension product: exponents add; a dimensionless result collapses
/// to plain double (so `PerCm3 / PerCm3` is just a fraction again).
template <class DA, class DB>
constexpr auto operator*(Quantity<DA> a, Quantity<DB> b) noexcept {
  using R = DimMultiply<DA, DB>;
  if constexpr (std::is_same_v<R, DimNone>)
    return a.value() * b.value();
  else
    return Quantity<R>{a.value() * b.value()};
}

template <class DA, class DB>
constexpr auto operator/(Quantity<DA> a, Quantity<DB> b) noexcept {
  using R = DimDivide<DA, DB>;
  if constexpr (std::is_same_v<R, DimNone>)
    return a.value() / b.value();
  else
    return Quantity<R>{a.value() / b.value()};
}

/// double / Quantity inverts the dimension.
template <class D>
constexpr auto operator/(double s, Quantity<D> b) noexcept {
  return Quantity<DimDivide<DimNone, D>>{s / b.value()};
}

// ---------------------------------------------------------------------------
// The repo's physics vocabulary.

using Dimensionless = Quantity<DimNone>;
using KeV = Quantity<Dim<1, 0, 0, 0>>;      ///< photon/particle/thermal energy
using Kelvin = Quantity<Dim<0, 0, 0, 1>>;   ///< thermodynamic temperature
using Seconds = Quantity<Dim<0, 0, 1, 0>>;  ///< epoch / evolution time
using PerSecond = Quantity<Dim<0, 0, -1, 0>>;  ///< decay / transition rate
using Cm2 = Quantity<Dim<0, 2, 0, 0>>;         ///< cross section
using Cm3 = Quantity<Dim<0, 3, 0, 0>>;         ///< volume
using PerCm3 = Quantity<Dim<0, -3, 0, 0>>;     ///< number density
using Cm3PerS = Quantity<Dim<0, 3, -1, 0>>;    ///< rate coefficient [cm^3/s]
/// Per-bin emissivity Lambda_RRC of Eq. (2): energy per unit time per unit
/// volume [keV s^-1 cm^-3] (the photon-weighted bin integral).
using EmissivityPhotCm3PerS = Quantity<Dim<1, -3, -1, 0>>;
/// Differential emissivity dP/dE of Eq. (1): EmissivityPhotCm3PerS per keV,
/// i.e. [keV s^-1 cm^-3 keV^-1] — the energy exponent cancels.
using SpectralEmissivity = Quantity<Dim<0, -3, -1, 0>>;

// Zero-overhead guarantee: a Quantity is bit-identical to the double it
// wraps, so arrays of them can cross the vgpu / shm edges unchanged.
static_assert(sizeof(KeV) == sizeof(double));
static_assert(alignof(KeV) == alignof(double));
static_assert(std::is_trivially_copyable_v<KeV>);
static_assert(std::is_standard_layout_v<KeV>);

// Dimensional sanity of the vocabulary itself.
static_assert(
    std::is_same_v<decltype(PerCm3{} * Cm3PerS{}), PerSecond>,
    "density * rate coefficient must be a per-second rate");
static_assert(
    std::is_same_v<decltype(SpectralEmissivity{} * KeV{}),
                   EmissivityPhotCm3PerS>,
    "dP/dE * bin width must be the bin emissivity");

// ---------------------------------------------------------------------------
// Unit conversions. These constants are the single source of truth; the
// legacy names in atomic/constants.h alias them.

/// Boltzmann constant [keV / K].
inline constexpr double kBoltzmannKeVPerKelvin = 8.617333262e-8;

/// hc [keV * Angstrom]: E[keV] = kHCKeVPerAngstrom / lambda[Angstrom].
inline constexpr double kHCKeVPerAngstrom = 12.39841984;

constexpr Kelvin kev_to_kelvin(KeV e) noexcept {
  return Kelvin{e.value() / kBoltzmannKeVPerKelvin};
}

constexpr KeV kelvin_to_kev(Kelvin t) noexcept {
  return KeV{t.value() * kBoltzmannKeVPerKelvin};
}

/// Photon wavelength [Angstrom] <-> energy. Wavelengths stay raw doubles
/// (suffix `_A`): they exist only at the Fig.-7 plotting boundary.
constexpr KeV angstrom_to_kev(double lambda_A) noexcept {
  return KeV{kHCKeVPerAngstrom / lambda_A};
}

constexpr double kev_to_angstrom(KeV e) noexcept {
  return kHCKeVPerAngstrom / e.value();
}

// ---------------------------------------------------------------------------
// Literals: `using namespace hspec::util::unit_literals;` then `2.0_keV`.

namespace unit_literals {

constexpr KeV operator""_keV(long double v) noexcept {
  return KeV{static_cast<double>(v)};
}
constexpr KeV operator""_keV(unsigned long long v) noexcept {
  return KeV{static_cast<double>(v)};
}
constexpr Kelvin operator""_K(long double v) noexcept {
  return Kelvin{static_cast<double>(v)};
}
constexpr Kelvin operator""_K(unsigned long long v) noexcept {
  return Kelvin{static_cast<double>(v)};
}
constexpr Seconds operator""_s(long double v) noexcept {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_s(unsigned long long v) noexcept {
  return Seconds{static_cast<double>(v)};
}
constexpr PerCm3 operator""_per_cm3(long double v) noexcept {
  return PerCm3{static_cast<double>(v)};
}
constexpr PerCm3 operator""_per_cm3(unsigned long long v) noexcept {
  return PerCm3{static_cast<double>(v)};
}
constexpr Cm2 operator""_cm2(long double v) noexcept {
  return Cm2{static_cast<double>(v)};
}
constexpr Cm2 operator""_cm2(unsigned long long v) noexcept {
  return Cm2{static_cast<double>(v)};
}

}  // namespace unit_literals

}  // namespace hspec::util
