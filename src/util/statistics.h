#pragma once
// Streaming summary statistics and small vector-statistics helpers.

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace hspec::util {

/// Welford's online mean/variance accumulator with min/max tracking.
/// Numerically stable for long streams; O(1) memory.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  void merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    mean_ = (na * mean_ + nb * other.mean_) / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    n_ += other.n_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::size_t count() const noexcept { return n_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile of a sample by linear interpolation (copies + sorts; use for
/// reporting, not hot paths). `p` in [0,100].
double percentile(std::span<const double> sample, double p);

/// Maximum relative error between two equally-sized series, |a-b|/max(|a|,floor).
double max_relative_error(std::span<const double> a, std::span<const double> b,
                          double floor = 1e-300);

/// Root-mean-square of a series.
double rms(std::span<const double> xs);

}  // namespace hspec::util
