#pragma once
// Deterministic, seedable pseudo-random number generation.
//
// All stochastic components of the library (synthetic atomic data, workload
// jitter in the discrete-event simulator, property-test input generation)
// draw from this generator so that every experiment is exactly reproducible
// from its seed. The core is SplitMix64 (for seeding) feeding xoshiro256**,
// the same construction recommended by Blackman & Vigna.

#include <array>
#include <cstdint>
#include <limits>

namespace hspec::util {

/// SplitMix64: used to expand a single 64-bit seed into a full state vector.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG with 2^256-1 period.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9d1c03a6b7f1f253ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    std::uint64_t x = operator()();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = operator()();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Derive an independent stream (e.g. one per MPI rank / grid point).
  constexpr Xoshiro256 split(std::uint64_t stream_id) noexcept {
    Xoshiro256 child(*this);
    child.state_[0] ^= 0x180ec6d33cfd0abaULL + stream_id;
    child.state_[3] += 0x2545f4914f6cdd1dULL * (stream_id + 1);
    // Burn a few outputs to decorrelate.
    for (int i = 0; i < 8; ++i) child();
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hspec::util
