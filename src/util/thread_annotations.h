#pragma once
// Clang thread-safety analysis for the repo's mutex-guarded state.
//
// The hot core is lock-free (core/shm atomics) but every shared service
// around it — device stats, stream overlap bookkeeping, buffer pools, the
// resident cache, minimpi mailboxes — is mutex-guarded. These macros let
// Clang prove, at compile time and on every build, that each GUARDED_BY
// member is only touched with its capability held (-Werror=thread-safety
// under the HSPEC_THREAD_SAFETY_ANALYSIS CMake option). GCC sees no-ops, so
// the annotations cost nothing on the default toolchain.
//
// std::mutex/std::lock_guard carry no annotations in libstdc++, so the
// analysis cannot see their acquire/release. util::Mutex and util::MutexLock
// are drop-in annotated wrappers; annotated classes must use them (hlint's
// sibling, the thread-safety build, only checks capabilities it can name).

#include <mutex>

#if defined(__clang__)
#define HSPEC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HSPEC_THREAD_ANNOTATION(x)  // no-op on GCC and MSVC
#endif

#define HSPEC_CAPABILITY(x) HSPEC_THREAD_ANNOTATION(capability(x))
#define HSPEC_SCOPED_CAPABILITY HSPEC_THREAD_ANNOTATION(scoped_lockable)
#define HSPEC_GUARDED_BY(x) HSPEC_THREAD_ANNOTATION(guarded_by(x))
#define HSPEC_PT_GUARDED_BY(x) HSPEC_THREAD_ANNOTATION(pt_guarded_by(x))
#define HSPEC_ACQUIRE(...) \
  HSPEC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define HSPEC_RELEASE(...) \
  HSPEC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define HSPEC_TRY_ACQUIRE(...) \
  HSPEC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define HSPEC_REQUIRES(...) \
  HSPEC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define HSPEC_EXCLUDES(...) HSPEC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define HSPEC_RETURN_CAPABILITY(x) HSPEC_THREAD_ANNOTATION(lock_returned(x))
#define HSPEC_NO_THREAD_SAFETY_ANALYSIS \
  HSPEC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace hspec::util {

/// std::mutex with the capability annotation the analysis needs to track
/// acquire/release through MutexLock.
class HSPEC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HSPEC_ACQUIRE() { mu_.lock(); }
  void unlock() HSPEC_RELEASE() { mu_.unlock(); }
  bool try_lock() HSPEC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Annotated std::lock_guard analogue. Also satisfies BasicLockable so
/// std::condition_variable_any can release/reacquire it inside wait() —
/// that round trip happens inside the (unanalyzed) standard library and
/// restores the held state, so the analysis stays sound.
class HSPEC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HSPEC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() HSPEC_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable surface for condition_variable_any::wait.
  void lock() HSPEC_ACQUIRE() { mu_.lock(); }
  void unlock() HSPEC_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace hspec::util
