#include "util/config.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hspec::util {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  std::string section;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#' || t[0] == ';') continue;
    if (t.front() == '[') {
      if (t.back() != ']')
        throw std::invalid_argument("config line " + std::to_string(line_no) +
                                    ": unterminated section header");
      section = trim(t.substr(1, t.size() - 2));
      continue;
    }
    const auto eq = t.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("config line " + std::to_string(line_no) +
                                  ": expected key = value");
    const std::string key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    if (key.empty())
      throw std::invalid_argument("config line " + std::to_string(line_no) +
                                  ": empty key");
    cfg.values_[section.empty() ? key : section + "." + key] = value;
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("Config: cannot open " + path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return parse(buffer.str());
}

bool Config::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Config::get(const std::string& key,
                        const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double v = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("config key " + key + " expects a number, got '" +
                                it->second + "'");
  }
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("config key " + key +
                                " expects an integer, got '" + it->second +
                                "'");
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("config key " + key + " expects a boolean, got '" +
                              v + "'");
}

}  // namespace hspec::util
