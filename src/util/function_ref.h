#pragma once
// Non-owning, trivially-copyable callable reference (a lightweight
// std::function alternative for hot paths). The referenced callable must
// outlive the FunctionRef — the usual pattern here is passing a lambda to an
// integrator that finishes before the full expression ends. Plain functions
// and captureless lambdas bind by pointer and have no lifetime concerns.

#include <memory>
#include <type_traits>
#include <utility>

namespace hspec::util {

template <class Signature>
class FunctionRef;

template <class R, class... Args>
class FunctionRef<R(Args...)> {
 public:
  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept {  // NOLINT(google-explicit-constructor)
    if constexpr (std::is_function_v<std::remove_reference_t<F>>) {
      // Plain function: store the function pointer itself.
      fn_ = reinterpret_cast<void (*)()>(std::addressof(f));
      call_ = [](Storage s, Args... args) -> R {
        return reinterpret_cast<std::remove_reference_t<F>*>(s.fn)(
            std::forward<Args>(args)...);
      };
    } else {
      obj_ = const_cast<void*>(static_cast<const void*>(std::addressof(f)));
      call_ = [](Storage s, Args... args) -> R {
        return (*static_cast<std::remove_reference_t<F>*>(s.obj))(
            std::forward<Args>(args)...);
      };
    }
  }

  R operator()(Args... args) const {
    Storage s;
    s.obj = obj_;
    if (fn_ != nullptr) s.fn = fn_;
    return call_(s, std::forward<Args>(args)...);
  }

 private:
  union Storage {
    void* obj;
    void (*fn)();
  };

  void* obj_ = nullptr;
  void (*fn_)() = nullptr;
  R (*call_)(Storage, Args...) = nullptr;
};

}  // namespace hspec::util
