#pragma once
// Exact NEI propagation by matrix exponential.
//
// For constant temperature and electron density the Eq. (4) system is
// linear with a constant tridiagonal rate matrix A:
//     y(t) = exp(A t) y(0).
// A has positive off-diagonals (S_i down, alpha_{i+1} up), so the diagonal
// similarity D with (d_{i+1}/d_i)^2 = S_i / alpha_{i+1} symmetrizes it:
//     B = D A D^{-1},  B_{i,i+1} = B_{i+1,i} = -ne sqrt(S_i alpha_{i+1}).
// Eigendecomposing B = V L V^T gives the exact propagator
//     y(t) = D^{-1} V exp(L t) V^T D y(0)
// — the classical eigenvalue method NEI codes use between hydro steps, and
// an independent oracle for the LSODA path in the tests.
//
// Spectral facts verified by the tests: all eigenvalues are <= 0 and
// exactly one is 0 (total density conservation); the t -> infinity limit is
// the CIE balance.

#include <span>
#include <vector>

#include "nei/system.h"
#include "ode/tridiag_eigen.h"

namespace hspec::nei {

class ExpmPropagator {
 public:
  /// Build the propagator for element `z` at fixed kT and ne.
  /// Throws std::domain_error when the symmetrizer's dynamic range exceeds
  /// double precision (extreme temperatures; use the LSODA path there).
  ExpmPropagator(int z, util::KeV kT, util::PerCm3 ne);

  /// y(t) from y(0). `t` in seconds; y0.size() must be Z+1.
  std::vector<double> propagate(std::span<const double> y0, double t) const;

  /// Ascending eigenvalues of the (symmetrized) rate matrix [1/s].
  const std::vector<double>& eigenvalues() const noexcept {
    return eigen_.values;
  }

  /// The equilibrium distribution (null-space eigenvector, normalized).
  std::vector<double> equilibrium() const;

  int z() const noexcept { return z_; }

 private:
  int z_;
  std::vector<double> log_d_;  ///< log of the symmetrizer diagonal
  ode::TridiagEigen eigen_;
};

}  // namespace hspec::nei
