#include "nei/trajectory.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hspec::nei {

namespace {
void check_positive(double v, const char* what) {
  if (!(v > 0.0)) throw std::invalid_argument(std::string(what) + " must be positive");
}
}  // namespace

PlasmaHistory constant_conditions(double ne_cm3, double kT_keV) {
  check_positive(ne_cm3, "ne");
  check_positive(kT_keV, "kT");
  PlasmaHistory h;
  h.ne_cm3 = ne_cm3;
  h.kT_keV = [kT_keV](double) { return kT_keV; };
  return h;
}

PlasmaHistory shock_heating(double ne_cm3, double kT_pre_keV,
                            double kT_post_keV, double t_shock_s) {
  check_positive(ne_cm3, "ne");
  check_positive(kT_pre_keV, "kT_pre");
  check_positive(kT_post_keV, "kT_post");
  PlasmaHistory h;
  h.ne_cm3 = ne_cm3;
  h.kT_keV = [=](double t) { return t < t_shock_s ? kT_pre_keV : kT_post_keV; };
  return h;
}

PlasmaHistory exponential_decay(double ne_cm3, double kT_initial_keV,
                                double kT_final_keV, double tau_s) {
  check_positive(ne_cm3, "ne");
  check_positive(kT_initial_keV, "kT_initial");
  check_positive(kT_final_keV, "kT_final");
  check_positive(tau_s, "tau");
  PlasmaHistory h;
  h.ne_cm3 = ne_cm3;
  h.kT_keV = [=](double t) {
    return kT_final_keV +
           (kT_initial_keV - kT_final_keV) * std::exp(-std::max(t, 0.0) / tau_s);
  };
  return h;
}

PlasmaHistory sampled_history(double ne_cm3,
                              std::vector<std::pair<double, double>> samples) {
  check_positive(ne_cm3, "ne");
  if (samples.empty())
    throw std::invalid_argument("sampled_history: no samples");
  for (std::size_t i = 0; i + 1 < samples.size(); ++i)
    if (!(samples[i].first < samples[i + 1].first))
      throw std::invalid_argument("sampled_history: times must ascend");
  for (const auto& [t, kt] : samples) check_positive(kt, "sampled kT");

  PlasmaHistory h;
  h.ne_cm3 = ne_cm3;
  h.kT_keV = [samples = std::move(samples)](double t) {
    if (t <= samples.front().first) return samples.front().second;
    if (t >= samples.back().first) return samples.back().second;
    const auto hi = std::upper_bound(
        samples.begin(), samples.end(), t,
        [](double value, const auto& s) { return value < s.first; });
    const auto lo = hi - 1;
    const double frac = (t - lo->first) / (hi->first - lo->first);
    return lo->second + frac * (hi->second - lo->second);
  };
  return h;
}

}  // namespace hspec::nei
