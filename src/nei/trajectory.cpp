#include "nei/trajectory.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hspec::nei {

namespace {
void check_positive(double v, const char* what) {
  if (!(v > 0.0)) throw std::invalid_argument(std::string(what) + " must be positive");
}
}  // namespace

PlasmaHistory constant_conditions(util::PerCm3 ne, util::KeV kT) {
  check_positive(ne.value(), "ne");
  check_positive(kT.value(), "kT");
  PlasmaHistory h;
  h.ne_cm3 = ne;
  h.kT_keV = [kt = kT.value()](double) { return kt; };
  return h;
}

PlasmaHistory shock_heating(util::PerCm3 ne, util::KeV kT_pre,
                            util::KeV kT_post, util::Seconds t_shock) {
  check_positive(ne.value(), "ne");
  check_positive(kT_pre.value(), "kT_pre");
  check_positive(kT_post.value(), "kT_post");
  PlasmaHistory h;
  h.ne_cm3 = ne;
  h.kT_keV = [pre = kT_pre.value(), post = kT_post.value(),
              ts = t_shock.value()](double t) { return t < ts ? pre : post; };
  return h;
}

PlasmaHistory exponential_decay(util::PerCm3 ne, util::KeV kT_initial,
                                util::KeV kT_final, util::Seconds tau) {
  check_positive(ne.value(), "ne");
  check_positive(kT_initial.value(), "kT_initial");
  check_positive(kT_final.value(), "kT_final");
  check_positive(tau.value(), "tau");
  PlasmaHistory h;
  h.ne_cm3 = ne;
  h.kT_keV = [ki = kT_initial.value(), kf = kT_final.value(),
              ts = tau.value()](double t) {
    return kf + (ki - kf) * std::exp(-std::max(t, 0.0) / ts);
  };
  return h;
}

PlasmaHistory sampled_history(util::PerCm3 ne,
                              std::vector<std::pair<double, double>> samples) {
  check_positive(ne.value(), "ne");
  if (samples.empty())
    throw std::invalid_argument("sampled_history: no samples");
  for (std::size_t i = 0; i + 1 < samples.size(); ++i)
    if (!(samples[i].first < samples[i + 1].first))
      throw std::invalid_argument("sampled_history: times must ascend");
  for (const auto& [t, kt] : samples) check_positive(kt, "sampled kT");

  PlasmaHistory h;
  h.ne_cm3 = ne;
  h.kT_keV = [samples = std::move(samples)](double t) {
    if (t <= samples.front().first) return samples.front().second;
    if (t >= samples.back().first) return samples.back().second;
    const auto hi = std::upper_bound(
        samples.begin(), samples.end(), t,
        [](double value, const auto& s) { return value < s.first; });
    const auto lo = hi - 1;
    const double frac = (t - lo->first) / (hi->first - lo->first);
    return lo->second + frac * (hi->second - lo->second);
  };
  return h;
}

}  // namespace hspec::nei
