#pragma once
// The hybrid CPU-GPU NEI driver of §IV-D: the spectral framework's
// scheduler applied to the packed ODE tasks. "In order to utilize the
// proposed hybrid approach more efficiently, a GPU-accelerated NEI solver
// is developed based on the classic ODE solver LSODA, and every ten
// time-dependent calculations are packed into one task."
//
// Ranks own disjoint grid points and march them through time; each packed
// window becomes one task dispatched through Algorithm 1 — to a virtual GPU
// when a queue slot is free, to the rank's own CPU (LSODA) otherwise.

#include <cstdint>
#include <vector>

#include "core/scheduler.h"
#include "nei/evolve.h"

namespace hspec::nei {

struct NeiHybridConfig {
  int ranks = 4;
  /// Virtual GPU count; -1 detects HSPEC_VGPU_COUNT (0 => CPU only).
  int devices = -1;
  /// Table II uses maximum queue length 8 for the NEI runs.
  int max_queue_length = 8;
  EvolveOptions evolve{};
};

struct NeiHybridResult {
  std::vector<PointState> states;  ///< final state of every grid point
  core::SchedulerStats scheduling;
  std::vector<std::int64_t> history;  ///< per-device task history
  std::size_t tasks_total = 0;
  EvolveReport evolution;  ///< aggregated solver telemetry
};

/// Evolve every grid point through `timesteps` steps of `dt` under the
/// shared plasma history, scheduling packed windows through the
/// shared-memory scheduler.
NeiHybridResult run_nei_hybrid(std::vector<PointState> initial_states,
                               const PlasmaHistory& history, double t0_s,
                               double dt_s, std::size_t timesteps,
                               const NeiHybridConfig& config = {});

}  // namespace hspec::nei
