#pragma once
// NEI time evolution for grid points (§IV-D): "At every point of parameter
// space, there are about a dozen of ODE groups and the size of each group
// equals the number of ionization states of its corresponding element."
// Tasks pack `steps_per_task` consecutive timesteps of one point ("every
// ten time-dependent calculations are packed into one task for reducing the
// frequency of data copy"); the GPU path evolves all element chains of the
// packed window inside one kernel, one thread per chain.

#include <vector>

#include "nei/system.h"
#include "ode/lsoda.h"
#include "vgpu/device.h"

namespace hspec::nei {

/// The elements a NEI point evolves — the paper's "about a dozen" chains.
/// Defaults to the 12 astrophysically dominant elements.
std::vector<int> default_element_set();

/// State of one grid point: per-element charge-state fractions.
struct PointState {
  std::vector<int> elements;              ///< atomic numbers
  std::vector<std::vector<double>> ions;  ///< ions[e][j], j = 0..Z_e

  static PointState equilibrium(const std::vector<int>& elements,
                                util::KeV kT);
  /// Largest |sum_j ions[e][j] - 1| across elements.
  double conservation_error() const;
};

struct EvolveOptions {
  ode::LsodaOptions solver{};
  std::size_t steps_per_task = 10;  ///< timesteps packed per task
  bool renormalize_each_step = true;
};

struct EvolveReport {
  std::size_t tasks = 0;
  std::size_t solver_steps = 0;
  std::size_t method_switches = 0;
  std::size_t stiff_solves = 0;  ///< chains that ended on the BDF method
};

/// Evolve all chains of one point across a single packed task window
/// [t_begin_s, t_begin_s + n_steps * dt] on the CPU (LSODA per chain). This is
/// the body of one schedulable NEI task.
EvolveReport evolve_window_cpu(PointState& state, const PlasmaHistory& history,
                               double t_begin_s, double dt_s, std::size_t n_steps,
                               const EvolveOptions& opt = {});

/// The same packed window on a virtual GPU: one kernel, one thread per
/// chain, one transfer each way.
EvolveReport evolve_window_gpu(PointState& state, const PlasmaHistory& history,
                               double t_begin_s, double dt_s, std::size_t n_steps,
                               vgpu::Device& device,
                               const EvolveOptions& opt = {});

/// Evolve one point through `timesteps` steps of length dt on the CPU
/// (LSODA per chain, task-packed like the paper's scheduling unit).
EvolveReport evolve_point_cpu(PointState& state, const PlasmaHistory& history,
                              double t0_s, double dt_s, std::size_t timesteps,
                              const EvolveOptions& opt = {});

/// The same evolution executed as virtual-GPU tasks: one kernel per packed
/// task, one device thread per element chain, state resident on the device
/// between the task's timesteps, one transfer each way per task.
EvolveReport evolve_point_gpu(PointState& state, const PlasmaHistory& history,
                              double t0_s, double dt_s, std::size_t timesteps,
                              vgpu::Device& device,
                              const EvolveOptions& opt = {});

}  // namespace hspec::nei
