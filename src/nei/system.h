#pragma once
// Non-Equilibrium Ionization (Eq. 4 of the paper): for element Z the charge
// states n_i (i = 0..Z) evolve by
//
//   d n_i / dt = Ne [ n_{i+1} a_{i+1} + n_{i-1} S_{i-1} - n_i (a_i + S_i) ]
//
// with ionization rates S_i(T) and recombination rates a_i(T) from the
// shared atomic substrate (so NEI relaxes exactly to the CIE balance the
// spectral calculator uses). The system is tridiagonal and stiff: rate
// magnitudes span many decades across charge states.

#include <functional>
#include <vector>

#include "ode/system.h"
#include "util/units.h"

namespace hspec::nei {

/// Plasma history driving the rates. kT may vary with time (shock heating
/// etc.); Ne is constant over an evolution window (Eq. 4's prefactor).
/// The temperature history stays a raw double(double) map — it is evaluated
/// inside the generic ODE right-hand side, which is a unitless math edge.
struct PlasmaHistory {
  util::PerCm3 ne_cm3{1.0};
  std::function<double(double)> kT_keV = [](double) { return 1.0; };
};

/// The Eq.-4 ODE system of one element. State = Z+1 charge-state fractions.
class NeiSystem : public ode::OdeSystem {
 public:
  NeiSystem(int z, PlasmaHistory history);

  std::size_t dimension() const override;
  void rhs(double t, std::span<const double> y,
           std::span<double> dydt) const override;
  bool has_jacobian() const override { return true; }
  void jacobian(double t, std::span<const double> y,
                ode::Matrix& j) const override;

  int z() const noexcept { return z_; }

  /// S_i and a_i at temperature kT (cached per call; exposed for tests).
  void rates_at(double kT_keV, std::vector<double>& ionization,
                std::vector<double>& recombination) const;

 private:
  int z_;
  PlasmaHistory history_;
};

/// Equilibrium start state: CIE fractions at kT (see atomic::cie_fractions).
std::vector<double> equilibrium_state(int z, util::KeV kT);

/// Fraction-conservation guard: rescale y to sum exactly 1 (the ODE
/// conserves the sum analytically; this removes integrator drift).
void renormalize(std::span<double> y);

}  // namespace hspec::nei
