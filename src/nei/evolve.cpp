#include "nei/evolve.h"

#include <cmath>
#include <stdexcept>

namespace hspec::nei {

std::vector<int> default_element_set() {
  // H, He, C, N, O, Ne, Mg, Si, S, Ca, Fe, Ni.
  return {1, 2, 6, 7, 8, 10, 12, 14, 16, 20, 26, 28};
}

PointState PointState::equilibrium(const std::vector<int>& elements,
                                   util::KeV kT) {
  PointState st;
  st.elements = elements;
  st.ions.reserve(elements.size());
  for (int z : elements) st.ions.push_back(equilibrium_state(z, kT));
  return st;
}

double PointState::conservation_error() const {
  double worst = 0.0;
  for (const auto& chain : ions) {
    double sum = 0.0;
    for (double v : chain) sum += v;
    worst = std::max(worst, std::fabs(sum - 1.0));
  }
  return worst;
}

EvolveReport evolve_window_cpu(PointState& state, const PlasmaHistory& history,
                               double t_begin_s, double dt_s, std::size_t n_steps,
                               const EvolveOptions& opt) {
  EvolveReport rep;
  rep.tasks = 1;
  for (std::size_t e = 0; e < state.elements.size(); ++e) {
    NeiSystem system(state.elements[e], history);
    auto& y = state.ions[e];
    if (y.size() != system.dimension())
      throw std::invalid_argument("evolve: state dimension mismatch");
    ode::SolveStats last{};
    for (std::size_t s = 0; s < n_steps; ++s) {
      const double ta = t_begin_s + static_cast<double>(s) * dt_s;
      last = ode::lsoda_integrate(system, ta, ta + dt_s, y, opt.solver);
      rep.solver_steps += last.steps;
      rep.method_switches += last.method_switches;
      if (opt.renormalize_each_step) renormalize(y);
    }
    if (last.stiff_finish) ++rep.stiff_solves;
  }
  return rep;
}

EvolveReport evolve_window_gpu(PointState& state, const PlasmaHistory& history,
                               double t_begin_s, double dt_s, std::size_t n_steps,
                               vgpu::Device& device, const EvolveOptions& opt) {
  // Flatten chain states into one device buffer; one H2D before the kernel,
  // one D2H after — the task-packing transfer pattern of §IV-D.
  std::vector<std::size_t> offsets;
  std::size_t total_states = 0;
  for (const auto& chain : state.ions) {
    offsets.push_back(total_states);
    total_states += chain.size();
  }
  std::vector<double> flat(total_states);
  for (std::size_t e = 0; e < state.ions.size(); ++e)
    std::copy(state.ions[e].begin(), state.ions[e].end(),
              flat.begin() + static_cast<std::ptrdiff_t>(offsets[e]));

  vgpu::DeviceBuffer state_dev = device.alloc(total_states * sizeof(double));
  device.copy_to_device(state_dev, flat.data(), total_states * sizeof(double));
  double* dev_state = state_dev.as<double>();

  EvolveReport rep;
  rep.tasks = 1;
  vgpu::WorkEstimate work;
  for (const auto& chain : state.ions) {
    const double dim = static_cast<double>(chain.size());
    work.flops += static_cast<double>(n_steps) *
                  (2.0 * dim * dim * dim / 3.0 + 8.0 * dim * dim);
  }
  work.device_bytes = total_states * sizeof(double) * 2 * n_steps;

  const auto n_chains = static_cast<unsigned>(state.ions.size());
  device.launch(
      {1, 1, 1}, {n_chains, 1, 1}, work, [&](const vgpu::KernelCtx& ctx) {
        const std::size_t e = ctx.thread_idx.x;
        NeiSystem system(state.elements[e], history);
        std::span<double> y(dev_state + offsets[e], system.dimension());
        ode::SolveStats last{};
        for (std::size_t s = 0; s < n_steps; ++s) {
          const double ta = t_begin_s + static_cast<double>(s) * dt_s;
          last = ode::lsoda_integrate(system, ta, ta + dt_s, y, opt.solver);
          rep.solver_steps += last.steps;
          rep.method_switches += last.method_switches;
          if (opt.renormalize_each_step) renormalize(y);
        }
        if (last.stiff_finish) ++rep.stiff_solves;
      });

  device.copy_to_host(flat.data(), state_dev, total_states * sizeof(double));
  for (std::size_t e = 0; e < state.ions.size(); ++e)
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(offsets[e]),
              flat.begin() + static_cast<std::ptrdiff_t>(offsets[e]) +
                  static_cast<std::ptrdiff_t>(state.ions[e].size()),
              state.ions[e].begin());
  return rep;
}

namespace {

void accumulate(EvolveReport& total, const EvolveReport& part) {
  total.tasks += part.tasks;
  total.solver_steps += part.solver_steps;
  total.method_switches += part.method_switches;
  total.stiff_solves += part.stiff_solves;
}

}  // namespace

EvolveReport evolve_point_cpu(PointState& state, const PlasmaHistory& history,
                              double t0_s, double dt_s, std::size_t timesteps,
                              const EvolveOptions& opt) {
  if (opt.steps_per_task == 0)
    throw std::invalid_argument("evolve: steps_per_task == 0");
  EvolveReport total;
  for (std::size_t done = 0; done < timesteps;) {
    const std::size_t n = std::min(opt.steps_per_task, timesteps - done);
    accumulate(total,
               evolve_window_cpu(state, history,
                                 t0_s + static_cast<double>(done) * dt_s, dt_s, n,
                                 opt));
    done += n;
  }
  return total;
}

EvolveReport evolve_point_gpu(PointState& state, const PlasmaHistory& history,
                              double t0_s, double dt_s, std::size_t timesteps,
                              vgpu::Device& device, const EvolveOptions& opt) {
  if (opt.steps_per_task == 0)
    throw std::invalid_argument("evolve: steps_per_task == 0");
  EvolveReport total;
  for (std::size_t done = 0; done < timesteps;) {
    const std::size_t n = std::min(opt.steps_per_task, timesteps - done);
    accumulate(total,
               evolve_window_gpu(state, history,
                                 t0_s + static_cast<double>(done) * dt_s, dt_s, n,
                                 device, opt));
    done += n;
  }
  return total;
}

}  // namespace hspec::nei
