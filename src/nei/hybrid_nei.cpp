#include "nei/hybrid_nei.h"

#include <stdexcept>

#include "minimpi/minimpi.h"
#include "util/thread_annotations.h"
#include "vgpu/device.h"

namespace hspec::nei {

NeiHybridResult run_nei_hybrid(std::vector<PointState> initial_states,
                               const PlasmaHistory& history, double t0_s,
                               double dt_s, std::size_t timesteps,
                               const NeiHybridConfig& config) {
  if (config.ranks < 1)
    throw std::invalid_argument("run_nei_hybrid: need at least one rank");
  if (config.evolve.steps_per_task == 0)
    throw std::invalid_argument("run_nei_hybrid: steps_per_task == 0");

  vgpu::DeviceRegistry registry(config.devices);
  const int n_dev = static_cast<int>(registry.device_count());
  core::ShmRegion shm =
      core::ShmRegion::create_inprocess(n_dev, config.max_queue_length);

  NeiHybridResult result;
  result.states = std::move(initial_states);

  util::Mutex agg_mu;

  minimpi::run(config.ranks, [&](minimpi::Communicator& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    const auto size = static_cast<std::size_t>(comm.size());
    core::TaskScheduler scheduler(shm.view());

    const std::size_t n = result.states.size();
    const std::size_t base = n / size;
    const std::size_t extra = n % size;
    const std::size_t begin = rank * base + std::min(rank, extra);
    const std::size_t end = begin + base + (rank < extra ? 1 : 0);

    EvolveReport local;
    std::size_t my_tasks = 0;
    for (std::size_t p = begin; p < end; ++p) {
      PointState& state = result.states[p];  // rank-disjoint: no races
      for (std::size_t done = 0; done < timesteps;) {
        const std::size_t steps =
            std::min(config.evolve.steps_per_task, timesteps - done);
        const double t_begin_s = t0_s + static_cast<double>(done) * dt_s;
        ++my_tasks;
        const int device = scheduler.sche_alloc();
        EvolveReport rep;
        if (device >= 0) {
          rep = evolve_window_gpu(state, history, t_begin_s, dt_s, steps,
                                  registry.device(
                                      static_cast<std::size_t>(device)),
                                  config.evolve);
          scheduler.sche_free(device);
        } else {
          rep = evolve_window_cpu(state, history, t_begin_s, dt_s, steps,
                                  config.evolve);
        }
        local.tasks += rep.tasks;
        local.solver_steps += rep.solver_steps;
        local.method_switches += rep.method_switches;
        local.stiff_solves += rep.stiff_solves;
        done += steps;
      }
    }

    comm.barrier();
    {
      util::MutexLock lock(agg_mu);
      result.scheduling.gpu_allocations += scheduler.stats().gpu_allocations;
      result.scheduling.cpu_fallbacks += scheduler.stats().cpu_fallbacks;
      result.tasks_total += my_tasks;
      result.evolution.tasks += local.tasks;
      result.evolution.solver_steps += local.solver_steps;
      result.evolution.method_switches += local.method_switches;
      result.evolution.stiff_solves += local.stiff_solves;
    }
  });

  for (int d = 0; d < n_dev; ++d)
    result.history.push_back(
        shm.view().history[d].load(std::memory_order_relaxed));
  return result;
}

}  // namespace hspec::nei
