#pragma once
// Plasma-history builders for NEI evolution along simulation trajectories —
// the tracer-particle pattern of the authors' previous work (Xiao et al.,
// ICA3PP 2014): each particle carries a temperature history from the
// hydrodynamic simulation, and NEI integrates the ionization state along it.

#include <vector>

#include "nei/system.h"

namespace hspec::nei {

/// Constant-condition history.
PlasmaHistory constant_conditions(double ne_cm3, double kT_keV);

/// Instantaneous shock at t_shock: kT jumps from kT_pre to kT_post.
PlasmaHistory shock_heating(double ne_cm3, double kT_pre_keV,
                            double kT_post_keV, double t_shock_s = 0.0);

/// Exponential relaxation kT(t) = kT_final + (kT_initial - kT_final)
/// * exp(-t / tau): adiabatic expansion cooling and similar.
PlasmaHistory exponential_decay(double ne_cm3, double kT_initial_keV,
                                double kT_final_keV, double tau_s);

/// Piecewise-linear interpolation through (time, kT) samples — the shape a
/// tracer particle's recorded history takes. Samples must ascend in time;
/// the history clamps outside the sampled range.
PlasmaHistory sampled_history(double ne_cm3,
                              std::vector<std::pair<double, double>> samples);

}  // namespace hspec::nei
