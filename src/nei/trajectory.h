#pragma once
// Plasma-history builders for NEI evolution along simulation trajectories —
// the tracer-particle pattern of the authors' previous work (Xiao et al.,
// ICA3PP 2014): each particle carries a temperature history from the
// hydrodynamic simulation, and NEI integrates the ionization state along it.

#include <vector>

#include "nei/system.h"
#include "util/units.h"

namespace hspec::nei {

/// Constant-condition history.
PlasmaHistory constant_conditions(util::PerCm3 ne, util::KeV kT);

/// Instantaneous shock at t_shock: kT jumps from kT_pre to kT_post.
PlasmaHistory shock_heating(util::PerCm3 ne, util::KeV kT_pre,
                            util::KeV kT_post,
                            util::Seconds t_shock = util::Seconds{0.0});

/// Exponential relaxation kT(t) = kT_final + (kT_initial - kT_final)
/// * exp(-t / tau): adiabatic expansion cooling and similar.
PlasmaHistory exponential_decay(util::PerCm3 ne, util::KeV kT_initial,
                                util::KeV kT_final, util::Seconds tau);

/// Piecewise-linear interpolation through (time [s], kT [keV]) samples — the
/// shape a tracer particle's recorded history takes: raw pairs, exactly as a
/// hydro code dumps them. Samples must ascend in time; the history clamps
/// outside the sampled range.
PlasmaHistory sampled_history(util::PerCm3 ne,
                              std::vector<std::pair<double, double>> samples);

}  // namespace hspec::nei
