#include "nei/system.h"

#include <stdexcept>

#include "atomic/element.h"
#include "atomic/ion_balance.h"
#include "atomic/rates.h"

namespace hspec::nei {

NeiSystem::NeiSystem(int z, PlasmaHistory history)
    : z_(z), history_(std::move(history)) {
  if (z < 1 || z > atomic::kMaxZ)
    throw std::invalid_argument("NeiSystem: Z out of range");
  if (!history_.kT_keV)
    throw std::invalid_argument("NeiSystem: missing temperature history");
}

std::size_t NeiSystem::dimension() const {
  return static_cast<std::size_t>(z_) + 1;
}

void NeiSystem::rates_at(double kT_keV, std::vector<double>& s,
                         std::vector<double>& a) const {
  const auto n = dimension();
  s.assign(n, 0.0);
  a.assign(n, 0.0);
  const util::KeV kT{kT_keV};
  for (int j = 0; j < z_; ++j)
    s[static_cast<std::size_t>(j)] =
        atomic::ionization_rate(z_, j, kT).value();
  for (int j = 1; j <= z_; ++j)
    a[static_cast<std::size_t>(j)] =
        atomic::recombination_rate(z_, j, kT).value();
}

void NeiSystem::rhs(double t, std::span<const double> y,
                    std::span<double> dydt) const {
  const std::size_t n = dimension();
  if (y.size() != n || dydt.size() != n)
    throw std::invalid_argument("NeiSystem::rhs: size mismatch");
  const double kT = history_.kT_keV(t);
  std::vector<double> s, a;
  rates_at(kT, s, a);
  const double ne = history_.ne_cm3.value();
  for (std::size_t i = 0; i < n; ++i) {
    double acc = -y[i] * (a[i] + s[i]);
    if (i + 1 < n) acc += y[i + 1] * a[i + 1];
    if (i > 0) acc += y[i - 1] * s[i - 1];
    dydt[i] = ne * acc;
  }
}

void NeiSystem::jacobian(double t, std::span<const double> y,
                         ode::Matrix& j) const {
  const std::size_t n = dimension();
  if (y.size() != n || j.rows() != n || j.cols() != n)
    throw std::invalid_argument("NeiSystem::jacobian: size mismatch");
  const double kT = history_.kT_keV(t);
  std::vector<double> s, a;
  rates_at(kT, s, a);
  const double ne = history_.ne_cm3.value();
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) j(r, c) = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    j(i, i) = -ne * (a[i] + s[i]);
    if (i + 1 < n) j(i, i + 1) = ne * a[i + 1];
    if (i > 0) j(i, i - 1) = ne * s[i - 1];
  }
}

std::vector<double> equilibrium_state(int z, util::KeV kT) {
  return atomic::cie_fractions(z, kT);
}

void renormalize(std::span<double> y) {
  double sum = 0.0;
  for (double& v : y) {
    if (v < 0.0) v = 0.0;  // clip integrator undershoot
    sum += v;
  }
  if (sum <= 0.0) throw std::runtime_error("renormalize: empty state");
  for (double& v : y) v /= sum;
}

}  // namespace hspec::nei
