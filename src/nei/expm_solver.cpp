#include "nei/expm_solver.h"

#include <cmath>
#include <stdexcept>

#include "atomic/element.h"
#include "atomic/rates.h"
#include "ode/tridiag_eigen.h"

namespace hspec::nei {

ExpmPropagator::ExpmPropagator(int z, util::KeV kT, util::PerCm3 ne) : z_(z) {
  if (z < 1 || z > atomic::kMaxZ)
    throw std::invalid_argument("ExpmPropagator: Z out of range");
  const double ne_cm3 = ne.value();
  if (kT.value() <= 0.0 || ne_cm3 <= 0.0)
    throw std::invalid_argument("ExpmPropagator: kT and ne must be positive");
  const auto n = static_cast<std::size_t>(z) + 1;

  std::vector<double> s(n, 0.0);
  std::vector<double> a(n, 0.0);
  for (int j = 0; j < z; ++j)
    s[static_cast<std::size_t>(j)] = atomic::ionization_rate(z, j, kT).value();
  for (int j = 1; j <= z; ++j)
    a[static_cast<std::size_t>(j)] =
        atomic::recombination_rate(z, j, kT).value();

  // Symmetrizer: B = D A D^{-1} needs B_{i,i+1} == B_{i+1,i}, i.e.
  // a_{i+1} d_i / d_{i+1} == S_i d_{i+1} / d_i, so
  // log d_{i+1} = log d_i + (log a_{i+1} - log S_i) / 2.
  log_d_.assign(n, 0.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (s[i] <= 0.0 || a[i + 1] <= 0.0)
      throw std::domain_error(
          "ExpmPropagator: vanishing rate breaks the symmetrization");
    log_d_[i + 1] = log_d_[i] + 0.5 * (std::log(a[i + 1]) - std::log(s[i]));
  }
  double lo = log_d_[0];
  double hi = log_d_[0];
  for (double v : log_d_) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // Precision budget: the unsymmetrization multiplies results by up to
  // e^range, amplifying rounding to ~ e^range * machine-eps. A range of 20
  // keeps conservation at the 1e-7 level; beyond that the method silently
  // loses the minority charge states — refuse and let callers fall back to
  // the LSODA path (heavy elements at most temperatures land here).
  if (hi - lo > 20.0)
    throw std::domain_error(
        "ExpmPropagator: symmetrizer dynamic range exceeds double precision "
        "for this (Z, kT); use the LSODA path");

  std::vector<double> diag(n);
  std::vector<double> off(n - 1);
  for (std::size_t i = 0; i < n; ++i) diag[i] = -ne_cm3 * (s[i] + a[i]);
  for (std::size_t i = 0; i + 1 < n; ++i)
    off[i] = ne_cm3 * std::sqrt(s[i] * a[i + 1]);
  // Note sign: A's off-diagonals are +S_i, +a_{i+1}; B's are +sqrt(S a).
  eigen_ = ode::tridiagonal_eigen(diag, off);
}

std::vector<double> ExpmPropagator::propagate(std::span<const double> y0,
                                              double t) const {
  const std::size_t n = log_d_.size();
  if (y0.size() != n)
    throw std::invalid_argument("ExpmPropagator: state size mismatch");
  if (t < 0.0) throw std::invalid_argument("ExpmPropagator: negative time");

  // w = V^T D y0.
  std::vector<double> dy(n);
  for (std::size_t i = 0; i < n; ++i) dy[i] = std::exp(log_d_[i]) * y0[i];
  std::vector<double> w(n, 0.0);
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i) w[k] += eigen_.vectors(i, k) * dy[i];
  // y(t) = D^{-1} V exp(L t) w.
  std::vector<double> y(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    const double decay = std::exp(eigen_.values[k] * t);
    for (std::size_t i = 0; i < n; ++i)
      y[i] += eigen_.vectors(i, k) * decay * w[k];
  }
  for (std::size_t i = 0; i < n; ++i) y[i] *= std::exp(-log_d_[i]);
  return y;
}

std::vector<double> ExpmPropagator::equilibrium() const {
  // The zero eigenvalue is the largest (all others negative); its
  // eigenvector, unsymmetrized and normalized, is the equilibrium.
  const std::size_t n = log_d_.size();
  const std::size_t k = n - 1;  // ascending order: last is the largest
  std::vector<double> y(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = eigen_.vectors(i, k) * std::exp(-log_d_[i]);
    sum += y[i];
  }
  for (double& v : y) v /= sum;
  return y;
}

}  // namespace hspec::nei
