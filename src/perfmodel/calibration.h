#pragma once
// Calibration of the performance model against the paper's testbed
// (§IV: 2x Xeon E5-2640 @ 2.5 GHz, 24 cores; 4x Tesla C2075; PCIe 2.0).
//
// Every constant is pinned to a quantity the paper reports:
//  * serial APEC ~ 800 s per grid point, >90% of it in integrals (§I);
//  * 24-rank MPI-only speedup 13.5x (§IV) -> effective 13.5 "core
//    equivalents" of aggregate CPU throughput under full contention;
//  * hybrid Ion-granularity speedups 196/279/306/311 for 1-4 GPUs and the
//    Level curve at roughly half (Fig. 3) -> per-task fixed GPU overhead
//    dominated by the Fermi inter-process context switch (~2.5 ms), kernel
//    ~1.3 ms per energy level, CPU-side task preparation ~125 ms;
//  * Table I's complexity dial: Romberg with k dichotomies costs 2^k + 1
//    integrand evaluations per bin.
//
// bench/baseline_audit recomputes the paper anchors from these constants.

#include "core/task.h"
#include "vgpu/cost_model.h"
#include "vgpu/device_properties.h"

namespace hspec::perfmodel {

struct PaperCalibration {
  vgpu::DeviceProperties gpu = vgpu::tesla_c2075();
  vgpu::CpuCoreProperties cpu = vgpu::xeon_e5_2640_core();

  /// Sustained scalar DP throughput of one core on branchy QAGS code.
  double cpu_sustained_gflops = 0.60;
  /// Average QAGS cost of one RRC bin integral on the CPU:
  /// ~3.5 Gauss-Kronrod-21 applications x 60 flops per evaluation.
  double cpu_flops_per_integral = 4400.0;
  /// Average flops one integrand evaluation costs inside the GPU kernel
  /// (special-function units make exp/pow cheaper than scalar CPU code).
  double gpu_flops_per_eval = 26.0;
  /// Vector lanes the kernel's integrand evaluations retire at (the
  /// WorkEstimate::lanes fed to the cost model). 1.0 — the scalar path —
  /// keeps every paper anchor unchanged; set to vgpu::kBatchLanes to model
  /// a batched-kernel run.
  double kernel_simd_lanes = 1.0;
  /// CPU-side preparation of one task splits into a fixed part (scheduler
  /// round trip, task packaging, host-side result merge — paid per task
  /// regardless of granularity) and a scalable part proportional to the
  /// task's level count (atomic data assembly). Together they are the <10%
  /// non-integral share of serial APEC (~115 ms per ion task).
  double task_fixed_prep_s = 0.018;
  double ion_scalable_prep_s = 0.097;
  /// Fermi inter-process context switch per submitted task
  /// ("application-level context switching is necessary on Fermi").
  double gpu_context_switch_s = 2.5e-3;
  /// Aggregate CPU throughput of the 24-rank node in units of one core
  /// (memory-bandwidth contention: the paper measures 13.5x, not 24x).
  double node_cpu_core_equivalents = 13.5;
  /// Shared-memory scheduler round trip (shmat + atomic ops).
  double shm_scheduler_overhead_s = 2e-6;
  /// MPS-style client-server scheduler round trip (§II-B ablation):
  /// an IPC request/response through the MPS server per task.
  double mps_scheduler_overhead_s = 2.0e-4;
};

/// The paper-scale workload: 496 ion units x ~4 levels x 5e4 bins
/// (~1e8 integrals per grid point, "up to 2.0e8").
core::WorkloadParams paper_workload();

/// Derived per-task durations for the discrete-event simulator.
class SpectralCostModel {
 public:
  SpectralCostModel(PaperCalibration calib, core::WorkloadParams workload);

  /// Integrand evaluations one bin costs on the GPU under the workload's
  /// kernel method (Simpson-64 => 129; Romberg-k => 2^k + 1).
  double gpu_evals_per_bin() const;

  /// --- Ion granularity -------------------------------------------------
  double ion_prep_s() const;      ///< CPU task preparation
  double ion_cpu_s() const;       ///< QAGS fallback execution (no prep)
  double ion_gpu_s() const;       ///< context switch + kernels + transfers

  /// --- Level granularity -----------------------------------------------
  double level_prep_s() const;
  double level_cpu_s() const;
  double level_gpu_s() const;

  /// Serial APEC time for one grid point (the paper's ~800 s anchor).
  double serial_point_s() const;
  /// MPI-only time for `points` grid points on the 24-rank node.
  double mpi_only_s(std::size_t points, int ranks = 24) const;

  const PaperCalibration& calibration() const noexcept { return calib_; }
  const core::WorkloadParams& workload() const noexcept { return workload_; }

  /// The calibration's knobs in the shared vgpu::estimated_task_gpu_s
  /// shape — what the static scheduling policies partition by.
  vgpu::TaskCostParams task_cost_params() const;

 private:
  double kernel_time_per_level_s() const;
  PaperCalibration calib_;
  core::WorkloadParams workload_;
  vgpu::GpuCostModel gpu_model_;
};

}  // namespace hspec::perfmodel
