#pragma once
// Cost model for the Non-Equilibrium Ionization adaptability study (§IV-D,
// Table II): one task packs ten time-dependent calculations of one grid
// point's ~dozen stiff ODE groups ("every ten time-dependent calculations
// are packed into one task for reducing the frequency of data copy").
//
// Anchors: pure-MPI 24 ranks is the Table II baseline (8785 s for the
// 1e6-point x 1000-step testcase, from 3137 s x 2.8); hybrid reaches
// 2.8/5.9/10.8/15.1x for 1-4 GPUs at max queue length 8.

#include <cstddef>

#include "perfmodel/calibration.h"

namespace hspec::perfmodel {

struct NeiWorkload {
  std::size_t grid_points = 1'000'000;
  std::size_t timesteps = 1000;
  std::size_t steps_per_task = 10;
  std::size_t ode_groups_per_point = 12;   ///< ~a dozen element chains
  std::size_t mean_states_per_group = 16;  ///< ionization states per chain

  std::size_t tasks_per_point() const noexcept {
    return timesteps / steps_per_task;
  }
  std::size_t total_tasks() const noexcept {
    return grid_points * tasks_per_point();
  }
};

class NeiCostModel {
 public:
  NeiCostModel(PaperCalibration calib, NeiWorkload workload);

  /// CPU (LSODA) execution of one packed task on one core.
  double cpu_task_s() const;
  /// CPU-side preparation (rate evaluation, task packing).
  double prep_s() const;
  /// GPU execution of one packed task (context switch + batched solver
  /// kernels + one transfer each way).
  double gpu_task_s() const;

  /// Pure-MPI runtime for the full workload on the 24-rank node.
  double mpi_only_s(int ranks = 24) const;

  const NeiWorkload& workload() const noexcept { return workload_; }

 private:
  PaperCalibration calib_;
  NeiWorkload workload_;
  vgpu::GpuCostModel gpu_model_;
};

}  // namespace hspec::perfmodel
