#include "perfmodel/nei_cost.h"

#include <stdexcept>

namespace hspec::perfmodel {

namespace {

/// LSODA flops for one implicit step of one ODE group: Jacobian + dense LU
/// (n^3/3 multiply-adds) + a few Newton back-substitutions.
double flops_per_group_step(std::size_t n_states) {
  const double n = static_cast<double>(n_states);
  return 2.0 * n * n * n / 3.0 + 8.0 * n * n;
}

}  // namespace

NeiCostModel::NeiCostModel(PaperCalibration calib, NeiWorkload workload)
    : calib_(calib), workload_(workload), gpu_model_(calib.gpu) {
  if (workload_.steps_per_task == 0 ||
      workload_.timesteps % workload_.steps_per_task != 0)
    throw std::invalid_argument(
        "NeiCostModel: steps_per_task must divide timesteps");
}

double NeiCostModel::cpu_task_s() const {
  const double flops = static_cast<double>(workload_.steps_per_task) *
                       static_cast<double>(workload_.ode_groups_per_point) *
                       flops_per_group_step(workload_.mean_states_per_group);
  return flops / (calib_.cpu_sustained_gflops * 1e9);
}

double NeiCostModel::prep_s() const {
  // Rate-coefficient evaluation and task packing: ~10% of the solve.
  return 0.092 * cpu_task_s();
}

double NeiCostModel::gpu_task_s() const {
  vgpu::WorkEstimate work;
  work.flops = static_cast<double>(workload_.steps_per_task) *
               static_cast<double>(workload_.ode_groups_per_point) *
               flops_per_group_step(workload_.mean_states_per_group);
  work.device_bytes = 4096;
  // Ten-step packing runs inside a persistent per-process solver context, so
  // unlike the spectral kernels there is no per-task Fermi context switch;
  // the input state rides in the kernel arguments and only the resulting
  // abundances come back over PCIe once per task.
  return gpu_model_.kernel_time_s(work) +
         gpu_model_.transfer_time_s(workload_.ode_groups_per_point *
                                    workload_.mean_states_per_group *
                                    sizeof(double));
}

double NeiCostModel::mpi_only_s(int ranks) const {
  if (ranks < 1) throw std::invalid_argument("NeiCostModel: ranks < 1");
  const double per_task = prep_s() + cpu_task_s();
  const double speedup = std::min<double>(
      static_cast<double>(ranks), calib_.node_cpu_core_equivalents);
  return static_cast<double>(workload_.total_tasks()) * per_task / speedup;
}

}  // namespace hspec::perfmodel
