#include "perfmodel/calibration.h"

#include <stdexcept>

namespace hspec::perfmodel {

core::WorkloadParams paper_workload() {
  core::WorkloadParams w;
  w.ions_per_point = 496;
  w.avg_levels_per_ion = 4;
  w.bins_per_level = 50'000;
  w.method = quad::KernelMethod::simpson;
  w.method_param = quad::kPaperSimpsonPanels;
  return w;
}

SpectralCostModel::SpectralCostModel(PaperCalibration calib,
                                     core::WorkloadParams workload)
    : calib_(calib), workload_(workload), gpu_model_(calib.gpu) {
  if (workload_.avg_levels_per_ion == 0 || workload_.bins_per_level == 0)
    throw std::invalid_argument("SpectralCostModel: empty workload");
}

double SpectralCostModel::gpu_evals_per_bin() const {
  return static_cast<double>(
      quad::kernel_cost_evals(workload_.method, workload_.method_param));
}

double SpectralCostModel::kernel_time_per_level_s() const {
  vgpu::WorkEstimate work;
  work.flops = static_cast<double>(workload_.bins_per_level) *
               gpu_evals_per_bin() * calib_.gpu_flops_per_eval;
  work.device_bytes = workload_.bins_per_level * sizeof(double) * 2;
  work.lanes = calib_.kernel_simd_lanes;
  return gpu_model_.kernel_time_s(work);
}

double SpectralCostModel::ion_prep_s() const {
  return calib_.task_fixed_prep_s + calib_.ion_scalable_prep_s;
}

double SpectralCostModel::ion_cpu_s() const {
  const double flops = static_cast<double>(workload_.integrals_per_ion_task()) *
                       calib_.cpu_flops_per_integral;
  return flops / (calib_.cpu_sustained_gflops * 1e9);
}

vgpu::TaskCostParams SpectralCostModel::task_cost_params() const {
  vgpu::TaskCostParams p;
  p.context_switch_s = calib_.gpu_context_switch_s;
  p.flops_per_eval = calib_.gpu_flops_per_eval;
  p.evals_per_bin = gpu_evals_per_bin();
  p.lanes = calib_.kernel_simd_lanes;
  return p;
}

double SpectralCostModel::ion_gpu_s() const {
  // The shared per-task estimate (vgpu::estimated_task_gpu_s) is the same
  // arithmetic the static scheduling policies partition by, so the DES
  // anchors and the scheduler's cost metric cannot drift apart.
  return vgpu::estimated_task_gpu_s(gpu_model_, workload_.avg_levels_per_ion,
                                    workload_.bins_per_level,
                                    task_cost_params());
}

double SpectralCostModel::level_prep_s() const {
  return calib_.task_fixed_prep_s +
         calib_.ion_scalable_prep_s /
             static_cast<double>(workload_.avg_levels_per_ion);
}

double SpectralCostModel::level_cpu_s() const {
  return ion_cpu_s() / static_cast<double>(workload_.avg_levels_per_ion);
}

double SpectralCostModel::level_gpu_s() const {
  return vgpu::estimated_task_gpu_s(gpu_model_, 1, workload_.bins_per_level,
                                    task_cost_params());
}

double SpectralCostModel::serial_point_s() const {
  return static_cast<double>(workload_.ions_per_point) *
         (ion_prep_s() + ion_cpu_s());
}

double SpectralCostModel::mpi_only_s(std::size_t points, int ranks) const {
  if (ranks < 1) throw std::invalid_argument("mpi_only_s: ranks < 1");
  const double total_serial = static_cast<double>(points) * serial_point_s();
  const double speedup =
      std::min<double>(static_cast<double>(ranks),
                       calib_.node_cpu_core_equivalents);
  return total_serial / speedup;
}

}  // namespace hspec::perfmodel
