#include "core/scheduler.h"

#include <stdexcept>

#include "util/dcheck.h"

namespace hspec::core {

int pick_device(std::span<const std::int32_t> loads,
                std::span<const std::int64_t> histories,
                std::int32_t max_queue_length) noexcept {
  if (loads.empty() || loads.size() != histories.size()) return -1;
  std::size_t best = 0;
  for (std::size_t i = 1; i < loads.size(); ++i) {
    if (loads[i] < loads[best] ||
        (loads[i] == loads[best] && histories[i] < histories[best]))
      best = i;
  }
  if (loads[best] >= max_queue_length) return -1;
  return static_cast<int>(best);
}

TaskScheduler::TaskScheduler(SchedulerShm& shm) : shm_(&shm) {
  if (shm_->device_count < 0 || shm_->device_count > kMaxDevices)
    throw std::invalid_argument("TaskScheduler: invalid device count in shm");
}

int TaskScheduler::sche_alloc() {
  const int n = shm_->device_count;
  if (n == 0) {
    ++stats_.cpu_fallbacks;
    return -1;
  }
  const std::int32_t lmax =
      shm_->max_queue_length.load(std::memory_order_relaxed);
  // One full scan up front; afterwards only the contended entry is refreshed.
  // A failed CAS means another rank touched exactly the device we chose, so
  // the other devices' cached loads are still the freshest values we have —
  // re-reading all of them per retry (the old behaviour) just multiplies
  // shared-cache-line traffic under the very contention that caused the
  // retry. Histories only drift while we race, and they are a tie-break
  // only, so the stale copies cannot violate the queue-length bound.
  std::int32_t loads[kMaxDevices];
  std::int64_t histories[kMaxDevices];
  for (int i = 0; i < n; ++i) {
    // A quarantined device is masked as full so it drains to the CPU
    // fallback through the very same pick_device policy a saturated queue
    // uses — the selection rule the DES replays stays untouched.
    loads[i] = quarantined(i) ? lmax
                              : shm_->load[i].load(std::memory_order_acquire);
    histories[i] = shm_->history[i].load(std::memory_order_relaxed);
  }
  // Bounded retry: after repeatedly finding only full devices, give the
  // task to the CPU exactly as Algorithm 1 line 21 does.
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int device = pick_device({loads, static_cast<std::size_t>(n)},
                                   {histories, static_cast<std::size_t>(n)},
                                   lmax);
    if (device < 0) break;
    std::int32_t expected = loads[device];
    // Bounded increment: succeed only while still below the cap.
    while (expected < lmax) {
      if (shm_->load[device].compare_exchange_weak(expected, expected + 1,
                                                   std::memory_order_acq_rel)) {
        // The bounded CAS proves the pre-increment load sat in [0, lmax);
        // anything else means another writer drove the slot negative or past
        // the cap behind our back.
        HSPEC_DCHECK(expected >= 0 && expected < lmax,
                     "device load outside [0, max_queue_length) at alloc");
        [[maybe_unused]] const std::int64_t prev_hist =
            shm_->history[device].fetch_add(1, std::memory_order_relaxed);
        HSPEC_DCHECK(prev_hist >= 0, "history task count went negative");
        ++stats_.gpu_allocations;
        return device;
      }
      ++stats_.cas_retries;
      // expected reloaded by compare_exchange_weak; loop re-checks the cap.
    }
    // The chosen device filled up under us: refresh that one entry (its
    // load came back through `expected`) and re-pick from the cache. The
    // health re-check covers a device quarantined between the scan and the
    // CAS; a quarantine landing after a successful CAS is benign — that one
    // task runs (or faults and is retried), and the next scan masks it.
    loads[device] = quarantined(device) ? lmax : expected;
    histories[device] = shm_->history[device].load(std::memory_order_relaxed);
  }
  ++stats_.cpu_fallbacks;
  return -1;
}

int TaskScheduler::sche_assign(int device) {
  if (device < 0 || device >= shm_->device_count) return -1;
  if (quarantined(device)) return -1;
  const std::int32_t lmax =
      shm_->max_queue_length.load(std::memory_order_relaxed);
  std::int32_t expected = shm_->load[device].load(std::memory_order_acquire);
  // The same bounded increment sche_alloc uses: succeed only below the cap,
  // so a static pre-assignment can never overfill a queue behind the
  // dynamic policy's back.
  while (expected < lmax) {
    if (shm_->load[device].compare_exchange_weak(expected, expected + 1,
                                                 std::memory_order_acq_rel)) {
      HSPEC_DCHECK(expected >= 0 && expected < lmax,
                   "device load outside [0, max_queue_length) at assign");
      [[maybe_unused]] const std::int64_t prev_hist =
          shm_->history[device].fetch_add(1, std::memory_order_relaxed);
      HSPEC_DCHECK(prev_hist >= 0, "history task count went negative");
      ++stats_.gpu_allocations;
      return device;
    }
    ++stats_.cas_retries;
  }
  // A quarantine can land between the check above and the CAS; like
  // sche_alloc's post-CAS window this is benign (the task runs or faults
  // and is retried), so no re-check is needed here.
  return -1;
}

void TaskScheduler::record_sched_latency(std::int64_t ns) noexcept {
  shm_->sched_latency_hist[sched_latency_bucket(ns)].fetch_add(
      1, std::memory_order_relaxed);
  shm_->sched_latency_ns_total.fetch_add(ns > 0 ? ns : 0,
                                         std::memory_order_relaxed);
}

void TaskScheduler::sche_free(int device) {
  if (device < 0 || device >= shm_->device_count)
    throw std::out_of_range("sche_free: bad device id");
  const std::int32_t prev =
      shm_->load[device].fetch_sub(1, std::memory_order_acq_rel);
  if (prev <= 0)
    throw std::logic_error("sche_free: load underflow (free without alloc)");
  // Upper bound: every increment went through the bounded CAS, so the load
  // being freed can never have exceeded the queue-length cap in force.
  HSPEC_DCHECK(prev <= shm_->max_queue_length.load(std::memory_order_relaxed),
               "device load above max_queue_length at free");
}

void TaskScheduler::set_max_queue_length(std::int32_t len) {
  if (len < 1)
    throw std::invalid_argument("set_max_queue_length: must be >= 1");
  shm_->max_queue_length.store(len, std::memory_order_relaxed);
}

std::int32_t TaskScheduler::load(int device) const {
  if (device < 0 || device >= shm_->device_count)
    throw std::out_of_range("load: bad device id");
  return shm_->load[device].load(std::memory_order_acquire);
}

std::int64_t TaskScheduler::history(int device) const {
  if (device < 0 || device >= shm_->device_count)
    throw std::out_of_range("history: bad device id");
  return shm_->history[device].load(std::memory_order_relaxed);
}

bool TaskScheduler::quarantined(int device) const noexcept {
  return shm_->health[device].load(std::memory_order_acquire) ==
         static_cast<std::int32_t>(DeviceHealth::quarantined);
}

DeviceHealth TaskScheduler::health(int device) const {
  if (device < 0 || device >= shm_->device_count)
    throw std::out_of_range("health: bad device id");
  return static_cast<DeviceHealth>(
      shm_->health[device].load(std::memory_order_acquire));
}

bool TaskScheduler::all_quarantined() const noexcept {
  const int n = shm_->device_count;
  if (n == 0) return false;
  for (int i = 0; i < n; ++i)
    if (!quarantined(i)) return false;
  return true;
}

DeviceHealth TaskScheduler::report_task_fault(int device, bool fatal) {
  if (device < 0 || device >= shm_->device_count)
    throw std::out_of_range("report_task_fault: bad device id");
  const std::int32_t streak =
      shm_->faults_seen[device].fetch_add(1, std::memory_order_acq_rel) + 1;
  auto target = DeviceHealth::healthy;
  if (fatal || streak >= shm_->quarantine_after)
    target = DeviceHealth::quarantined;
  else if (streak >= shm_->degrade_after)
    target = DeviceHealth::degraded;
  // Promote monotonically; the rank winning the CAS counts the transition,
  // so concurrent reporters cannot double-count it.
  std::int32_t current = shm_->health[device].load(std::memory_order_acquire);
  const auto wanted = static_cast<std::int32_t>(target);
  while (current < wanted) {
    if (shm_->health[device].compare_exchange_weak(current, wanted,
                                                   std::memory_order_acq_rel)) {
      if (target == DeviceHealth::quarantined)
        ++stats_.quarantines;
      else
        ++stats_.degradations;
      return target;
    }
  }
  return static_cast<DeviceHealth>(std::max(current, wanted));
}

void TaskScheduler::report_task_success(int device) {
  if (device < 0 || device >= shm_->device_count)
    throw std::out_of_range("report_task_success: bad device id");
  shm_->faults_seen[device].store(0, std::memory_order_release);
  // Degraded heals on success; quarantined does not (only an explicit
  // readmit() re-opens a quarantined device — a stale in-flight success
  // must not resurrect a device the plan has killed).
  auto expected = static_cast<std::int32_t>(DeviceHealth::degraded);
  if (shm_->health[device].compare_exchange_strong(
          expected, static_cast<std::int32_t>(DeviceHealth::healthy),
          std::memory_order_acq_rel))
    ++stats_.recoveries;
}

bool TaskScheduler::readmit(int device) {
  if (device < 0 || device >= shm_->device_count)
    throw std::out_of_range("readmit: bad device id");
  auto expected = static_cast<std::int32_t>(DeviceHealth::quarantined);
  if (!shm_->health[device].compare_exchange_strong(
          expected, static_cast<std::int32_t>(DeviceHealth::degraded),
          std::memory_order_acq_rel))
    return false;
  shm_->faults_seen[device].store(0, std::memory_order_release);
  ++stats_.readmissions;
  return true;
}

}  // namespace hspec::core
