#pragma once
// The hybrid CPU-GPU parallel framework (Fig. 2 of the paper).
//
// "The main program is responsible for reading the input parameters, invoke
// all MPI processes, and assign sub parameter spaces to them. MPI processes
// will prepare tasks, and dispatch each task to either the CPU-based
// calculator within its context or a shared GPU calculator through the task
// scheduler, and finally aggregate result of each tasks."
//
// This is the functional execution mode: ranks are minimpi threads, GPUs
// are vgpu devices executing real kernels, and the spectra that come out
// are numerically checked against the serial APEC baseline in the tests.
// (Wall-clock performance claims come from the DES in src/sim, which drives
// the very same TaskScheduler.)

#include <cstdint>
#include <vector>

#include "apec/calculator.h"
#include "apec/spectrum.h"
#include "core/scheduler.h"
#include "core/task.h"
#include "vgpu/device.h"

namespace hspec::core {

struct HybridConfig {
  int ranks = 4;
  int max_queue_length = 10;
  TaskGranularity granularity = TaskGranularity::ion;
  /// Number of virtual GPUs; -1 detects from HSPEC_VGPU_COUNT (0 => CPU-only,
  /// "it can run normally in the runtime environment without GPU device").
  int devices = -1;
};

struct HybridResult {
  std::vector<apec::Spectrum> spectra;  ///< one per input grid point
  SchedulerStats scheduling;            ///< aggregated over all ranks
  std::vector<std::int64_t> history;    ///< final history count per device
  std::vector<vgpu::DeviceStats> device_stats;
  std::size_t tasks_total = 0;
};

class HybridDriver {
 public:
  HybridDriver(const apec::SpectrumCalculator& calculator, HybridConfig config);

  /// Calculate the spectra of `points`. Points are split into near-equal
  /// contiguous ranges across ranks (the paper's inter-node strategy applied
  /// intra-node); each rank schedules its tasks through the shared-memory
  /// scheduler.
  HybridResult run(const std::vector<apec::GridPoint>& points);

  const HybridConfig& config() const noexcept { return config_; }

 private:
  const apec::SpectrumCalculator* calc_;
  HybridConfig config_;
};

/// Build the task list one rank prepares for one grid point.
std::vector<SpectralTask> make_tasks(const apec::SpectrumCalculator& calc,
                                     const apec::GridPoint& point,
                                     const apec::PointPopulations& pops,
                                     TaskGranularity granularity);

}  // namespace hspec::core
