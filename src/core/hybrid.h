#pragma once
// The hybrid CPU-GPU parallel framework (Fig. 2 of the paper).
//
// "The main program is responsible for reading the input parameters, invoke
// all MPI processes, and assign sub parameter spaces to them. MPI processes
// will prepare tasks, and dispatch each task to either the CPU-based
// calculator within its context or a shared GPU calculator through the task
// scheduler, and finally aggregate result of each tasks."
//
// This is the functional execution mode: ranks are minimpi threads, GPUs
// are vgpu devices executing real kernels, and the spectra that come out
// are numerically checked against the serial APEC baseline in the tests.
// (Wall-clock performance claims come from the DES in src/sim, which drives
// the very same TaskScheduler.)
//
// Two execution modes share every scheduling decision:
//  * synchronous — the paper's shipped mode: the rank blocks on each GPU
//    task and re-uploads the bin edges every time (kept as the ablation
//    baseline);
//  * pipelined — the §V remedy: per-rank streams, resident edge cache and
//    double-buffered accumulators (core/async_executor.h). Spectra are
//    bit-identical between the modes; only the virtual timeline and the
//    PCIe byte counts differ.
// Grid points are distributed by the work-stealing PointWorkQueue in shm
// (each rank drains its own contiguous range, then steals from the most
// loaded victim) instead of the old static split, so a slow rank no longer
// sets the wall clock.
//
// HybridDriver is the one-shot facade: run() builds a fresh device stack,
// executes one batch and tears everything down. The long-lived form —
// devices, pools, stream schedulers and resident caches reused across
// batches, the seam the always-on service (src/service) pumps — is
// core::HybridExecutor (core/hybrid_executor.h); run() is now exactly
// `HybridExecutor(calc, config).run_batch(points)`.

#include <cstdint>
#include <functional>
#include <vector>

#include "apec/calculator.h"
#include "apec/spectrum.h"
#include "core/sched_policy.h"
#include "core/scheduler.h"
#include "core/task.h"
#include "vgpu/device.h"

namespace hspec::util {
class FaultPlan;
}

namespace hspec::core {

enum class ExecutionMode { synchronous, pipelined };

struct HybridConfig {
  int ranks = 4;
  int max_queue_length = 10;
  TaskGranularity granularity = TaskGranularity::ion;
  /// Number of virtual GPUs; -1 detects from HSPEC_VGPU_COUNT (0 => CPU-only,
  /// "it can run normally in the runtime environment without GPU device").
  int devices = -1;
  /// Pipelined is the production default; synchronous is the paper baseline.
  ExecutionMode mode = ExecutionMode::pipelined;
  /// Device-selection strategy for every task (core/sched_policy.h). The
  /// default is the paper's Algorithm 1 min-load pick; both modes and the
  /// service thread the same policy through run_batch's single decision
  /// site, and all three policies produce bitwise-identical spectra.
  SchedulingPolicyKind scheduling_policy = SchedulingPolicyKind::dynamic_min_load;
  /// In-flight GPU tasks (and streams) per rank per device when pipelined.
  int pipeline_depth = 2;
  /// Grid points claimed per work-queue visit (steal granularity).
  std::int64_t steal_chunk = 1;
  /// Test seam: invoked by each rank right before its first work-queue
  /// claim, with read access to the shared queue. Lets tests stage
  /// deterministic imbalance (e.g. hold ranks back until another rank has
  /// stolen) instead of betting on OS scheduling. Null in production.
  std::function<void(int rank, const PointWorkQueue& queue)> rank_start_hook;
  /// Fault-injection plan installed on every device for the run (chaos and
  /// recovery tests; null in production). Non-null arms the recovery layer:
  /// failed attempts retry with requeue, device health feeds sche_alloc,
  /// and tasks out of budget degrade to the kernel-equivalent host path.
  util::FaultPlan* fault_plan = nullptr;
  /// Device attempts one task may consume before degrading to the CPU.
  int max_task_attempts = 3;
  /// Consecutive failed attempts before a device is marked degraded /
  /// quarantined (DESIGN.md §11 defaults).
  int degrade_after = 2;
  int quarantine_after = 5;
};

/// Counters specific to the pipelined path and the work-stealing queue.
struct PipelineStats {
  std::uint64_t streams_used = 0;      ///< streams opened across all devices
  std::uint64_t cache_hits = 0;        ///< resident-cache leases served free
  std::uint64_t cache_misses = 0;      ///< leases that actually uploaded
  std::uint64_t bytes_h2d_saved = 0;   ///< H2D bytes the cache did not send
  std::uint64_t steals = 0;            ///< point chunks taken from other ranks
  std::uint64_t stolen_points = 0;     ///< grid points inside those chunks
  std::uint64_t tasks_pipelined = 0;   ///< tasks that ran through streams
  std::uint64_t max_in_flight = 0;     ///< deepest pipeline any rank reached
};

struct HybridResult {
  std::vector<apec::Spectrum> spectra;  ///< one per input grid point
  SchedulerStats scheduling;            ///< aggregated over all ranks
  /// Per-task scheduling-latency telemetry for this batch (the shm
  /// histogram timed_assign fills; counts sum to tasks_total).
  SchedulingStats sched;
  std::vector<std::int64_t> history;    ///< final history count per device
  std::vector<vgpu::DeviceStats> device_stats;
  PipelineStats pipeline;
  /// Per device: virtual time at which its work drains. Pipelined mode reads
  /// the stream scheduler (overlap-aware); synchronous mode is the device's
  /// serialized busy time.
  std::vector<double> device_sync_time_s;
  /// max over devices of device_sync_time_s (0 with no GPUs).
  double virtual_makespan_s = 0.0;
  std::size_t tasks_total = 0;
  /// Fault-recovery accounting, aggregated over all ranks (all zero when no
  /// FaultPlan is installed, except the completion counters, which always
  /// balance against tasks_total). Service clients never touch this struct
  /// directly: service::ServiceStats re-surfaces `faults` and
  /// `device_health` per request, so recovery activity is visible without
  /// digging into the batch result.
  FaultStats faults;
  /// Final health of each device (all healthy on a fault-free run). Under
  /// HybridExecutor this is live state that carries across batches.
  std::vector<DeviceHealth> device_health;
};

class HybridDriver {
 public:
  HybridDriver(const apec::SpectrumCalculator& calculator, HybridConfig config);

  /// Calculate the spectra of `points`. Points are seeded to ranks in
  /// near-equal contiguous ranges (the paper's inter-node strategy applied
  /// intra-node) and rebalanced by work stealing; each rank schedules its
  /// tasks through the shared-memory scheduler.
  HybridResult run(const std::vector<apec::GridPoint>& points);

  const HybridConfig& config() const noexcept { return config_; }

 private:
  const apec::SpectrumCalculator* calc_;
  HybridConfig config_;
};

/// Build the task list one rank prepares for one grid point.
std::vector<SpectralTask> make_tasks(const apec::SpectrumCalculator& calc,
                                     const apec::GridPoint& point,
                                     const apec::PointPopulations& pops,
                                     TaskGranularity granularity);

}  // namespace hspec::core
