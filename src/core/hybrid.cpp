#include "core/hybrid.h"

#include <stdexcept>

#include "core/hybrid_executor.h"

namespace hspec::core {

std::vector<SpectralTask> make_tasks(const apec::SpectrumCalculator& calc,
                                     const apec::GridPoint& point,
                                     const apec::PointPopulations& pops,
                                     TaskGranularity granularity) {
  std::vector<SpectralTask> tasks;
  for (const atomic::IonUnit& ion : calc.populated_ions(pops)) {
    if (granularity == TaskGranularity::level && ion.emits_rrc()) {
      const std::size_t levels = calc.database().level_count_for(ion);
      for (std::size_t li = 0; li < levels; ++li)
        tasks.push_back({point, ion, granularity, li});
    } else {
      tasks.push_back({point, ion, TaskGranularity::ion, 0});
    }
  }
  return tasks;
}

HybridDriver::HybridDriver(const apec::SpectrumCalculator& calculator,
                           HybridConfig config)
    : calc_(&calculator), config_(config) {
  // Same validation HybridExecutor applies; performed here too so a bad
  // config fails at construction, before run() builds the device stack.
  if (config_.ranks < 1)
    throw std::invalid_argument("HybridDriver: need at least one rank");
  if (config_.ranks > kMaxRanks)
    throw std::invalid_argument("HybridDriver: too many ranks for the queue");
  if (config_.max_queue_length < 1)
    throw std::invalid_argument("HybridDriver: max queue length must be >= 1");
  if (config_.pipeline_depth < 1)
    throw std::invalid_argument("HybridDriver: pipeline depth must be >= 1");
  if (config_.steal_chunk < 1)
    throw std::invalid_argument("HybridDriver: steal chunk must be >= 1");
  if (config_.max_task_attempts < 1)
    throw std::invalid_argument("HybridDriver: max task attempts must be >= 1");
  if (config_.degrade_after < 1)
    throw std::invalid_argument("HybridDriver: degrade_after must be >= 1");
  if (config_.quarantine_after < config_.degrade_after)
    throw std::invalid_argument(
        "HybridDriver: quarantine_after must be >= degrade_after");
}

HybridResult HybridDriver::run(const std::vector<apec::GridPoint>& points) {
  // One-shot semantics = a fresh executor running a single batch. The
  // always-on path (service::SpectralService) holds one HybridExecutor and
  // pumps run_batch repeatedly instead.
  HybridExecutor executor(*calc_, config_);
  return executor.run_batch(points);
}

}  // namespace hspec::core
