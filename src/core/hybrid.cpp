#include "core/hybrid.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>

#include "core/async_executor.h"
#include "core/cpu_task_executor.h"
#include "core/gpu_task_executor.h"
#include "minimpi/minimpi.h"
#include "util/fault.h"
#include "util/thread_annotations.h"

namespace hspec::core {

std::vector<SpectralTask> make_tasks(const apec::SpectrumCalculator& calc,
                                     const apec::GridPoint& point,
                                     const apec::PointPopulations& pops,
                                     TaskGranularity granularity) {
  std::vector<SpectralTask> tasks;
  for (const atomic::IonUnit& ion : calc.populated_ions(pops)) {
    if (granularity == TaskGranularity::level && ion.emits_rrc()) {
      const std::size_t levels = calc.database().level_count_for(ion);
      for (std::size_t li = 0; li < levels; ++li)
        tasks.push_back({point, ion, granularity, li});
    } else {
      tasks.push_back({point, ion, TaskGranularity::ion, 0});
    }
  }
  return tasks;
}

HybridDriver::HybridDriver(const apec::SpectrumCalculator& calculator,
                           HybridConfig config)
    : calc_(&calculator), config_(config) {
  if (config_.ranks < 1)
    throw std::invalid_argument("HybridDriver: need at least one rank");
  if (config_.ranks > kMaxRanks)
    throw std::invalid_argument("HybridDriver: too many ranks for the queue");
  if (config_.max_queue_length < 1)
    throw std::invalid_argument("HybridDriver: max queue length must be >= 1");
  if (config_.pipeline_depth < 1)
    throw std::invalid_argument("HybridDriver: pipeline depth must be >= 1");
  if (config_.steal_chunk < 1)
    throw std::invalid_argument("HybridDriver: steal chunk must be >= 1");
  if (config_.max_task_attempts < 1)
    throw std::invalid_argument("HybridDriver: max task attempts must be >= 1");
  if (config_.degrade_after < 1)
    throw std::invalid_argument("HybridDriver: degrade_after must be >= 1");
  if (config_.quarantine_after < config_.degrade_after)
    throw std::invalid_argument(
        "HybridDriver: quarantine_after must be >= degrade_after");
}

HybridResult HybridDriver::run(const std::vector<apec::GridPoint>& points) {
  vgpu::DeviceRegistry registry(config_.devices);
  const int n_dev = static_cast<int>(registry.device_count());
  ShmRegion shm =
      ShmRegion::create_inprocess(n_dev, config_.max_queue_length);
  // Near-equal contiguous seed ranges (the old static split) that ranks
  // drain chunk-by-chunk and rebalance by stealing.
  shm.view().points.initialize(static_cast<std::int64_t>(points.size()),
                               config_.ranks, config_.steal_chunk);
  shm.view().degrade_after = config_.degrade_after;
  shm.view().quarantine_after = config_.quarantine_after;

  // Arm fault injection before the ranks start (thread creation publishes
  // the plan pointer). The plan's counters are cumulative across runs, so
  // snapshot them now and report the delta.
  util::FaultPlan* plan = config_.fault_plan;
  util::FaultPlan::Stats plan_before;
  if (plan != nullptr) plan_before = plan->stats();
  if (plan != nullptr) registry.set_fault_plan(plan);

  const bool pipelined = config_.mode == ExecutionMode::pipelined;

  // One shared buffer pool per device: steady-state task execution never
  // touches the device allocator. The pipelined path adds the per-device
  // stream scheduler and the resident edge cache on top.
  std::vector<std::unique_ptr<vgpu::BufferPool>> pools;
  std::vector<std::unique_ptr<DevicePipeline>> pipes;
  std::vector<DevicePipeline*> pipe_views;
  for (int d = 0; d < n_dev; ++d) {
    vgpu::Device& dev = registry.device(static_cast<std::size_t>(d));
    pools.push_back(std::make_unique<vgpu::BufferPool>(dev));
    pipes.push_back(std::make_unique<DevicePipeline>(dev, *pools.back()));
    pipe_views.push_back(pipes.back().get());
  }

  HybridResult result;
  result.spectra.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    result.spectra.emplace_back(calc_->grid());

  util::Mutex result_mu;  // guards the aggregated scheduling stats

  minimpi::run(config_.ranks, [&](minimpi::Communicator& comm) {
    const int rank = comm.rank();
    TaskScheduler scheduler(shm.view());
    // Per-rank QAGS calculator, built once and reused by every CPU-fallback
    // task (the old code rebuilt it per task).
    const CpuTaskExecutor cpu_exec(*calc_);
    // Per-rank batch-integrand scratch for the synchronous GPU path; reset
    // inside execute_task_on_gpu, so steady-state tasks allocate nothing.
    vgpu::ScratchArena gpu_scratch;
    FaultStats fs;  // this rank's recovery accounting
    std::optional<AsyncGpuExecutor> async;
    if (pipelined)
      async.emplace(*calc_, pipe_views, scheduler, cpu_exec,
                    config_.pipeline_depth, config_.max_task_attempts,
                    plan != nullptr, &fs);

    // Synchronous-path recovery: a faulted device attempt frees its queue
    // slot, reports the failure, and asks the scheduler for a (possibly
    // different) device; past the retry budget — or with every device
    // quarantined — the task degrades to the kernel-equivalent host path.
    // execute_task_on_gpu accumulates into the spectrum only after its
    // final D2H, so a fault leaves the spectrum untouched and the retry
    // cannot double-count (the exactly-once argument of DESIGN.md §11).
    auto run_task_sync = [&](const SpectralTask& task,
                             const apec::PointPopulations& pops,
                             apec::Spectrum& out, int device,
                             TaskScheduler& sched) {
      for (int attempt = 1;; ++attempt) {
        if (device >= 0) {
          try {
            const GpuExecutionReport rep = execute_task_on_gpu(
                *calc_, task, pops,
                registry.device(static_cast<std::size_t>(device)), out,
                pools[static_cast<std::size_t>(device)].get(), &gpu_scratch);
            sched.sche_free(device);
            if (plan != nullptr && rep.kernels > 0)
              sched.report_task_success(device);
            ++fs.gpu_completed;
            return;
          } catch (const util::FaultError& e) {
            sched.sche_free(device);
            sched.report_task_fault(
                device, e.site() == util::FaultSite::device_death);
            ++fs.retried;
            device =
                attempt < config_.max_task_attempts ? sched.sche_alloc() : -1;
            if (device >= 0) {
              ++fs.requeued;
              continue;
            }
            ++fs.cpu_fallbacks;
            execute_task_degraded(*calc_, task, pops, out);
            ++fs.cpu_completed;
            return;
          }
        }
        // No device. Algorithm 1's QAGS fallback covers full queues; an
        // all-quarantined device set instead degrades to the kernel-
        // equivalent host path so the spectrum stays bit-identical.
        if (plan != nullptr && sched.all_quarantined()) {
          ++fs.cpu_fallbacks;
          execute_task_degraded(*calc_, task, pops, out);
        } else {
          cpu_exec.execute(task, pops, out);
        }
        ++fs.cpu_completed;
        return;
      }
    };

    std::size_t my_tasks = 0;
    PointWorkQueue& queue = shm.view().points;
    if (config_.rank_start_hook) config_.rank_start_hook(rank, queue);
    for (PointWorkQueue::Claim claim = queue.claim(rank); !claim.empty();
         claim = queue.claim(rank)) {
      for (std::int64_t pi = claim.begin; pi < claim.end; ++pi) {
        const auto p = static_cast<std::size_t>(pi);
        const apec::PointPopulations pops =
            apec::solve_populations(calc_->database(), points[p]);
        apec::Spectrum local(calc_->grid());
        for (const SpectralTask& task :
             make_tasks(*calc_, points[p], pops, config_.granularity)) {
          ++my_tasks;
          const int device = scheduler.sche_alloc();
          if (pipelined) {
            async->submit(task, pops, device, local);
          } else {
            run_task_sync(task, pops, local, device, scheduler);
          }
        }
        // All of a point's tasks drain before its spectrum is published;
        // points are claimed exactly once, so accumulation is race-free.
        if (pipelined) async->drain_all();
        result.spectra[p] += local;
      }
    }

    comm.barrier();
    {
      util::MutexLock lock(result_mu);
      result.scheduling.gpu_allocations += scheduler.stats().gpu_allocations;
      result.scheduling.cpu_fallbacks += scheduler.stats().cpu_fallbacks;
      result.scheduling.cas_retries += scheduler.stats().cas_retries;
      result.scheduling.degradations += scheduler.stats().degradations;
      result.scheduling.quarantines += scheduler.stats().quarantines;
      result.scheduling.recoveries += scheduler.stats().recoveries;
      result.scheduling.readmissions += scheduler.stats().readmissions;
      result.faults.retried += fs.retried;
      result.faults.requeued += fs.requeued;
      result.faults.cpu_fallbacks += fs.cpu_fallbacks;
      result.faults.gpu_completed += fs.gpu_completed;
      result.faults.cpu_completed += fs.cpu_completed;
      result.tasks_total += my_tasks;
      if (async) {
        result.pipeline.tasks_pipelined += async->stats().gpu_tasks;
        result.pipeline.max_in_flight =
            std::max(result.pipeline.max_in_flight,
                     async->stats().max_in_flight);
      }
    }
  });

  for (int d = 0; d < n_dev; ++d) {
    vgpu::Device& dev = registry.device(static_cast<std::size_t>(d));
    result.history.push_back(
        shm.view().history[d].load(std::memory_order_relaxed));
    vgpu::DeviceStats st = dev.stats();
    const vgpu::ResidentCache::Stats cst = pipes[d]->cache->stats();
    st.streams_used = pipes[d]->streams_opened.load(std::memory_order_relaxed);
    st.cache_hits = cst.hits;
    st.bytes_h2d_saved = cst.bytes_saved;
    result.device_stats.push_back(st);

    result.pipeline.streams_used += st.streams_used;
    result.pipeline.cache_hits += cst.hits;
    result.pipeline.cache_misses += cst.misses;
    result.pipeline.bytes_h2d_saved += cst.bytes_saved;

    const double sync_time =
        pipelined ? pipes[d]->streams->device_sync_time() : dev.busy_time_s();
    result.device_sync_time_s.push_back(sync_time);
    result.virtual_makespan_s = std::max(result.virtual_makespan_s, sync_time);
  }
  result.pipeline.steals = static_cast<std::uint64_t>(
      shm.view().points.steals.load(std::memory_order_relaxed));
  result.pipeline.stolen_points = static_cast<std::uint64_t>(
      shm.view().points.stolen_points.load(std::memory_order_relaxed));

  // Surface the recovery layer's view of the run.
  result.faults.degradations = result.scheduling.degradations;
  result.faults.quarantines = result.scheduling.quarantines;
  result.faults.recoveries = result.scheduling.recoveries;
  result.faults.readmissions = result.scheduling.readmissions;
  for (int d = 0; d < n_dev; ++d)
    result.device_health.push_back(static_cast<DeviceHealth>(
        shm.view().health[d].load(std::memory_order_relaxed)));
  if (plan != nullptr) {
    const util::FaultPlan::Stats after = plan->stats();
    result.faults.injected = after.injected_total - plan_before.injected_total;
    result.faults.device_deaths =
        after.device_deaths - plan_before.device_deaths;
    registry.set_fault_plan(nullptr);  // the plan may not outlive the run
  }
  return result;
}

}  // namespace hspec::core
