#include "core/hybrid.h"

#include <memory>
#include <mutex>
#include <stdexcept>

#include "core/cpu_task_executor.h"
#include "core/gpu_task_executor.h"
#include "minimpi/minimpi.h"

namespace hspec::core {

std::vector<SpectralTask> make_tasks(const apec::SpectrumCalculator& calc,
                                     const apec::GridPoint& point,
                                     const apec::PointPopulations& pops,
                                     TaskGranularity granularity) {
  std::vector<SpectralTask> tasks;
  for (const atomic::IonUnit& ion : calc.populated_ions(pops)) {
    if (granularity == TaskGranularity::level && ion.emits_rrc()) {
      const std::size_t levels = calc.database().level_count_for(ion);
      for (std::size_t li = 0; li < levels; ++li)
        tasks.push_back({point, ion, granularity, li});
    } else {
      tasks.push_back({point, ion, TaskGranularity::ion, 0});
    }
  }
  return tasks;
}

HybridDriver::HybridDriver(const apec::SpectrumCalculator& calculator,
                           HybridConfig config)
    : calc_(&calculator), config_(config) {
  if (config_.ranks < 1)
    throw std::invalid_argument("HybridDriver: need at least one rank");
  if (config_.max_queue_length < 1)
    throw std::invalid_argument("HybridDriver: max queue length must be >= 1");
}

HybridResult HybridDriver::run(const std::vector<apec::GridPoint>& points) {
  vgpu::DeviceRegistry registry(config_.devices);
  const int n_dev = static_cast<int>(registry.device_count());
  ShmRegion shm =
      ShmRegion::create_inprocess(n_dev, config_.max_queue_length);
  // One shared buffer pool per device: steady-state task execution never
  // touches the device allocator.
  std::vector<std::unique_ptr<vgpu::BufferPool>> pools;
  for (int d = 0; d < n_dev; ++d)
    pools.push_back(std::make_unique<vgpu::BufferPool>(
        registry.device(static_cast<std::size_t>(d))));

  HybridResult result;
  result.spectra.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    result.spectra.emplace_back(calc_->grid());

  std::mutex result_mu;  // guards the aggregated scheduling stats

  minimpi::run(config_.ranks, [&](minimpi::Communicator& comm) {
    const int rank = comm.rank();
    const int size = comm.size();
    TaskScheduler scheduler(shm.view());

    // Contiguous near-equal split of the point list across ranks.
    const std::size_t n = points.size();
    const std::size_t base = n / static_cast<std::size_t>(size);
    const std::size_t extra = n % static_cast<std::size_t>(size);
    const auto r = static_cast<std::size_t>(rank);
    const std::size_t begin = r * base + std::min(r, extra);
    const std::size_t end = begin + base + (r < extra ? 1 : 0);

    std::size_t my_tasks = 0;
    for (std::size_t p = begin; p < end; ++p) {
      const apec::PointPopulations pops =
          apec::solve_populations(calc_->database(), points[p]);
      apec::Spectrum local(calc_->grid());
      for (const SpectralTask& task :
           make_tasks(*calc_, points[p], pops, config_.granularity)) {
        ++my_tasks;
        const int device = scheduler.sche_alloc();
        if (device >= 0) {
          execute_task_on_gpu(*calc_, task, pops, registry.device(device),
                              local,
                              pools[static_cast<std::size_t>(device)].get());
          scheduler.sche_free(device);
        } else {
          execute_task_on_cpu(*calc_, task, pops, local);
        }
      }
      // Points are rank-disjoint: direct accumulation is race-free.
      result.spectra[p] += local;
    }

    comm.barrier();
    {
      std::lock_guard lock(result_mu);
      result.scheduling.gpu_allocations += scheduler.stats().gpu_allocations;
      result.scheduling.cpu_fallbacks += scheduler.stats().cpu_fallbacks;
      result.tasks_total += my_tasks;
    }
  });

  for (int d = 0; d < n_dev; ++d) {
    result.history.push_back(
        shm.view().history[d].load(std::memory_order_relaxed));
    result.device_stats.push_back(registry.device(static_cast<std::size_t>(d))
                                      .stats());
  }
  return result;
}

}  // namespace hspec::core
