#include "core/async_executor.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "rrc/rrc.h"
#include "rrc/rrc_batch.h"
#include "util/dcheck.h"
#include "util/fault.h"
#include "vgpu/integr_kernel.h"

namespace hspec::core {

AsyncGpuExecutor::AsyncGpuExecutor(const apec::SpectrumCalculator& calc,
                                   const std::vector<DevicePipeline*>& pipelines,
                                   TaskScheduler& scheduler,
                                   const CpuTaskExecutor& cpu, int depth,
                                   int max_attempts, bool recovery,
                                   FaultStats* fault_stats)
    : calc_(&calc),
      pipelines_(pipelines),
      scheduler_(&scheduler),
      cpu_(&cpu),
      depth_(depth),
      max_attempts_(max_attempts),
      recovery_(recovery),
      fstats_(fault_stats),
      lanes_(pipelines.size()) {
  if (depth_ < 1)
    throw std::invalid_argument("AsyncGpuExecutor: depth must be >= 1");
  if (max_attempts_ < 1)
    throw std::invalid_argument("AsyncGpuExecutor: max attempts must be >= 1");
  for (const DevicePipeline* p : pipelines_)
    if (p == nullptr || p->device == nullptr || p->pool == nullptr)
      throw std::invalid_argument("AsyncGpuExecutor: incomplete pipeline");
}

AsyncGpuExecutor::~AsyncGpuExecutor() { drain_all(); }

void AsyncGpuExecutor::submit(const SpectralTask& task,
                              const apec::PointPopulations& pops, int device,
                              apec::Spectrum& spectrum) {
  if (device >= static_cast<int>(pipelines_.size()))
    throw std::out_of_range("AsyncGpuExecutor::submit: bad device id");

  Slot slot;
  slot.task = task;
  slot.pops = &pops;
  slot.target = &spectrum;
  slot.free_device = device;

  // Closed-form / non-emitting ions never launch kernels (same early-out as
  // the synchronous executor); they still travel through the FIFO so the
  // accumulation order matches the synchronous driver exactly.
  const bool closed_form = task.ion.is_free_free() || !task.ion.emits_rrc();
  if (device >= 0 && !closed_form) {
    // Bounded retry-with-requeue: a faulted attempt returns its buffers,
    // frees its queue slot, reports the failure, and asks the scheduler for
    // a (possibly different) device; past the budget the task degrades to
    // the host at drain time. submit_gpu accumulates nothing — results land
    // in the slot's staging buffer and reach the spectrum only at drain —
    // so a fault mid-submit cannot double-count (DESIGN.md §11).
    for (int attempt = 1;; ++attempt) {
      try {
        slot.free_device = device;
        submit_gpu(slot, device);
        if (recovery_) scheduler_->report_task_success(device);
        ++stats_.gpu_tasks;
        if (fstats_ != nullptr) ++fstats_->gpu_completed;
        break;
      } catch (const util::FaultError& e) {
        abort_slot(slot, device);
        scheduler_->sche_free(device);
        scheduler_->report_task_fault(
            device, e.site() == util::FaultSite::device_death);
        if (fstats_ != nullptr) ++fstats_->retried;
        device = attempt < max_attempts_ ? scheduler_->sche_alloc() : -1;
        if (device >= 0) {
          if (fstats_ != nullptr) ++fstats_->requeued;
          continue;
        }
        slot.free_device = -1;
        slot.degraded = true;
        ++stats_.host_tasks;
        if (fstats_ != nullptr) {
          ++fstats_->cpu_fallbacks;
          ++fstats_->cpu_completed;
        }
        break;
      }
    }
  } else {
    // An all-quarantined verdict degrades to the kernel-equivalent host
    // path (bit-identity); a plain full-queue verdict stays on QAGS, the
    // paper's fallback.
    if (device < 0 && !closed_form && recovery_ &&
        scheduler_->all_quarantined()) {
      slot.degraded = true;
      if (fstats_ != nullptr) ++fstats_->cpu_fallbacks;
    }
    ++stats_.host_tasks;
    if (fstats_ != nullptr) {
      // Closed-form tasks that hold a device slot mirror the synchronous
      // executor's accounting (its early-out counts as a GPU completion).
      if (device >= 0)
        ++fstats_->gpu_completed;
      else
        ++fstats_->cpu_completed;
    }
  }
  fifo_.push_back(std::move(slot));
}

void AsyncGpuExecutor::submit_gpu(Slot& slot, int device) {
  DevicePipeline& pipe = *pipelines_[static_cast<std::size_t>(device)];
  Lane& lane = lanes_[static_cast<std::size_t>(device)];

  // This rank's streams on the device, created on first use. Tasks rotate
  // across `depth_` streams so task i+1's kernels can overlap task i's
  // readback (and, on Kepler, its kernels) on the virtual timeline.
  if (lane.streams.empty()) {
    for (int s = 0; s < depth_; ++s)
      lane.streams.push_back(
          std::make_unique<vgpu::Stream>(*pipe.streams, *pipe.device));
    pipe.streams_opened.fetch_add(static_cast<std::uint64_t>(depth_),
                                  std::memory_order_relaxed);
  }
  // Double-buffer bound: at most `depth_` of this rank's tasks in flight per
  // device. Draining the FIFO front (oldest first, any device) preserves the
  // accumulation order; host-only slots drained on the way cost nothing.
  while (lane.in_flight >= depth_) drain_front();

  const apec::EnergyGrid& grid = calc_->grid();
  const std::size_t n_bins = grid.bin_count();

  const auto levels = calc_->database().levels_for(slot.task.ion);
  const std::size_t level_begin =
      slot.task.granularity == TaskGranularity::level ? slot.task.level_index
                                                      : 0;
  const std::size_t level_end =
      slot.task.granularity == TaskGranularity::level
          ? slot.task.level_index + 1
          : levels.size();
  if (level_end > levels.size())
    throw std::out_of_range("AsyncGpuExecutor: level index out of range");

  slot.gpu = true;
  slot.emi = pipe.pool->acquire(n_bins * sizeof(double));
  if (staging_pool_.empty()) {
    slot.staging.resize(n_bins);
  } else {
    slot.staging = std::move(staging_pool_.back());
    staging_pool_.pop_back();
    slot.staging.resize(n_bins);
  }

  // The bin edges are immutable for the whole run: lease the resident copy
  // instead of paying the (n_bins + 1) * 8-byte H2D transfer per task.
  const vgpu::DeviceBuffer& edges_dev =
      pipe.cache->lease(grid.edges().data(), (n_bins + 1) * sizeof(double));

  vgpu::Stream& stream = *lane.streams[lane.next_stream];
  lane.next_stream = (lane.next_stream + 1) % lane.streams.size();

  const util::PerCm3 n_rec =
      slot.pops->ion_density(slot.task.ion.z, slot.task.ion.charge);
  const apec::IntegrationPolicy& pol = calc_->options().integration;
  vgpu::IntegrLaunchConfig cfg;
  cfg.method = pol.kernel;
  cfg.method_param = pol.kernel_param;

  // One arena reset per task (vgpu/arena.h lifetime rule): the eager stream
  // launches below are done with their scratch by the time they return.
  if (pol.batch) lane.arena.reset();

  for (std::size_t li = level_begin; li < level_end; ++li) {
    rrc::RrcChannel ch;
    ch.recombining_charge = slot.task.ion.charge;
    ch.level = levels[li];
    ch.gaunt_correction = calc_->options().gaunt_correction;
    rrc::PlasmaState plasma{slot.pops->kT_keV, slot.pops->ne_cm3, n_rec};
    // Algorithm 2: the level integrates from its own threshold upward. The
    // first launch overwrites the recycled emi buffer (no memset upload);
    // later launches accumulate, exactly as the synchronous path does on a
    // zeroed buffer.
    cfg.lower_cutoff = ch.level.binding_keV;
    cfg.accumulate = li != level_begin;
    if (pol.batch) {
      const rrc::RrcBatchIntegrand bf(ch, plasma);
      vgpu::gpu_integr_edges_stream(stream, edges_dev, n_bins, bf, slot.emi,
                                    lane.arena, cfg);
    } else {
      // Kernel edge: the integrator hands us raw abscissae; wrap on entry
      // and unwrap the typed emissivity into the device accumulation buffer.
      auto f = [&](double e) {
        return rrc::rrc_power_density(ch, plasma, util::KeV{e}).value();
      };
      vgpu::gpu_integr_edges_stream(stream, edges_dev, n_bins, f, slot.emi,
                                    cfg);
    }
    ++stats_.kernels;
  }
  if (level_begin == level_end) {
    // No levels => nothing was written; drain still adds the staging array.
    std::fill(slot.staging.begin(), slot.staging.end(), 0.0);
  } else {
    // One readback finishes the task (the coarse-granularity win), queued on
    // the stream so it overlaps the next task's kernels.
    stream.copy_to_host_async(slot.staging.data(), slot.emi,
                              n_bins * sizeof(double));
  }

  ++lane.in_flight;
  HSPEC_DCHECK(lane.in_flight >= 1 && lane.in_flight <= depth_,
               "pipeline lane in-flight count outside [1, depth]");
  std::uint64_t in_flight_total = 0;
  for (const Lane& l : lanes_)
    in_flight_total += static_cast<std::uint64_t>(l.in_flight);
  stats_.max_in_flight = std::max(stats_.max_in_flight, in_flight_total);
}

void AsyncGpuExecutor::abort_slot(Slot& slot, int device) noexcept {
  // Undo the partial submit: the emi buffer goes back to the pool and the
  // staging array to the recycle list. lane.in_flight needs no undo — it is
  // incremented only after the last fallible operation in submit_gpu.
  if (slot.emi.valid())
    pipelines_[static_cast<std::size_t>(device)]->pool->release(
        std::move(slot.emi));
  if (!slot.staging.empty()) staging_pool_.push_back(std::move(slot.staging));
  slot.staging.clear();
  slot.gpu = false;
}

void AsyncGpuExecutor::drain_front() {
  Slot slot = std::move(fifo_.front());
  fifo_.pop_front();

  if (slot.gpu) {
    apec::Spectrum& out = *slot.target;
    for (std::size_t b = 0; b < slot.staging.size(); ++b)
      out[b] += slot.staging[b];
    // Line emission stays host-side on every path; in level granularity the
    // ion's lines belong to the level-0 task so they are added exactly once.
    if (slot.task.granularity == TaskGranularity::ion ||
        slot.task.level_index == 0)
      calc_->accumulate_ion_lines(slot.task.ion, *slot.pops, out);
    DevicePipeline& pipe = *pipelines_[static_cast<std::size_t>(slot.free_device)];
    pipe.pool->release(std::move(slot.emi));
    staging_pool_.push_back(std::move(slot.staging));
    Lane& lane = lanes_[static_cast<std::size_t>(slot.free_device)];
    --lane.in_flight;
    HSPEC_DCHECK(lane.in_flight >= 0,
                 "pipeline lane drained more tasks than it submitted");
  } else if (slot.degraded) {
    // Retry budget exhausted or every device quarantined: the kernel-
    // equivalent host path, in FIFO position (bitwise what the device
    // would have produced).
    execute_task_degraded(*calc_, slot.task, *slot.pops, *slot.target);
  } else if (slot.free_device >= 0) {
    // Scheduler sent the task to a device but it has a closed form / no RRC
    // emission: the synchronous executor's early-out, deferred to its FIFO
    // position.
    calc_->accumulate_ion(slot.task.ion, *slot.pops, *slot.target);
  } else {
    // CPU fallback (queues full): QAGS on this rank, in submission order.
    cpu_->execute(slot.task, *slot.pops, *slot.target);
  }

  if (slot.free_device >= 0) scheduler_->sche_free(slot.free_device);
}

void AsyncGpuExecutor::drain_all() {
  while (!fifo_.empty()) drain_front();
}

}  // namespace hspec::core
