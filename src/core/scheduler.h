#pragma once
// Algorithm 1 of the paper: the shared-memory task scheduler.
//
//   SCHE-ALLOC(): scan all devices for the minimum load l_i; break ties by
//   minimum history task count h_i; if the winner's load is below the
//   maximum queue length, atomically { l++ ; h++ } and return the device,
//   otherwise return -1 (caller falls back to the CPU QAGS path).
//   SCHE-FREE(device): atomically { l-- }.
//
// Task-queue terminology (§III-A): a device's *load* is its active +
// waiting tasks; *maximum queue length* bounds the load; *history task
// count* is the cumulative number of tasks a queue has ever received.
//
// The pure selection policy is factored out (`pick_device`) so the
// discrete-event simulator replays exactly the same decision procedure the
// live scheduler uses.

#include <cstdint>
#include <span>

#include "core/shm.h"

namespace hspec::core {

/// The pure Algorithm 1 selection rule: index of the device with minimum
/// load (ties: minimum history), or -1 if `loads` is empty or the winner is
/// already at `max_queue_length`. No side effects.
int pick_device(std::span<const std::int32_t> loads,
                std::span<const std::int64_t> histories,
                std::int32_t max_queue_length) noexcept;

/// Scheduling outcome counters (per scheduler instance, not in shm).
struct SchedulerStats {
  std::int64_t gpu_allocations = 0;
  std::int64_t cpu_fallbacks = 0;
  /// Lost CAS races on the load increment (another rank took the slot this
  /// scan chose first). Contention diagnostic: high values mean many ranks
  /// are fighting over the same min-load device.
  std::int64_t cas_retries = 0;
  // Health transitions this scheduler instance won the CAS for (each
  // transition is counted exactly once across all ranks).
  std::int64_t degradations = 0;   ///< healthy -> degraded
  std::int64_t quarantines = 0;    ///< -> quarantined
  std::int64_t recoveries = 0;     ///< degraded -> healthy (on success)
  std::int64_t readmissions = 0;   ///< quarantined -> degraded (probation)

  double gpu_task_ratio() const noexcept {
    const auto total = gpu_allocations + cpu_fallbacks;
    return total > 0 ? static_cast<double>(gpu_allocations) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

/// Fault-recovery accounting surfaced through HybridResult (DESIGN.md §11).
/// Balance invariants (asserted by tests/fault_injection_test.cpp):
///   injected == retried            — every injected fault fails exactly one
///                                    device attempt, which is caught and
///                                    reported exactly once;
///   retried <= requeued + cpu_fallbacks
///                                  — a failed attempt is either requeued to
///                                    a device or degraded to the host (the
///                                    inequality is strict only when tasks
///                                    degrade straight from an
///                                    all-quarantined sche_alloc verdict);
///   gpu_completed + cpu_completed == tasks_total
///                                  — exactly-once: no task lost, none done
///                                    twice.
struct FaultStats {
  std::int64_t injected = 0;       ///< faults the FaultPlan injected
  std::int64_t retried = 0;        ///< device attempts that failed
  std::int64_t requeued = 0;       ///< failed tasks resubmitted via sche_alloc
  std::int64_t cpu_fallbacks = 0;  ///< tasks degraded to the kernel-equivalent
                                   ///< host path (not the QAGS queue-full path)
  std::int64_t gpu_completed = 0;  ///< tasks whose final attempt held a device
  std::int64_t cpu_completed = 0;  ///< tasks finished on the host
  std::int64_t degradations = 0;   ///< healthy -> degraded transitions
  std::int64_t quarantines = 0;    ///< -> quarantined transitions
  std::int64_t recoveries = 0;     ///< degraded -> healthy promotions
  std::int64_t readmissions = 0;   ///< quarantine -> probation re-admissions
  std::int64_t device_deaths = 0;  ///< devices the plan killed permanently
};

/// The live scheduler operating on a SchedulerShm segment. Thread-safe and
/// lock-free: any number of ranks may call sche_alloc/sche_free
/// concurrently. Unlike the paper's pseudo-code (whose scan and increment
/// are not a single critical section), the increment uses a bounded
/// compare-and-swap so the maximum queue length can never be exceeded even
/// under races; losers rescan, preserving the min-load/min-history policy.
class TaskScheduler {
 public:
  explicit TaskScheduler(SchedulerShm& shm);

  /// Algorithm 1 SCHE-ALLOC. Returns device id or -1 (all full / no GPU).
  int sche_alloc();

  /// Directed reservation for the static scheduling policies (DESIGN.md
  /// §15): try to take one queue slot on exactly `device` — the same
  /// bounded CAS increment sche_alloc performs, minus the min-load scan.
  /// Returns `device` on success; -1 when the device is out of range,
  /// quarantined, or already at the queue-length cap (the caller decides
  /// whether to correct dynamically or fall back to the CPU). Counts a GPU
  /// allocation on success and nothing on failure.
  int sche_assign(int device);

  /// Algorithm 1 SCHE-FREE.
  void sche_free(int device);

  /// Record a CPU-fallback verdict a policy reached without going through
  /// sche_alloc (a failed sche_assign the policy chose not to correct), so
  /// gpu_allocations + cpu_fallbacks keeps counting every primary decision.
  void count_cpu_fallback() noexcept { ++stats_.cpu_fallbacks; }

  /// Record one primary allocation decision's latency into the shm
  /// histogram (timed_assign's storage; relaxed — pure telemetry).
  void record_sched_latency(std::int64_t ns) noexcept;

  int device_count() const noexcept { return shm_->device_count; }
  std::int32_t max_queue_length() const noexcept {
    return shm_->max_queue_length.load(std::memory_order_relaxed);
  }
  /// Change the bound at runtime (used by the autotuner).
  void set_max_queue_length(std::int32_t len);

  std::int32_t load(int device) const;
  std::int64_t history(int device) const;

  /// --- Recovery state machine (DESIGN.md §11) -------------------------
  /// sche_alloc masks quarantined devices as full, so they drain to the
  /// CPU fallback exactly as a saturated queue does; the transitions below
  /// are reported by the executors' retry wrappers.

  DeviceHealth health(int device) const;

  /// Every device is quarantined (false when there are no devices at all —
  /// a GPU-less run is the ordinary CPU path, not a degraded one).
  bool all_quarantined() const noexcept;

  /// A task attempt failed on `device`. Bumps the consecutive-fault streak
  /// and promotes the health state per the shm thresholds; `fatal` (device
  /// death) quarantines immediately. Returns the health after the report.
  /// Concurrent reporters race on a monotone CAS, so each transition is
  /// counted by exactly one of them.
  DeviceHealth report_task_fault(int device, bool fatal = false);

  /// A task attempt succeeded on `device`: reset the streak and promote
  /// degraded back to healthy.
  void report_task_success(int device);

  /// Re-admit a quarantined device on probation (-> degraded with a clean
  /// streak). Returns false if the device was not quarantined.
  bool readmit(int device);

  const SchedulerStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  bool quarantined(int device) const noexcept;

  // Const-hardened: the segment binding never changes after construction;
  // all mutation goes through the segment's own atomics.
  SchedulerShm* const shm_;
  SchedulerStats stats_;
  // stats_ is written by the owning rank only when TaskScheduler is
  // rank-local; the shared-use driver aggregates per-rank stats instead.
};

}  // namespace hspec::core
