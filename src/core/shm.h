#pragma once
// The shared-memory segment of the paper's scheduler (§III-C):
// "the local task scheduler communicates with MPI processes and GPUs via
//  share memory. The shared memory contains two types of arrays, one is the
//  load count of task queue on each device, and the other is the history
//  task count of each device."
//
// Two backends provide the same SchedulerShm view:
//  * in-process — the ranks of this library are threads (see minimpi), so a
//    heap segment of lock-free atomics is the exact analogue;
//  * POSIX — shm_open/mmap, byte-for-byte the paper's shmat() layout, usable
//    across real processes (exercised by tests to prove layout correctness).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace hspec::core {

/// Maximum GPUs one node's scheduler can manage.
inline constexpr int kMaxDevices = 64;

/// Maximum ranks the work-stealing point queue can partition across.
inline constexpr int kMaxRanks = 128;

/// Scheduling-latency histogram resolution (DESIGN.md §15). Buckets are
/// quarter-octaves of nanoseconds: bucket 4*o + s holds latencies in
/// [(1 + s/4) * 2^o, (1 + (s+1)/4) * 2^o) ns, so every decision lands in a
/// bucket within ~25% of its true latency. 64 buckets span [1 ns, 64 us);
/// the last bucket is open-ended and bucket 0 additionally absorbs sub-ns
/// readings (clock granularity).
inline constexpr int kSchedLatencyBuckets = 64;

/// Bucket index for one scheduling-decision latency (see above).
int sched_latency_bucket(std::int64_t ns) noexcept;

/// Exclusive upper bound of `bucket` in nanoseconds (the value the median /
/// quantile estimators report for samples inside it).
double sched_latency_bucket_upper_ns(int bucket) noexcept;

/// Work-stealing distribution of grid points across ranks, living in the
/// same shared segment as the Algorithm 1 arrays. Each rank owns an initial
/// contiguous range (the old static split) and claims chunks from its own
/// cursor; a rank whose range is exhausted steals chunks from the victim
/// with the most unclaimed points instead of idling at the barrier. Cursors
/// only grow, so every point index is handed out exactly once even when
/// thieves race; a fetch_add that lands past the range end simply claims
/// nothing.
struct PointWorkQueue {
  std::atomic<std::int64_t> cursor[kMaxRanks];  ///< next unclaimed point
  std::int64_t range_begin[kMaxRanks];
  std::int64_t range_end[kMaxRanks];
  std::atomic<std::int64_t> steals;             ///< chunks taken from others
  std::atomic<std::int64_t> stolen_points;      ///< points those chunks held
  std::int32_t nranks;
  std::int64_t chunk;

  /// Partition [0, n_points) into near-equal contiguous ranges (identical
  /// to the old static split) claimed `chunk_size` points at a time.
  /// Throws std::invalid_argument on `ranks` outside [0, kMaxRanks] (an
  /// out-of-range count would write past the cursor arrays), negative
  /// `n_points`, points with zero ranks, or `chunk_size < 1`.
  void initialize(std::int64_t n_points, std::int32_t ranks,
                  std::int64_t chunk_size);

  struct Claim {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    bool stolen = false;
    bool empty() const noexcept { return begin >= end; }
  };

  /// Claim the next chunk of points for `rank`: its own range first, then
  /// steal from the most-loaded victim. Empty claim => all points handed out.
  Claim claim(int rank) noexcept;

  /// Points not yet claimed by anyone (racy snapshot, for reporting).
  std::int64_t remaining() const noexcept;
};

/// Per-device recovery state machine (DESIGN.md §11). Transitions are
/// driven by consecutive failed task attempts: healthy -> degraded after
/// `degrade_after`, -> quarantined after `quarantine_after` (or immediately
/// on device death); a success resets the streak and promotes degraded back
/// to healthy; readmission drops quarantined to degraded (probation).
/// Numeric values order by severity so promotion is a monotone CAS.
enum class DeviceHealth : std::int32_t {
  healthy = 0,
  degraded = 1,
  quarantined = 2,
};

const char* to_string(DeviceHealth health) noexcept;

/// POD-with-atomics segment: load l_i and history h_i per device
/// (Algorithm 1's global variables), plus the work-stealing point queue
/// and the per-device recovery state.
/// Lock-free on every target we support.
struct SchedulerShm {
  std::atomic<std::int32_t> load[kMaxDevices];
  std::atomic<std::int64_t> history[kMaxDevices];
  /// DeviceHealth values; quarantined devices are masked as full by
  /// sche_alloc so they drain to the CPU path exactly as a full queue does.
  std::atomic<std::int32_t> health[kMaxDevices];
  /// Consecutive failed task attempts since the device's last success.
  std::atomic<std::int32_t> faults_seen[kMaxDevices];
  std::int32_t device_count;
  /// Queue bound read by every rank's sche_alloc scan. Atomic because the
  /// autotuner retunes it at runtime (TaskScheduler::set_max_queue_length)
  /// while ranks are scheduling; relaxed ordering everywhere — the bound is
  /// advisory and carries no release payload.
  std::atomic<std::int32_t> max_queue_length;
  /// Health thresholds on the consecutive-fault streak. Set before ranks
  /// start (unlike max_queue_length these are never retuned, so plain).
  std::int32_t degrade_after;
  std::int32_t quarantine_after;
  PointWorkQueue points;
  /// Per-task scheduling-latency histogram (DESIGN.md §15): every *primary*
  /// allocation decision — the one timed_assign() clocks between "task
  /// ready" and "device assigned" — lands in exactly one bucket, so the
  /// bucket counts sum to tasks_total (fault-retry re-allocations go through
  /// sche_alloc directly and are deliberately not recorded). Reset once per
  /// batch by the executor, like the point queue.
  std::atomic<std::int64_t> sched_latency_hist[kSchedLatencyBuckets];
  std::atomic<std::int64_t> sched_latency_ns_total;

  /// Zero the scheduling-latency histogram (single-threaded, batch start).
  void reset_sched_latency() noexcept;

  /// Throws std::invalid_argument on `devices` outside [0, kMaxDevices] or
  /// `max_queue_len < 1` — a device count past kMaxDevices would let every
  /// scheduler scan read past the load/history arrays.
  void initialize(int devices, int max_queue_len);
};

static_assert(std::atomic<std::int32_t>::is_always_lock_free,
              "scheduler shm requires lock-free 32-bit atomics");
static_assert(std::atomic<std::int64_t>::is_always_lock_free,
              "scheduler shm requires lock-free 64-bit atomics");

/// RAII owner of a SchedulerShm segment.
class ShmRegion {
 public:
  /// Heap-backed segment shared between ranks-as-threads.
  static ShmRegion create_inprocess(int devices, int max_queue_len);

  /// POSIX shared-memory segment (`shm_open`), visible to other processes
  /// under `name` (e.g. "/hspec_sched"). Unlinked on destruction when owned.
  static ShmRegion create_posix(const std::string& name, int devices,
                                int max_queue_len);

  /// Attach to an existing POSIX segment created by another process.
  static ShmRegion attach_posix(const std::string& name);

  ShmRegion(ShmRegion&&) noexcept;
  ShmRegion& operator=(ShmRegion&&) noexcept;
  ShmRegion(const ShmRegion&) = delete;
  ShmRegion& operator=(const ShmRegion&) = delete;
  ~ShmRegion();

  SchedulerShm& view() noexcept { return *shm_; }
  const SchedulerShm& view() const noexcept { return *shm_; }

 private:
  ShmRegion() = default;

  SchedulerShm* shm_ = nullptr;
  std::unique_ptr<SchedulerShm> heap_;  // in-process backend storage
  std::string posix_name_;              // non-empty => mmap backend
  bool posix_owner_ = false;
};

}  // namespace hspec::core
