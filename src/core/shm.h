#pragma once
// The shared-memory segment of the paper's scheduler (§III-C):
// "the local task scheduler communicates with MPI processes and GPUs via
//  share memory. The shared memory contains two types of arrays, one is the
//  load count of task queue on each device, and the other is the history
//  task count of each device."
//
// Two backends provide the same SchedulerShm view:
//  * in-process — the ranks of this library are threads (see minimpi), so a
//    heap segment of lock-free atomics is the exact analogue;
//  * POSIX — shm_open/mmap, byte-for-byte the paper's shmat() layout, usable
//    across real processes (exercised by tests to prove layout correctness).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace hspec::core {

/// Maximum GPUs one node's scheduler can manage.
inline constexpr int kMaxDevices = 64;

/// POD-with-atomics segment: load l_i and history h_i per device
/// (Algorithm 1's global variables). Lock-free on every target we support.
struct SchedulerShm {
  std::atomic<std::int32_t> load[kMaxDevices];
  std::atomic<std::int64_t> history[kMaxDevices];
  std::int32_t device_count;
  std::int32_t max_queue_length;

  void initialize(int devices, int max_queue_len) noexcept;
};

static_assert(std::atomic<std::int32_t>::is_always_lock_free,
              "scheduler shm requires lock-free 32-bit atomics");
static_assert(std::atomic<std::int64_t>::is_always_lock_free,
              "scheduler shm requires lock-free 64-bit atomics");

/// RAII owner of a SchedulerShm segment.
class ShmRegion {
 public:
  /// Heap-backed segment shared between ranks-as-threads.
  static ShmRegion create_inprocess(int devices, int max_queue_len);

  /// POSIX shared-memory segment (`shm_open`), visible to other processes
  /// under `name` (e.g. "/hspec_sched"). Unlinked on destruction when owned.
  static ShmRegion create_posix(const std::string& name, int devices,
                                int max_queue_len);

  /// Attach to an existing POSIX segment created by another process.
  static ShmRegion attach_posix(const std::string& name);

  ShmRegion(ShmRegion&&) noexcept;
  ShmRegion& operator=(ShmRegion&&) noexcept;
  ShmRegion(const ShmRegion&) = delete;
  ShmRegion& operator=(const ShmRegion&) = delete;
  ~ShmRegion();

  SchedulerShm& view() noexcept { return *shm_; }
  const SchedulerShm& view() const noexcept { return *shm_; }

 private:
  ShmRegion() = default;

  SchedulerShm* shm_ = nullptr;
  std::unique_ptr<SchedulerShm> heap_;  // in-process backend storage
  std::string posix_name_;              // non-empty => mmap backend
  bool posix_owner_ = false;
};

}  // namespace hspec::core
