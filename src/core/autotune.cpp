#include "core/autotune.h"

#include <stdexcept>

namespace hspec::core {

AutotuneResult autotune_max_queue_length(util::FunctionRef<double(int)> measure,
                                         const AutotuneOptions& opt) {
  if (opt.min_queue_length < 1 || opt.step < 1 ||
      opt.max_queue_length < opt.min_queue_length)
    throw std::invalid_argument("autotune: malformed options");

  AutotuneResult result;
  double best_time = 0.0;
  int stalled = 0;  // consecutive probes without meaningful improvement
  for (int q = opt.min_queue_length; q <= opt.max_queue_length; q += opt.step) {
    const double t = measure(q);
    result.probes.push_back({q, t});
    if (result.probes.size() == 1 ||
        t < best_time * (1.0 - opt.degradation_tolerance)) {
      // Meaningful improvement: keep growing the queue.
      best_time = std::min(t, result.probes.size() == 1 ? t : best_time);
      stalled = 0;
    } else {
      best_time = std::min(best_time, t);
      if (++stalled >= opt.patience) break;  // the performance inflexion
    }
  }

  // "The maximum queue length will be fixed at the value leading to the
  // inflexion point": the smallest probed length whose time is within the
  // tolerance band of the best — larger queues only add waiting.
  result.best_time_s = best_time;
  for (const AutotuneProbe& p : result.probes) {
    if (p.time_s <= best_time * (1.0 + opt.degradation_tolerance)) {
      result.best_max_queue_length = p.max_queue_length;
      result.best_time_s = p.time_s;
      break;
    }
  }
  return result;
}

}  // namespace hspec::core
