#pragma once
// Automatic maximum-queue-length selection (§III-A):
// "the scheduler chooses the maximum queue length through an automatic
// test. At the beginning the scheduler will try to find the most proper
// maximum queue length by increasing the value of it gradually until the
// performance inflexion occurs. And then the maximum queue length will be
// fixed at the value leading to the inflexion point."

#include <vector>

#include "util/function_ref.h"

namespace hspec::core {

struct AutotuneProbe {
  int max_queue_length = 0;
  double time_s = 0.0;
};

struct AutotuneResult {
  int best_max_queue_length = 0;
  double best_time_s = 0.0;
  std::vector<AutotuneProbe> probes;  ///< in probing order
};

struct AutotuneOptions {
  int min_queue_length = 2;
  int max_queue_length = 32;
  int step = 2;
  /// Band width for "no meaningful change": probing stops after `patience`
  /// consecutive probes fail to improve the best time by more than this
  /// fraction, and the chosen queue length is the smallest probe within the
  /// band of the best (larger queues only add waiting time).
  double degradation_tolerance = 0.02;
  int patience = 2;
};

/// Probe `measure(qlen)` (total computation time for a calibration workload
/// at that maximum queue length) with gradually increasing qlen and return
/// the inflexion point.
AutotuneResult autotune_max_queue_length(
    util::FunctionRef<double(int)> measure, const AutotuneOptions& opt = {});

}  // namespace hspec::core
