#pragma once
// Pluggable scheduling policies over the Algorithm 1 scheduler (DESIGN.md
// §15). The paper ships exactly one strategy — every rank picks the
// min-load device at task-submission time — and pays a shared-cache-line
// scan plus a CAS per task for it. This seam makes that strategy one of
// three:
//
//  * dynamic_min_load    — the paper's Algorithm 1 pick, unchanged: scan
//    loads, CAS the min-load device, QAGS fallback when all queues are
//    full. Maximum information, maximum per-task overhead.
//  * static_cost_partition — a StarPU-style pre-partition: at batch start
//    every schedulable ion unit is priced with the same per-task GPU cost
//    estimate the perfmodel DES is calibrated on
//    (vgpu::estimated_task_gpu_s) and packed onto devices by LPT greedy.
//    Per task the rank does one table lookup and one directed CAS — no
//    scan. A full (or quarantined) target sends the task to the CPU
//    fallback; nothing rebalances.
//  * hybrid_static_steal — the static table first, and when the directed
//    reservation fails (queue full, device quarantined) the task falls
//    back to the dynamic min-load pick instead of the CPU. Static cost in
//    the common case, dynamic correction under imbalance or faults.
//
// All three produce bitwise-identical spectra for max_queue_length large
// enough that no task overflows to QAGS: virtual GPUs execute identical
// host math, so *which* GPU runs a task never changes bits — only the
// GPU/CPU split can, and that is exactly what the policies vary under
// pressure. The identity tests pin this.
//
// Instrumentation: every primary allocation decision is clocked by
// timed_assign() and recorded in SchedulerShm's fixed-bucket latency
// histogram; read_scheduling_stats() folds it into the SchedulingStats
// surfaced by HybridResult / service::ServiceStats.
//
// Threading contract: begin_batch() is single-threaded (executor, batch
// start); assign() is called concurrently by every rank and must only read
// policy state, mutating shared state through the TaskScheduler only.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/scheduler.h"
#include "core/shm.h"
#include "core/task.h"

namespace hspec::apec {
class SpectrumCalculator;
}
namespace hspec::vgpu {
struct DeviceProperties;
}

namespace hspec::core {

enum class SchedulingPolicyKind : std::int32_t {
  dynamic_min_load = 0,
  static_cost_partition = 1,
  hybrid_static_steal = 2,
};

const char* to_string(SchedulingPolicyKind kind) noexcept;

/// One batch's scheduling-latency telemetry, read back from the shm
/// histogram after the ranks join. Counts sum to the batch's tasks_total
/// (timed_assign clocks exactly one decision per task).
struct SchedulingStats {
  SchedulingPolicyKind policy = SchedulingPolicyKind::dynamic_min_load;
  std::int64_t hist[kSchedLatencyBuckets] = {};
  std::int64_t decisions = 0;       ///< sum of hist
  std::int64_t latency_ns_total = 0;

  double mean_ns() const noexcept;
  /// Histogram quantile with linear interpolation inside the bucket that
  /// crosses q * decisions (the standard estimator — without it a quantile
  /// could only move in ~25% bucket-width jumps). 0 when no decisions were
  /// recorded; never exceeds the last bucket's upper bound.
  double quantile_ns(double q) const noexcept;
  double median_ns() const noexcept { return quantile_ns(0.5); }
};

/// Snapshot the shm latency histogram into a SchedulingStats (relaxed
/// loads; call after the ranks have joined).
SchedulingStats read_scheduling_stats(const SchedulerShm& shm,
                                      SchedulingPolicyKind kind);

/// Everything a policy may precompute from at batch start. The calculator
/// gives the ion universe and integration options (kernel evals per bin,
/// batched lanes); device_properties prices the kernel/transfer times
/// (null => the paper's Tesla C2075).
struct BatchContext {
  const apec::SpectrumCalculator* calc = nullptr;
  TaskGranularity granularity = TaskGranularity::ion;
  int device_count = 0;
  const vgpu::DeviceProperties* device_properties = nullptr;
};

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual SchedulingPolicyKind kind() const noexcept = 0;

  /// Single-threaded, once per batch, before any rank calls assign().
  virtual void begin_batch(const BatchContext& ctx) = 0;

  /// Pick (and reserve a queue slot on) a device for `task`, or return -1
  /// for the CPU path. Thread-safe: called concurrently by every rank.
  virtual int assign(const SpectralTask& task, TaskScheduler& sched) = 0;

  static std::unique_ptr<SchedulingPolicy> make(SchedulingPolicyKind kind);
};

/// The instrumented decision site: clock assign() and record the latency in
/// the shm histogram. Every task goes through here exactly once (fault-path
/// re-allocations call sche_alloc directly), which is what keeps the
/// histogram counts equal to tasks_total.
int timed_assign(SchedulingPolicy& policy, const SpectralTask& task,
                 TaskScheduler& sched);

}  // namespace hspec::core
