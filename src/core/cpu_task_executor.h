#pragma once
// CPU fallback execution of one spectral task (§III-A): "the original CPU
// process will continue to achieve the task by calling traditional QAGS
// routine serially."

#include "apec/calculator.h"
#include "apec/spectrum.h"
#include "core/task.h"

namespace hspec::core {

/// Execute `task` with the adaptive QAGS path on the calling thread and
/// accumulate into `spectrum`. Returns the number of bin integrals done.
std::size_t execute_task_on_cpu(const apec::SpectrumCalculator& calc,
                                const SpectralTask& task,
                                const apec::PointPopulations& pops,
                                apec::Spectrum& spectrum);

}  // namespace hspec::core
