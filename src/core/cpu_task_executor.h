#pragma once
// CPU fallback execution of one spectral task (§III-A): "the original CPU
// process will continue to achieve the task by calling traditional QAGS
// routine serially."

#include "apec/calculator.h"
#include "apec/spectrum.h"
#include "core/task.h"

namespace hspec::core {

/// Per-rank QAGS executor. The CPU path must use adaptive integration
/// regardless of how the hybrid calculator is configured for GPU kernels;
/// building that QAGS calculator is not free, so each rank constructs one
/// CpuTaskExecutor up front and reuses it for every fallback task instead
/// of paying the construction on each task (the old per-task behaviour).
class CpuTaskExecutor {
 public:
  /// Clones `calc`'s configuration with adaptive (QAGS) integration.
  explicit CpuTaskExecutor(const apec::SpectrumCalculator& calc);

  /// Execute `task` on the calling thread and accumulate into `spectrum`.
  /// Returns the number of bin integrals done.
  std::size_t execute(const SpectralTask& task,
                      const apec::PointPopulations& pops,
                      apec::Spectrum& spectrum) const;

  const apec::SpectrumCalculator& calculator() const noexcept { return qags_; }

 private:
  apec::SpectrumCalculator qags_;
};

/// One-shot convenience wrapper: builds a CpuTaskExecutor for a single task.
/// Hot loops should construct the executor once per rank instead.
std::size_t execute_task_on_cpu(const apec::SpectrumCalculator& calc,
                                const SpectralTask& task,
                                const apec::PointPopulations& pops,
                                apec::Spectrum& spectrum);

/// Graceful-degradation executor (DESIGN.md §11): runs the task on the host
/// with the GPU kernel's own per-bin rule (vgpu::integr_edges_host) and the
/// GPU executor's accumulation order, so a task that exhausts its retry
/// budget — or finds every device quarantined — still contributes bytes
/// identical to what the device would have produced. Distinct from
/// CpuTaskExecutor, which is the paper's QAGS path for full queues and
/// differs from the kernels at the 1e-5 level. Returns the number of bin
/// integrals done.
std::size_t execute_task_degraded(const apec::SpectrumCalculator& calc,
                                  const SpectralTask& task,
                                  const apec::PointPopulations& pops,
                                  apec::Spectrum& spectrum);

}  // namespace hspec::core
