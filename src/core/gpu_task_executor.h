#pragma once
// GPU execution of one spectral task (§III-B + Algorithm 2).
//
// Ion granularity: upload the bin edges once, launch one accumulate-kernel
// per energy level ("the result of emissivity of each energy level in each
// energy bin will be accumulated on GPUs until the task is completed"),
// then one device-to-host transfer of the whole emi array.
//
// Level granularity: the same, for a single level — which is exactly why it
// loses: the fixed context-switch + transfer overhead is paid per level.

#include "apec/calculator.h"
#include "apec/spectrum.h"
#include "core/task.h"
#include "vgpu/arena.h"
#include "vgpu/buffer_pool.h"
#include "vgpu/device.h"

namespace hspec::core {

struct GpuExecutionReport {
  std::size_t kernels = 0;
  std::size_t levels_done = 0;
  std::size_t bins = 0;
};

/// Execute `task` on `device` and accumulate the result into `spectrum`
/// (host side). `pops` must be the populations of task.point.
/// The integration method comes from calc.options().integration (the
/// non-adaptive kernel settings; the adaptive flag is ignored here).
/// With `pool` non-null, device buffers are leased from it instead of
/// allocated per task (the steady-state production configuration).
/// With integration.batch set, the kernels run the vectorized batched
/// integrand; `arena`, when non-null, supplies the batch scratch (pass the
/// rank's arena so steady-state tasks allocate nothing — it is reset here,
/// once per task). A null arena falls back to a task-local one.
GpuExecutionReport execute_task_on_gpu(const apec::SpectrumCalculator& calc,
                                       const SpectralTask& task,
                                       const apec::PointPopulations& pops,
                                       vgpu::Device& device,
                                       apec::Spectrum& spectrum,
                                       vgpu::BufferPool* pool = nullptr,
                                       vgpu::ScratchArena* arena = nullptr);

}  // namespace hspec::core
