#pragma once
// Long-lived hybrid execution core — the reuse seam under HybridDriver and
// the batch engine under service::SpectralService (DESIGN.md §13).
//
// HybridDriver::run built the whole device stack per call: registry, shm
// segment, buffer pools, stream schedulers, resident caches. That is the
// right shape for a one-shot calculation and exactly the wrong shape for an
// always-on service, where the next batch arrives microseconds after the
// last one drained and the bin edges it needs are already resident on every
// device. HybridExecutor hoists the device stack into a constructed-once
// handle:
//
//  * the DeviceRegistry, SchedulerShm, per-device BufferPools and
//    DevicePipelines (stream scheduler + resident edge cache) live for the
//    executor's lifetime — batch N+1 reuses batch N's pools and resident
//    edges, so steady-state batches pay zero device allocations and zero
//    edge re-uploads;
//  * device health persists across batches: a device quarantined while
//    serving one request stays masked for the next (the service-level
//    recovery story), while per-batch counters are reported as deltas so a
//    HybridResult still describes one batch, not the executor's lifetime;
//  * run_batch() is the coalescing seam: callers may concatenate grid
//    points from many independent requests into one batch — the scheduler
//    and work-stealing queue treat them as one workload, which is what
//    makes cross-request device sharing free.
//
// Threading: run_batch() spawns and joins its minimpi ranks internally, but
// the executor itself is single-caller — one batch in flight at a time
// (HSPEC_DCHECK-enforced). Concurrency across requests is the service
// layer's job (it owns the one worker thread that pumps this executor).

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/async_executor.h"
#include "core/hybrid.h"
#include "core/shm.h"
#include "vgpu/buffer_pool.h"
#include "vgpu/device.h"

namespace hspec::core {

class HybridExecutor {
 public:
  /// Builds the device stack once: registry, shm scheduler segment, one
  /// BufferPool and DevicePipeline per device. Validates `config` exactly
  /// as HybridDriver does.
  HybridExecutor(const apec::SpectrumCalculator& calculator,
                 HybridConfig config);
  ~HybridExecutor();

  HybridExecutor(const HybridExecutor&) = delete;
  HybridExecutor& operator=(const HybridExecutor&) = delete;

  /// Run one batch of grid points (possibly coalesced from many requests)
  /// through the long-lived device stack. The HybridResult is per-batch:
  /// spectra in point order; scheduling/fault/pipeline counters, device
  /// stats, history and virtual times are deltas since the previous batch.
  /// device_health is live state and carries across batches.
  ///
  /// A fresh executor running a single batch behaves exactly like
  /// HybridDriver::run — spectra bitwise included (HybridDriver is now this
  /// wrapper, and the identity tests pin it).
  HybridResult run_batch(const std::vector<apec::GridPoint>& points);

  const HybridConfig& config() const noexcept { return config_; }
  int device_count() const noexcept { return n_dev_; }

  /// Batches run through this executor so far.
  std::uint64_t batches_run() const noexcept {
    return batches_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-device cumulative counters captured at batch start, so run_batch
  /// can report per-batch deltas off the long-lived stack.
  struct DeviceSnapshot {
    std::int64_t history = 0;
    vgpu::DeviceStats device;
    vgpu::ResidentCache::Stats cache;
    std::uint64_t streams_opened = 0;
    double sync_time_s = 0.0;
  };

  const apec::SpectrumCalculator* calc_;
  HybridConfig config_;
  vgpu::DeviceRegistry registry_;
  ShmRegion shm_;
  int n_dev_ = 0;
  std::vector<std::unique_ptr<vgpu::BufferPool>> pools_;
  std::vector<std::unique_ptr<DevicePipeline>> pipes_;
  std::vector<DevicePipeline*> pipe_views_;
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<bool> batch_in_flight_{false};
};

}  // namespace hspec::core
