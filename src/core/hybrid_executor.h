#pragma once
// Long-lived hybrid execution core — the reuse seam under HybridDriver and
// the batch engine under service::SpectralService (DESIGN.md §13).
//
// HybridDriver::run built the whole device stack per call: registry, shm
// segment, buffer pools, stream schedulers, resident caches. That is the
// right shape for a one-shot calculation and exactly the wrong shape for an
// always-on service, where the next batch arrives microseconds after the
// last one drained and the bin edges it needs are already resident on every
// device. HybridExecutor hoists the device stack into a constructed-once
// handle:
//
//  * the DeviceRegistry, SchedulerShm, per-device BufferPools and
//    DevicePipelines (stream scheduler + resident edge cache) live for the
//    executor's lifetime — batch N+1 reuses batch N's pools and resident
//    edges, so steady-state batches pay zero device allocations and zero
//    edge re-uploads;
//  * device health persists across batches: a device quarantined while
//    serving one request stays masked for the next (the service-level
//    recovery story), while per-batch counters are reported as deltas so a
//    HybridResult still describes one batch, not the executor's lifetime;
//  * run_batch() is the coalescing seam: callers may concatenate grid
//    points from many independent requests into one batch — the scheduler
//    and work-stealing queue treat them as one workload, which is what
//    makes cross-request device sharing free.
//
// Threading: run_batch() spawns and joins its minimpi ranks internally, but
// the executor itself is single-caller — one batch in flight at a time
// (HSPEC_DCHECK-enforced). Concurrency across requests is the service
// layer's job (it owns the one worker thread that pumps this executor).

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/async_executor.h"
#include "core/hybrid.h"
#include "core/sched_policy.h"
#include "core/shm.h"
#include "util/thread_annotations.h"
#include "vgpu/buffer_pool.h"
#include "vgpu/device.h"

namespace hspec::core {

/// Cross-rank aggregation of one batch's counters. Every rank calls
/// merge_rank() once after the barrier; the single-threaded epilogue then
/// publishes the totals into the HybridResult. merge_rank takes the mutex
/// itself, so callers must not already hold it; the declarations below are
/// the contract hlint's [guard-verify] pass checks against the locksets it
/// actually observes.
class BatchAccumulator {
 public:
  /// Fold one rank's scheduler stats, recovery accounting, task count and
  /// (when pipelined) async-executor stats into the batch totals.
  void merge_rank(const SchedulerStats& sched, const FaultStats& fs,
                  std::size_t tasks, const AsyncGpuExecutor::Stats* async)
      HSPEC_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    scheduling_.gpu_allocations += sched.gpu_allocations;
    scheduling_.cpu_fallbacks += sched.cpu_fallbacks;
    scheduling_.cas_retries += sched.cas_retries;
    scheduling_.degradations += sched.degradations;
    scheduling_.quarantines += sched.quarantines;
    scheduling_.recoveries += sched.recoveries;
    scheduling_.readmissions += sched.readmissions;
    faults_.retried += fs.retried;
    faults_.requeued += fs.requeued;
    faults_.cpu_fallbacks += fs.cpu_fallbacks;
    faults_.gpu_completed += fs.gpu_completed;
    faults_.cpu_completed += fs.cpu_completed;
    tasks_total_ += tasks;
    if (async != nullptr) {
      tasks_pipelined_ += async->gpu_tasks;
      max_in_flight_ = std::max(max_in_flight_, async->max_in_flight);
    }
  }

  /// Copy the aggregate into `result` (scheduling, faults, tasks_total and
  /// the rank-side pipeline counters). Called after every rank has merged
  /// and joined; takes the lock anyway so the contract has one shape.
  void publish(HybridResult& result) HSPEC_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    result.scheduling = scheduling_;
    result.faults = faults_;
    result.tasks_total = tasks_total_;
    result.pipeline.tasks_pipelined = tasks_pipelined_;
    result.pipeline.max_in_flight = max_in_flight_;
  }

 private:
  util::Mutex mu_;
  SchedulerStats scheduling_ HSPEC_GUARDED_BY(mu_);
  FaultStats faults_ HSPEC_GUARDED_BY(mu_);
  std::size_t tasks_total_ HSPEC_GUARDED_BY(mu_) = 0;
  std::uint64_t tasks_pipelined_ HSPEC_GUARDED_BY(mu_) = 0;
  std::uint64_t max_in_flight_ HSPEC_GUARDED_BY(mu_) = 0;
};

class HybridExecutor {
 public:
  /// Builds the device stack once: registry, shm scheduler segment, one
  /// BufferPool and DevicePipeline per device. Validates `config` exactly
  /// as HybridDriver does.
  HybridExecutor(const apec::SpectrumCalculator& calculator,
                 HybridConfig config);
  ~HybridExecutor();

  HybridExecutor(const HybridExecutor&) = delete;
  HybridExecutor& operator=(const HybridExecutor&) = delete;

  /// Run one batch of grid points (possibly coalesced from many requests)
  /// through the long-lived device stack. The HybridResult is per-batch:
  /// spectra in point order; scheduling/fault/pipeline counters, device
  /// stats, history and virtual times are deltas since the previous batch.
  /// device_health is live state and carries across batches.
  ///
  /// A fresh executor running a single batch behaves exactly like
  /// HybridDriver::run — spectra bitwise included (HybridDriver is now this
  /// wrapper, and the identity tests pin it).
  HybridResult run_batch(const std::vector<apec::GridPoint>& points);

  const HybridConfig& config() const noexcept { return config_; }
  int device_count() const noexcept { return n_dev_; }

  /// Batches run through this executor so far.
  std::uint64_t batches_run() const noexcept {
    return batches_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-device cumulative counters captured at batch start, so run_batch
  /// can report per-batch deltas off the long-lived stack.
  struct DeviceSnapshot {
    std::int64_t history = 0;
    vgpu::DeviceStats device;
    vgpu::ResidentCache::Stats cache;
    std::uint64_t streams_opened = 0;
    double sync_time_s = 0.0;
  };

  const apec::SpectrumCalculator* calc_;
  HybridConfig config_;
  vgpu::DeviceRegistry registry_;
  ShmRegion shm_;
  /// The batch's device-selection strategy (config_.scheduling_policy).
  /// begin_batch() runs single-threaded at batch start; during the batch
  /// every rank calls its read-only assign() through timed_assign.
  std::unique_ptr<SchedulingPolicy> policy_;
  int n_dev_ = 0;
  std::vector<std::unique_ptr<vgpu::BufferPool>> pools_;
  std::vector<std::unique_ptr<DevicePipeline>> pipes_;
  std::vector<DevicePipeline*> pipe_views_;
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<bool> batch_in_flight_{false};
};

}  // namespace hspec::core
