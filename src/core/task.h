#pragma once
// The task model of the hybrid framework.
//
// Granularity (§III-B): a task is either one *ion* (coarse: all of the
// ion's energy levels; per-level results accumulate on the GPU and transfer
// once) or one *energy level* of an ion (fine: one kernel + one transfer
// per level — the configuration Fig. 3 shows losing ~2x).

#include <cstddef>
#include <string>

#include "apec/parameter_space.h"
#include "atomic/database.h"
#include "quad/integrate.h"

namespace hspec::core {

enum class TaskGranularity { ion, level };

std::string to_string(TaskGranularity g);

/// One schedulable unit of spectral work.
struct SpectralTask {
  apec::GridPoint point;
  atomic::IonUnit ion;
  TaskGranularity granularity = TaskGranularity::ion;
  /// Level index within the ion; only meaningful for level granularity.
  std::size_t level_index = 0;
};

/// Workload scale knobs. Defaults are test-sized; the paper-scale values
/// (used by the DES benches) are in perfmodel::paper_workload().
struct WorkloadParams {
  std::size_t ions_per_point = 496;
  std::size_t avg_levels_per_ion = 4;
  std::size_t bins_per_level = 50'000;
  quad::KernelMethod method = quad::KernelMethod::simpson;
  std::size_t method_param = quad::kPaperSimpsonPanels;

  /// RRC integrals one ion task contains.
  std::size_t integrals_per_ion_task() const noexcept {
    return avg_levels_per_ion * bins_per_level;
  }
  /// RRC integrals per grid point (the paper's "up to 2.0e8").
  std::size_t integrals_per_point() const noexcept {
    return ions_per_point * integrals_per_ion_task();
  }
};

}  // namespace hspec::core
