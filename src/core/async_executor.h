#pragma once
// Asynchronous pipelined task execution — the paper's §V remedy built out:
// "Only synchronous mode is supported in the task scheduler ... some
// asynchronous task queuing mechanism must be introduced to keep CPUs busy."
//
// The synchronous driver blocks the rank on every GPU task and re-uploads
// the identical bin-edge array each time. This executor instead
//
//  * routes every GPU task through per-rank vgpu::Streams (`pipeline_depth`
//    per device), so the H2D-free kernel chain and D2H readback of
//    consecutive tasks overlap per the device's concurrency rules (copy /
//    compute overlap on Fermi, up to 32-wide Hyper-Q on Kepler);
//  * leases the bin edges from the device's ResidentCache — one upload per
//    device for the whole run instead of one per task;
//  * double-buffers the emissivity accumulator: each in-flight task owns an
//    emi device buffer plus a host staging array, recycled through the
//    device's BufferPool as tasks drain.
//
// Ordering contract: results drain through one per-rank FIFO in submission
// order, and CPU-fallback / closed-form tasks travel through the same FIFO,
// so the floating-point accumulation order is exactly the synchronous
// driver's — spectra are bit-identical between the two modes. (On the
// virtual GPU all work executes eagerly on the host; deferring the
// *accumulation* costs nothing real and keeps the virtual timeline honest.)

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "apec/calculator.h"
#include "apec/spectrum.h"
#include "core/cpu_task_executor.h"
#include "core/scheduler.h"
#include "core/task.h"
#include "vgpu/arena.h"
#include "vgpu/buffer_pool.h"
#include "vgpu/device.h"
#include "vgpu/resident_cache.h"
#include "vgpu/stream.h"

namespace hspec::core {

/// Shared per-device pipeline plumbing, owned by the driver and used by
/// every rank's AsyncGpuExecutor: the overlap scheduler all the device's
/// streams funnel into, the resident cache holding the bin edges, and the
/// buffer pool the emi accumulators recycle through.
struct DevicePipeline {
  // The plumbing pointers are fixed at construction (const-hardened): the
  // pipeline is shared by every rank, and only `streams_opened` — an atomic
  // counter — mutates after the ctor, so the struct needs no lock.
  vgpu::Device* const device;
  const std::unique_ptr<vgpu::StreamScheduler> streams;
  const std::unique_ptr<vgpu::ResidentCache> cache;
  vgpu::BufferPool* const pool;
  std::atomic<std::uint64_t> streams_opened{0};  ///< across all ranks

  explicit DevicePipeline(vgpu::Device& dev, vgpu::BufferPool& buffer_pool)
      : device(&dev),
        streams(std::make_unique<vgpu::StreamScheduler>(dev)),
        cache(std::make_unique<vgpu::ResidentCache>(dev)),
        pool(&buffer_pool) {}
};

/// One rank's pipelined executor. Not thread-safe: each rank owns one.
class AsyncGpuExecutor {
 public:
  struct Stats {
    std::uint64_t gpu_tasks = 0;    ///< tasks that ran kernels on a device
    std::uint64_t host_tasks = 0;   ///< closed-form + CPU-fallback tasks
    std::uint64_t kernels = 0;      ///< async kernel launches issued
    std::uint64_t max_in_flight = 0;  ///< pipeline high-water mark (GPU tasks)
  };

  /// `pipelines[d]` must outlive the executor; `depth` is the number of
  /// in-flight tasks (and streams) this rank keeps per device.
  /// `max_attempts` bounds device attempts per task before it degrades to
  /// the host; `recovery` arms the health reporting (set when a FaultPlan
  /// is installed, so the fault-free hot path pays nothing); `fault_stats`,
  /// when non-null, receives this rank's recovery accounting.
  AsyncGpuExecutor(const apec::SpectrumCalculator& calc,
                   const std::vector<DevicePipeline*>& pipelines,
                   TaskScheduler& scheduler, const CpuTaskExecutor& cpu,
                   int depth = 2, int max_attempts = 3, bool recovery = false,
                   FaultStats* fault_stats = nullptr);

  /// Queue one task. `device` is the scheduler's verdict: >= 0 pipelines the
  /// task onto that device (the load slot is released when the task drains),
  /// -1 defers it to the QAGS path. May drain older tasks to honour `depth`.
  void submit(const SpectralTask& task, const apec::PointPopulations& pops,
              int device, apec::Spectrum& spectrum);

  /// Drain every in-flight task (accumulate + sche_free, in order). Must be
  /// called before reading any spectrum passed to submit() — the driver
  /// drains at each grid-point boundary.
  void drain_all();

  ~AsyncGpuExecutor();  // drains; a non-empty pipeline must not be dropped

  const Stats& stats() const noexcept { return stats_; }

 private:
  struct Slot {
    SpectralTask task;
    const apec::PointPopulations* pops = nullptr;
    apec::Spectrum* target = nullptr;
    int free_device = -1;  ///< sche_free() this device on drain (-1: none)
    bool gpu = false;      ///< emi/staging hold device results to accumulate
    /// Retry budget exhausted (or all devices quarantined): drain runs the
    /// kernel-equivalent host path in this slot's FIFO position, keeping
    /// the accumulation order — and hence bit-identity — intact.
    bool degraded = false;
    vgpu::DeviceBuffer emi;
    std::vector<double> staging;
  };

  struct Lane {
    std::vector<std::unique_ptr<vgpu::Stream>> streams;
    std::size_t next_stream = 0;
    int in_flight = 0;
    /// Batch-integrand scratch for this rank's launches on the device,
    /// reset once per submitted task: stream launches execute eagerly on
    /// the host, so nothing in flight holds arena spans, and steady-state
    /// tasks allocate nothing.
    vgpu::ScratchArena arena;
  };

  void submit_gpu(Slot& slot, int device);
  void drain_front();
  /// Undo a partially submitted slot after a fault (return its buffers).
  void abort_slot(Slot& slot, int device) noexcept;

  const apec::SpectrumCalculator* calc_;
  std::vector<DevicePipeline*> pipelines_;
  TaskScheduler* scheduler_;
  const CpuTaskExecutor* cpu_;
  int depth_;
  int max_attempts_;
  bool recovery_;
  FaultStats* fstats_;
  std::vector<Lane> lanes_;            // one per device
  std::deque<Slot> fifo_;              // drains in submission order
  std::vector<std::vector<double>> staging_pool_;
  Stats stats_;
};

}  // namespace hspec::core
