#include "core/hybrid_executor.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "core/cpu_task_executor.h"
#include "core/gpu_task_executor.h"
#include "minimpi/minimpi.h"
#include "util/dcheck.h"
#include "util/fault.h"

namespace hspec::core {

namespace {

void validate(const HybridConfig& config) {
  if (config.ranks < 1)
    throw std::invalid_argument("HybridExecutor: need at least one rank");
  if (config.ranks > kMaxRanks)
    throw std::invalid_argument("HybridExecutor: too many ranks for the queue");
  if (config.max_queue_length < 1)
    throw std::invalid_argument(
        "HybridExecutor: max queue length must be >= 1");
  if (config.pipeline_depth < 1)
    throw std::invalid_argument("HybridExecutor: pipeline depth must be >= 1");
  if (config.steal_chunk < 1)
    throw std::invalid_argument("HybridExecutor: steal chunk must be >= 1");
  if (config.max_task_attempts < 1)
    throw std::invalid_argument(
        "HybridExecutor: max task attempts must be >= 1");
  if (config.degrade_after < 1)
    throw std::invalid_argument("HybridExecutor: degrade_after must be >= 1");
  if (config.quarantine_after < config.degrade_after)
    throw std::invalid_argument(
        "HybridExecutor: quarantine_after must be >= degrade_after");
}

vgpu::DeviceStats delta(const vgpu::DeviceStats& now,
                        const vgpu::DeviceStats& before) {
  vgpu::DeviceStats d;
  d.kernels_launched = now.kernels_launched - before.kernels_launched;
  d.h2d_copies = now.h2d_copies - before.h2d_copies;
  d.d2h_copies = now.d2h_copies - before.d2h_copies;
  d.bytes_h2d = now.bytes_h2d - before.bytes_h2d;
  d.bytes_d2h = now.bytes_d2h - before.bytes_d2h;
  d.kernel_time_s = now.kernel_time_s - before.kernel_time_s;
  d.transfer_time_s = now.transfer_time_s - before.transfer_time_s;
  return d;
}

}  // namespace

HybridExecutor::HybridExecutor(const apec::SpectrumCalculator& calculator,
                               HybridConfig config)
    : calc_(&calculator),
      config_((validate(config), config)),
      registry_(config.devices),
      shm_(ShmRegion::create_inprocess(
          static_cast<int>(registry_.device_count()),
          config.max_queue_length)),
      policy_(SchedulingPolicy::make(config.scheduling_policy)) {
  n_dev_ = static_cast<int>(registry_.device_count());
  shm_.view().degrade_after = config_.degrade_after;
  shm_.view().quarantine_after = config_.quarantine_after;

  // One shared buffer pool per device: steady-state task execution never
  // touches the device allocator. The pipelined path adds the per-device
  // stream scheduler and the resident edge cache on top. All of it lives
  // for the executor's lifetime — the reuse that makes batch N+1's H2D
  // traffic collapse to the per-task minimum.
  for (int d = 0; d < n_dev_; ++d) {
    vgpu::Device& dev = registry_.device(static_cast<std::size_t>(d));
    pools_.push_back(std::make_unique<vgpu::BufferPool>(dev));
    pipes_.push_back(std::make_unique<DevicePipeline>(dev, *pools_.back()));
    pipe_views_.push_back(pipes_.back().get());
  }
}

HybridExecutor::~HybridExecutor() = default;

HybridResult HybridExecutor::run_batch(
    const std::vector<apec::GridPoint>& points) {
  // The exchange runs unconditionally (DCHECK operands compile out in
  // release); the flag itself is the re-entrancy guard either way.
  const bool reentered =
      batch_in_flight_.exchange(true, std::memory_order_acq_rel);
  HSPEC_DCHECK(!reentered,
               "HybridExecutor: run_batch is single-caller; concurrent "
               "batches must be coalesced or serialized by the service");
  (void)reentered;
  // Clears on every exit path — a rank exception must not wedge the
  // executor for the next batch.
  struct InFlightGuard {
    std::atomic<bool>& flag;
    ~InFlightGuard() { flag.store(false, std::memory_order_release); }
  } in_flight_guard{batch_in_flight_};

  // Per-batch delta baseline: the device stack is long-lived, the result
  // describes this batch only.
  std::vector<DeviceSnapshot> before(static_cast<std::size_t>(n_dev_));
  for (int d = 0; d < n_dev_; ++d) {
    auto& snap = before[static_cast<std::size_t>(d)];
    snap.history = shm_.view().history[d].load(std::memory_order_relaxed);
    snap.device = registry_.device(static_cast<std::size_t>(d)).stats();
    snap.cache = pipes_[static_cast<std::size_t>(d)]->cache->stats();
    snap.streams_opened =
        pipes_[static_cast<std::size_t>(d)]->streams_opened.load(
            std::memory_order_relaxed);
    const bool pipelined = config_.mode == ExecutionMode::pipelined;
    snap.sync_time_s =
        pipelined
            ? pipes_[static_cast<std::size_t>(d)]->streams->device_sync_time()
            : registry_.device(static_cast<std::size_t>(d)).busy_time_s();
  }

  // Near-equal contiguous seed ranges (the old static split) that ranks
  // drain chunk-by-chunk and rebalance by stealing. Re-initialized per
  // batch; steal counters restart at zero so the result stays per-batch.
  shm_.view().points.initialize(static_cast<std::int64_t>(points.size()),
                                config_.ranks, config_.steal_chunk);

  // Per-batch scheduling telemetry restarts with the point queue, and the
  // policy precomputes its batch state (the static policies build their
  // ion-keyed device table here) before any rank runs.
  shm_.view().reset_sched_latency();
  BatchContext policy_ctx;
  policy_ctx.calc = calc_;
  policy_ctx.granularity = config_.granularity;
  policy_ctx.device_count = n_dev_;
  policy_ctx.device_properties =
      n_dev_ > 0 ? &registry_.device(0).properties() : nullptr;
  policy_->begin_batch(policy_ctx);

  // Arm fault injection before the ranks start (thread creation publishes
  // the plan pointer). The plan's counters are cumulative across runs, so
  // snapshot them now and report the delta.
  util::FaultPlan* plan = config_.fault_plan;
  util::FaultPlan::Stats plan_before;
  if (plan != nullptr) plan_before = plan->stats();
  if (plan != nullptr) registry_.set_fault_plan(plan);

  const bool pipelined = config_.mode == ExecutionMode::pipelined;

  HybridResult result;
  result.spectra.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    result.spectra.emplace_back(calc_->grid());

  BatchAccumulator accum;  // cross-rank aggregation of this batch's counters

  minimpi::run(config_.ranks, [&](minimpi::Communicator& comm) {
    const int rank = comm.rank();
    TaskScheduler scheduler(shm_.view());
    // Per-rank QAGS calculator, built once and reused by every CPU-fallback
    // task (the old code rebuilt it per task).
    const CpuTaskExecutor cpu_exec(*calc_);
    // Per-rank batch-integrand scratch for the synchronous GPU path; reset
    // inside execute_task_on_gpu, so steady-state tasks allocate nothing.
    vgpu::ScratchArena gpu_scratch;
    FaultStats fs;  // this rank's recovery accounting
    std::optional<AsyncGpuExecutor> async;
    if (pipelined)
      async.emplace(*calc_, pipe_views_, scheduler, cpu_exec,
                    config_.pipeline_depth, config_.max_task_attempts,
                    plan != nullptr, &fs);

    // Synchronous-path recovery: a faulted device attempt frees its queue
    // slot, reports the failure, and asks the scheduler for a (possibly
    // different) device; past the retry budget — or with every device
    // quarantined — the task degrades to the kernel-equivalent host path.
    // execute_task_on_gpu accumulates into the spectrum only after its
    // final D2H, so a fault leaves the spectrum untouched and the retry
    // cannot double-count (the exactly-once argument of DESIGN.md §11).
    auto run_task_sync = [&](const SpectralTask& task,
                             const apec::PointPopulations& pops,
                             apec::Spectrum& out, int device,
                             TaskScheduler& sched) {
      for (int attempt = 1;; ++attempt) {
        if (device >= 0) {
          try {
            const GpuExecutionReport rep = execute_task_on_gpu(
                *calc_, task, pops,
                registry_.device(static_cast<std::size_t>(device)), out,
                pools_[static_cast<std::size_t>(device)].get(), &gpu_scratch);
            sched.sche_free(device);
            if (plan != nullptr && rep.kernels > 0)
              sched.report_task_success(device);
            ++fs.gpu_completed;
            return;
          } catch (const util::FaultError& e) {
            sched.sche_free(device);
            sched.report_task_fault(
                device, e.site() == util::FaultSite::device_death);
            ++fs.retried;
            device =
                attempt < config_.max_task_attempts ? sched.sche_alloc() : -1;
            if (device >= 0) {
              ++fs.requeued;
              continue;
            }
            ++fs.cpu_fallbacks;
            execute_task_degraded(*calc_, task, pops, out);
            ++fs.cpu_completed;
            return;
          }
        }
        // No device. Algorithm 1's QAGS fallback covers full queues; an
        // all-quarantined device set instead degrades to the kernel-
        // equivalent host path so the spectrum stays bit-identical.
        if (plan != nullptr && sched.all_quarantined()) {
          ++fs.cpu_fallbacks;
          execute_task_degraded(*calc_, task, pops, out);
        } else {
          cpu_exec.execute(task, pops, out);
        }
        ++fs.cpu_completed;
        return;
      }
    };

    std::size_t my_tasks = 0;
    PointWorkQueue& queue = shm_.view().points;
    if (config_.rank_start_hook) config_.rank_start_hook(rank, queue);
    for (PointWorkQueue::Claim claim = queue.claim(rank); !claim.empty();
         claim = queue.claim(rank)) {
      for (std::int64_t pi = claim.begin; pi < claim.end; ++pi) {
        const auto p = static_cast<std::size_t>(pi);
        const apec::PointPopulations pops =
            apec::solve_populations(calc_->database(), points[p]);
        apec::Spectrum local(calc_->grid());
        for (const SpectralTask& task :
             make_tasks(*calc_, points[p], pops, config_.granularity)) {
          ++my_tasks;
          // The single decision site both modes share: the policy picks
          // (and reserves) a device, the clock around it feeds the shm
          // latency histogram. Fault-path re-allocations below go through
          // sche_alloc directly, so the histogram stays one-per-task.
          const int device = timed_assign(*policy_, task, scheduler);
          if (pipelined) {
            async->submit(task, pops, device, local);
          } else {
            run_task_sync(task, pops, local, device, scheduler);
          }
        }
        // All of a point's tasks drain before its spectrum is published;
        // points are claimed exactly once, so accumulation is race-free.
        if (pipelined) async->drain_all();
        result.spectra[p] += local;
      }
    }

    comm.barrier();
    accum.merge_rank(scheduler.stats(), fs, my_tasks,
                     async ? &async->stats() : nullptr);
  });
  accum.publish(result);
  result.sched =
      read_scheduling_stats(shm_.view(), config_.scheduling_policy);

  for (int d = 0; d < n_dev_; ++d) {
    const auto du = static_cast<std::size_t>(d);
    const DeviceSnapshot& snap = before[du];
    vgpu::Device& dev = registry_.device(du);
    result.history.push_back(
        shm_.view().history[d].load(std::memory_order_relaxed) - snap.history);
    vgpu::DeviceStats st = delta(dev.stats(), snap.device);
    const vgpu::ResidentCache::Stats cst_now = pipes_[du]->cache->stats();
    vgpu::ResidentCache::Stats cst;
    cst.hits = cst_now.hits - snap.cache.hits;
    cst.misses = cst_now.misses - snap.cache.misses;
    cst.bytes_uploaded = cst_now.bytes_uploaded - snap.cache.bytes_uploaded;
    cst.bytes_saved = cst_now.bytes_saved - snap.cache.bytes_saved;
    st.streams_used =
        pipes_[du]->streams_opened.load(std::memory_order_relaxed) -
        snap.streams_opened;
    st.cache_hits = cst.hits;
    st.bytes_h2d_saved = cst.bytes_saved;
    result.device_stats.push_back(st);

    result.pipeline.streams_used += st.streams_used;
    result.pipeline.cache_hits += cst.hits;
    result.pipeline.cache_misses += cst.misses;
    result.pipeline.bytes_h2d_saved += cst.bytes_saved;

    const double sync_time =
        (pipelined ? pipes_[du]->streams->device_sync_time()
                   : dev.busy_time_s()) -
        snap.sync_time_s;
    result.device_sync_time_s.push_back(sync_time);
    result.virtual_makespan_s = std::max(result.virtual_makespan_s, sync_time);
  }
  result.pipeline.steals = static_cast<std::uint64_t>(
      shm_.view().points.steals.load(std::memory_order_relaxed));
  result.pipeline.stolen_points = static_cast<std::uint64_t>(
      shm_.view().points.stolen_points.load(std::memory_order_relaxed));

  // Surface the recovery layer's view of the batch. Health is live state —
  // it deliberately carries across batches (a device quarantined serving
  // one request stays quarantined for the next).
  result.faults.degradations = result.scheduling.degradations;
  result.faults.quarantines = result.scheduling.quarantines;
  result.faults.recoveries = result.scheduling.recoveries;
  result.faults.readmissions = result.scheduling.readmissions;
  for (int d = 0; d < n_dev_; ++d)
    result.device_health.push_back(static_cast<DeviceHealth>(
        shm_.view().health[d].load(std::memory_order_relaxed)));
  if (plan != nullptr) {
    const util::FaultPlan::Stats after = plan->stats();
    result.faults.injected = after.injected_total - plan_before.injected_total;
    result.faults.device_deaths =
        after.device_deaths - plan_before.device_deaths;
    registry_.set_fault_plan(nullptr);  // the plan may not outlive the batch
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

}  // namespace hspec::core
