#include "core/gpu_task_executor.h"

#include <optional>
#include <stdexcept>
#include <vector>

#include "rrc/rrc.h"
#include "rrc/rrc_batch.h"
#include "vgpu/integr_kernel.h"

namespace hspec::core {

GpuExecutionReport execute_task_on_gpu(const apec::SpectrumCalculator& calc,
                                       const SpectralTask& task,
                                       const apec::PointPopulations& pops,
                                       vgpu::Device& device,
                                       apec::Spectrum& spectrum,
                                       vgpu::BufferPool* pool,
                                       vgpu::ScratchArena* arena) {
  GpuExecutionReport report;
  const apec::EnergyGrid& grid = calc.grid();
  const std::size_t n_bins = grid.bin_count();

  if (task.ion.is_free_free() || !task.ion.emits_rrc()) {
    // The free-free pseudo-unit has a closed-form per-bin integral; it is
    // not worth a kernel. Neutral units contribute nothing.
    calc.accumulate_ion(task.ion, pops, spectrum);
    return report;
  }

  const auto levels = calc.database().levels_for(task.ion);
  const std::size_t level_begin =
      task.granularity == TaskGranularity::level ? task.level_index : 0;
  const std::size_t level_end = task.granularity == TaskGranularity::level
                                    ? task.level_index + 1
                                    : levels.size();
  if (level_end > levels.size())
    throw std::out_of_range("execute_task_on_gpu: level index out of range");

  // Device-side working set: bin edges (uploaded per task) + emi array that
  // accumulates across the task's levels and transfers back once. Leased
  // from the pool when one is supplied (no steady-state cudaMalloc).
  vgpu::DeviceBuffer edges_dev =
      pool != nullptr ? pool->acquire((n_bins + 1) * sizeof(double))
                      : device.alloc((n_bins + 1) * sizeof(double));
  vgpu::DeviceBuffer emi_dev = pool != nullptr
                                   ? pool->acquire(n_bins * sizeof(double))
                                   : device.alloc(n_bins * sizeof(double));
  device.copy_to_device(edges_dev, grid.edges().data(),
                        (n_bins + 1) * sizeof(double));
  device.memset_device(emi_dev, 0, n_bins * sizeof(double));

  const util::PerCm3 n_rec = pops.ion_density(task.ion.z, task.ion.charge);
  const apec::IntegrationPolicy& pol = calc.options().integration;
  vgpu::IntegrLaunchConfig cfg;
  cfg.method = pol.kernel;
  cfg.method_param = pol.kernel_param;
  cfg.accumulate = true;

  // Batch scratch: the caller's per-rank arena when supplied (reset here,
  // once per task — the arena lifetime rule of vgpu/arena.h), else a
  // task-local one.
  std::optional<vgpu::ScratchArena> local_arena;
  vgpu::ScratchArena* scratch = arena;
  if (pol.batch && scratch == nullptr) scratch = &local_arena.emplace();
  if (scratch != nullptr) scratch->reset();

  for (std::size_t li = level_begin; li < level_end; ++li) {
    rrc::RrcChannel ch;
    ch.recombining_charge = task.ion.charge;
    ch.level = levels[li];
    ch.gaunt_correction = calc.options().gaunt_correction;
    rrc::PlasmaState plasma{pops.kT_keV, pops.ne_cm3, n_rec};
    // Algorithm 2: the level integrates from its own threshold upward.
    cfg.lower_cutoff = ch.level.binding_keV;
    if (pol.batch) {
      const rrc::RrcBatchIntegrand bf(ch, plasma);
      vgpu::gpu_integr_edges_device(device, edges_dev, n_bins, bf, emi_dev,
                                    *scratch, cfg);
    } else {
      // Kernel edge: the integrator hands us raw abscissae; wrap on entry
      // and unwrap the typed emissivity into the device accumulation buffer.
      auto f = [&](double e) {
        return rrc::rrc_power_density(ch, plasma, util::KeV{e}).value();
      };
      vgpu::gpu_integr_edges_device(device, edges_dev, n_bins, f, emi_dev,
                                    cfg);
    }
    ++report.kernels;
    ++report.levels_done;
  }

  // One transfer finishes the task (the coarse-granularity win).
  std::vector<double> emi(n_bins);
  device.copy_to_host(emi.data(), emi_dev, n_bins * sizeof(double));
  for (std::size_t b = 0; b < n_bins; ++b) spectrum[b] += emi[b];
  report.bins = n_bins;

  // Line emission stays host-side on every path. In level granularity the
  // ion's lines belong to the level-0 task so they are added exactly once.
  if (task.granularity == TaskGranularity::ion || task.level_index == 0)
    calc.accumulate_ion_lines(task.ion, pops, spectrum);

  if (pool != nullptr) {
    pool->release(std::move(edges_dev));
    pool->release(std::move(emi_dev));
  }
  return report;
}

}  // namespace hspec::core
