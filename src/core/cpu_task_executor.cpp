#include "core/cpu_task_executor.h"

namespace hspec::core {

std::size_t execute_task_on_cpu(const apec::SpectrumCalculator& calc,
                                const SpectralTask& task,
                                const apec::PointPopulations& pops,
                                apec::Spectrum& spectrum) {
  // The CPU path must use QAGS regardless of how the calculator is
  // configured for GPU kernels: clone the options with adaptive integration.
  apec::CalcOptions options = calc.options();
  options.integration.adaptive = true;
  apec::SpectrumCalculator cpu_calc(calc.database(), calc.grid(), options);

  if (task.granularity == TaskGranularity::level && task.ion.emits_rrc()) {
    const std::size_t bins =
        cpu_calc.accumulate_level(task.ion, task.level_index, pops, spectrum);
    // In level granularity the ion's lines belong to the level-0 task.
    if (task.level_index == 0)
      cpu_calc.accumulate_ion_lines(task.ion, pops, spectrum);
    return bins;
  }
  return cpu_calc.accumulate_ion(task.ion, pops, spectrum);
}

}  // namespace hspec::core
