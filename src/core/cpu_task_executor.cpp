#include "core/cpu_task_executor.h"

#include <stdexcept>
#include <vector>

#include "rrc/rrc.h"
#include "rrc/rrc_batch.h"
#include "vgpu/arena.h"
#include "vgpu/integr_kernel.h"

namespace hspec::core {

namespace {

apec::CalcOptions qags_options(const apec::SpectrumCalculator& calc) {
  apec::CalcOptions options = calc.options();
  options.integration.adaptive = true;
  return options;
}

}  // namespace

CpuTaskExecutor::CpuTaskExecutor(const apec::SpectrumCalculator& calc)
    : qags_(calc.database(), calc.grid(), qags_options(calc)) {}

std::size_t CpuTaskExecutor::execute(const SpectralTask& task,
                                     const apec::PointPopulations& pops,
                                     apec::Spectrum& spectrum) const {
  if (task.granularity == TaskGranularity::level && task.ion.emits_rrc()) {
    const std::size_t bins =
        qags_.accumulate_level(task.ion, task.level_index, pops, spectrum);
    // In level granularity the ion's lines belong to the level-0 task.
    if (task.level_index == 0)
      qags_.accumulate_ion_lines(task.ion, pops, spectrum);
    return bins;
  }
  return qags_.accumulate_ion(task.ion, pops, spectrum);
}

std::size_t execute_task_on_cpu(const apec::SpectrumCalculator& calc,
                                const SpectralTask& task,
                                const apec::PointPopulations& pops,
                                apec::Spectrum& spectrum) {
  return CpuTaskExecutor(calc).execute(task, pops, spectrum);
}

// Mirror of execute_task_on_gpu with the device operations replaced by the
// shared host bin rule: same closed-form early-out, same per-level cutoff
// and accumulate semantics on a zeroed emi array, same bin-then-lines
// accumulation into the spectrum. Keep the two in lockstep — the fault
// tests assert bitwise equality between them.
std::size_t execute_task_degraded(const apec::SpectrumCalculator& calc,
                                  const SpectralTask& task,
                                  const apec::PointPopulations& pops,
                                  apec::Spectrum& spectrum) {
  const apec::EnergyGrid& grid = calc.grid();
  const std::size_t n_bins = grid.bin_count();

  if (task.ion.is_free_free() || !task.ion.emits_rrc()) {
    calc.accumulate_ion(task.ion, pops, spectrum);
    return 0;
  }

  const auto levels = calc.database().levels_for(task.ion);
  const std::size_t level_begin =
      task.granularity == TaskGranularity::level ? task.level_index : 0;
  const std::size_t level_end = task.granularity == TaskGranularity::level
                                    ? task.level_index + 1
                                    : levels.size();
  if (level_end > levels.size())
    throw std::out_of_range("execute_task_degraded: level index out of range");

  std::vector<double> emi(n_bins, 0.0);
  const util::PerCm3 n_rec = pops.ion_density(task.ion.z, task.ion.charge);
  const apec::IntegrationPolicy& pol = calc.options().integration;
  vgpu::IntegrLaunchConfig cfg;
  cfg.method = pol.kernel;
  cfg.method_param = pol.kernel_param;
  cfg.accumulate = true;

  // Degradation is rare, so the batch scratch is task-local here; the batch
  // host path stays bitwise equal to the batched kernels (and both to the
  // scalar oracle), keeping the degraded-vs-GPU identity intact.
  vgpu::ScratchArena scratch;
  for (std::size_t li = level_begin; li < level_end; ++li) {
    rrc::RrcChannel ch;
    ch.recombining_charge = task.ion.charge;
    ch.level = levels[li];
    ch.gaunt_correction = calc.options().gaunt_correction;
    rrc::PlasmaState plasma{pops.kT_keV, pops.ne_cm3, n_rec};
    cfg.lower_cutoff = ch.level.binding_keV;
    if (pol.batch) {
      const rrc::RrcBatchIntegrand bf(ch, plasma);
      vgpu::integr_edges_host(grid.edges(), n_bins, bf, emi, scratch, cfg);
    } else {
      auto f = [&](double e) {
        return rrc::rrc_power_density(ch, plasma, util::KeV{e}).value();
      };
      vgpu::integr_edges_host(grid.edges(), n_bins, f, emi, cfg);
    }
  }

  for (std::size_t b = 0; b < n_bins; ++b) spectrum[b] += emi[b];
  if (task.granularity == TaskGranularity::ion || task.level_index == 0)
    calc.accumulate_ion_lines(task.ion, pops, spectrum);
  return n_bins;
}

}  // namespace hspec::core
