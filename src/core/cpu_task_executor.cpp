#include "core/cpu_task_executor.h"

namespace hspec::core {

namespace {

apec::CalcOptions qags_options(const apec::SpectrumCalculator& calc) {
  apec::CalcOptions options = calc.options();
  options.integration.adaptive = true;
  return options;
}

}  // namespace

CpuTaskExecutor::CpuTaskExecutor(const apec::SpectrumCalculator& calc)
    : qags_(calc.database(), calc.grid(), qags_options(calc)) {}

std::size_t CpuTaskExecutor::execute(const SpectralTask& task,
                                     const apec::PointPopulations& pops,
                                     apec::Spectrum& spectrum) const {
  if (task.granularity == TaskGranularity::level && task.ion.emits_rrc()) {
    const std::size_t bins =
        qags_.accumulate_level(task.ion, task.level_index, pops, spectrum);
    // In level granularity the ion's lines belong to the level-0 task.
    if (task.level_index == 0)
      qags_.accumulate_ion_lines(task.ion, pops, spectrum);
    return bins;
  }
  return qags_.accumulate_ion(task.ion, pops, spectrum);
}

std::size_t execute_task_on_cpu(const apec::SpectrumCalculator& calc,
                                const SpectralTask& task,
                                const apec::PointPopulations& pops,
                                apec::Spectrum& spectrum) {
  return CpuTaskExecutor(calc).execute(task, pops, spectrum);
}

}  // namespace hspec::core
