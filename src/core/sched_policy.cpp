#include "core/sched_policy.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <stdexcept>

#include "apec/calculator.h"
#include "vgpu/cost_model.h"
#include "vgpu/device_properties.h"
#include "vgpu/integr_kernel.h"

namespace hspec::core {

const char* to_string(SchedulingPolicyKind kind) noexcept {
  switch (kind) {
    case SchedulingPolicyKind::dynamic_min_load:
      return "dynamic_min_load";
    case SchedulingPolicyKind::static_cost_partition:
      return "static_cost_partition";
    case SchedulingPolicyKind::hybrid_static_steal:
      return "hybrid_static_steal";
  }
  return "unknown";
}

double SchedulingStats::mean_ns() const noexcept {
  return decisions > 0
             ? static_cast<double>(latency_ns_total) /
                   static_cast<double>(decisions)
             : 0.0;
}

double SchedulingStats::quantile_ns(double q) const noexcept {
  if (decisions <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(decisions);
  std::int64_t cum = 0;
  for (int b = 0; b < kSchedLatencyBuckets; ++b) {
    if (hist[b] <= 0) continue;
    const std::int64_t prev = cum;
    cum += hist[b];
    if (static_cast<double>(cum) >= target) {
      const double lower = b > 0 ? sched_latency_bucket_upper_ns(b - 1) : 0.0;
      const double upper = sched_latency_bucket_upper_ns(b);
      const double frac = (target - static_cast<double>(prev)) /
                          static_cast<double>(hist[b]);
      return lower + (upper - lower) * (frac > 0.0 ? frac : 0.0);
    }
  }
  return sched_latency_bucket_upper_ns(kSchedLatencyBuckets - 1);
}

SchedulingStats read_scheduling_stats(const SchedulerShm& shm,
                                      SchedulingPolicyKind kind) {
  SchedulingStats s;
  s.policy = kind;
  for (int b = 0; b < kSchedLatencyBuckets; ++b) {
    s.hist[b] = shm.sched_latency_hist[b].load(std::memory_order_relaxed);
    s.decisions += s.hist[b];
  }
  s.latency_ns_total =
      shm.sched_latency_ns_total.load(std::memory_order_relaxed);
  return s;
}

namespace {

/// The paper's Algorithm 1 pick, verbatim: every task scans the load array
/// and CASes the min-load device (TaskScheduler::sche_alloc), falling back
/// to QAGS when every queue is full.
class DynamicMinLoad final : public SchedulingPolicy {
 public:
  SchedulingPolicyKind kind() const noexcept override {
    return SchedulingPolicyKind::dynamic_min_load;
  }
  void begin_batch(const BatchContext&) override {}
  int assign(const SpectralTask&, TaskScheduler& sched) override {
    return sched.sche_alloc();
  }
};

/// Machinery shared by the two statically partitioned policies: a device
/// table keyed by ion identity, built once per batch (single-threaded) and
/// only read during it (every rank, concurrently).
///
/// Key: the task stream is not enumerable up front — populated_ions()
/// filters by the per-point population floor, so different grid points
/// yield different task lists. Ion identity is stable across points, so the
/// table covers the whole database: slot z*(z+1)/2 + charge (charge <= z
/// makes the ranges contiguous and collision-free; the free-free pseudo-
/// unit z=0 gets slot 0), with one device per level for level granularity.
///
/// Packing: LPT greedy — price every potential task with the same
/// vgpu::estimated_task_gpu_s the perfmodel DES is calibrated on, sort by
/// cost descending (ties by slot then level, so the table is deterministic)
/// and drop each task on the device with the least accumulated cost (ties
/// to the lowest index).
///
/// Layout: the table is one contiguous block — per-slot offsets followed
/// by the device entries they index — inline in the policy object when it
/// fits, so a lookup is two loads on memory that stays cache-resident (a
/// vector-of-vectors would chase one heap block per ion slot). On top, assignments rotate by the task's grid-point index:
/// devices are homogeneous, so rotating a whole point's assignment
/// preserves the LPT balance exactly while ranks working different points
/// in lockstep (identical task streams per point) land on different
/// devices instead of convoying their CASes on one shared cache line.
class StaticTablePolicy : public SchedulingPolicy {
 public:
  void begin_batch(const BatchContext& ctx) override {
    table_ptr_ = nullptr;
    slot_count_ = 0;
    heap_.clear();
    n_dev_ = ctx.device_count;
    if (ctx.calc == nullptr) return;
    const atomic::AtomicDatabase& db = ctx.calc->database();
    const int max_z = db.config().max_z;
    const std::size_t slots = static_cast<std::size_t>(max_z) *
                                  static_cast<std::size_t>(max_z + 1) / 2 +
                              static_cast<std::size_t>(max_z) + 1;
    std::vector<std::vector<std::int32_t>> table_;
    table_.assign(slots, {});

    const apec::CalcOptions& opts = ctx.calc->options();
    vgpu::TaskCostParams params;
    params.evals_per_bin = static_cast<double>(quad::kernel_cost_evals(
        opts.integration.kernel, opts.integration.kernel_param));
    params.lanes = opts.integration.batch ? vgpu::kBatchLanes : 1.0;
    const vgpu::GpuCostModel gpu(ctx.device_properties != nullptr
                                     ? *ctx.device_properties
                                     : vgpu::tesla_c2075());
    const std::size_t bins = ctx.calc->grid().bin_count();

    struct Entry {
      double cost_s;
      std::size_t slot;
      std::size_t level;
    };
    std::vector<Entry> entries;
    const double level_task_s =
        vgpu::estimated_task_gpu_s(gpu, 1, bins, params);
    for (const atomic::IonUnit& ion : db.ions()) {
      const std::size_t slot = ion_slot(ion);
      if (slot >= table_.size()) continue;  // defensive; db stays in range
      if (ctx.granularity == TaskGranularity::level && ion.emits_rrc()) {
        const std::size_t levels = db.level_count_for(ion);
        table_[slot].assign(std::max<std::size_t>(levels, 1), -1);
        for (std::size_t li = 0; li < levels; ++li)
          entries.push_back({level_task_s, slot, li});
      } else {
        // Ion-granularity task (or a non-RRC unit under level granularity,
        // which make_tasks keeps coarse). Zero levels degenerate to the
        // fixed per-task overhead — the weight those tasks deserve.
        const std::size_t levels =
            ion.emits_rrc() ? db.level_count_for(ion) : 0;
        table_[slot].assign(1, -1);
        entries.push_back(
            {vgpu::estimated_task_gpu_s(gpu, levels, bins, params), slot, 0});
      }
    }

    const int n = ctx.device_count;
    if (n > 0) {
      std::sort(entries.begin(), entries.end(),
                [](const Entry& a, const Entry& b) {
                  if (a.cost_s > b.cost_s) return true;
                  if (b.cost_s > a.cost_s) return false;
                  if (a.slot != b.slot) return a.slot < b.slot;
                  return a.level < b.level;
                });
      std::vector<double> device_cost_s(static_cast<std::size_t>(n), 0.0);
      for (const Entry& e : entries) {
        std::size_t best = 0;
        for (std::size_t d = 1; d < device_cost_s.size(); ++d)
          if (device_cost_s[d] < device_cost_s[best]) best = d;
        device_cost_s[best] += e.cost_s;
        table_[e.slot][e.level] = static_cast<std::int32_t>(best);
      }
    }

    // Flatten into ONE contiguous block: t[0..slots] are absolute offsets
    // into t itself (entry region starts at slots+1), t[slots+1..] are the
    // per-level device ids. Small tables live inline in the policy object,
    // so the hot lookup (offset load, entry load) touches memory adjacent
    // to n_dev_ and stays cache-resident between tasks — the whole point of
    // a static policy is that the per-task cost is two loads, not a heap
    // walk.
    std::vector<std::int32_t> combined(slots + 1, 0);
    for (std::size_t s = 0; s < table_.size(); ++s) {
      combined[s] = static_cast<std::int32_t>(combined.size());
      combined.insert(combined.end(), table_[s].begin(), table_[s].end());
    }
    combined[slots] = static_cast<std::int32_t>(combined.size());
    slot_count_ = static_cast<std::int32_t>(slots);
    if (combined.size() <= inline_.size()) {
      std::copy(combined.begin(), combined.end(), inline_.begin());
      heap_.clear();
      table_ptr_ = inline_.data();
    } else {
      heap_ = std::move(combined);
      table_ptr_ = heap_.data();
    }
  }

 protected:
  /// Pre-assigned device for `task`, or -1. Read-only: safe from any rank.
  int lookup(const SpectralTask& task) const noexcept {
    const std::int32_t* t = table_ptr_;
    if (t == nullptr) return -1;
    const atomic::IonUnit& ion = task.ion;
    if (ion.z < 0 || ion.charge < 0 || ion.charge > ion.z) return -1;
    const std::size_t slot = ion_slot(ion);
    if (slot >= static_cast<std::size_t>(slot_count_)) return -1;
    const std::int32_t begin = t[slot];
    const std::int32_t end = t[slot + 1];
    if (task.level_index >= static_cast<std::size_t>(end - begin)) return -1;
    const std::int32_t device = t[begin + task.level_index];
    if (device < 0) return -1;
    // Per-point rotation (see class comment): balance-preserving on the
    // homogeneous device set, convoy-breaking across ranks.
    std::int32_t rotated =
        device + static_cast<std::int32_t>(task.point.index %
                                           static_cast<std::size_t>(n_dev_));
    if (rotated >= n_dev_) rotated -= n_dev_;
    return rotated;
  }

 private:
  static std::size_t ion_slot(const atomic::IonUnit& ion) noexcept {
    return static_cast<std::size_t>(ion.z) *
               static_cast<std::size_t>(ion.z + 1) / 2 +
           static_cast<std::size_t>(ion.charge);
  }

  /// Inline capacity: offsets + entries for the full APEC database at ion
  /// granularity (max_z 28 => 435 slots) fit with lots of headroom; level
  /// granularity on big level caps falls back to the heap vector.
  std::array<std::int32_t, 2048> inline_{};
  std::vector<std::int32_t> heap_;
  const std::int32_t* table_ptr_ = nullptr;  ///< inline_ or heap_ data
  std::int32_t slot_count_ = 0;
  int n_dev_ = 0;
};

/// Pure pre-partition: table lookup + one directed CAS per task. A full or
/// quarantined target drops the task to the CPU fallback (Algorithm 1's
/// QAGS overflow path); nothing rebalances mid-batch.
class StaticCostPartition final : public StaticTablePolicy {
 public:
  SchedulingPolicyKind kind() const noexcept override {
    return SchedulingPolicyKind::static_cost_partition;
  }
  int assign(const SpectralTask& task, TaskScheduler& sched) override {
    const int target = lookup(task);
    const int device = target >= 0 ? sched.sche_assign(target) : -1;
    if (device < 0) sched.count_cpu_fallback();
    return device;
  }
};

/// Static table first; when the directed reservation fails (queue full,
/// device quarantined) the task is re-routed through the dynamic min-load
/// pick instead of the CPU — static cost in the common case, dynamic
/// correction under imbalance or faults.
class HybridStaticSteal final : public StaticTablePolicy {
 public:
  SchedulingPolicyKind kind() const noexcept override {
    return SchedulingPolicyKind::hybrid_static_steal;
  }
  int assign(const SpectralTask& task, TaskScheduler& sched) override {
    const int target = lookup(task);
    if (target >= 0) {
      const int device = sched.sche_assign(target);
      if (device >= 0) return device;
    }
    return sched.sche_alloc();  // counts the CPU fallback itself on -1
  }
};

}  // namespace

std::unique_ptr<SchedulingPolicy> SchedulingPolicy::make(
    SchedulingPolicyKind kind) {
  switch (kind) {
    case SchedulingPolicyKind::dynamic_min_load:
      return std::make_unique<DynamicMinLoad>();
    case SchedulingPolicyKind::static_cost_partition:
      return std::make_unique<StaticCostPartition>();
    case SchedulingPolicyKind::hybrid_static_steal:
      return std::make_unique<HybridStaticSteal>();
  }
  throw std::invalid_argument("SchedulingPolicy::make: unknown policy kind");
}

int timed_assign(SchedulingPolicy& policy, const SpectralTask& task,
                 TaskScheduler& sched) {
  const auto start = std::chrono::steady_clock::now();
  const int device = policy.assign(task, sched);
  const std::int64_t latency_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  sched.record_sched_latency(latency_ns);
  return device;
}

}  // namespace hspec::core
