#include "core/shm.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cmath>
#include <stdexcept>
#include <system_error>

#include "util/dcheck.h"

namespace hspec::core {

int sched_latency_bucket(std::int64_t ns) noexcept {
  if (ns <= 0) return 0;
  const auto u = static_cast<std::uint64_t>(ns);
  const int octave = 63 - std::countl_zero(u);  // floor(log2 ns)
  // Top two bits below the leading one select the quarter-octave.
  const int sub =
      octave >= 2 ? static_cast<int>((u >> (octave - 2)) & 3u) : 0;
  const int bucket = octave * 4 + sub;
  return bucket < kSchedLatencyBuckets ? bucket : kSchedLatencyBuckets - 1;
}

double sched_latency_bucket_upper_ns(int bucket) noexcept {
  if (bucket < 0) return 0.0;
  if (bucket >= kSchedLatencyBuckets) bucket = kSchedLatencyBuckets - 1;
  const int octave = bucket / 4;
  const int sub = bucket % 4;
  return std::ldexp(1.0 + 0.25 * static_cast<double>(sub + 1), octave);
}

void PointWorkQueue::initialize(std::int64_t n_points, std::int32_t ranks,
                                std::int64_t chunk_size) {
  if (ranks < 0 || ranks > kMaxRanks)
    throw std::invalid_argument(
        "PointWorkQueue: rank count outside [0, kMaxRanks]");
  if (n_points < 0)
    throw std::invalid_argument("PointWorkQueue: negative point count");
  if (n_points > 0 && ranks == 0)
    throw std::invalid_argument("PointWorkQueue: points but no ranks");
  if (chunk_size < 1)
    throw std::invalid_argument("PointWorkQueue: chunk size must be >= 1");
  const std::int64_t r64 = ranks > 0 ? ranks : 1;
  const std::int64_t base = n_points / r64;
  const std::int64_t extra = n_points % r64;
  for (int r = 0; r < kMaxRanks; ++r) {
    if (r < ranks) {
      range_begin[r] = r * base + std::min<std::int64_t>(r, extra);
      range_end[r] = range_begin[r] + base + (r < extra ? 1 : 0);
    } else {
      range_begin[r] = 0;
      range_end[r] = 0;
    }
    cursor[r].store(range_begin[r], std::memory_order_relaxed);
  }
  steals.store(0, std::memory_order_relaxed);
  stolen_points.store(0, std::memory_order_relaxed);
  nranks = ranks;
  chunk = chunk_size;
}

PointWorkQueue::Claim PointWorkQueue::claim(int rank) noexcept {
  if (rank < 0 || rank >= nranks) return {};
  auto take = [&](int r) -> Claim {
    const std::int64_t start = cursor[r].fetch_add(chunk,
                                                   std::memory_order_acq_rel);
    // Cursors are monotone: fetch_add only grows them, so a start below the
    // seed range means the segment was corrupted (or re-initialized mid-run).
    HSPEC_DCHECK(start >= range_begin[r],
                 "point-queue cursor below its seed range");
    if (start >= range_end[r]) return {};  // exhausted; overshoot is harmless
    return {start, std::min(start + chunk, range_end[r]), r != rank};
  };
  if (Claim own = take(rank); !own.empty()) return own;
  // Own range drained: steal from the rank with the most unclaimed points.
  // A lost race just bumps the victim's cursor past its end, which the next
  // scan sees as empty, so the loop always terminates.
  for (;;) {
    int victim = -1;
    std::int64_t best_remaining = 0;
    for (int r = 0; r < nranks; ++r) {
      if (r == rank) continue;
      const std::int64_t rem =
          range_end[r] - cursor[r].load(std::memory_order_acquire);
      if (rem > best_remaining) {
        best_remaining = rem;
        victim = r;
      }
    }
    if (victim < 0) return {};
    if (Claim c = take(victim); !c.empty()) {
      steals.fetch_add(1, std::memory_order_relaxed);
      stolen_points.fetch_add(c.end - c.begin, std::memory_order_relaxed);
      return c;
    }
  }
}

std::int64_t PointWorkQueue::remaining() const noexcept {
  std::int64_t total = 0;
  for (int r = 0; r < nranks; ++r)
    total += std::max<std::int64_t>(
        0, range_end[r] - cursor[r].load(std::memory_order_acquire));
  return total;
}

const char* to_string(DeviceHealth health) noexcept {
  switch (health) {
    case DeviceHealth::healthy:
      return "healthy";
    case DeviceHealth::degraded:
      return "degraded";
    case DeviceHealth::quarantined:
      return "quarantined";
  }
  return "unknown";
}

void SchedulerShm::initialize(int devices, int max_queue_len) {
  if (devices < 0 || devices > kMaxDevices)
    throw std::invalid_argument(
        "SchedulerShm: device count outside [0, kMaxDevices]");
  if (max_queue_len < 1)
    throw std::invalid_argument("SchedulerShm: max queue length must be >= 1");
  for (int i = 0; i < kMaxDevices; ++i) {
    load[i].store(0, std::memory_order_relaxed);
    history[i].store(0, std::memory_order_relaxed);
    health[i].store(static_cast<std::int32_t>(DeviceHealth::healthy),
                    std::memory_order_relaxed);
    faults_seen[i].store(0, std::memory_order_relaxed);
  }
  device_count = devices;
  max_queue_length.store(max_queue_len, std::memory_order_relaxed);
  // Defaults documented in DESIGN.md §11; the hybrid driver overrides them
  // from HybridConfig before the ranks start.
  degrade_after = 2;
  quarantine_after = 5;
  points.initialize(0, 0, 1);
  reset_sched_latency();
}

void SchedulerShm::reset_sched_latency() noexcept {
  for (int b = 0; b < kSchedLatencyBuckets; ++b)
    sched_latency_hist[b].store(0, std::memory_order_relaxed);
  sched_latency_ns_total.store(0, std::memory_order_relaxed);
}

namespace {

void validate(int devices, int max_queue_len) {
  if (devices < 0 || devices > kMaxDevices)
    throw std::invalid_argument("ShmRegion: device count out of range");
  if (max_queue_len < 1)
    throw std::invalid_argument("ShmRegion: max queue length must be >= 1");
}

[[noreturn]] void throw_errno(const std::string& what) {
  // system_category().message() instead of strerror(): ranks throw from
  // concurrent attach paths and strerror's static buffer is not MT-safe.
  throw std::runtime_error(what + ": " +
                           std::system_category().message(errno));
}

}  // namespace

ShmRegion ShmRegion::create_inprocess(int devices, int max_queue_len) {
  validate(devices, max_queue_len);
  ShmRegion region;
  region.heap_ = std::make_unique<SchedulerShm>();
  region.shm_ = region.heap_.get();
  region.shm_->initialize(devices, max_queue_len);
  return region;
}

ShmRegion ShmRegion::create_posix(const std::string& name, int devices,
                                  int max_queue_len) {
  validate(devices, max_queue_len);
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_RDWR | O_EXCL, 0600);
  if (fd < 0) throw_errno("shm_open(" + name + ")");
  if (::ftruncate(fd, static_cast<off_t>(sizeof(SchedulerShm))) != 0) {
    ::close(fd);
    ::shm_unlink(name.c_str());
    throw_errno("ftruncate(" + name + ")");
  }
  void* addr = ::mmap(nullptr, sizeof(SchedulerShm), PROT_READ | PROT_WRITE,
                      MAP_SHARED, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    throw_errno("mmap(" + name + ")");
  }
  ShmRegion region;
  region.shm_ = new (addr) SchedulerShm;
  region.shm_->initialize(devices, max_queue_len);
  region.posix_name_ = name;
  region.posix_owner_ = true;
  return region;
}

ShmRegion ShmRegion::attach_posix(const std::string& name) {
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) throw_errno("shm_open(" + name + ")");
  void* addr = ::mmap(nullptr, sizeof(SchedulerShm), PROT_READ | PROT_WRITE,
                      MAP_SHARED, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) throw_errno("mmap(" + name + ")");
  ShmRegion region;
  region.shm_ = static_cast<SchedulerShm*>(addr);
  region.posix_name_ = name;
  region.posix_owner_ = false;
  return region;
}

ShmRegion::ShmRegion(ShmRegion&& o) noexcept
    : shm_(o.shm_), heap_(std::move(o.heap_)),
      posix_name_(std::move(o.posix_name_)), posix_owner_(o.posix_owner_) {
  o.shm_ = nullptr;
  o.posix_owner_ = false;
  o.posix_name_.clear();
}

ShmRegion& ShmRegion::operator=(ShmRegion&& o) noexcept {
  if (this != &o) {
    this->~ShmRegion();
    new (this) ShmRegion(std::move(o));
  }
  return *this;
}

ShmRegion::~ShmRegion() {
  if (shm_ != nullptr && !posix_name_.empty()) {
    ::munmap(shm_, sizeof(SchedulerShm));
    if (posix_owner_) ::shm_unlink(posix_name_.c_str());
  }
  shm_ = nullptr;
}

}  // namespace hspec::core
