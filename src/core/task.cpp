#include "core/task.h"

namespace hspec::core {

std::string to_string(TaskGranularity g) {
  switch (g) {
    case TaskGranularity::ion:
      return "Ion";
    case TaskGranularity::level:
      return "Level";
  }
  return "?";
}

}  // namespace hspec::core
