#pragma once
// Discrete-event replay of the hybrid framework (Fig. 2) on a virtual
// clock: N MPI ranks prepare tasks and dispatch them through Algorithm 1
// (the same core::pick_device policy the live scheduler uses) to D GPUs
// with bounded task queues, falling back to the CPU QAGS path when all
// queues are full. Synchronous mode, as the paper implements: a rank blocks
// from submission until its task's result returns.
//
// This is how the performance figures (Fig. 3-6, Tables I-II) are
// regenerated in an environment without 24 cores and 4 Tesla cards: task
// *durations* come from the calibrated cost models (src/perfmodel); every
// scheduling decision is made by the real policy code.

#include <cstdint>
#include <vector>

namespace hspec::sim {

struct HybridSimConfig {
  int ranks = 24;
  int devices = 3;
  int max_queue_length = 10;

  /// Total tasks, split near-equally across ranks (24 points x 496 ions in
  /// the paper's spectral runs).
  std::uint64_t total_tasks = 24 * 496;

  /// Calibrated durations (see perfmodel::SpectralCostModel / NeiCostModel).
  double prep_s = 0.125;      ///< CPU-side task preparation
  double cpu_task_s = 1.44;   ///< QAGS fallback execution
  double gpu_task_s = 0.008;  ///< device service time per task

  /// Aggregate CPU throughput of the node in single-core equivalents
  /// (memory contention; the paper's 24-rank MPI measures 13.5x).
  double cpu_core_equivalents = 13.5;
  /// Scheduler round trip added when a finished rank resumes.
  double sched_overhead_s = 2e-6;

  /// Multiplicative uniform jitter on every duration: d * (1 +- jitter).
  double jitter = 0.10;
  std::uint64_t seed = 42;

  /// Synchronous mode (the paper's implementation): a rank blocks from
  /// submission until its GPU task completes. Asynchronous mode (the §V
  /// future-work direction) lets the rank prepare and submit further tasks
  /// while earlier ones are still queued or running; CPU-fallback tasks
  /// still occupy the rank (the rank is the executor).
  bool asynchronous = false;

  /// Kernels a device may run concurrently (1 = Fermi serial execution;
  /// 32 = Kepler Hyper-Q). Overlapping kernels run at full rate (optimistic
  /// small-kernel model, matching vgpu::StreamScheduler).
  int concurrent_kernels = 1;
};

struct HybridSimResult {
  double makespan_s = 0.0;
  std::uint64_t tasks_gpu = 0;
  std::uint64_t tasks_cpu = 0;
  std::vector<std::int64_t> history;     ///< per device
  std::vector<double> device_busy_s;     ///< kernel-active time per device
  /// Time device 0's queue spent at load L (index L = 0..max_queue_length),
  /// measured until the last task leaves the system — Fig. 6's histogram.
  std::vector<double> load0_residency_s;

  double gpu_task_ratio() const noexcept {
    const double total = static_cast<double>(tasks_gpu + tasks_cpu);
    return total > 0.0 ? static_cast<double>(tasks_gpu) / total : 0.0;
  }
  /// Fraction of (counted) time device 0's load was >= `threshold`
  /// (Table I's "ratio of GPU load >= 3").
  double load0_fraction_at_least(int threshold) const;
};

HybridSimResult simulate_hybrid(const HybridSimConfig& config);

}  // namespace hspec::sim
