#pragma once
// Multi-node replay of the paper's inter-node strategy (§III-A): "there is
// no central load balance server in the parallel program, instead each
// physical node is equipped with a local task scheduler. The main program
// is responsible for load balance among the different physical machines by
// dividing the whole parameter space into several equal subspaces."
//
// Nodes are independent — each gets an equal contiguous share of the tasks
// and its own scheduler + GPUs — so the cluster makespan is the slowest
// node's makespan. The model quantifies how well the static equal split
// holds up under per-task jitter.

#include <vector>

#include "sim/hybrid_sim.h"

namespace hspec::sim {

struct ClusterSimConfig {
  int nodes = 1;
  /// Per-node configuration; `total_tasks` is the WHOLE workload, divided
  /// near-equally across nodes. Each node derives a distinct RNG stream.
  HybridSimConfig node{};
};

struct ClusterSimResult {
  double makespan_s = 0.0;            ///< slowest node
  double ideal_makespan_s = 0.0;      ///< mean node makespan (perfect split)
  std::vector<HybridSimResult> per_node;

  std::uint64_t tasks_gpu() const noexcept;
  std::uint64_t tasks_cpu() const noexcept;
  /// Slowest/mean ratio - 1: the static-split load imbalance.
  double imbalance() const noexcept;
};

ClusterSimResult simulate_cluster(const ClusterSimConfig& config);

}  // namespace hspec::sim
