#include "sim/cluster_sim.h"

#include <algorithm>
#include <stdexcept>

namespace hspec::sim {

std::uint64_t ClusterSimResult::tasks_gpu() const noexcept {
  std::uint64_t total = 0;
  for (const auto& node : per_node) total += node.tasks_gpu;
  return total;
}

std::uint64_t ClusterSimResult::tasks_cpu() const noexcept {
  std::uint64_t total = 0;
  for (const auto& node : per_node) total += node.tasks_cpu;
  return total;
}

double ClusterSimResult::imbalance() const noexcept {
  return ideal_makespan_s > 0.0 ? makespan_s / ideal_makespan_s - 1.0 : 0.0;
}

ClusterSimResult simulate_cluster(const ClusterSimConfig& config) {
  if (config.nodes < 1)
    throw std::invalid_argument("simulate_cluster: nodes < 1");

  const std::uint64_t total = config.node.total_tasks;
  const auto nodes = static_cast<std::uint64_t>(config.nodes);
  ClusterSimResult result;
  result.per_node.reserve(static_cast<std::size_t>(config.nodes));

  double sum = 0.0;
  for (std::uint64_t n = 0; n < nodes; ++n) {
    HybridSimConfig node_cfg = config.node;
    node_cfg.total_tasks = total / nodes + (n < total % nodes ? 1 : 0);
    node_cfg.seed = config.node.seed + 0x9e3779b97f4a7c15ULL * (n + 1);
    result.per_node.push_back(simulate_hybrid(node_cfg));
    const double t = result.per_node.back().makespan_s;
    result.makespan_s = std::max(result.makespan_s, t);
    sum += t;
  }
  result.ideal_makespan_s = sum / static_cast<double>(config.nodes);
  return result;
}

}  // namespace hspec::sim
