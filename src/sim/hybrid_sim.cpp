#include "sim/hybrid_sim.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "core/scheduler.h"
#include "sim/event_queue.h"
#include "util/rng.h"
#include "util/fp_compare.h"

namespace hspec::sim {

double HybridSimResult::load0_fraction_at_least(int threshold) const {
  double total = 0.0;
  double above = 0.0;
  for (std::size_t l = 0; l < load0_residency_s.size(); ++l) {
    total += load0_residency_s[l];
    if (static_cast<int>(l) >= threshold) above += load0_residency_s[l];
  }
  return total > 0.0 ? above / total : 0.0;
}

namespace {

class HybridSimulator {
 public:
  explicit HybridSimulator(const HybridSimConfig& cfg)
      : cfg_(cfg), rng_(cfg.seed),
        loads_(static_cast<std::size_t>(cfg.devices), 0),
        histories_(static_cast<std::size_t>(cfg.devices), 0),
        waiting_(static_cast<std::size_t>(cfg.devices)),
        device_busy_(static_cast<std::size_t>(cfg.devices), 0.0),
        remaining_(static_cast<std::size_t>(cfg.ranks), 0) {
    if (cfg.ranks < 1) throw std::invalid_argument("sim: ranks < 1");
    if (cfg.devices < 0 || cfg.devices > core::kMaxDevices)
      throw std::invalid_argument("sim: bad device count");
    if (cfg.max_queue_length < 1)
      throw std::invalid_argument("sim: max queue length < 1");
    if (cfg.jitter < 0.0 || cfg.jitter >= 1.0)
      throw std::invalid_argument("sim: jitter must be in [0, 1)");
    if (cfg.concurrent_kernels < 1)
      throw std::invalid_argument("sim: concurrent_kernels < 1");
    active_count_.assign(static_cast<std::size_t>(cfg.devices), 0);
    // Near-equal task split across ranks.
    const std::uint64_t base =
        cfg.total_tasks / static_cast<std::uint64_t>(cfg.ranks);
    const std::uint64_t extra =
        cfg.total_tasks % static_cast<std::uint64_t>(cfg.ranks);
    for (int r = 0; r < cfg.ranks; ++r)
      remaining_[static_cast<std::size_t>(r)] =
          base + (static_cast<std::uint64_t>(r) < extra ? 1 : 0);
    residency_.assign(static_cast<std::size_t>(cfg.max_queue_length) + 1, 0.0);
  }

  HybridSimResult run() {
    for (int r = 0; r < cfg_.ranks; ++r) begin_next_task(r);
    sim_.run();
    // Close the residency window at the moment the last task finished.
    if (!loads_.empty()) note_load0_change(last_completion_);

    HybridSimResult out;
    out.makespan_s = last_completion_;
    out.tasks_gpu = tasks_gpu_;
    out.tasks_cpu = tasks_cpu_;
    out.history = histories_;
    out.device_busy_s = device_busy_;
    out.load0_residency_s = residency_;
    return out;
  }

 private:
  struct QueuedTask {
    int rank;
    double service_s;
  };

  double jittered(double base) {
    // Sentinel: jitter exactly 0.0 means "deterministic run", never a
    // computed value — exact compare is the intent.
    if (util::fp_exact_equal(cfg_.jitter, 0.0)) return base;
    return base * (1.0 + cfg_.jitter * (2.0 * rng_.uniform() - 1.0));
  }

  /// Quasi-static CPU contention: a rank starting a QAGS fallback task runs
  /// slower when more ranks than the node's core-equivalents are executing
  /// memory-bound integration at that moment. Task *preparation* is light
  /// bookkeeping and does not contend (it is the pure-MPI baseline, all 24
  /// ranks integrating simultaneously, that measures the 13.5x ceiling).
  double cpu_slowdown() const noexcept {
    return std::max(1.0, static_cast<double>(cpu_busy_) /
                             cfg_.cpu_core_equivalents);
  }

  void note_load0_change(double now) {
    if (loads_.empty()) return;
    const auto level = static_cast<std::size_t>(
        std::min<std::int32_t>(loads_[0], cfg_.max_queue_length));
    residency_[load0_prev_] += now - load0_since_;
    load0_prev_ = level;
    load0_since_ = now;
  }

  void begin_next_task(int rank) {
    auto& left = remaining_[static_cast<std::size_t>(rank)];
    if (left == 0) return;  // this rank is done
    --left;
    ++cpu_busy_;
    const double dur = jittered(cfg_.prep_s);
    sim_.schedule(dur, [this, rank] {
      --cpu_busy_;
      submit(rank);
    });
  }

  void submit(int rank) {
    const int device =
        core::pick_device(loads_, histories_, cfg_.max_queue_length);
    if (device >= 0) {
      const auto d = static_cast<std::size_t>(device);
      ++loads_[d];
      ++histories_[d];
      ++tasks_gpu_;
      if (device == 0) note_load0_change(sim_.now());
      waiting_[d].push_back({rank, jittered(cfg_.gpu_task_s)});
      pump_device(device);
      // Synchronous mode: the rank blocks until task_done resumes it.
      // Asynchronous mode: the rank moves straight on to its next task.
      if (cfg_.asynchronous) begin_next_task(rank);
      return;
    }
    // All GPU queues full: the CPU process runs the task itself (QAGS).
    // This occupies the rank in both modes — the rank IS the executor —
    // so its next task always starts after the fallback completes.
    ++tasks_cpu_;
    ++cpu_busy_;
    const double dur = jittered(cfg_.cpu_task_s) * cpu_slowdown();
    sim_.schedule(dur, [this, rank] {
      --cpu_busy_;
      last_completion_ = std::max(last_completion_, sim_.now());
      begin_next_task(rank);
    });
  }

  void pump_device(int device) {
    const auto d = static_cast<std::size_t>(device);
    // Fermi serializes (1 active); Kepler Hyper-Q runs up to C concurrently.
    while (active_count_[d] < cfg_.concurrent_kernels &&
           !waiting_[d].empty()) {
      ++active_count_[d];
      const QueuedTask task = waiting_[d].front();
      waiting_[d].pop_front();
      device_busy_[d] += task.service_s;
      sim_.schedule(task.service_s, [this, device, task] {
        const auto dd = static_cast<std::size_t>(device);
        --active_count_[dd];
        --loads_[dd];
        if (device == 0) note_load0_change(sim_.now());
        pump_device(device);
        sim_.schedule(cfg_.sched_overhead_s,
                      [this, task] { finish(task.rank); });
      });
    }
  }

  void finish(int rank) {
    last_completion_ = std::max(last_completion_, sim_.now());
    // In asynchronous mode the rank already moved on at submission time.
    if (!cfg_.asynchronous) begin_next_task(rank);
  }

  HybridSimConfig cfg_;
  Simulation sim_;
  util::Xoshiro256 rng_;

  std::vector<std::int32_t> loads_;
  std::vector<std::int64_t> histories_;
  std::vector<std::deque<QueuedTask>> waiting_;
  std::vector<int> active_count_;
  std::vector<double> device_busy_;
  std::vector<std::uint64_t> remaining_;

  int cpu_busy_ = 0;
  std::uint64_t tasks_gpu_ = 0;
  std::uint64_t tasks_cpu_ = 0;

  std::vector<double> residency_;
  std::size_t load0_prev_ = 0;
  double load0_since_ = 0.0;
  double last_completion_ = 0.0;
};

}  // namespace

HybridSimResult simulate_hybrid(const HybridSimConfig& config) {
  return HybridSimulator(config).run();
}

}  // namespace hspec::sim
