#include "sim/analytic_bounds.h"

#include <algorithm>
#include <cmath>

namespace hspec::sim {

AnalyticBounds analytic_bounds(const HybridSimConfig& cfg) {
  AnalyticBounds b;
  const double tasks = static_cast<double>(cfg.total_tasks);
  const double ranks = static_cast<double>(std::max(cfg.ranks, 1));

  b.prep_bound_s = std::ceil(tasks / ranks) * cfg.prep_s;

  if (cfg.devices > 0)
    b.gpu_bound_s = tasks * cfg.gpu_task_s / static_cast<double>(cfg.devices);

  // Perfect-overlap capacity: GPUs process at devices/gpu_task tasks per
  // second; the CPU side at min(ranks, core-equivalents)/(prep+cpu_task)
  // when falling back (prep always serializes with its own task's
  // execution on the owning rank).
  const double gpu_rate =
      cfg.devices > 0 && cfg.gpu_task_s > 0.0
          ? static_cast<double>(cfg.devices) / cfg.gpu_task_s
          : 0.0;
  const double cpu_workers =
      std::min(ranks, cfg.cpu_core_equivalents);
  const double cpu_rate = cfg.cpu_task_s + cfg.prep_s > 0.0
                              ? cpu_workers / (cfg.cpu_task_s + cfg.prep_s)
                              : 0.0;
  const double rate = gpu_rate + cpu_rate;
  b.capacity_bound_s = rate > 0.0 ? tasks / rate : 0.0;

  b.lower_bound_s = b.capacity_bound_s;
  // The prep bound only applies when GPU tasks cannot overlap a rank's own
  // preparation (synchronous mode); in async mode prep pipelines with GPU
  // service, so the unconditional lower bound is the capacity bound and,
  // in synchronous mode, also prep+service serialization per rank.
  if (!cfg.asynchronous) {
    const double sync_rank_bound =
        std::ceil(tasks / ranks) * (cfg.prep_s + std::min(cfg.gpu_task_s,
                                                          cfg.cpu_task_s));
    b.lower_bound_s = std::max(b.lower_bound_s, sync_rank_bound);
  } else {
    b.lower_bound_s = std::max(b.lower_bound_s, b.prep_bound_s);
  }
  return b;
}

}  // namespace hspec::sim
