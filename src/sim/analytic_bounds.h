#pragma once
// Closed-form performance bounds for the hybrid execution — the "napkin
// model" behind the Fig. 3/4 shapes, and an independent oracle the tests
// hold the discrete-event simulator against:
//
//  * preparation bound: ranks must prepare every task
//      T >= ceil(tasks / ranks) * prep;
//  * device bound: if the GPUs execute a fraction r of the tasks
//      T >= r * tasks * gpu_task / devices  (r = 1 for the usual regime);
//  * hybrid capacity bound: even with perfect overlap, total work divided
//    by total processing capacity floors the makespan.

#include "sim/hybrid_sim.h"

namespace hspec::sim {

struct AnalyticBounds {
  double prep_bound_s = 0.0;
  double gpu_bound_s = 0.0;      ///< all tasks on GPUs
  double capacity_bound_s = 0.0; ///< perfect CPU+GPU overlap
  double lower_bound_s = 0.0;    ///< max of the applicable bounds
};

/// Bounds for the given configuration (ignores jitter: bounds hold for the
/// mean; the DES with jitter j can undercut by at most the factor (1-j)).
AnalyticBounds analytic_bounds(const HybridSimConfig& config);

}  // namespace hspec::sim
