#pragma once
// A minimal deterministic discrete-event simulation core: a virtual clock
// and a time-ordered event queue. Ties break by insertion order so repeated
// runs with the same seed are bit-identical.

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

namespace hspec::sim {

class Simulation {
 public:
  using Action = std::function<void()>;

  double now() const noexcept { return now_; }

  /// Schedule `action` to run `delay` seconds from now (delay >= 0).
  void schedule(double delay, Action action);

  /// Run until the queue drains. Returns the final clock value.
  double run();

  /// Run until the clock reaches `t_end` (remaining events stay queued).
  double run_until(double t_end);

  std::size_t events_processed() const noexcept { return processed_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace hspec::sim
