#include "sim/event_queue.h"

#include <cmath>

namespace hspec::sim {

void Simulation::schedule(double delay, Action action) {
  if (!(delay >= 0.0) || !std::isfinite(delay))
    throw std::invalid_argument("Simulation::schedule: bad delay");
  queue_.push({now_ + delay, next_seq_++, std::move(action)});
}

double Simulation::run() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.action();
  }
  return now_;
}

double Simulation::run_until(double t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.action();
  }
  if (now_ < t_end) now_ = t_end;
  return now_;
}

}  // namespace hspec::sim
