#include "apec/lines.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "atomic/constants.h"
#include "atomic/element.h"
#include "atomic/levels.h"

namespace hspec::apec {

std::vector<EmissionLine> make_lines(const atomic::IonUnit& ion,
                                     const LinePlasma& plasma,
                                     int max_upper_n) {
  std::vector<EmissionLine> lines;
  if (!ion.emits_rrc()) return lines;  // lines come from the same charged units
  const double kt = plasma.kT_keV.value();
  const double ne = plasma.ne_cm3.value();
  const double n_ion = plasma.n_ion_cm3.value();
  if (kt <= 0.0)
    throw std::invalid_argument("make_lines: temperature must be positive");

  const double zeff = static_cast<double>(ion.charge);
  const double scale = atomic::kRydbergKeV * zeff * zeff;
  // Thermal Doppler width: sigma/E = sqrt(kT / (A m_p c^2)).
  const double amu_keV = 931494.10242;  // 1 amu in keV
  const double a = atomic::element(ion.z).atomic_weight;
  const double doppler = std::sqrt(kt / (a * amu_keV));

  for (int nu = 2; nu <= max_upper_n; ++nu) {
    for (int nl = 1; nl < nu; ++nl) {
      const double e = scale * (1.0 / (nl * nl) - 1.0 / (nu * nu));
      if (e <= 0.0) continue;
      // Kramers-like oscillator strength decay with excitation Boltzmann
      // factor; collisional excitation rate ~ exp(-E/kT)/sqrt(kT).
      const double fosc = 1.0 / (static_cast<double>(nu) *
                                 static_cast<double>(nu) *
                                 static_cast<double>(nu) *
                                 static_cast<double>(nl));
      const double emis = 1.0e-16 * ne * n_ion * fosc *
                          std::exp(-e / kt) / std::sqrt(kt) * e;
      lines.push_back({e, emis, e * doppler});
    }
  }
  return lines;
}

void deposit_line(const EmissionLine& line, Spectrum& spec) {
  if (line.sigma_keV <= 0.0)
    throw std::invalid_argument("deposit_line: width must be positive");
  const EnergyGrid& grid = spec.grid();
  const double inv = 1.0 / (std::numbers::sqrt2 * line.sigma_keV);
  // Only touch bins within 6 sigma of the center.
  const double lo = line.energy_keV - 6.0 * line.sigma_keV;
  const double hi = line.energy_keV + 6.0 * line.sigma_keV;
  for (std::size_t b = 0; b < grid.bin_count(); ++b) {
    if (grid.hi(b) < lo || grid.lo(b) > hi) continue;
    const double c0 = std::erf((grid.lo(b) - line.energy_keV) * inv);
    const double c1 = std::erf((grid.hi(b) - line.energy_keV) * inv);
    spec[b] += 0.5 * line.emissivity * (c1 - c0);
  }
}

}  // namespace hspec::apec
