#include "apec/response.h"

#include <cmath>
#include <stdexcept>
#include "util/fp_compare.h"

namespace hspec::apec {

namespace {
constexpr double kFwhmToSigma = 0.42466090014400953;  // 1 / (2 sqrt(2 ln 2))
}

GaussianResponse::GaussianResponse(const EnergyGrid& grid,
                                   ResponseModel model)
    : grid_(&grid), model_(model) {
  if (!(model_.fwhm_at_1keV > 0.0))
    throw std::invalid_argument("GaussianResponse: FWHM must be positive");
  if (!(model_.cutoff_sigmas > 1.0))
    throw std::invalid_argument("GaussianResponse: cutoff must exceed 1 sigma");

  const std::size_t n = grid.bin_count();
  columns_.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double e0 = grid.center(j);
    const double sigma = kFwhmToSigma * model_.fwhm_at_1keV *
                         std::pow(e0, model_.alpha);
    const double lo = e0 - model_.cutoff_sigmas * sigma;
    const double hi = e0 + model_.cutoff_sigmas * sigma;
    Column& col = columns_[j];
    col.first = n;
    const double inv = 1.0 / (sigma * std::sqrt(2.0));
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (grid.hi(i) < lo || grid.lo(i) > hi) continue;
      const double w = 0.5 * (std::erf((grid.hi(i) - e0) * inv) -
                              std::erf((grid.lo(i) - e0) * inv));
      if (col.first == n) col.first = i;
      col.weights.push_back(w);
      total += w;
    }
    // Renormalize the truncated column so folding conserves counts.
    if (total > 0.0)
      for (double& w : col.weights) w /= total;
  }
}

Spectrum GaussianResponse::fold(const Spectrum& model) const {
  if (&model.grid() != grid_ || model.bin_count() != columns_.size())
    throw std::invalid_argument("GaussianResponse: grid mismatch");
  Spectrum out(*grid_);
  for (std::size_t j = 0; j < columns_.size(); ++j) {
    const double counts = model[j];
    // Skip guard: empty model bins hold an exact 0.0 (never computed
    // noise), so the bit-exact test is the cheap fast path.
    if (util::fp_exact_equal(counts, 0.0)) continue;
    const Column& col = columns_[j];
    for (std::size_t k = 0; k < col.weights.size(); ++k)
      out[col.first + k] += counts * col.weights[k];
  }
  return out;
}

}  // namespace hspec::apec
