#include "apec/energy_grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "atomic/constants.h"

namespace hspec::apec {

EnergyGrid::EnergyGrid(std::vector<double> edges) : edges_(std::move(edges)) {
  if (edges_.size() < 2)
    throw std::invalid_argument("EnergyGrid: need at least one bin");
  if (!std::is_sorted(edges_.begin(), edges_.end()))
    throw std::invalid_argument("EnergyGrid: edges must ascend");
  if (edges_.front() <= 0.0)
    throw std::invalid_argument("EnergyGrid: energies must be positive");
}

EnergyGrid EnergyGrid::linear(double emin, double emax, std::size_t bins) {
  if (bins == 0 || !(emax > emin))
    throw std::invalid_argument("EnergyGrid::linear: bad range");
  std::vector<double> e(bins + 1);
  for (std::size_t i = 0; i <= bins; ++i)
    e[i] = emin + (emax - emin) * static_cast<double>(i) /
                      static_cast<double>(bins);
  return EnergyGrid(std::move(e));
}

EnergyGrid EnergyGrid::logarithmic(double emin, double emax, std::size_t bins) {
  if (bins == 0 || !(emax > emin) || emin <= 0.0)
    throw std::invalid_argument("EnergyGrid::logarithmic: bad range");
  std::vector<double> e(bins + 1);
  const double ratio = emax / emin;
  for (std::size_t i = 0; i <= bins; ++i)
    e[i] = emin * std::pow(ratio, static_cast<double>(i) /
                                      static_cast<double>(bins));
  return EnergyGrid(std::move(e));
}

EnergyGrid EnergyGrid::wavelength(double lmin_A, double lmax_A,
                                  std::size_t bins) {
  if (bins == 0 || !(lmax_A > lmin_A) || lmin_A <= 0.0)
    throw std::invalid_argument("EnergyGrid::wavelength: bad range");
  std::vector<double> e(bins + 1);
  for (std::size_t i = 0; i <= bins; ++i) {
    const double lambda = lmax_A - (lmax_A - lmin_A) * static_cast<double>(i) /
                                       static_cast<double>(bins);
    e[i] = atomic::kHCKeVAngstrom / lambda;
  }
  return EnergyGrid(std::move(e));
}

std::size_t EnergyGrid::locate(double e_keV) const {
  if (e_keV < edges_.front() || e_keV >= edges_.back()) return bin_count();
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), e_keV);
  return static_cast<std::size_t>(it - edges_.begin()) - 1;
}

double EnergyGrid::center_wavelength(std::size_t bin) const {
  return atomic::kHCKeVAngstrom / center(bin);
}

}  // namespace hspec::apec
