#include "apec/continuum.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace hspec::apec {

namespace {
/// Normalization chosen so free-free and RRC are comparable at E ~ kT for a
/// fully ionized solar plasma (synthetic AtomDB scale).
constexpr double kFfNorm = 1.0e-18;  // [keV cm^3 s^-1 keV^-1] scale
}  // namespace

double free_free_gaunt(util::KeV e, util::KeV kT) {
  // Kellogg-style approximation: g ~ sqrt(3)/pi * ln(...) clipped at 1.
  const double ratio = kT / e;
  const double g = std::numbers::sqrt3 / std::numbers::pi *
                   std::log(1.0 + 2.25 * std::pow(ratio, 0.7));
  return g < 1.0 ? 1.0 : g;
}

util::SpectralEmissivity free_free_power_density(const FreeFreeState& s,
                                                 util::KeV e) {
  const double kt = s.kT_keV.value();
  if (kt <= 0.0)
    throw std::invalid_argument("free_free: temperature must be positive");
  if (e.value() <= 0.0) return util::SpectralEmissivity{0.0};
  return util::SpectralEmissivity{
      kFfNorm * s.ne_cm3.value() * s.z2_weighted_ion_density_cm3.value() *
      free_free_gaunt(e, s.kT_keV) / std::sqrt(kt) *
      std::exp(-e.value() / kt)};
}

void accumulate_free_free(const FreeFreeState& s, Spectrum& spec) {
  const EnergyGrid& grid = spec.grid();
  const double kt = s.kT_keV.value();
  const double pref = kFfNorm * s.ne_cm3.value() *
                      s.z2_weighted_ion_density_cm3.value() / std::sqrt(kt);
  for (std::size_t b = 0; b < grid.bin_count(); ++b) {
    const double g = free_free_gaunt(util::KeV{grid.center(b)}, s.kT_keV);
    // Exact integral of exp(-E/kT) over the bin.
    const double integral =
        kt * (std::exp(-grid.lo(b) / kt) - std::exp(-grid.hi(b) / kt));
    spec[b] += pref * g * integral;
  }
}

}  // namespace hspec::apec
