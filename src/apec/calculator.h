#pragma once
// The APEC-style spectral calculator: everything needed to turn one
// (temperature, density, time) grid point into a spectrum.
//
// The per-ion accumulation routine here is the task body shared verbatim by
// the serial baseline, the CPU fallback path, and the virtual-GPU kernel, so
// the hybrid framework (src/core) schedules *work*, never physics.

#include <cstddef>

#include "apec/energy_grid.h"
#include "apec/parameter_space.h"
#include "apec/spectrum.h"
#include "atomic/database.h"
#include "quad/integrate.h"
#include "util/units.h"

namespace hspec::apec {

/// How each RRC bin integral is evaluated.
struct IntegrationPolicy {
  /// true: adaptive QAGS (the original serial APEC / CPU fallback);
  /// false: fixed kernel method (the GPU path).
  bool adaptive = true;
  quad::KernelMethod kernel = quad::KernelMethod::simpson;
  std::size_t kernel_param = quad::kPaperSimpsonPanels;
  /// Kernel-path execution shape: true routes the fixed-method integrals
  /// through the batched (structure-of-arrays, SIMD) integrand; false keeps
  /// the scalar reference path. Bitwise-identical spectra either way — the
  /// identity tests pin it — so this is purely a speed/debugging dial.
  bool batch = true;
  double qags_errabs = 1e-18;
  double qags_errrel = 1e-10;
};

struct CalcOptions {
  IntegrationPolicy integration{};
  bool include_lines = true;
  bool include_free_free = true;
  bool gaunt_correction = true;
  /// false: Boltzmann-weighted line list (fast); true: coronal-balance
  /// level populations (richer physics, see apec/level_population.h).
  bool coronal_lines = false;
  /// Add the 2s->1s two-photon continuum of every charged unit
  /// (apec/two_photon.h). Off by default to keep the reproduction figures
  /// at the paper's component set.
  bool include_two_photon = false;
  /// Skip ions whose population n_ion/n_H falls below this floor — the same
  /// emissivity cut real APEC applies to unpopulated charge states.
  double population_floor = 1e-12;
  int line_max_upper_n = 4;
};

/// Derived densities at a grid point under CIE. Dimension-checked: these
/// flow into rrc::PlasmaState / FreeFreeState / LinePlasma without ever
/// passing through a raw double.
struct PointPopulations {
  util::PerCm3 n_h_cm3{};                 ///< hydrogen nuclei density
  util::PerCm3 z2_weighted_density_cm3{}; ///< sum_i n_i z_i^2 (for free-free)

  /// n_{Z,j} of a specific charge state.
  util::PerCm3 ion_density(int z, int j) const;

  util::KeV kT_keV{};
  util::PerCm3 ne_cm3{};
};

/// Solve the CIE populations for a grid point: finds n_H such that the
/// free-electron count of all charge states reproduces ne.
PointPopulations solve_populations(const atomic::AtomicDatabase& db,
                                   const GridPoint& point);

class SpectrumCalculator {
 public:
  SpectrumCalculator(const atomic::AtomicDatabase& db, const EnergyGrid& grid,
                     CalcOptions options = {});

  /// Accumulate one ion unit's full contribution (RRC over all levels and
  /// bins, plus its lines, or the free-free continuum for the pseudo-unit).
  /// Returns the number of bin integrals evaluated.
  std::size_t accumulate_ion(const atomic::IonUnit& ion,
                             const PointPopulations& pops,
                             Spectrum& spectrum) const;

  /// Accumulate a single energy level of an ion (the paper's fine-grained
  /// "Level" task scope). `level_index` indexes levels_for(ion).
  std::size_t accumulate_level(const atomic::IonUnit& ion,
                               std::size_t level_index,
                               const PointPopulations& pops,
                               Spectrum& spectrum) const;

  /// Accumulate only the ion's bound-bound lines (no RRC). The hybrid GPU
  /// path runs RRC kernels on the device and adds lines host-side with this
  /// call, keeping CPU- and GPU-executed tasks bit-comparable in content.
  void accumulate_ion_lines(const atomic::IonUnit& ion,
                            const PointPopulations& pops,
                            Spectrum& spectrum) const;

  /// Full serial calculation of one grid point (the "original serial APEC").
  Spectrum calculate(const GridPoint& point) const;

  /// Ions that survive the population floor at this grid point, in database
  /// order — the task list the hybrid driver schedules.
  std::vector<atomic::IonUnit> populated_ions(const PointPopulations& pops) const;

  const atomic::AtomicDatabase& database() const noexcept { return *db_; }
  const EnergyGrid& grid() const noexcept { return *grid_; }
  const CalcOptions& options() const noexcept { return options_; }

 private:
  const atomic::AtomicDatabase* db_;
  const EnergyGrid* grid_;
  CalcOptions options_;
};

}  // namespace hspec::apec
