#include "apec/calculator.h"

#include <cmath>
#include <stdexcept>

#include "apec/continuum.h"
#include "apec/level_population.h"
#include "apec/two_photon.h"
#include "apec/lines.h"
#include "atomic/element.h"
#include "atomic/ion_balance.h"
#include "rrc/rrc.h"

namespace hspec::apec {

util::PerCm3 PointPopulations::ion_density(int z, int j) const {
  return n_h_cm3 * (atomic::abundance_rel_h(z) *
                    atomic::cie_fraction(z, j, kT_keV));
}

PointPopulations solve_populations(const atomic::AtomicDatabase& db,
                                   const GridPoint& point) {
  if (point.ne_cm3 <= 0.0)
    throw std::invalid_argument("solve_populations: ne must be positive");
  // ne = n_H * sum_z ab_z * <q>_z(kT)  (one pass; CIE fractions do not
  // depend on density in this model).
  double electrons_per_h = 0.0;
  double z2_per_h = 0.0;
  const int max_z = db.config().max_z;
  for (int z = 1; z <= max_z; ++z) {
    const double ab = atomic::abundance_rel_h(z);
    const auto f = atomic::cie_fractions(z, point.kT());
    double mq = 0.0;
    double z2 = 0.0;
    for (int j = 0; j <= z; ++j) {
      mq += static_cast<double>(j) * f[static_cast<std::size_t>(j)];
      z2 += static_cast<double>(j) * static_cast<double>(j) *
            f[static_cast<std::size_t>(j)];
    }
    electrons_per_h += ab * mq;
    z2_per_h += ab * z2;
  }
  if (electrons_per_h <= 0.0) electrons_per_h = 1e-8;  // fully neutral plasma

  // GridPoint fields are raw suffixed doubles (they live in shm task
  // records); this is where they acquire their types.
  PointPopulations pops;
  pops.kT_keV = point.kT();
  pops.ne_cm3 = point.ne();
  pops.n_h_cm3 = point.ne() / electrons_per_h;
  pops.z2_weighted_density_cm3 = pops.n_h_cm3 * z2_per_h;
  return pops;
}

SpectrumCalculator::SpectrumCalculator(const atomic::AtomicDatabase& db,
                                       const EnergyGrid& grid,
                                       CalcOptions options)
    : db_(&db), grid_(&grid), options_(options) {}

std::size_t SpectrumCalculator::accumulate_level(const atomic::IonUnit& ion,
                                                 std::size_t level_index,
                                                 const PointPopulations& pops,
                                                 Spectrum& spectrum) const {
  if (!ion.emits_rrc()) return 0;
  const auto levels = db_->levels_for(ion);
  if (level_index >= levels.size())
    throw std::out_of_range("accumulate_level: level index out of range");

  // The recombining ion is the charge state `ion.charge`; the electron lands
  // in charge state `ion.charge - 1`.
  const util::PerCm3 n_rec = pops.ion_density(ion.z, ion.charge);
  rrc::PlasmaState plasma{pops.kT_keV, pops.ne_cm3, n_rec};
  rrc::RrcChannel ch;
  ch.recombining_charge = ion.charge;
  ch.level = levels[level_index];
  ch.gaunt_correction = options_.gaunt_correction;

  const IntegrationPolicy& pol = options_.integration;
  std::size_t bins_done = 0;
  for (std::size_t b = 0; b < grid_->bin_count(); ++b) {
    const util::KeV hi{grid_->hi(b)};
    if (hi.value() <= ch.level.binding_keV) continue;  // fully below the edge
    const util::KeV lo{grid_->lo(b)};
    rrc::BinEmissivity r;
    if (pol.adaptive) {
      r = rrc::rrc_bin_emissivity_qags(ch, plasma, lo, hi, pol.qags_errabs,
                                       pol.qags_errrel);
    } else {
      r = rrc::rrc_bin_emissivity(ch, plasma, lo, hi, pol.kernel,
                                  pol.kernel_param);
    }
    // Spectrum bins are raw doubles in EmissivityPhotCm3PerS: they are the
    // buffer the vgpu kernels and shm reducers accumulate into.
    spectrum[b] += r.value.value();
    ++bins_done;
  }
  return bins_done;
}

std::size_t SpectrumCalculator::accumulate_ion(const atomic::IonUnit& ion,
                                               const PointPopulations& pops,
                                               Spectrum& spectrum) const {
  if (ion.is_free_free()) {
    if (options_.include_free_free) {
      accumulate_free_free(
          {pops.kT_keV, pops.ne_cm3, pops.z2_weighted_density_cm3}, spectrum);
    }
    return grid_->bin_count();
  }
  if (!ion.emits_rrc()) return 0;

  std::size_t bins_done = 0;
  const std::size_t level_count = db_->level_count_for(ion);
  for (std::size_t li = 0; li < level_count; ++li)
    bins_done += accumulate_level(ion, li, pops, spectrum);

  accumulate_ion_lines(ion, pops, spectrum);
  return bins_done;
}

void SpectrumCalculator::accumulate_ion_lines(const atomic::IonUnit& ion,
                                              const PointPopulations& pops,
                                              Spectrum& spectrum) const {
  if (!options_.include_lines || !ion.emits_rrc()) return;
  const util::PerCm3 n_rec = pops.ion_density(ion.z, ion.charge);
  const LinePlasma plasma{pops.kT_keV, pops.ne_cm3, n_rec};
  const auto lines =
      options_.coronal_lines
          ? make_lines_coronal(ion, plasma, options_.line_max_upper_n)
          : make_lines(ion, plasma, options_.line_max_upper_n);
  for (const EmissionLine& line : lines) deposit_line(line, spectrum);
  if (options_.include_two_photon)
    accumulate_two_photon(
        two_photon_channel(ion, pops.kT_keV, pops.ne_cm3, n_rec), spectrum);
}

std::vector<atomic::IonUnit> SpectrumCalculator::populated_ions(
    const PointPopulations& pops) const {
  std::vector<atomic::IonUnit> out;
  for (const atomic::IonUnit& ion : db_->ions()) {
    if (ion.is_free_free()) {
      if (options_.include_free_free) out.push_back(ion);
      continue;
    }
    if (!ion.emits_rrc()) continue;
    // PerCm3 / PerCm3 collapses to a plain dimensionless fraction.
    const double pop_per_h =
        pops.ion_density(ion.z, ion.charge) / pops.n_h_cm3;
    if (pop_per_h >= options_.population_floor) out.push_back(ion);
  }
  return out;
}

Spectrum SpectrumCalculator::calculate(const GridPoint& point) const {
  const PointPopulations pops = solve_populations(*db_, point);
  Spectrum spectrum(*grid_);
  for (const atomic::IonUnit& ion : populated_ions(pops))
    accumulate_ion(ion, pops, spectrum);
  return spectrum;
}

}  // namespace hspec::apec
