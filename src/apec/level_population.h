#pragma once
// Excited-level populations in the coronal approximation — the model real
// APEC/APED line emissivities are built on for optically thin plasmas in
// collisional ionization equilibrium: levels are populated by electron
// collisions from the ground state and depopulated by spontaneous radiative
// decay, so
//
//    n_k / n_ground = ne * C(1->k, T) / A_total(k),
//
// and each line (k -> j) carries n_k * A(k->j) * dE(k->j).
//
// Atomic inputs are hydrogenic: Kramers absorption oscillator strengths
//    f(n'->n) = 32/(3 sqrt(3) pi) / (n'^5 n^3 (1/n'^2 - 1/n^2)^3),
// Einstein coefficients from f via A ~ f * (g_l/g_u) * dE^2, and
// van-Regemorter-style collisional excitation rates.

#include <vector>

#include "apec/lines.h"
#include "atomic/database.h"
#include "util/units.h"

namespace hspec::apec {

/// Kramers absorption oscillator strength for n_lo -> n_up (n_up > n_lo).
double kramers_oscillator_strength(int n_lo, int n_up);

/// Hydrogenic Einstein A coefficient for the n_up -> n_lo decay of an
/// ion with recombining charge `zeff` (transition energy scales as zeff^2,
/// A as dE^2 * f).
util::PerSecond einstein_a(int zeff, int n_up, int n_lo);

/// Van-Regemorter collisional excitation rate coefficient from the
/// ground state to n_up at temperature kT.
util::Cm3PerS collisional_excitation_rate(int zeff, int n_up, util::KeV kT);

/// Relative populations n_k / n_ground for k = 2..max_n under the coronal
/// balance at (kT, ne). Index 0 of the result corresponds to n = 2. The
/// entries are dimensionless ratios: [cm^-3] * [cm^3/s] / [1/s].
std::vector<double> coronal_populations(int zeff, util::KeV kT,
                                        util::PerCm3 ne, int max_n);

/// Full coronal line list of an ion unit: every (n_up -> n_lo) transition
/// with emissivity n_ion * (n_k/n_g) * A * dE and thermal Doppler width.
/// Richer replacement for make_lines (which uses Boltzmann weights); both
/// are exposed, selected by CalcOptions::coronal_lines.
std::vector<EmissionLine> make_lines_coronal(const atomic::IonUnit& ion,
                                             const LinePlasma& plasma,
                                             int max_upper_n = 5);

}  // namespace hspec::apec
