#pragma once
// Thermal bremsstrahlung (free-free) continuum — the 496th ion unit.
// APEC "calculates both line and continuum emissivity"; free-free dominates
// the smooth continuum under the RRC edges at X-ray energies.

#include "apec/energy_grid.h"
#include "apec/spectrum.h"
#include "util/units.h"

namespace hspec::apec {

struct FreeFreeState {
  util::KeV kT_keV{1.0};
  util::PerCm3 ne_cm3{1.0};
  util::PerCm3 z2_weighted_ion_density_cm3{1.0};  ///< sum_i n_i z_i^2
};

/// Differential free-free emissivity dP/dE at photon energy e
/// [keV s^-1 cm^-3 keV^-1]:  C ne (sum n_i z^2) g_ff exp(-E/kT) / sqrt(kT).
util::SpectralEmissivity free_free_power_density(const FreeFreeState& s,
                                                 util::KeV e);

/// Thermally averaged free-free Gaunt factor (Born-approximation shape).
double free_free_gaunt(util::KeV e, util::KeV kT);

/// Accumulate the free-free continuum into `spec` (exact per-bin integral of
/// the exponential; the Gaunt factor is evaluated at the bin center).
void accumulate_free_free(const FreeFreeState& s, Spectrum& spec);

}  // namespace hspec::apec
