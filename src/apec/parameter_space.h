#pragma once
// The three-dimensional parameter space of Fig. 1: temperature x density x
// time. "The parameter space is often given by a result of astrophysical
// simulation or a configuration file. For each grid point in the parameter
// space, the RRC integrations are required to perform in three nested loops."

#include <cstddef>
#include <vector>

#include "util/units.h"

namespace hspec::apec {

/// One grid point: a determinate (temperature, density, time) triple.
///
/// The fields stay raw suffixed doubles on purpose: GridPoint is copied
/// verbatim into shm task records and device-resident batches, so its layout
/// is part of the serialization edge. The accessors below are where values
/// re-enter the typed world.
struct GridPoint {
  double kT_keV = 1.0;    ///< electron temperature [keV]
  double ne_cm3 = 1.0;    ///< electron density [cm^-3]
  double time_s = 0.0;    ///< epoch [s] (selects the NEI history when used)
  std::size_t index = 0;  ///< flat index within the parameter space

  util::KeV kT() const noexcept { return util::KeV{kT_keV}; }
  util::PerCm3 ne() const noexcept { return util::PerCm3{ne_cm3}; }
  util::Seconds time() const noexcept { return util::Seconds{time_s}; }
};

/// Axis sampling: `count` values spanning [lo, hi], linear or logarithmic.
struct Axis {
  double lo = 1.0;
  double hi = 1.0;
  std::size_t count = 1;
  bool logarithmic = false;

  double value(std::size_t i) const;
};

/// A dense 3-D grid. Iteration order is time-major, then density, then
/// temperature (the innermost loop visits neighbouring temperatures, which
/// keeps per-point work nearly constant across consecutive tasks — the
/// property the paper's equal-subspace split relies on).
class ParameterSpace {
 public:
  ParameterSpace(Axis temperature, Axis density, Axis time);

  std::size_t size() const noexcept;
  GridPoint point(std::size_t flat_index) const;
  std::vector<GridPoint> all_points() const;

  /// Split into `parts` contiguous, near-equal subspaces — the paper's
  /// inter-node load balance: "dividing the whole parameter space into
  /// several equal subspaces". Returns [begin, end) flat-index ranges.
  std::vector<std::pair<std::size_t, std::size_t>> split(std::size_t parts) const;

  const Axis& temperature() const noexcept { return t_; }
  const Axis& density() const noexcept { return d_; }
  const Axis& time() const noexcept { return time_; }

 private:
  Axis t_;
  Axis d_;
  Axis time_;
};

}  // namespace hspec::apec

namespace hspec::util {
class Config;
}

namespace hspec::apec {

/// Build a parameter space from a configuration file (DESIGN.md: "the
/// parameter space is often given by ... a configuration file"):
///
///   [temperature]          # keV
///   lo = 0.1
///   hi = 2.0
///   count = 8
///   log = true
///   [density]              # cm^-3; same keys
///   [time]                 # s; same keys
///
/// Missing sections default to a single point (lo = hi = their defaults).
ParameterSpace parameter_space_from_config(const util::Config& config);

}  // namespace hspec::apec
