#pragma once
// Bound-bound line emission. APEC computes line and continuum emissivity;
// lines ride on top of the RRC/free-free continuum in Fig. 7. We emit the
// hydrogenic n -> n' transitions of each charged ion with Boltzmann
// excitation weights and thermal Doppler broadening.

#include <vector>

#include "apec/energy_grid.h"
#include "apec/spectrum.h"
#include "atomic/database.h"
#include "util/units.h"

namespace hspec::apec {

/// A finished line record: raw suffixed doubles, since lists of these are
/// bulk data headed for the deposit loop (and, eventually, device buffers).
struct EmissionLine {
  double energy_keV = 0.0;  ///< line center
  double emissivity = 0.0;  ///< integrated line power [keV s^-1 cm^-3]
  double sigma_keV = 0.0;   ///< thermal Doppler width (Gaussian sigma)
};

struct LinePlasma {
  util::KeV kT_keV{1.0};
  util::PerCm3 ne_cm3{1.0};
  util::PerCm3 n_ion_cm3{1.0};
};

/// Hydrogenic line list for an ion unit (transitions up to max_upper_n).
/// Neutral and free-free units produce no lines.
std::vector<EmissionLine> make_lines(const atomic::IonUnit& ion,
                                     const LinePlasma& plasma,
                                     int max_upper_n = 4);

/// Deposit a Gaussian-broadened line into the spectrum (error-function
/// integral per bin; conserves the integrated emissivity within the grid).
void deposit_line(const EmissionLine& line, Spectrum& spec);

}  // namespace hspec::apec
