#include "apec/spectrum.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace hspec::apec {

Spectrum::Spectrum(const EnergyGrid& grid)
    : grid_(&grid), values_(grid.bin_count(), 0.0) {}

Spectrum& Spectrum::operator+=(const Spectrum& other) {
  if (other.values_.size() != values_.size())
    throw std::invalid_argument("Spectrum += : grid mismatch");
  for (std::size_t i = 0; i < values_.size(); ++i)
    values_[i] += other.values_[i];
  return *this;
}

Spectrum& Spectrum::operator*=(double factor) {
  for (double& v : values_) v *= factor;
  return *this;
}

double Spectrum::total() const {
  double acc = 0.0;
  for (double v : values_) acc += v;
  return acc;
}

double Spectrum::peak() const {
  return values_.empty() ? 0.0
                         : *std::max_element(values_.begin(), values_.end());
}

std::vector<double> Spectrum::normalized_flux() const {
  const double p = peak();
  std::vector<double> out(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i)
    out[i] = p > 0.0 ? values_[i] / p : 0.0;
  return out;
}

std::vector<std::pair<double, double>> Spectrum::wavelength_series() const {
  const auto norm = normalized_flux();
  std::vector<std::pair<double, double>> out;
  out.reserve(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i)
    out.emplace_back(grid_->center_wavelength(i), norm[i]);
  std::sort(out.begin(), out.end());
  return out;
}

void Spectrum::write_csv(const std::string& path,
                         const std::string& label) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("Spectrum: cannot open " + path);
  f << "wavelength_A,flux_" << label << ",normalized_flux_" << label << '\n';
  const auto norm = normalized_flux();
  for (std::size_t i = 0; i < values_.size(); ++i)
    f << grid_->center_wavelength(i) << ',' << values_[i] << ',' << norm[i]
      << '\n';
}

}  // namespace hspec::apec
