#pragma once
// Two-photon continuum: the 2s -> 1s transition of hydrogen- and helium-
// like ions is radiatively forbidden for single photons and decays by
// emitting two photons whose summed energy equals the transition energy —
// a broad continuum below each Ly-alpha-like line. One of APEC's standard
// continuum components alongside free-free and free-bound (RRC).
//
// Spectral shape: with y = E / E_tot, the photon distribution follows the
// symmetric Spitzer-Greenstein-like profile  phi(y) ~ y (1 - y) normalized
// to emit exactly 2 photons (total energy E_tot) per decay.

#include "apec/spectrum.h"
#include "atomic/database.h"
#include "util/units.h"

namespace hspec::apec {

struct TwoPhotonChannel {
  util::KeV transition_keV{0.0};  ///< 2s-1s energy E_tot
  double decay_rate = 0.0;        ///< n_2s * A_2photon [decays s^-1 cm^-3]
};

/// Normalized spectral shape phi(y), y in (0, 1): integral of phi over
/// [0,1] is 2 (photon count) and integral of y*phi is 1 (energy fraction).
double two_photon_profile(double y) noexcept;

/// The 2s -> 1s channel of a hydrogen-like ion unit under the coronal
/// population of the n = 2 shell (a fixed 2s share of it). Returns a zero
/// channel for units without the transition.
TwoPhotonChannel two_photon_channel(const atomic::IonUnit& ion, util::KeV kT,
                                    util::PerCm3 ne, util::PerCm3 n_ion);

/// Accumulate the channel's power density into the spectrum:
/// dP/dE = rate * E_tot * phi(E / E_tot) / E_tot per unit energy.
void accumulate_two_photon(const TwoPhotonChannel& channel, Spectrum& spec);

}  // namespace hspec::apec
