#pragma once
// Spectrum container: per-bin emissivity aligned with an EnergyGrid, plus
// the flux-normalization and wavelength-series helpers the Fig. 7 comparison
// uses ("normalized flux in a wavelength range").

#include <cstddef>
#include <string>
#include <vector>

#include "apec/energy_grid.h"

namespace hspec::apec {

class Spectrum {
 public:
  explicit Spectrum(const EnergyGrid& grid);

  std::size_t bin_count() const noexcept { return values_.size(); }
  double& operator[](std::size_t bin) { return values_.at(bin); }
  double operator[](std::size_t bin) const { return values_.at(bin); }

  const std::vector<double>& values() const noexcept { return values_; }
  const EnergyGrid& grid() const noexcept { return *grid_; }

  /// Accumulate another spectrum on the same grid.
  Spectrum& operator+=(const Spectrum& other);
  /// Scale all bins.
  Spectrum& operator*=(double factor);

  double total() const;
  double peak() const;

  /// Flux per bin divided by the peak bin (Fig. 7 y-axis).
  std::vector<double> normalized_flux() const;

  /// (wavelength [A], normalized flux) series ordered by wavelength.
  std::vector<std::pair<double, double>> wavelength_series() const;

  /// Write "wavelength_A,flux,normalized_flux" CSV.
  void write_csv(const std::string& path, const std::string& label) const;

 private:
  const EnergyGrid* grid_;
  std::vector<double> values_;
};

}  // namespace hspec::apec
