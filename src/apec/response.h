#pragma once
// Instrument response folding. Observed spectra (XSPEC/ISIS workflows, §I)
// are model spectra convolved with the detector's energy redistribution;
// fitting against real data folds every trial model through the response.
// We implement the standard Gaussian redistribution matrix (RMF) with
// energy-dependent resolution  FWHM(E) = fwhm_at_1keV * (E / 1 keV)^alpha
// (alpha ~ 0.5 for Poissonian CCD-like detectors).

#include <vector>

#include "apec/energy_grid.h"
#include "apec/spectrum.h"

namespace hspec::apec {

struct ResponseModel {
  double fwhm_at_1keV = 0.05;  ///< [keV]
  double alpha = 0.5;          ///< resolution power-law index
  /// Redistribution below this many sigmas is truncated (then renormalized
  /// so the matrix conserves counts within the grid).
  double cutoff_sigmas = 5.0;
};

/// A precomputed redistribution matrix bound to a grid: column j holds the
/// probabilities that a photon from bin j lands in each output bin.
class GaussianResponse {
 public:
  GaussianResponse(const EnergyGrid& grid, ResponseModel model = {});

  /// Fold a model spectrum through the response. Conserves total counts up
  /// to the cutoff truncation (renormalized per column).
  Spectrum fold(const Spectrum& model) const;

  const ResponseModel& model() const noexcept { return model_; }

 private:
  const EnergyGrid* grid_;
  ResponseModel model_;
  /// Sparse columns: per input bin, (first output bin, weights...).
  struct Column {
    std::size_t first = 0;
    std::vector<double> weights;
  };
  std::vector<Column> columns_;
};

}  // namespace hspec::apec
