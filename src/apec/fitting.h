#pragma once
// Spectral fitting: the paper's motivating use case. "It is a common task
// for modern astronomers to fit the observed spectrum with the spectrum
// calculated from theoretical models" — XSPEC/ISIS style: minimize
// chi-squared between an observed binned spectrum and the model spectrum
// over temperature, with the normalization profiled out analytically.
//
// The model evaluator is pluggable so the fit can run over the serial
// calculator or the hybrid CPU/GPU driver (each fit iteration is one full
// spectral calculation — exactly the workload the paper accelerates).

#include <functional>
#include <vector>

#include "apec/calculator.h"
#include "apec/spectrum.h"
#include "util/brent.h"

namespace hspec::apec {

/// An observed spectrum: per-bin counts and Gaussian sigmas, aligned with a
/// model grid.
struct ObservedSpectrum {
  std::vector<double> counts;
  std::vector<double> sigma;  ///< per-bin uncertainty (> 0)
};

/// chi^2(model | observed) with the best-fit normalization applied:
/// A* = sum(c m / s^2) / sum(m^2 / s^2) minimizes sum((c - A m)^2 / s^2)
/// analytically, so the search space stays one-dimensional.
struct ChiSquared {
  double value = 0.0;
  double normalization = 1.0;
  std::size_t degrees_of_freedom = 0;
};
ChiSquared chi_squared(const ObservedSpectrum& observed,
                       const Spectrum& model);

/// Evaluate the model spectrum at temperature kT [keV].
using ModelEvaluator = std::function<Spectrum(double kT_keV)>;

struct FitOptions {
  double kt_min_keV = 0.05;
  double kt_max_keV = 10.0;
  util::BrentOptions minimizer{};
};

struct FitResult {
  double kT_keV = 0.0;
  double normalization = 1.0;
  double chi2 = 0.0;
  double reduced_chi2 = 0.0;
  std::size_t model_evaluations = 0;
  bool converged = false;
};

/// One-temperature fit: minimize chi^2 over kT in [kt_min, kt_max].
/// Chi-squared is unimodal in kT for these one-component models, so Brent
/// over log(kT) is appropriate.
FitResult fit_temperature(const ObservedSpectrum& observed,
                          const ModelEvaluator& model,
                          const FitOptions& opt = {});

/// Convenience: synthesize a noisy observation from a model spectrum
/// (Gaussian noise, fixed relative + floor), for tests and examples.
ObservedSpectrum make_observation(const Spectrum& truth, double normalization,
                                  double relative_noise, std::uint64_t seed);

}  // namespace hspec::apec
