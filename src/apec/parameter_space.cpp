#include "apec/parameter_space.h"

#include <cmath>
#include <stdexcept>

#include "util/config.h"

namespace hspec::apec {

double Axis::value(std::size_t i) const {
  if (i >= count) throw std::out_of_range("Axis::value: index out of range");
  if (count == 1) return lo;
  const double f = static_cast<double>(i) / static_cast<double>(count - 1);
  if (logarithmic) {
    if (lo <= 0.0 || hi <= 0.0)
      throw std::invalid_argument("Axis: log axis requires positive bounds");
    return lo * std::pow(hi / lo, f);
  }
  return lo + f * (hi - lo);
}

ParameterSpace::ParameterSpace(Axis temperature, Axis density, Axis time)
    : t_(temperature), d_(density), time_(time) {
  if (t_.count == 0 || d_.count == 0 || time_.count == 0)
    throw std::invalid_argument("ParameterSpace: axes must be non-empty");
}

std::size_t ParameterSpace::size() const noexcept {
  return t_.count * d_.count * time_.count;
}

GridPoint ParameterSpace::point(std::size_t flat) const {
  if (flat >= size()) throw std::out_of_range("ParameterSpace::point");
  const std::size_t ti = flat % t_.count;
  const std::size_t di = (flat / t_.count) % d_.count;
  const std::size_t si = flat / (t_.count * d_.count);
  return {t_.value(ti), d_.value(di), time_.value(si), flat};
}

std::vector<GridPoint> ParameterSpace::all_points() const {
  std::vector<GridPoint> pts;
  pts.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) pts.push_back(point(i));
  return pts;
}

namespace {

Axis axis_from_config(const util::Config& cfg, const std::string& section,
                      double default_value) {
  Axis axis;
  axis.lo = cfg.get_double(section + ".lo", default_value);
  axis.hi = cfg.get_double(section + ".hi", axis.lo);
  axis.count = static_cast<std::size_t>(cfg.get_int(section + ".count", 1));
  axis.logarithmic = cfg.get_bool(section + ".log", false);
  return axis;
}

}  // namespace

ParameterSpace parameter_space_from_config(const util::Config& config) {
  return ParameterSpace(axis_from_config(config, "temperature", 1.0),
                        axis_from_config(config, "density", 1.0),
                        axis_from_config(config, "time", 0.0));
}

std::vector<std::pair<std::size_t, std::size_t>> ParameterSpace::split(
    std::size_t parts) const {
  if (parts == 0) throw std::invalid_argument("ParameterSpace::split: parts==0");
  const std::size_t n = size();
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ranges.reserve(parts);
  std::size_t begin = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t len = n / parts + (p < n % parts ? 1 : 0);
    ranges.emplace_back(begin, begin + len);
    begin += len;
  }
  return ranges;
}

}  // namespace hspec::apec
