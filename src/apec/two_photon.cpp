#include "apec/two_photon.h"

#include <cmath>
#include <stdexcept>

#include "apec/level_population.h"
#include "atomic/constants.h"

namespace hspec::apec {

double two_photon_profile(double y) noexcept {
  if (y <= 0.0 || y >= 1.0) return 0.0;
  // phi(y) = 12 y (1 - y): integral over [0,1] = 2 photons; energy-weighted
  // integral of y phi = 1 (all of E_tot emitted).
  return 12.0 * y * (1.0 - y);
}

TwoPhotonChannel two_photon_channel(const atomic::IonUnit& ion, util::KeV kT,
                                    util::PerCm3 ne, util::PerCm3 n_ion) {
  TwoPhotonChannel ch;
  if (!ion.emits_rrc()) return ch;
  if (kT.value() <= 0.0)
    throw std::invalid_argument("two_photon_channel: kT must be positive");

  const int zeff = ion.charge;
  const double z2 = static_cast<double>(zeff) * static_cast<double>(zeff);
  ch.transition_keV =
      util::KeV{atomic::kRydbergKeV * z2 * (1.0 - 0.25)};  // 1s-2s gap

  // n = 2 coronal population; statistically 1/4 of it sits in 2s.
  const double pop_n2 = coronal_populations(zeff, kT, ne, 2).front();
  const double n_2s = 0.25 * pop_n2 * n_ion.value();
  // Two-photon decay rate scales as Z^6 from the hydrogen value 8.23 1/s.
  const double a_2photon = 8.23 * z2 * z2 * z2;
  ch.decay_rate = n_2s * a_2photon;
  return ch;
}

void accumulate_two_photon(const TwoPhotonChannel& channel, Spectrum& spec) {
  const double e_tot = channel.transition_keV.value();
  if (channel.decay_rate <= 0.0 || e_tot <= 0.0) return;
  const EnergyGrid& grid = spec.grid();
  for (std::size_t b = 0; b < grid.bin_count(); ++b) {
    const double lo = std::max(grid.lo(b), 0.0) / e_tot;
    const double hi = std::min(grid.hi(b), e_tot) / e_tot;
    if (hi <= lo || lo >= 1.0) continue;
    // Energy deposited in [lo, hi] (y units): rate * E_tot * int y' phi dy
    // with phi = 12 y (1-y): antiderivative of y*phi is 4 y^3 - 3 y^4.
    auto energy_cdf = [](double y) { return 4.0 * y * y * y - 3.0 * y * y * y * y; };
    spec[b] += channel.decay_rate * e_tot * (energy_cdf(hi) - energy_cdf(lo));
  }
}

}  // namespace hspec::apec
