#include "apec/fitting.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace hspec::apec {

ChiSquared chi_squared(const ObservedSpectrum& observed,
                       const Spectrum& model) {
  const std::size_t n = model.bin_count();
  if (observed.counts.size() != n || observed.sigma.size() != n)
    throw std::invalid_argument("chi_squared: bin count mismatch");

  double cm = 0.0;  // sum c m / s^2
  double mm = 0.0;  // sum m^2 / s^2
  for (std::size_t b = 0; b < n; ++b) {
    if (!(observed.sigma[b] > 0.0))
      throw std::invalid_argument("chi_squared: sigma must be positive");
    const double inv_s2 = 1.0 / (observed.sigma[b] * observed.sigma[b]);
    cm += observed.counts[b] * model[b] * inv_s2;
    mm += model[b] * model[b] * inv_s2;
  }
  ChiSquared out;
  out.normalization = mm > 0.0 ? cm / mm : 0.0;
  for (std::size_t b = 0; b < n; ++b) {
    const double r =
        (observed.counts[b] - out.normalization * model[b]) /
        observed.sigma[b];
    out.value += r * r;
  }
  out.degrees_of_freedom = n > 2 ? n - 2 : 1;  // kT + normalization
  return out;
}

FitResult fit_temperature(const ObservedSpectrum& observed,
                          const ModelEvaluator& model, const FitOptions& opt) {
  if (!(opt.kt_max_keV > opt.kt_min_keV) || opt.kt_min_keV <= 0.0)
    throw std::invalid_argument("fit_temperature: bad temperature range");

  std::size_t evaluations = 0;
  double best_norm = 1.0;
  auto objective = [&](double log_kt) {
    ++evaluations;
    const Spectrum spec = model(std::exp(log_kt));
    const ChiSquared c = chi_squared(observed, spec);
    best_norm = c.normalization;
    return c.value;
  };
  const util::BrentResult r = util::brent_minimize(
      objective, std::log(opt.kt_min_keV), std::log(opt.kt_max_keV),
      opt.minimizer);

  FitResult fit;
  fit.kT_keV = std::exp(r.x);
  fit.chi2 = r.fx;
  fit.model_evaluations = evaluations;
  fit.converged = r.converged;
  // Recompute normalization and reduced chi^2 at the final temperature.
  const ChiSquared final_c = chi_squared(observed, model(fit.kT_keV));
  fit.normalization = final_c.normalization;
  fit.reduced_chi2 =
      final_c.value / static_cast<double>(final_c.degrees_of_freedom);
  return fit;
}

ObservedSpectrum make_observation(const Spectrum& truth, double normalization,
                                  double relative_noise, std::uint64_t seed) {
  if (relative_noise < 0.0)
    throw std::invalid_argument("make_observation: negative noise");
  util::Xoshiro256 rng(seed);
  const double floor = 1e-3 * truth.peak() * normalization;
  ObservedSpectrum obs;
  obs.counts.resize(truth.bin_count());
  obs.sigma.resize(truth.bin_count());
  for (std::size_t b = 0; b < truth.bin_count(); ++b) {
    const double mean = normalization * truth[b];
    const double sigma = relative_noise * mean + floor;
    // Box-Muller Gaussian.
    const double u1 = rng.uniform(1e-12, 1.0);
    const double u2 = rng.uniform();
    const double gauss =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    obs.counts[b] = mean + sigma * gauss;
    obs.sigma[b] = sigma;
  }
  return obs;
}

}  // namespace hspec::apec
