#include "apec/level_population.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "atomic/constants.h"
#include "atomic/element.h"

namespace hspec::apec {

namespace {

/// Transition energy [keV] between principal levels of a hydrogenic ion.
double transition_energy(int zeff, int n_lo, int n_up) {
  const double z2 = static_cast<double>(zeff) * static_cast<double>(zeff);
  return atomic::kRydbergKeV * z2 *
         (1.0 / (n_lo * n_lo) - 1.0 / (n_up * n_up));
}

/// Einstein-A normalization calibrated so hydrogen Ly-alpha ~ 4.7e8 1/s.
constexpr double kEinsteinNorm = 3.1e13;  // [1/s per keV^2]

}  // namespace

double kramers_oscillator_strength(int n_lo, int n_up) {
  if (n_lo < 1 || n_up <= n_lo)
    throw std::invalid_argument("oscillator strength: need n_up > n_lo >= 1");
  const double nl = n_lo;
  const double nu = n_up;
  const double gap = 1.0 / (nl * nl) - 1.0 / (nu * nu);
  return 32.0 / (3.0 * std::numbers::sqrt3 * std::numbers::pi) /
         (std::pow(nl, 5.0) * std::pow(nu, 3.0) * gap * gap * gap);
}

util::PerSecond einstein_a(int zeff, int n_up, int n_lo) {
  if (zeff < 1) throw std::invalid_argument("einstein_a: zeff >= 1");
  const double f = kramers_oscillator_strength(n_lo, n_up);
  const double de = transition_energy(zeff, n_lo, n_up);
  const double g_ratio = static_cast<double>(n_lo * n_lo) /
                         static_cast<double>(n_up * n_up);  // g = 2 n^2
  return util::PerSecond{kEinsteinNorm * f * g_ratio * de * de};
}

util::Cm3PerS collisional_excitation_rate(int zeff, int n_up, util::KeV kT) {
  const double kt = kT.value();
  if (kt <= 0.0)
    throw std::invalid_argument("excitation rate: kT must be positive");
  const double de = transition_energy(zeff, 1, n_up);
  const double f = kramers_oscillator_strength(1, n_up);
  // Van Regemorter: C ~ 3.2e-7 f <g> / (dE sqrt(kT)) exp(-dE/kT), with
  // dE in keV-consistent normalization and <g> ~ 0.2 for ions.
  return util::Cm3PerS{3.2e-9 * f * 0.2 / (de * std::sqrt(kt)) *
                       std::exp(-de / kt)};
}

std::vector<double> coronal_populations(int zeff, util::KeV kT,
                                        util::PerCm3 ne, int max_n) {
  if (max_n < 2) throw std::invalid_argument("coronal_populations: max_n >= 2");
  std::vector<double> pop;
  pop.reserve(static_cast<std::size_t>(max_n) - 1);
  for (int n = 2; n <= max_n; ++n) {
    util::PerSecond a_total{0.0};
    for (int nl = 1; nl < n; ++nl) a_total += einstein_a(zeff, n, nl);
    const util::Cm3PerS c = collisional_excitation_rate(zeff, n, kT);
    // [cm^-3] * [cm^3/s] / [1/s] collapses to a dimensionless ratio.
    pop.push_back(ne * c / a_total);
  }
  return pop;
}

std::vector<EmissionLine> make_lines_coronal(const atomic::IonUnit& ion,
                                             const LinePlasma& plasma,
                                             int max_upper_n) {
  std::vector<EmissionLine> lines;
  if (!ion.emits_rrc()) return lines;
  const int zeff = ion.charge;
  const auto pops =
      coronal_populations(zeff, plasma.kT_keV, plasma.ne_cm3, max_upper_n);

  const double amu_keV = 931494.10242;
  const double a_weight = atomic::element(ion.z).atomic_weight;
  const double doppler = std::sqrt(plasma.kT_keV.value() / (a_weight * amu_keV));

  for (int nu = 2; nu <= max_upper_n; ++nu) {
    const double n_k =
        plasma.n_ion_cm3.value() * pops[static_cast<std::size_t>(nu - 2)];
    for (int nl = 1; nl < nu; ++nl) {
      const double de = transition_energy(zeff, nl, nu);
      const double a = einstein_a(zeff, nu, nl).value();
      const double emissivity = n_k * a * de;  // [keV s^-1 cm^-3]
      lines.push_back({de, emissivity, de * doppler});
    }
  }
  return lines;
}

}  // namespace hspec::apec
