#pragma once
// Photon-energy bin grids. The paper quotes ~1e5 energy bins per level as a
// moderate production size; tests and examples use smaller grids. Supports
// linear and logarithmic spacing and wavelength-space construction (Fig. 7
// plots 1..50 Angstrom).

#include <cstddef>
#include <vector>

#include "util/units.h"

namespace hspec::apec {

class EnergyGrid {
 public:
  /// `bins` bins spanning [emin, emax] keV. The suffixed-double factories
  /// remain the primitive form (config files and shm records hand us raw
  /// doubles); the typed overloads forward to them.
  static EnergyGrid linear(double emin_keV, double emax_keV, std::size_t bins);
  static EnergyGrid logarithmic(double emin_keV, double emax_keV,
                                std::size_t bins);
  static EnergyGrid linear(util::KeV emin, util::KeV emax, std::size_t bins) {
    return linear(emin.value(), emax.value(), bins);
  }
  static EnergyGrid logarithmic(util::KeV emin, util::KeV emax,
                                std::size_t bins) {
    return logarithmic(emin.value(), emax.value(), bins);
  }
  /// Bins uniform in wavelength over [lambda_min, lambda_max] Angstrom
  /// (stored ascending in energy).
  static EnergyGrid wavelength(double lambda_min_A, double lambda_max_A,
                               std::size_t bins);

  /// Accessors stay raw suffixed doubles: edge arrays are the bulk buffers
  /// that integrand kernels and device batches consume directly.
  std::size_t bin_count() const noexcept { return edges_.size() - 1; }
  double edge(std::size_t i) const { return edges_.at(i); }
  double lo(std::size_t bin) const { return edges_.at(bin); }
  double hi(std::size_t bin) const { return edges_.at(bin + 1); }
  double center(std::size_t bin) const { return 0.5 * (lo(bin) + hi(bin)); }
  double width(std::size_t bin) const { return hi(bin) - lo(bin); }
  double min_energy() const { return edges_.front(); }
  double max_energy() const { return edges_.back(); }

  /// Bin containing energy e, or bin_count() if outside the grid.
  std::size_t locate(double e_keV) const;
  std::size_t locate(util::KeV e) const { return locate(e.value()); }

  /// Wavelength [Angstrom] of a bin center.
  double center_wavelength(std::size_t bin) const;

  const std::vector<double>& edges() const noexcept { return edges_; }

 private:
  explicit EnergyGrid(std::vector<double> edges);
  std::vector<double> edges_;  ///< ascending, bin i = [edges_[i], edges_[i+1])
};

}  // namespace hspec::apec
