#include "minimpi/minimpi.h"

#include <condition_variable>
#include <exception>
#include <thread>

#include "util/thread_annotations.h"

namespace hspec::minimpi {

namespace {

struct Mailbox {
  util::Mutex mu;
  std::condition_variable_any cv;
  std::deque<Message> queue HSPEC_GUARDED_BY(mu);
};

}  // namespace

/// Shared state of one minimpi world.
class World {
 public:
  explicit World(int nranks) : nranks_(nranks), mailboxes_(nranks) {
    for (auto& mb : mailboxes_) mb = std::make_unique<Mailbox>();
  }

  int size() const noexcept { return nranks_; }

  void deliver(int dest, Message msg) {
    Mailbox& mb = *mailboxes_.at(static_cast<std::size_t>(dest));
    {
      util::MutexLock lock(mb.mu);
      mb.queue.push_back(std::move(msg));
    }
    mb.cv.notify_all();
  }

  static bool matches(const Message& m, int source, int tag) noexcept {
    return (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }

  Message receive(int rank, int source, int tag) {
    Mailbox& mb = *mailboxes_.at(static_cast<std::size_t>(rank));
    util::MutexLock lock(mb.mu);
    while (true) {
      for (auto it = mb.queue.begin(); it != mb.queue.end(); ++it) {
        if (matches(*it, source, tag)) {
          Message msg = std::move(*it);
          mb.queue.erase(it);
          return msg;
        }
      }
      mb.cv.wait(lock);
    }
  }

  bool probe(int rank, int source, int tag) const {
    Mailbox& mb = *mailboxes_.at(static_cast<std::size_t>(rank));
    util::MutexLock lock(mb.mu);
    for (const Message& m : mb.queue)
      if (matches(m, source, tag)) return true;
    return false;
  }

  void barrier() {
    util::MutexLock lock(barrier_mu_);
    const std::uint64_t gen = barrier_generation_;
    if (++barrier_count_ == nranks_) {
      barrier_count_ = 0;
      ++barrier_generation_;
      barrier_cv_.notify_all();
    } else {
      // Manual loop (not the predicate overload): the analysis sees the
      // guarded read in this scope, where the capability is provably held.
      while (barrier_generation_ == gen) barrier_cv_.wait(lock);
    }
  }

 private:
  int nranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  util::Mutex barrier_mu_;
  std::condition_variable_any barrier_cv_;
  int barrier_count_ HSPEC_GUARDED_BY(barrier_mu_) = 0;
  std::uint64_t barrier_generation_ HSPEC_GUARDED_BY(barrier_mu_) = 0;
};

int Communicator::size() const noexcept { return world_->size(); }

void Communicator::send_bytes(int dest, int tag, const void* data,
                              std::size_t bytes) {
  if (dest < 0 || dest >= size())
    throw std::out_of_range("minimpi: destination rank out of range");
  Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload.resize(bytes);
  if (bytes > 0) std::memcpy(msg.payload.data(), data, bytes);
  world_->deliver(dest, std::move(msg));
}

Message Communicator::recv(int source, int tag) {
  return world_->receive(rank_, source, tag);
}

bool Communicator::iprobe(int source, int tag) const {
  return world_->probe(rank_, source, tag);
}

void Communicator::barrier() { world_->barrier(); }

namespace {
// Internal collective tags: base | kind | sequence. User tags must stay
// below kCollectiveBase.
constexpr int kCollectiveBase = 1 << 28;
constexpr int kSeqMod = 1 << 20;
constexpr int kKindBcast = 0;
constexpr int kKindReduce = 1;
constexpr int kKindGather = 2;
}  // namespace

int Communicator::next_collective_tag(int kind) noexcept {
  const int seq = collective_seq_++ % kSeqMod;
  return kCollectiveBase + kind * kSeqMod + seq;
}

void Communicator::bcast_bytes(void* data, std::size_t bytes, int root) {
  const int tag = next_collective_tag(kKindBcast);
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r)
      if (r != root) send_bytes(r, tag, data, bytes);
  } else {
    Message msg = recv(root, tag);
    if (msg.payload.size() != bytes)
      throw std::runtime_error("minimpi: bcast size mismatch");
    std::memcpy(data, msg.payload.data(), bytes);
  }
}

double Communicator::reduce_sum(double local, int root) {
  const int tag = next_collective_tag(kKindReduce);
  if (rank_ == root) {
    double acc = local;
    for (int r = 0; r < size() - 1; ++r)
      acc += recv(kAnySource, tag).as<double>();
    return acc;
  }
  send(root, tag, local);
  return 0.0;
}

double Communicator::allreduce_sum(double local) {
  const double total = reduce_sum(local, 0);
  double out = rank_ == 0 ? total : 0.0;
  return bcast(out, 0);
}

std::vector<double> Communicator::reduce_sum_vector(
    const std::vector<double>& local, int root) {
  const int tag = next_collective_tag(kKindReduce);
  if (rank_ == root) {
    std::vector<double> acc = local;
    for (int r = 0; r < size() - 1; ++r) {
      const auto part = recv(kAnySource, tag).as_vector<double>();
      if (part.size() != acc.size())
        throw std::runtime_error("minimpi: reduce vector size mismatch");
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += part[i];
    }
    return acc;
  }
  send_vector(root, tag, local);
  return {};
}

void Communicator::gather_bytes(const void* src, std::size_t bytes, void* dst,
                                int root) {
  const int tag = next_collective_tag(kKindGather);
  if (rank_ == root) {
    auto* out = static_cast<std::byte*>(dst);
    std::memcpy(out + static_cast<std::size_t>(root) * bytes, src, bytes);
    for (int r = 0; r < size() - 1; ++r) {
      Message msg = recv(kAnySource, tag);
      if (msg.payload.size() != bytes)
        throw std::runtime_error("minimpi: gather size mismatch");
      std::memcpy(out + static_cast<std::size_t>(msg.source) * bytes,
                  msg.payload.data(), bytes);
    }
  } else {
    send_bytes(root, tag, src, bytes);
  }
}

void run(int nranks, const std::function<void(Communicator&)>& rank_main) {
  if (nranks <= 0) throw std::invalid_argument("minimpi::run: nranks <= 0");
  World world(nranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&world, &rank_main, &errors, r] {
      try {
        Communicator comm(&world, r);
        rank_main(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace hspec::minimpi
