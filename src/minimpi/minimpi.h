#pragma once
// minimpi: an in-process message-passing runtime with MPI semantics.
//
// SUBSTITUTION NOTE (DESIGN.md §2): the paper wraps APEC in MPI and runs 24
// ranks on one node. This environment has no MPI installation (and one
// core), so ranks are std::threads with per-rank mailboxes; the API mirrors
// the MPI subset the paper's wrapper needs: point-to-point send/recv,
// barrier, broadcast, reductions, and gather. Because all the paper's ranks
// share one physical node and communicate with the scheduler through POSIX
// shared memory, threads-with-mailboxes preserves the communication
// topology exactly.

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace hspec::minimpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;

  template <class T>
  T as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    if (payload.size() != sizeof(T))
      throw std::runtime_error("minimpi: message size mismatch");
    T value;
    std::memcpy(&value, payload.data(), sizeof(T));
    return value;
  }

  template <class T>
  std::vector<T> as_vector() const {
    static_assert(std::is_trivially_copyable_v<T>);
    if (payload.size() % sizeof(T) != 0)
      throw std::runtime_error("minimpi: message size not a multiple of T");
    std::vector<T> out(payload.size() / sizeof(T));
    std::memcpy(out.data(), payload.data(), payload.size());
    return out;
  }
};

class World;  // shared state of all ranks

/// A rank's handle to the world — the MPI_Comm analogue. One per rank,
/// usable only from that rank's thread.
class Communicator {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Blocking point-to-point send (buffered: never deadlocks on itself).
  void send_bytes(int dest, int tag, const void* data, std::size_t bytes);
  template <class T>
  void send(int dest, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, &value, sizeof(T));
  }
  template <class T>
  void send_vector(int dest, int tag, const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, values.data(), values.size() * sizeof(T));
  }

  /// Blocking receive; kAnySource / kAnyTag wildcards supported.
  Message recv(int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking probe: true if a matching message is queued.
  bool iprobe(int source = kAnySource, int tag = kAnyTag) const;

  void barrier();

  /// Broadcast `value` from root to every rank (collective).
  template <class T>
  T bcast(const T& value, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    T out = value;
    bcast_bytes(&out, sizeof(T), root);
    return out;
  }

  /// Sum-reduce a double to root (others receive 0 contribution back only
  /// at root); allreduce returns the sum on every rank.
  double reduce_sum(double local, int root);
  double allreduce_sum(double local);

  /// Element-wise sum-reduce of equal-length vectors to root. Non-root
  /// ranks get an empty vector.
  std::vector<double> reduce_sum_vector(const std::vector<double>& local,
                                        int root);

  /// Gather one T from each rank to root (rank order). Non-root: empty.
  template <class T>
  std::vector<T> gather(const T& value, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> out(static_cast<std::size_t>(size()));
    gather_bytes(&value, sizeof(T), out.data(), root);
    if (rank_ != root) out.clear();
    return out;
  }

 private:
  friend class World;
  friend void run(int, const std::function<void(Communicator&)>&);
  Communicator(World* world, int rank) : world_(world), rank_(rank) {}
  void bcast_bytes(void* data, std::size_t bytes, int root);
  void gather_bytes(const void* src, std::size_t bytes, void* dst, int root);
  /// Collectives must run in the same order on every rank (MPI semantics);
  /// the shared counter sequences their tags so that back-to-back
  /// collectives with wildcard receives can never interleave.
  int next_collective_tag(int kind) noexcept;

  World* world_;
  int rank_;
  int collective_seq_ = 0;
};

/// Launch `nranks` ranks running `rank_main` and join them. Exceptions
/// thrown by any rank are collected and the first is rethrown after join.
void run(int nranks, const std::function<void(Communicator&)>& rank_main);

}  // namespace hspec::minimpi
