#pragma once
// Adaptive implicit BDF (orders 1-2) with modified-Newton iteration and
// dense LU: the stiff branch of the LSODA-style driver. Variable-step BDF2
// with a BDF1 startup step, predictor-corrector error control, and Jacobian
// reuse across Newton iterations (refreshed on slow convergence) — the same
// structure ODEPACK's stiff path uses, at reduced maximum order.

#include <span>

#include "ode/system.h"

namespace hspec::ode {

/// Integrate from t0 to t1 (t1 > t0), advancing y in place.
SolveStats bdf_integrate(const OdeSystem& system, double t0, double t1,
                         std::span<double> y, const SolverOptions& opt = {});

}  // namespace hspec::ode
