#include "ode/rk45.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hspec::ode {

namespace {

// Dormand-Prince 5(4) coefficients.
constexpr double c2 = 1.0 / 5, c3 = 3.0 / 10, c4 = 4.0 / 5, c5 = 8.0 / 9;
constexpr double a21 = 1.0 / 5;
constexpr double a31 = 3.0 / 40, a32 = 9.0 / 40;
constexpr double a41 = 44.0 / 45, a42 = -56.0 / 15, a43 = 32.0 / 9;
constexpr double a51 = 19372.0 / 6561, a52 = -25360.0 / 2187,
                 a53 = 64448.0 / 6561, a54 = -212.0 / 729;
constexpr double a61 = 9017.0 / 3168, a62 = -355.0 / 33, a63 = 46732.0 / 5247,
                 a64 = 49.0 / 176, a65 = -5103.0 / 18656;
constexpr double b1 = 35.0 / 384, b3 = 500.0 / 1113, b4 = 125.0 / 192,
                 b5 = -2187.0 / 6784, b6 = 11.0 / 84;
// Embedded 4th-order weights.
constexpr double e1 = 5179.0 / 57600, e3 = 7571.0 / 16695, e4 = 393.0 / 640,
                 e5 = -92097.0 / 339200, e6 = 187.0 / 2100, e7 = 1.0 / 40;

}  // namespace

SolveStats rk45_integrate(const OdeSystem& system, double t0, double t1,
                          std::span<double> y, const SolverOptions& opt) {
  const std::size_t n = system.dimension();
  if (y.size() != n) throw std::invalid_argument("rk45: state size mismatch");
  if (!(t1 > t0)) throw std::invalid_argument("rk45: need t1 > t0");

  SolveStats stats;
  std::vector<double> k1(n), k2(n), k3(n), k4(n), k5(n), k6(n), k7(n);
  std::vector<double> y_try(n), y5(n);

  double t = t0;
  double h = opt.initial_step > 0.0 ? opt.initial_step : (t1 - t0) / 100.0;
  const double h_min = opt.min_step_fraction * (t1 - t0);

  system.rhs(t, y, k1);  // FSAL seed
  ++stats.rhs_evaluations;

  while (t < t1) {
    if (stats.steps + stats.rejected_steps >= opt.max_steps)
      throw std::runtime_error("rk45: max step count exceeded (stiff?)");
    h = std::min(h, t1 - t);
    if (h < h_min)
      throw std::runtime_error("rk45: step size underflow (stiff problem)");

    auto stage = [&](std::span<double> dst, double frac,
                     std::initializer_list<std::pair<const std::vector<double>*,
                                                     double>>
                         terms) {
      for (std::size_t i = 0; i < n; ++i) {
        double acc = y[i];
        for (const auto& [k, w] : terms) acc += h * w * (*k)[i];
        y_try[i] = acc;
      }
      system.rhs(t + frac * h, y_try, dst);
      ++stats.rhs_evaluations;
    };

    stage(k2, c2, {{&k1, a21}});
    stage(k3, c3, {{&k1, a31}, {&k2, a32}});
    stage(k4, c4, {{&k1, a41}, {&k2, a42}, {&k3, a43}});
    stage(k5, c5, {{&k1, a51}, {&k2, a52}, {&k3, a53}, {&k4, a54}});
    stage(k6, 1.0, {{&k1, a61}, {&k2, a62}, {&k3, a63}, {&k4, a64}, {&k5, a65}});

    for (std::size_t i = 0; i < n; ++i)
      y5[i] = y[i] + h * (b1 * k1[i] + b3 * k3[i] + b4 * k4[i] + b5 * k5[i] +
                          b6 * k6[i]);
    system.rhs(t + h, y5, k7);
    ++stats.rhs_evaluations;

    // Scaled error norm (max over components).
    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double y4_i = y[i] + h * (e1 * k1[i] + e3 * k3[i] + e4 * k4[i] +
                                      e5 * k5[i] + e6 * k6[i] + e7 * k7[i]);
      const double scale =
          opt.atol + opt.rtol * std::max(std::fabs(y[i]), std::fabs(y5[i]));
      err = std::max(err, std::fabs(y5[i] - y4_i) / scale);
    }

    if (err <= 1.0) {
      t += h;
      std::copy(y5.begin(), y5.end(), y.begin());
      std::swap(k1, k7);  // FSAL
      ++stats.steps;
    } else {
      ++stats.rejected_steps;
    }
    const double factor =
        err > 0.0 ? 0.9 * std::pow(err, -0.2) : 5.0;
    h *= std::clamp(factor, 0.2, 5.0);
  }
  return stats;
}

}  // namespace hspec::ode
