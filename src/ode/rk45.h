#pragma once
// Adaptive explicit Runge-Kutta (Dormand-Prince 5(4)): the non-stiff branch
// of the LSODA-style driver. Cheap per step but its stable step size
// collapses on stiff problems — exactly the signal the driver uses to
// switch to BDF.

#include <span>
#include <vector>

#include "ode/system.h"

namespace hspec::ode {

struct StepOutcome {
  bool accepted = false;
  double error_ratio = 0.0;  ///< scaled error / tolerance (<= 1 accepts)
  double next_step = 0.0;
};

/// Integrate from t0 to t1 (t1 > t0), advancing y in place.
SolveStats rk45_integrate(const OdeSystem& system, double t0, double t1,
                          std::span<double> y, const SolverOptions& opt = {});

}  // namespace hspec::ode
