#pragma once
// Dense and tridiagonal linear algebra for the implicit ODE solvers.
// Systems are small (an NEI chain has at most Z+1 = 31 states), so a simple
// partial-pivoting LU is both adequate and cache-friendly.

#include <cstddef>
#include <span>
#include <vector>

namespace hspec::ode {

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  /// y = A x (sizes must match).
  void multiply(std::span<const double> x, std::span<double> y) const;

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU decomposition with partial pivoting (Doolittle). Throws
/// std::runtime_error on numerical singularity.
class LuDecomposition {
 public:
  explicit LuDecomposition(Matrix a);  // consumes A

  /// Solve A x = b in place.
  void solve(std::span<double> b_to_x) const;

  /// det(A) (including pivot sign).
  double determinant() const;

  std::size_t size() const noexcept { return lu_.rows(); }

 private:
  Matrix lu_;
  std::vector<std::size_t> pivots_;
  int pivot_sign_ = 1;
};

/// Thomas algorithm for tridiagonal A x = d. `lower` has n-1 entries
/// (subdiagonal), `diag` n, `upper` n-1. Overwrites d with x.
/// No pivoting: the NEI matrices are diagonally dominant after the implicit
/// shift; a zero pivot throws.
void solve_tridiagonal(std::span<const double> lower, std::span<const double> diag,
                       std::span<const double> upper, std::span<double> d);

}  // namespace hspec::ode
