#include "ode/tridiag_eigen.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include "util/fp_compare.h"

namespace hspec::ode {

TridiagEigen tridiagonal_eigen(std::span<const double> diag,
                               std::span<const double> offdiag) {
  const std::size_t n = diag.size();
  if (n == 0) throw std::invalid_argument("tridiagonal_eigen: empty matrix");
  if (offdiag.size() + 1 != n)
    throw std::invalid_argument("tridiagonal_eigen: off-diagonal size");

  std::vector<double> d(diag.begin(), diag.end());
  std::vector<double> e(n, 0.0);  // e[i] couples i and i+1; e[n-1] spare
  std::copy(offdiag.begin(), offdiag.end(), e.begin());

  Matrix z(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) z(i, i) = 1.0;

  const double eps = std::numeric_limits<double>::epsilon();
  for (std::size_t l = 0; l < n; ++l) {
    int iterations = 0;
    std::size_t m;
    do {
      // Look for a negligible off-diagonal element to split the problem.
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= eps * dd) break;
      }
      if (m != l) {
        if (iterations++ == 64)
          throw std::runtime_error("tridiagonal_eigen: QL did not converge");
        // Implicit shift from the 2x2 block at l.
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow = false;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          // Underflow guard: hypot flushed to exactly zero, so the
          // rotation below would divide by it — bit-exact test intended.
          if (util::fp_exact_equal(r, 0.0)) {
            // Recover from underflow: deflate and restart this l.
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (std::size_t k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }

  // Sort ascending, permuting eigenvector columns along.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return d[a] < d[b]; });

  TridiagEigen out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = d[order[j]];
    for (std::size_t i = 0; i < n; ++i)
      out.vectors(i, j) = z(i, order[j]);
  }
  return out;
}

}  // namespace hspec::ode
