#include "ode/bdf.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

namespace hspec::ode {

namespace {

struct NewtonWorkspace {
  Matrix jac;
  std::optional<LuDecomposition> lu;
  double lu_gamma_h = 0.0;  ///< gamma*h the factorization was built for
  std::vector<double> f;
  std::vector<double> residual;

  explicit NewtonWorkspace(std::size_t n) : jac(n, n), f(n), residual(n) {}
};

/// Solve y = beta + gamma*h*f(t, y) by modified Newton. Returns true on
/// convergence; `y` holds the iterate (start it at the predictor).
bool newton_solve(const OdeSystem& system, double t, double gamma_h,
                  std::span<const double> beta, std::span<double> y,
                  const SolverOptions& opt, NewtonWorkspace& ws,
                  SolveStats& stats) {
  const std::size_t n = system.dimension();
  // (Re)factor I - gamma*h*J when the cached one is stale.
  auto refactor = [&] {
    if (system.has_jacobian())
      system.jacobian(t, y, ws.jac);
    else
      numerical_jacobian(system, t, y, ws.jac);
    ++stats.jacobian_evaluations;
    Matrix m(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        m(r, c) = (r == c ? 1.0 : 0.0) - gamma_h * ws.jac(r, c);
    ws.lu.emplace(std::move(m));
    ws.lu_gamma_h = gamma_h;
  };
  if (!ws.lu || std::fabs(ws.lu_gamma_h - gamma_h) >
                    0.2 * std::fabs(gamma_h))
    refactor();

  bool refactored_this_call = false;
  for (int iter = 0; iter < 12; ++iter) {
    system.rhs(t, y, ws.f);
    ++stats.rhs_evaluations;
    ++stats.newton_iterations;
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      ws.residual[i] = y[i] - gamma_h * ws.f[i] - beta[i];
      const double scale = opt.atol + opt.rtol * std::fabs(y[i]);
      norm = std::max(norm, std::fabs(ws.residual[i]) / scale);
    }
    if (norm < 0.03) return true;  // converged well inside the step tolerance
    ws.lu->solve(ws.residual);
    for (std::size_t i = 0; i < n; ++i) y[i] -= ws.residual[i];
    if (iter == 5 && !refactored_this_call) {
      refactor();  // slow convergence: refresh the iteration matrix
      refactored_this_call = true;
    }
  }
  return false;
}

}  // namespace

SolveStats bdf_integrate(const OdeSystem& system, double t0, double t1,
                         std::span<double> y, const SolverOptions& opt) {
  const std::size_t n = system.dimension();
  if (y.size() != n) throw std::invalid_argument("bdf: state size mismatch");
  if (!(t1 > t0)) throw std::invalid_argument("bdf: need t1 > t0");

  SolveStats stats;
  stats.stiff_finish = true;
  NewtonWorkspace ws(n);

  std::vector<double> y_prev2(y.begin(), y.end());  // y_{n-2}
  std::vector<double> y_prev(y.begin(), y.end());   // y_{n-1}
  std::vector<double> y_curr(y.begin(), y.end());   // y_n
  std::vector<double> y_next(n);
  std::vector<double> beta(n);
  std::vector<double> predictor(n);

  double h_prev = 0.0;   // step that produced y_curr from y_prev
  double h_prev2 = 0.0;  // step that produced y_prev from y_prev2
  double t = t0;
  double h = opt.initial_step > 0.0 ? opt.initial_step : (t1 - t0) * 1e-4;
  const double h_min = opt.min_step_fraction * (t1 - t0);
  int history = 0;  // accepted steps so far (0: BDF1, 1: linear predictor...)

  while (t < t1) {
    if (stats.steps + stats.rejected_steps >= opt.max_steps)
      throw std::runtime_error("bdf: max step count exceeded");
    h = std::min(h, t1 - t);
    if (h < h_min) throw std::runtime_error("bdf: step size underflow");

    double gamma_h;
    if (history == 0) {
      // BDF1: y_{n+1} = y_n + h f; predictor is y_n.
      gamma_h = h;
      beta.assign(y_curr.begin(), y_curr.end());
      predictor.assign(y_curr.begin(), y_curr.end());
    } else {
      // Variable-step BDF2 with r = h / h_prev:
      //   y_{n+1} = [ (1+r)^2 y_n - r^2 y_{n-1} ] / (1+2r)
      //           + h (1+r)/(1+2r) f(t+h, y_{n+1}).
      const double r = h / h_prev;
      const double denom = 1.0 + 2.0 * r;
      gamma_h = h * (1.0 + r) / denom;
      for (std::size_t i = 0; i < n; ++i)
        beta[i] = ((1.0 + r) * (1.0 + r) * y_curr[i] - r * r * y_prev[i]) /
                  denom;
      if (history == 1) {
        // Linear extrapolation through (y_{n-1}, y_n): O(h^2) accurate.
        for (std::size_t i = 0; i < n; ++i)
          predictor[i] = y_curr[i] + r * (y_curr[i] - y_prev[i]);
      } else {
        // Quadratic extrapolation through the last three points (Newton
        // divided differences): O(h^3), matching the BDF2 corrector order
        // so corrector-minus-predictor tracks the true LTE.
        for (std::size_t i = 0; i < n; ++i) {
          const double d01 = (y_curr[i] - y_prev[i]) / h_prev;
          const double d12 = (y_prev[i] - y_prev2[i]) / h_prev2;
          const double d012 = (d01 - d12) / (h_prev + h_prev2);
          predictor[i] = y_curr[i] + h * d01 + h * (h + h_prev) * d012;
        }
      }
    }

    y_next.assign(predictor.begin(), predictor.end());
    if (!newton_solve(system, t + h, gamma_h, beta, y_next, opt, ws, stats)) {
      ++stats.rejected_steps;
      h *= 0.25;
      ws.lu.reset();  // force refactor at the new step size
      continue;
    }

    // Local error estimate: corrector-minus-predictor, scaled (classic
    // Nordsieck-style proxy; C ~ 1/(2r+2) for BDF2, folded into safety).
    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double scale =
          opt.atol + opt.rtol * std::max(std::fabs(y_curr[i]),
                                         std::fabs(y_next[i]));
      err = std::max(err, std::fabs(y_next[i] - predictor[i]) / scale);
    }
    // err ~ h^2 until the quadratic predictor has history, then ~ h^3.
    const double order = history >= 2 ? 3.0 : 2.0;
    if (err <= 1.0 || history == 0) {
      // Accept (the BDF1 bootstrap step always advances to build history).
      y_prev2.swap(y_prev);
      y_prev.swap(y_curr);
      y_curr = y_next;
      std::copy(y_curr.begin(), y_curr.end(), y.begin());
      h_prev2 = h_prev;
      h_prev = h;
      t += h;
      ++history;
      ++stats.steps;
      const double factor =
          err > 0.0 ? 0.9 * std::pow(1.0 / err, 1.0 / order) : 4.0;
      h *= std::clamp(factor, 0.2, 4.0);
    } else {
      ++stats.rejected_steps;
      const double factor = 0.9 * std::pow(1.0 / err, 1.0 / order);
      h *= std::clamp(factor, 0.1, 0.9);
      ws.lu.reset();
    }
  }
  return stats;
}

}  // namespace hspec::ode
