#include "ode/system.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace hspec::ode {

void OdeSystem::jacobian(double /*t*/, std::span<const double> /*y*/,
                         Matrix& /*j*/) const {
  throw std::logic_error("OdeSystem::jacobian: not provided");
}

void numerical_jacobian(const OdeSystem& system, double t,
                        std::span<const double> y, Matrix& j) {
  const std::size_t n = system.dimension();
  if (j.rows() != n || j.cols() != n)
    throw std::invalid_argument("numerical_jacobian: matrix size mismatch");
  std::vector<double> y_pert(y.begin(), y.end());
  std::vector<double> f0(n);
  std::vector<double> f1(n);
  system.rhs(t, y, f0);
  for (std::size_t c = 0; c < n; ++c) {
    const double eps = std::max(1e-8 * std::fabs(y[c]), 1e-12);
    y_pert[c] = y[c] + eps;
    system.rhs(t, y_pert, f1);
    y_pert[c] = y[c];
    for (std::size_t r = 0; r < n; ++r) j(r, c) = (f1[r] - f0[r]) / eps;
  }
}

}  // namespace hspec::ode
