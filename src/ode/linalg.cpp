#include "ode/linalg.h"

#include <cmath>
#include <stdexcept>

namespace hspec::ode {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("Matrix: zero dimension");
}

void Matrix::multiply(std::span<const double> x, std::span<double> y) const {
  if (x.size() != cols_ || y.size() != rows_)
    throw std::invalid_argument("Matrix::multiply: size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * x[c];
    y[r] = acc;
  }
}

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols())
    throw std::invalid_argument("LuDecomposition: matrix must be square");
  const std::size_t n = lu_.rows();
  pivots_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t p = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::fabs(lu_(r, k));
      if (v > best) {
        best = v;
        p = r;
      }
    }
    if (best < 1e-300)
      throw std::runtime_error("LuDecomposition: numerically singular matrix");
    pivots_[k] = p;
    if (p != k) {
      pivot_sign_ = -pivot_sign_;
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(p, c));
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) * inv_pivot;
      lu_(r, k) = factor;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

void LuDecomposition::solve(std::span<double> b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("LU solve: size mismatch");
  // Apply pivots, forward substitution (unit lower).
  for (std::size_t k = 0; k < n; ++k) {
    std::swap(b[k], b[pivots_[k]]);
    for (std::size_t r = k + 1; r < n; ++r) b[r] -= lu_(r, k) * b[k];
  }
  // Back substitution (upper).
  for (std::size_t k = n; k-- > 0;) {
    for (std::size_t c = k + 1; c < n; ++c) b[k] -= lu_(k, c) * b[c];
    b[k] /= lu_(k, k);
  }
}

double LuDecomposition::determinant() const {
  double det = pivot_sign_;
  for (std::size_t k = 0; k < lu_.rows(); ++k) det *= lu_(k, k);
  return det;
}

void solve_tridiagonal(std::span<const double> lower,
                       std::span<const double> diag,
                       std::span<const double> upper, std::span<double> d) {
  const std::size_t n = diag.size();
  if (n == 0) return;
  if (lower.size() != n - 1 || upper.size() != n - 1 || d.size() != n)
    throw std::invalid_argument("solve_tridiagonal: size mismatch");
  std::vector<double> c_prime(n - 1);
  double denom = diag[0];
  if (std::fabs(denom) < 1e-300)
    throw std::runtime_error("solve_tridiagonal: zero pivot");
  d[0] /= denom;
  for (std::size_t i = 1; i < n; ++i) {
    c_prime[i - 1] = upper[i - 1] / denom;
    denom = diag[i] - lower[i - 1] * c_prime[i - 1];
    if (std::fabs(denom) < 1e-300)
      throw std::runtime_error("solve_tridiagonal: zero pivot");
    d[i] = (d[i] - lower[i - 1] * d[i - 1]) / denom;
  }
  for (std::size_t i = n - 1; i-- > 0;) d[i] -= c_prime[i] * d[i + 1];
}

}  // namespace hspec::ode
