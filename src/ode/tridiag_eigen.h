#pragma once
// Full eigendecomposition of a symmetric tridiagonal matrix by the QL
// algorithm with implicit shifts (EISPACK tql2 lineage). The NEI rate
// matrices of Eq. (4) are similar to symmetric tridiagonal matrices, which
// makes their matrix exponential exactly computable — the classical
// alternative to time stepping for constant-condition plasmas.

#include <span>
#include <vector>

#include "ode/linalg.h"

namespace hspec::ode {

struct TridiagEigen {
  /// Ascending eigenvalues.
  std::vector<double> values;
  /// Orthonormal eigenvectors; column j (i.e. vectors(i, j) over i) pairs
  /// with values[j].
  Matrix vectors;
};

/// Decompose the symmetric tridiagonal matrix with diagonal `diag` (n
/// entries) and off-diagonal `offdiag` (n-1 entries). Throws on
/// non-convergence (pathological inputs) or size mismatch.
TridiagEigen tridiagonal_eigen(std::span<const double> diag,
                               std::span<const double> offdiag);

}  // namespace hspec::ode
