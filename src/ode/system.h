#pragma once
// ODE system interface shared by the explicit and implicit solvers.

#include <cstddef>
#include <span>

#include "ode/linalg.h"

namespace hspec::ode {

/// dy/dt = f(t, y). Implementations may provide an analytic Jacobian;
/// otherwise solvers fall back to forward differences.
class OdeSystem {
 public:
  virtual ~OdeSystem() = default;

  virtual std::size_t dimension() const = 0;
  virtual void rhs(double t, std::span<const double> y,
                   std::span<double> dydt) const = 0;

  virtual bool has_jacobian() const { return false; }
  /// J(r, c) = d f_r / d y_c. Only called when has_jacobian() is true.
  virtual void jacobian(double t, std::span<const double> y, Matrix& j) const;
};

/// Forward-difference Jacobian (used when the system provides none).
void numerical_jacobian(const OdeSystem& system, double t,
                        std::span<const double> y, Matrix& j);

/// Solver telemetry.
struct SolveStats {
  std::size_t steps = 0;
  std::size_t rejected_steps = 0;
  std::size_t rhs_evaluations = 0;
  std::size_t jacobian_evaluations = 0;
  std::size_t newton_iterations = 0;
  std::size_t method_switches = 0;  ///< LSODA Adams<->BDF transitions
  bool stiff_finish = false;        ///< ended on the stiff (BDF) method
};

struct SolverOptions {
  double rtol = 1e-6;
  double atol = 1e-12;
  double initial_step = 0.0;  ///< 0 => auto
  double min_step_fraction = 1e-12;  ///< h_min = fraction * |t1 - t0|
  std::size_t max_steps = 100'000;
};

}  // namespace hspec::ode
