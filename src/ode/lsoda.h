#pragma once
// LSODA-style driver with automatic stiff/non-stiff method switching
// (Petzold & Hindmarsh): start on the cheap explicit Adams/RK path; when the
// explicit step size collapses relative to the interval (the stiffness
// signature), switch to BDF; switch back if BDF cruises at large steps with
// trivial Newton effort. The paper's NEI solver "is developed based on the
// classic ODE solver LSODA" — this is our substrate for it.

#include <span>

#include "ode/system.h"

namespace hspec::ode {

struct LsodaOptions {
  SolverOptions base{};
  /// Explicit steps whose size is below stiff_h_fraction * (t1 - t0) for
  /// stiff_patience consecutive accepted steps trigger the switch to BDF.
  double stiff_h_fraction = 1e-4;
  int stiff_patience = 8;
  /// BDF steps above nonstiff_h_fraction * (t1 - t0) with <= 2 Newton
  /// iterations each suggest the problem relaxed; switch back after
  /// nonstiff_patience of them.
  double nonstiff_h_fraction = 5e-2;
  int nonstiff_patience = 16;
};

/// Integrate from t0 to t1, advancing y in place, choosing methods
/// automatically. stats.method_switches counts transitions;
/// stats.stiff_finish reports the final regime.
SolveStats lsoda_integrate(const OdeSystem& system, double t0, double t1,
                           std::span<double> y, const LsodaOptions& opt = {});

}  // namespace hspec::ode
