#include "ode/lsoda.h"

#include <algorithm>
#include <stdexcept>

#include "ode/bdf.h"
#include "ode/rk45.h"

namespace hspec::ode {

namespace {

void accumulate(SolveStats& total, const SolveStats& part) {
  total.steps += part.steps;
  total.rejected_steps += part.rejected_steps;
  total.rhs_evaluations += part.rhs_evaluations;
  total.jacobian_evaluations += part.jacobian_evaluations;
  total.newton_iterations += part.newton_iterations;
}

}  // namespace

SolveStats lsoda_integrate(const OdeSystem& system, double t0, double t1,
                           std::span<double> y, const LsodaOptions& opt) {
  if (!(t1 > t0)) throw std::invalid_argument("lsoda: need t1 > t0");

  // Integrate window by window so the method can change along the way.
  constexpr int kWindows = 32;
  const double window = (t1 - t0) / kWindows;

  SolveStats total;
  bool stiff = false;
  int calm_windows = 0;  // consecutive easy BDF windows

  std::vector<double> y_backup(y.size());

  for (int w = 0; w < kWindows; ++w) {
    const double wa = t0 + w * window;
    const double wb = (w + 1 == kWindows) ? t1 : wa + window;

    if (!stiff) {
      // Explicit attempt; a step-size collapse inside the window is the
      // stiffness signature and aborts with an exception.
      std::copy(y.begin(), y.end(), y_backup.begin());
      SolverOptions ex = opt.base;
      // Budget: a window that genuinely needs more explicit steps than this
      // is cheaper on the implicit path anyway — treat exceeding it as the
      // stiffness signal (alongside outright step-size underflow).
      ex.max_steps = static_cast<std::size_t>(64 * opt.stiff_patience);
      ex.min_step_fraction = opt.stiff_h_fraction;
      try {
        accumulate(total, rk45_integrate(system, wa, wb, y, ex));
        continue;
      } catch (const std::runtime_error&) {
        // Stiff: restore the window's initial state and redo with BDF.
        std::copy(y_backup.begin(), y_backup.end(), y.begin());
        stiff = true;
        ++total.method_switches;
        calm_windows = 0;
      }
    }

    const SolveStats part = bdf_integrate(system, wa, wb, y, opt.base);
    accumulate(total, part);

    // Switch-back heuristic: the window needed few, easy implicit steps.
    const bool calm =
        part.steps > 0 &&
        static_cast<double>(part.steps) <=
            1.0 / (opt.nonstiff_h_fraction * kWindows) &&
        part.newton_iterations <= 3 * part.steps &&
        part.rejected_steps == 0;
    calm_windows = calm ? calm_windows + 1 : 0;
    if (calm_windows >= opt.nonstiff_patience) {
      stiff = false;
      ++total.method_switches;
      calm_windows = 0;
    }
  }

  total.stiff_finish = stiff;
  return total;
}

}  // namespace hspec::ode
