#include "quad/integrate.h"

#include <stdexcept>

#include "quad/kernel_rules.h"

namespace hspec::quad {

IntegrationResult kernel_integrate(KernelMethod m, std::size_t param,
                                   Integrand f, double a, double b) {
  return rules::kernel_integrate_impl(m, param, f, a, b);
}

std::size_t kernel_cost_evals(KernelMethod m, std::size_t param) noexcept {
  switch (m) {
    case KernelMethod::simpson:
      return 2 * param + 1;
    case KernelMethod::romberg:
      return (std::size_t{1} << param) + 1;
    case KernelMethod::gauss:
      return param;
    case KernelMethod::trapezoid:
      return param + 1;
  }
  return 0;
}

std::string to_string(KernelMethod m) {
  switch (m) {
    case KernelMethod::simpson:
      return "simpson";
    case KernelMethod::romberg:
      return "romberg";
    case KernelMethod::gauss:
      return "gauss";
    case KernelMethod::trapezoid:
      return "trapezoid";
  }
  return "?";
}

}  // namespace hspec::quad
