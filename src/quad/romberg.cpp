#include "quad/romberg.h"

#include <cmath>
#include <stdexcept>

#include "quad/kernel_rules.h"

namespace hspec::quad {

// Both variants run the shared tableau template (quad/kernel_rules.h), so the
// fixed-depth kernel rule is the same arithmetic the batched record/replay
// path executes — bit-identity by construction.

IntegrationResult romberg_fixed(Integrand f, double a, double b, std::size_t k) {
  return rules::romberg_fixed_impl(f, a, b, k);
}

IntegrationResult romberg(Integrand f, double a, double b, Tolerance tol,
                          std::size_t max_k) {
  if (max_k == 0) throw std::invalid_argument("romberg: max_k must be positive");
  rules::RombergTableau<Integrand> t;
  t.init(f, a, b);
  double err = std::fabs(t.best());
  for (std::size_t m = 1; m <= max_k; ++m) {
    const double before = t.best();
    t.refine(f, a);
    err = std::fabs(t.best() - before);
    if (m >= 3 && err <= tol.bound(t.best()))
      return {t.best(), err, t.evals, true};
  }
  return {t.best(), err, t.evals, false};
}

}  // namespace hspec::quad
