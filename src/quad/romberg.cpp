#include "quad/romberg.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace hspec::quad {

namespace {

/// One Romberg pass shared by the fixed and adaptive variants.
/// `rows` holds the current tableau diagonal-by-row; returns eval count.
struct Tableau {
  std::vector<double> prev;  // row m-1
  std::vector<double> curr;  // row m
  double h = 0.0;            // current trapezoid step
  double trap = 0.0;         // current trapezoid estimate T_0^(m)
  std::size_t evals = 0;

  void init(Integrand f, double a, double b) {
    h = b - a;
    trap = 0.5 * h * (f(a) + f(b));
    evals = 2;
    prev = {trap};
  }

  /// Halve the step (one more dichotomy) and extend the extrapolation row.
  void refine(Integrand f, double a) {
    const std::size_t m = prev.size();  // new row has m+1 entries
    const std::size_t new_points = std::size_t{1} << (m - 1);
    double acc = 0.0;
    for (std::size_t i = 0; i < new_points; ++i)
      acc += f(a + (static_cast<double>(i) + 0.5) * h);
    evals += new_points;
    h *= 0.5;
    trap = 0.5 * prev[0] + h * acc;

    curr.assign(m + 1, 0.0);
    curr[0] = trap;
    double pow4 = 1.0;
    for (std::size_t j = 1; j <= m; ++j) {
      pow4 *= 4.0;
      curr[j] = curr[j - 1] + (curr[j - 1] - prev[j - 1]) / (pow4 - 1.0);
    }
    prev.swap(curr);
  }

  double best() const { return prev.back(); }
  double prev_best() const {
    return prev.size() > 1 ? prev[prev.size() - 2] : prev.back();
  }
};

}  // namespace

IntegrationResult romberg_fixed(Integrand f, double a, double b, std::size_t k) {
  Tableau t;
  t.init(f, a, b);
  for (std::size_t m = 1; m <= k; ++m) t.refine(f, a);
  const double err = std::fabs(t.best() - t.prev_best());
  return {t.best(), err, t.evals, true};
}

IntegrationResult romberg(Integrand f, double a, double b, Tolerance tol,
                          std::size_t max_k) {
  if (max_k == 0) throw std::invalid_argument("romberg: max_k must be positive");
  Tableau t;
  t.init(f, a, b);
  double err = std::fabs(t.best());
  for (std::size_t m = 1; m <= max_k; ++m) {
    const double before = t.best();
    t.refine(f, a);
    err = std::fabs(t.best() - before);
    if (m >= 3 && err <= tol.bound(t.best()))
      return {t.best(), err, t.evals, true};
  }
  return {t.best(), err, t.evals, false};
}

}  // namespace hspec::quad
