#pragma once
// Common result and integrand types for the integration substrate.

#include <cstddef>

#include "util/function_ref.h"

namespace hspec::quad {

/// A scalar integrand f(x). Non-owning: must outlive the integrator call.
using Integrand = util::FunctionRef<double(double)>;

/// Result of a definite-integral evaluation.
struct IntegrationResult {
  double value = 0.0;        ///< estimate of the integral
  double error = 0.0;        ///< estimated absolute error
  std::size_t evaluations = 0;  ///< number of integrand evaluations
  bool converged = true;     ///< whether the requested tolerance was met
};

/// A dimension-carrying integration result: the integrators themselves are
/// unitless (an Integrand is double -> double), but a physics caller knows
/// what its integrand measures and re-attaches the unit at its boundary —
/// e.g. rrc::BinEmissivity = TypedResult<util::EmissivityPhotCm3PerS>.
/// `raw()` unwraps back to IntegrationResult at the vgpu/shm edges.
template <class Q>
struct TypedResult {
  Q value{};
  Q error{};
  std::size_t evaluations = 0;
  bool converged = true;

  static constexpr TypedResult from(const IntegrationResult& r) noexcept {
    return {Q{r.value}, Q{r.error}, r.evaluations, r.converged};
  }
  constexpr IntegrationResult raw() const noexcept {
    return {value.value(), error.value(), evaluations, converged};
  }
};

/// Convergence request shared by the adaptive integrators.
struct Tolerance {
  double absolute = 1e-10;
  double relative = 1e-10;

  /// QUADPACK-style combined bound for a current estimate `value`.
  double bound(double value) const noexcept;
};

}  // namespace hspec::quad
