#pragma once
// Common result and integrand types for the integration substrate.

#include <cstddef>

#include "util/function_ref.h"

namespace hspec::quad {

/// A scalar integrand f(x). Non-owning: must outlive the integrator call.
using Integrand = util::FunctionRef<double(double)>;

/// Result of a definite-integral evaluation.
struct IntegrationResult {
  double value = 0.0;        ///< estimate of the integral
  double error = 0.0;        ///< estimated absolute error
  std::size_t evaluations = 0;  ///< number of integrand evaluations
  bool converged = true;     ///< whether the requested tolerance was met
};

/// Convergence request shared by the adaptive integrators.
struct Tolerance {
  double absolute = 1e-10;
  double relative = 1e-10;

  /// QUADPACK-style combined bound for a current estimate `value`.
  double bound(double value) const noexcept;
};

}  // namespace hspec::quad
