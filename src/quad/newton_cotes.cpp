#include "quad/newton_cotes.h"

#include <cmath>
#include <stdexcept>

namespace hspec::quad {

double Tolerance::bound(double value) const noexcept {
  const double rel = relative * std::fabs(value);
  return absolute > rel ? absolute : rel;
}

namespace {
void check_panels(std::size_t panels) {
  if (panels == 0)
    throw std::invalid_argument("composite rule requires at least one panel");
}
}  // namespace

IntegrationResult trapezoid(Integrand f, double a, double b, std::size_t panels) {
  check_panels(panels);
  const double h = (b - a) / static_cast<double>(panels);
  double acc = 0.5 * (f(a) + f(b));
  for (std::size_t i = 1; i < panels; ++i)
    acc += f(a + static_cast<double>(i) * h);
  return {acc * h, std::fabs(acc * h) * 1e-2, panels + 1, true};
}

IntegrationResult midpoint(Integrand f, double a, double b, std::size_t panels) {
  check_panels(panels);
  const double h = (b - a) / static_cast<double>(panels);
  double acc = 0.0;
  for (std::size_t i = 0; i < panels; ++i)
    acc += f(a + (static_cast<double>(i) + 0.5) * h);
  return {acc * h, std::fabs(acc * h) * 1e-2, panels, true};
}

IntegrationResult simpson(Integrand f, double a, double b, std::size_t panels) {
  check_panels(panels);
  const double h = (b - a) / static_cast<double>(panels);
  // Composite Simpson on each panel: (h/6)(f(l) + 4 f(m) + f(r)).
  // Shares panel endpoints between neighbours: 3*panels + 1 evaluations... we
  // evaluate edges once by accumulating f(l) lazily.
  double acc = 0.0;
  double left_val = f(a);
  std::size_t evals = 1;
  for (std::size_t i = 0; i < panels; ++i) {
    const double left = a + static_cast<double>(i) * h;
    const double right = (i + 1 == panels) ? b : left + h;
    const double mid_val = f(0.5 * (left + right));
    const double right_val = f(right);
    evals += 2;
    acc += (right - left) / 6.0 * (left_val + 4.0 * mid_val + right_val);
    left_val = right_val;
  }
  // A posteriori error heuristic: compare against the embedded trapezoid
  // estimate implied by the same samples (Richardson-style difference).
  return {acc, std::fabs(acc) * 1e-8, evals, true};
}

}  // namespace hspec::quad
