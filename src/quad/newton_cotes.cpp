#include "quad/newton_cotes.h"

#include <cmath>
#include <stdexcept>

#include "quad/kernel_rules.h"

namespace hspec::quad {

double Tolerance::bound(double value) const noexcept {
  const double rel = relative * std::fabs(value);
  return absolute > rel ? absolute : rel;
}

// The kernel-eligible rules delegate to the shared templates so the scalar
// reference and the batched record/replay path (quad/batch.h) execute the
// same arithmetic sequence — see quad/kernel_rules.h.

IntegrationResult trapezoid(Integrand f, double a, double b, std::size_t panels) {
  return rules::trapezoid_impl(f, a, b, panels);
}

IntegrationResult midpoint(Integrand f, double a, double b, std::size_t panels) {
  rules::check_panels(panels);
  const double h = (b - a) / static_cast<double>(panels);
  double acc = 0.0;
  for (std::size_t i = 0; i < panels; ++i)
    acc += f(a + (static_cast<double>(i) + 0.5) * h);
  return {acc * h, std::fabs(acc * h) * 1e-2, panels, true};
}

IntegrationResult simpson(Integrand f, double a, double b, std::size_t panels) {
  return rules::simpson_impl(f, a, b, panels);
}

}  // namespace hspec::quad
