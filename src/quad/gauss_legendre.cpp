#include "quad/gauss_legendre.h"

#include <cmath>
#include <map>
#include <numbers>
#include <stdexcept>

#include "quad/kernel_rules.h"
#include "util/thread_annotations.h"

namespace hspec::quad {

LegendreEval legendre(std::size_t n, double x) noexcept {
  double p0 = 1.0;
  double p1 = x;
  if (n == 0) return {1.0, 0.0};
  for (std::size_t k = 2; k <= n; ++k) {
    const double kk = static_cast<double>(k);
    const double p2 = ((2.0 * kk - 1.0) * x * p1 - (kk - 1.0) * p0) / kk;
    p0 = p1;
    p1 = p2;
  }
  // P_n'(x) = n (x P_n - P_{n-1}) / (x^2 - 1); at |x| == 1 use n(n+1)/2 * sign.
  double dp;
  if (std::fabs(x * x - 1.0) < 1e-14) {
    const double nn = static_cast<double>(n);
    dp = (x > 0 ? 1.0 : (n % 2 == 0 ? -1.0 : 1.0)) * nn * (nn + 1.0) / 2.0;
  } else {
    dp = static_cast<double>(n) * (x * p1 - p0) / (x * x - 1.0);
  }
  return {p1, dp};
}

const GaussLegendreRule& gauss_legendre_rule(std::size_t n) {
  if (n == 0)
    throw std::invalid_argument("gauss_legendre_rule: order must be positive");
  static hspec::util::Mutex mu;
  static std::map<std::size_t, GaussLegendreRule> cache;
  hspec::util::MutexLock lock(mu);
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;

  GaussLegendreRule rule;
  rule.nodes.resize(n);
  rule.weights.resize(n);
  const std::size_t half = (n + 1) / 2;
  for (std::size_t i = 0; i < half; ++i) {
    // Tricomi initial guess for the i-th root (descending in x).
    double x = std::cos(std::numbers::pi * (static_cast<double>(i) + 0.75) /
                        (static_cast<double>(n) + 0.5));
    LegendreEval e{};
    for (int iter = 0; iter < 100; ++iter) {
      e = legendre(n, x);
      const double dx = -e.p / e.dp;
      x += dx;
      if (std::fabs(dx) < 1e-15) break;
    }
    e = legendre(n, x);
    const double w = 2.0 / ((1.0 - x * x) * e.dp * e.dp);
    rule.nodes[i] = -x;              // ascending order
    rule.nodes[n - 1 - i] = x;
    rule.weights[i] = w;
    rule.weights[n - 1 - i] = w;
  }
  if (n % 2 == 1) rule.nodes[n / 2] = 0.0;  // exact center for odd orders
  return cache.emplace(n, std::move(rule)).first->second;
}

IntegrationResult gauss_legendre(Integrand f, double a, double b, std::size_t n) {
  // Shared rule body (quad/kernel_rules.h): the scalar reference and the
  // batched record/replay path execute the same arithmetic sequence.
  return rules::gauss_legendre_impl(f, a, b, gauss_legendre_rule(n));
}

}  // namespace hspec::quad
