#include "quad/gauss_kronrod.h"

#include <array>
#include <cmath>
#include <limits>
#include "util/fp_compare.h"

namespace hspec::quad {

namespace {

// QUADPACK qk15.f tables (25 significant digits in the original).
constexpr std::array<double, 8> kXgk15 = {
    0.991455371120812639206854697526329,
    0.949107912342758524526189684047851,
    0.864864423359769072789712788640926,
    0.741531185599394439863864773280788,
    0.586087235467691130294144838258730,
    0.405845151377397166906606412076961,
    0.207784955007898467600689403773245,
    0.000000000000000000000000000000000};
constexpr std::array<double, 8> kWgk15 = {
    0.022935322010529224963732008058970,
    0.063092092629978553290700663189204,
    0.104790010322250183839876322541518,
    0.140653259715525918745189590510238,
    0.169004726639267902826583426598550,
    0.190350578064785409913256402421014,
    0.204432940075298892414161999234649,
    0.209482141084727828012999174891714};
constexpr std::array<double, 4> kWg15 = {
    0.129484966168869693270611432679082,
    0.279705391489276667901467771423780,
    0.381830050505118944950369775488975,
    0.417959183673469387755102040816327};

// QUADPACK qk21.f tables.
constexpr std::array<double, 11> kXgk21 = {
    0.995657163025808080735527280689003,
    0.973906528517171720077964012084452,
    0.930157491355708226001207180059508,
    0.865063366688984510732096688423493,
    0.780817726586416897063717578345042,
    0.679409568299024406234327365114874,
    0.562757134668604683339000099272694,
    0.433395394129247190799265943165784,
    0.294392862701460198131126603103866,
    0.148874338981631210884826001129720,
    0.000000000000000000000000000000000};
constexpr std::array<double, 11> kWgk21 = {
    0.011694638867371874278064396062192,
    0.032558162307964727478818972459390,
    0.054755896574351996031381300244580,
    0.075039674810919952767043140916190,
    0.093125454583697605535065465083366,
    0.109387158802297641899210590325805,
    0.123491976262065851077958109831074,
    0.134709217311473325928054001771707,
    0.142775938577060080797094273138717,
    0.147739104901338491374841515972068,
    0.149445554002916905664936468389821};
constexpr std::array<double, 5> kWg21 = {
    0.066671344308688137593568809893332,
    0.149451349150580593145776339657697,
    0.219086362515982043995534934228163,
    0.269266719309996355091226921569469,
    0.295524224714752870173892994651338};

/// Generic QUADPACK qk kernel over a symmetric (2n+1)-point table.
/// Table layout follows QUADPACK: xgk descending with xgk.back() == 0;
/// even indices of xgk are Kronrod-only points, odd indices coincide with
/// the embedded Gauss rule whose weights are wg.
template <std::size_t N, std::size_t NG>
KronrodEstimate qk(Integrand f, double a, double b,
                   const std::array<double, N>& xgk,
                   const std::array<double, N>& wgk,
                   const std::array<double, NG>& wg) {
  const double center = 0.5 * (a + b);
  const double hlgth = 0.5 * (b - a);
  const double dhlgth = std::fabs(hlgth);

  const double fc = f(center);
  // The embedded Gauss rule has order N-1 and includes the center point only
  // when that order is odd (QK15: 7-point Gauss uses wg[3] at x=0; QK21:
  // 10-point Gauss does not sample the center).
  double resg = ((N - 1) % 2 == 1) ? wg[NG - 1] * fc : 0.0;
  double resk = wgk[N - 1] * fc;
  double resabs = std::fabs(resk);

  std::array<double, N - 1> fv1{};  // f(center - hlgth*x)
  std::array<double, N - 1> fv2{};  // f(center + hlgth*x)
  for (std::size_t j = 0; j < N - 1; ++j) {
    const double absc = hlgth * xgk[j];
    const double f1 = f(center - absc);
    const double f2 = f(center + absc);
    fv1[j] = f1;
    fv2[j] = f2;
    const double fsum = f1 + f2;
    if (j % 2 == 1) resg += wg[j / 2] * fsum;
    resk += wgk[j] * fsum;
    resabs += wgk[j] * (std::fabs(f1) + std::fabs(f2));
  }

  const double reskh = resk * 0.5;
  double resasc = wgk[N - 1] * std::fabs(fc - reskh);
  for (std::size_t j = 0; j < N - 1; ++j)
    resasc += wgk[j] * (std::fabs(fv1[j] - reskh) + std::fabs(fv2[j] - reskh));

  KronrodEstimate out;
  out.value = resk * hlgth;
  out.resabs = resabs * dhlgth;
  out.resasc = resasc * dhlgth;
  double err = std::fabs((resk - resg) * hlgth);
  // QUADPACK qk15: the rescaling only applies when both quantities are
  // nonzero sentinels; exact-zero tests are the original algorithm.
  if (!util::fp_exact_equal(out.resasc, 0.0) &&
      !util::fp_exact_equal(err, 0.0))
    err = out.resasc * std::min(1.0, std::pow(200.0 * err / out.resasc, 1.5));
  const double eps = std::numeric_limits<double>::epsilon();
  const double uflow = std::numeric_limits<double>::min();
  if (out.resabs > uflow / (50.0 * eps))
    err = std::max(err, 50.0 * eps * out.resabs);
  out.error = err;
  out.evaluations = 2 * N - 1;
  return out;
}

}  // namespace

KronrodEstimate kronrod_apply(Integrand f, double a, double b, KronrodRule rule) {
  switch (rule) {
    case KronrodRule::k15:
      return qk(f, a, b, kXgk15, kWgk15, kWg15);
    case KronrodRule::k21:
    default:
      return qk(f, a, b, kXgk21, kWgk21, kWg21);
  }
}

IntegrationResult gauss_kronrod(Integrand f, double a, double b,
                                KronrodRule rule) {
  const KronrodEstimate e = kronrod_apply(f, a, b, rule);
  return {e.value, e.error, e.evaluations, true};
}

KronrodTable kronrod_table(KronrodRule rule) {
  switch (rule) {
    case KronrodRule::k15:
      return {kXgk15, kWgk15, kWg15};
    case KronrodRule::k21:
    default:
      return {kXgk21, kWgk21, kWg21};
  }
}

}  // namespace hspec::quad
