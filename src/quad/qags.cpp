#include "quad/qags.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>
#include "util/fp_compare.h"

namespace hspec::quad {

namespace {

struct Interval {
  double a;
  double b;
  double value;
  double error;
  bool operator<(const Interval& o) const noexcept { return error < o.error; }
};

}  // namespace

EpsilonResult wynn_epsilon(std::span<const double> seq) {
  if (seq.size() < 3)
    throw std::invalid_argument("wynn_epsilon: need at least 3 terms");
  // Two-row epsilon table; eps[k] holds the current diagonal.
  // Track the last three diagonal values for the QUADPACK error estimate.
  const double huge = std::numeric_limits<double>::max();
  std::vector<double> prev_col(seq.begin(), seq.end());  // epsilon_{k}^{(j)}
  std::vector<double> prev_prev(seq.size() + 1, 0.0);    // epsilon_{k-1}
  std::vector<double> diag;
  diag.push_back(prev_col.back());
  while (prev_col.size() >= 2) {
    std::vector<double> next(prev_col.size() - 1);
    for (std::size_t j = 0; j + 1 < prev_col.size(); ++j) {
      const double delta = prev_col[j + 1] - prev_col[j];
      if (std::fabs(delta) < 1e-300) {
        next[j] = huge;  // poles of the table; QUADPACK bails similarly
      } else {
        next[j] = prev_prev[j + 1] + 1.0 / delta;
      }
    }
    prev_prev = std::move(prev_col);
    prev_col = std::move(next);
    // Even columns of the table approximate the limit.
    if ((seq.size() - prev_col.size()) % 2 == 0 && !prev_col.empty())
      diag.push_back(prev_col.back());
  }
  // Best estimate: last even-column diagonal entry that is finite.
  double best = diag.front();
  for (double d : diag)
    if (std::fabs(d) < huge / 2) best = d;
  double err = std::numeric_limits<double>::infinity();
  if (diag.size() >= 3) {
    const double d1 = diag[diag.size() - 1];
    const double d2 = diag[diag.size() - 2];
    const double d3 = diag[diag.size() - 3];
    if (std::fabs(d1) < huge / 2)
      err = std::fabs(d1 - d2) + std::fabs(d1 - d3) +
            5e3 * std::numeric_limits<double>::epsilon() * std::fabs(d1);
  }
  return {best, err};
}

IntegrationResult qags(Integrand f, double a, double b, const QagsOptions& opt) {
  if (opt.max_subintervals == 0)
    throw std::invalid_argument("qags: max_subintervals must be positive");
  // Zero-width interval: the caller passed identical endpoints (a
  // degenerate bin), which only an exact compare can recognise.
  if (util::fp_exact_equal(a, b)) return {0.0, 0.0, 0, true};

  KronrodEstimate first = kronrod_apply(f, a, b, opt.rule);
  std::size_t evals = first.evaluations;

  double area = first.value;
  double errsum = first.error;
  if (errsum <= opt.tol.bound(area) &&
      !(errsum <= 100.0 * std::numeric_limits<double>::epsilon() * first.resabs &&
        errsum > opt.tol.bound(area)))
    return {area, errsum, evals, true};

  std::priority_queue<Interval> heap;
  heap.push({a, b, first.value, first.error});

  std::vector<double> area_sequence;  // inputs to the epsilon table
  area_sequence.push_back(area);

  int roundoff_type1 = 0;  // bisection did not reduce error (smooth part)
  int roundoff_type2 = 0;  // ...while the interval is already tiny

  while (heap.size() < opt.max_subintervals) {
    Interval worst = heap.top();
    heap.pop();

    const double mid = 0.5 * (worst.a + worst.b);
    KronrodEstimate left = kronrod_apply(f, worst.a, mid, opt.rule);
    KronrodEstimate right = kronrod_apply(f, mid, worst.b, opt.rule);
    evals += left.evaluations + right.evaluations;

    const double new_value = left.value + right.value;
    const double new_error = left.error + right.error;
    area += new_value - worst.value;
    errsum += new_error - worst.error;

    // QUADPACK roundoff detection: error refuses to shrink although the
    // values agree well -> further bisection is pointless noise.
    // QUADPACK qagse: resasc == error flags the pure-roundoff regime; the
    // comparison is against a stored copy, so bit-exact is correct.
    if (!util::fp_exact_equal(left.resasc, left.error) &&
        !util::fp_exact_equal(right.resasc, right.error)) {
      if (std::fabs(worst.value - new_value) <= 1e-5 * std::fabs(new_value) &&
          new_error >= 0.99 * worst.error)
        ++roundoff_type1;
      if (heap.size() > 10 && new_error > worst.error) ++roundoff_type2;
    }

    heap.push({worst.a, mid, left.value, left.error});
    heap.push({mid, worst.b, right.value, right.error});

    area_sequence.push_back(area);

    if (errsum <= opt.tol.bound(area)) return {area, errsum, evals, true};
    if (roundoff_type1 >= 10 || roundoff_type2 >= 20) break;
  }

  // Budget (or roundoff limit) exhausted without plain convergence. Apply
  // the Wynn epsilon algorithm to the tail of the area sequence — this is
  // what rescues integrable endpoint singularities, where bisection alone
  // converges only geometrically. Unlike a mid-run short-circuit, the
  // extrapolation only *replaces* the answer when its own error estimate
  // beats the accumulated interval errors (a false epsilon-table limit on,
  // say, an interior jump cannot beat honest bisection that way, because
  // bisection would already have converged).
  double best_value = area;
  double best_error = errsum;
  if (opt.use_extrapolation && area_sequence.size() >= 5) {
    const std::size_t window =
        std::min<std::size_t>(area_sequence.size(), 50);
    std::span<const double> tail(
        area_sequence.data() + area_sequence.size() - window, window);
    const EpsilonResult ex = wynn_epsilon(tail);
    if (std::isfinite(ex.error) && ex.error < best_error) {
      best_value = ex.value;
      best_error = ex.error;
    }
  }
  return {best_value, best_error, evals, best_error <= opt.tol.bound(best_value)};
}

IntegrationResult qags(Integrand f, double a, double b, double errabs,
                       double errrel) {
  QagsOptions opt;
  opt.tol = {errabs, errrel};
  return qags(f, a, b, opt);
}

}  // namespace hspec::quad
