#pragma once
// Umbrella header for the integration substrate, plus the pluggable-method
// registry the paper describes: "a general interface of the GPU-accelerated
// component is developed, so that different numerical integration algorithms
// can be connected to the main program on demand. In the current
// implementation, both the Simpson and the Romberg integration are provided."

#include <cstddef>
#include <string>

#include "quad/gauss_kronrod.h"
#include "quad/gauss_legendre.h"
#include "quad/newton_cotes.h"
#include "quad/qags.h"
#include "quad/result.h"
#include "quad/romberg.h"

namespace hspec::quad {

/// The fixed-cost methods eligible to run inside a GPU kernel (no adaptive
/// control flow; each bin costs the same number of evaluations).
enum class KernelMethod {
  simpson,   ///< composite Simpson, `param` = panels per bin (paper: 64)
  romberg,   ///< fixed-depth Romberg, `param` = dichotomy count k (Eq. 3)
  gauss,     ///< fixed-order Gauss-Legendre, `param` = point count
  trapezoid  ///< composite trapezoid, `param` = panels per bin
};

/// Evaluate one bin [a, b] with a kernel-eligible method.
IntegrationResult kernel_integrate(KernelMethod m, std::size_t param,
                                   Integrand f, double a, double b);

/// Integrand evaluations one bin costs under a kernel method. This is the
/// quantity the paper's "computation amount per task" (2^k columns of
/// Table I) is proportional to, and the input to the vgpu cost model.
std::size_t kernel_cost_evals(KernelMethod m, std::size_t param) noexcept;

std::string to_string(KernelMethod m);

}  // namespace hspec::quad
