#pragma once
// Romberg integration (Richardson extrapolation of the trapezoid rule),
// Eq. (3) of the paper:
//
//   T_m^(k) = 4^m/(4^m-1) T_{m-1}^(k+1) - 1/(4^m-1) T_{m-1}^(k)
//
// The paper uses the dichotomy count k as the complexity dial for the
// load-balance study (Fig. 6, Table I): the work of one task grows as 2^k.

#include <cstddef>

#include "quad/result.h"

namespace hspec::quad {

/// Fixed-depth Romberg: build the full tableau for `k` trapezoid dichotomies
/// (i.e. row i uses 2^i panels, i = 0..k) and return T_k^(0).
/// Cost: 2^k + 1 integrand evaluations.
IntegrationResult romberg_fixed(Integrand f, double a, double b, std::size_t k);

/// Adaptive Romberg: grow the tableau until two successive diagonal entries
/// agree to `tol`, or `max_k` dichotomies are reached.
IntegrationResult romberg(Integrand f, double a, double b, Tolerance tol,
                          std::size_t max_k = 20);

}  // namespace hspec::quad
