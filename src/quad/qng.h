#pragma once
// QNG: non-adaptive cascade quadrature (QUADPACK's QNG spirit). Applies the
// 15-point Gauss-Kronrod rule and, if its embedded error estimate misses
// the tolerance, escalates to the 21-point rule on the same interval —
// never subdividing. The cheapest adaptive-free path for smooth integrands,
// and a fixed-cost alternative for GPU-style execution where control-flow
// divergence is expensive.

#include "quad/gauss_kronrod.h"
#include "quad/result.h"

namespace hspec::quad {

/// Integrate f over [a, b]; converged=false when even the largest rule
/// misses the tolerance (callers should fall back to QAGS).
IntegrationResult qng(Integrand f, double a, double b, Tolerance tol = {});

}  // namespace hspec::quad
