#pragma once
// Closed Newton-Cotes composite rules: trapezoid, midpoint, and the
// composite Simpson rule used by the paper's GPU kernel (Algorithm 2).
// "For most cases of spectral calculation, the Simpson algorithm can provide
// enough accuracy just by dividing the integral range into 64 equal pieces."

#include <cstddef>

#include "quad/result.h"

namespace hspec::quad {

/// Composite trapezoid rule over `panels` equal subintervals.
IntegrationResult trapezoid(Integrand f, double a, double b, std::size_t panels);

/// Composite midpoint rule over `panels` equal subintervals.
IntegrationResult midpoint(Integrand f, double a, double b, std::size_t panels);

/// Composite Simpson rule over `panels` equal subintervals (panels need not
/// be even: each panel is integrated with the three-point Simpson formula on
/// its own half-split, matching the per-bin usage in Algorithm 2).
IntegrationResult simpson(Integrand f, double a, double b, std::size_t panels);

/// The paper's default GPU configuration: Simpson with 64 equal pieces.
inline constexpr std::size_t kPaperSimpsonPanels = 64;

inline IntegrationResult simpson_paper_default(Integrand f, double a, double b) {
  return simpson(f, a, b, kPaperSimpsonPanels);
}

}  // namespace hspec::quad
