#include "quad/batch.h"

#include <stdexcept>

#include "quad/kernel_rules.h"

namespace hspec::quad {

namespace {

/// Evaluator that records each requested abscissa and returns 0.0 (the rule
/// arithmetic runs on zeros and is discarded).
struct Recorder {
  double* out;
  std::size_t i = 0;

  double operator()(double x) {
    out[i++] = x;
    return 0.0;
  }
};

/// Evaluator that ignores the abscissa and consumes the next precomputed
/// value — the same call sequence as the Recorder, by shared template.
struct Replayer {
  const double* ys;
  std::size_t i = 0;

  double operator()(double) { return ys[i++]; }
};

}  // namespace

void kernel_abscissae(KernelMethod m, std::size_t param, double a, double b,
                      std::span<double> xs) {
  if (xs.size() < kernel_cost_evals(m, param))
    throw std::out_of_range("kernel_abscissae: span too small for method");
  Recorder rec{xs.data()};
  rules::kernel_integrate_impl(m, param, rec, a, b);
}

IntegrationResult kernel_combine(KernelMethod m, std::size_t param, double a,
                                 double b, std::span<const double> ys) {
  if (ys.size() < kernel_cost_evals(m, param))
    throw std::out_of_range("kernel_combine: span too small for method");
  Replayer rep{ys.data()};
  return rules::kernel_integrate_impl(m, param, rep, a, b);
}

}  // namespace hspec::quad
