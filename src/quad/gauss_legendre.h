#pragma once
// Gauss-Legendre quadrature with runtime node/weight computation.
// Nodes are the roots of P_n found by Newton iteration from Chebyshev-like
// initial guesses; weights via w_i = 2 / ((1-x_i^2) P_n'(x_i)^2).
// Rules are cached per order (thread-safe).

#include <cstddef>
#include <span>
#include <vector>

#include "quad/result.h"

namespace hspec::quad {

/// Nodes/weights of the n-point Gauss-Legendre rule on [-1, 1].
struct GaussLegendreRule {
  std::vector<double> nodes;
  std::vector<double> weights;
};

/// Compute (or fetch from cache) the n-point rule. Throws for n == 0.
const GaussLegendreRule& gauss_legendre_rule(std::size_t n);

/// Integrate f over [a, b] with the fixed n-point rule.
IntegrationResult gauss_legendre(Integrand f, double a, double b, std::size_t n);

/// Evaluate Legendre P_n(x) and its derivative (used by tests as well).
struct LegendreEval {
  double p;
  double dp;
};
LegendreEval legendre(std::size_t n, double x) noexcept;

}  // namespace hspec::quad
