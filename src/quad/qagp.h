#pragma once
// QAGP: adaptive quadrature with user-supplied break points (QUADPACK's
// QAGP). Spectral integrands have known interior discontinuities — the
// recombination edges — and telling the integrator where they are is both
// cheaper and more robust than letting QAGS discover them. This is the
// generalization of the edge split rrc_bin_emissivity_qags performs for a
// single level.

#include <span>

#include "quad/qags.h"

namespace hspec::quad {

/// Integrate f over [a, b] treating each interior point of `break_points`
/// (any order, duplicates and out-of-range values ignored) as a boundary:
/// QAGS runs on every resulting subinterval and the pieces are summed.
/// The per-piece tolerance is the requested tolerance scaled down by the
/// piece count so the summed error respects the caller's bound.
IntegrationResult qagp(Integrand f, double a, double b,
                       std::span<const double> break_points,
                       const QagsOptions& opt = {});

}  // namespace hspec::quad
