#pragma once
// The fixed-cost kernel rule bodies, templated on the evaluator.
//
// Bit-identity between the scalar integrators and the batched path is by
// construction, not by testing alone: there is exactly ONE implementation of
// each rule's arithmetic — the templates below — instantiated three ways:
//
//  * evaluator = the real integrand        -> the scalar reference
//    (quad/newton_cotes.cpp, quad/romberg.cpp, quad/gauss_legendre.cpp);
//  * evaluator = an abscissa recorder      -> quad::kernel_abscissae
//    (enumerates the rule's evaluation points, in call order);
//  * evaluator = a value replayer          -> quad::kernel_combine
//    (consumes precomputed integrand values in the same order).
//
// Because recorder and replayer run the same template, the i-th recorded
// abscissa is exactly the i-th consumed value, for every method — so a batch
// pass (record all, evaluate all at once, combine all) reproduces the scalar
// result bit for bit whenever the batch integrand matches the scalar one.
//
// Rule for editing: calls to the evaluator must stay explicitly sequenced
// (never two calls in one expression, where C++ leaves the order
// unspecified), or record/replay ordering would be at the compiler's mercy.

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "quad/gauss_legendre.h"
#include "quad/integrate.h"
#include "quad/result.h"

namespace hspec::quad::rules {

inline void check_panels(std::size_t panels) {
  if (panels == 0)
    throw std::invalid_argument("composite rule requires at least one panel");
}

/// Composite Simpson: (h/6)(f(l) + 4 f(m) + f(r)) per panel, edge values
/// shared between neighbours by accumulating f(l) lazily.
template <class F>
IntegrationResult simpson_impl(F& f, double a, double b, std::size_t panels) {
  check_panels(panels);
  const double h = (b - a) / static_cast<double>(panels);
  double acc = 0.0;
  double left_val = f(a);
  std::size_t evals = 1;
  for (std::size_t i = 0; i < panels; ++i) {
    const double left = a + static_cast<double>(i) * h;
    const double right = (i + 1 == panels) ? b : left + h;
    const double mid_val = f(0.5 * (left + right));
    const double right_val = f(right);
    evals += 2;
    acc += (right - left) / 6.0 * (left_val + 4.0 * mid_val + right_val);
    left_val = right_val;
  }
  // A posteriori error heuristic: compare against the embedded trapezoid
  // estimate implied by the same samples (Richardson-style difference).
  return {acc, std::fabs(acc) * 1e-8, evals, true};
}

template <class F>
IntegrationResult trapezoid_impl(F& f, double a, double b, std::size_t panels) {
  check_panels(panels);
  const double h = (b - a) / static_cast<double>(panels);
  const double fa = f(a);
  const double fb = f(b);
  double acc = 0.5 * (fa + fb);
  for (std::size_t i = 1; i < panels; ++i)
    acc += f(a + static_cast<double>(i) * h);
  return {acc * h, std::fabs(acc * h) * 1e-2, panels + 1, true};
}

/// Romberg tableau held diagonal-by-row; shared by the fixed-depth kernel
/// rule below and the adaptive variant in quad/romberg.cpp.
template <class F>
struct RombergTableau {
  std::vector<double> prev;  // row m-1
  std::vector<double> curr;  // row m
  double h = 0.0;            // current trapezoid step
  double trap = 0.0;         // current trapezoid estimate T_0^(m)
  std::size_t evals = 0;

  void init(F& f, double a, double b) {
    h = b - a;
    const double fa = f(a);
    const double fb = f(b);
    trap = 0.5 * h * (fa + fb);
    evals = 2;
    prev = {trap};
  }

  /// Halve the step (one more dichotomy) and extend the extrapolation row.
  void refine(F& f, double a) {
    const std::size_t m = prev.size();  // new row has m+1 entries
    const std::size_t new_points = std::size_t{1} << (m - 1);
    double acc = 0.0;
    for (std::size_t i = 0; i < new_points; ++i)
      acc += f(a + (static_cast<double>(i) + 0.5) * h);
    evals += new_points;
    h *= 0.5;
    trap = 0.5 * prev[0] + h * acc;

    curr.assign(m + 1, 0.0);
    curr[0] = trap;
    double pow4 = 1.0;
    for (std::size_t j = 1; j <= m; ++j) {
      pow4 *= 4.0;
      curr[j] = curr[j - 1] + (curr[j - 1] - prev[j - 1]) / (pow4 - 1.0);
    }
    prev.swap(curr);
  }

  double best() const { return prev.back(); }
  double prev_best() const {
    return prev.size() > 1 ? prev[prev.size() - 2] : prev.back();
  }
};

template <class F>
IntegrationResult romberg_fixed_impl(F& f, double a, double b, std::size_t k) {
  RombergTableau<F> t;
  t.init(f, a, b);
  for (std::size_t m = 1; m <= k; ++m) t.refine(f, a);
  const double err = std::fabs(t.best() - t.prev_best());
  return {t.best(), err, t.evals, true};
}

template <class F>
IntegrationResult gauss_legendre_impl(F& f, double a, double b,
                                      const GaussLegendreRule& rule) {
  const std::size_t n = rule.nodes.size();
  const double mid = 0.5 * (a + b);
  const double halfwidth = 0.5 * (b - a);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    acc += rule.weights[i] * f(mid + halfwidth * rule.nodes[i]);
  const double value = acc * halfwidth;
  return {value, std::fabs(value) * 1e-12, n, true};
}

/// Method dispatch over the templates above — the single source of truth
/// behind quad::kernel_integrate, quad::kernel_abscissae, and
/// quad::kernel_combine.
template <class F>
IntegrationResult kernel_integrate_impl(KernelMethod m, std::size_t param,
                                        F& f, double a, double b) {
  switch (m) {
    case KernelMethod::simpson:
      return simpson_impl(f, a, b, param);
    case KernelMethod::romberg:
      return romberg_fixed_impl(f, a, b, param);
    case KernelMethod::gauss:
      return gauss_legendre_impl(f, a, b, gauss_legendre_rule(param));
    case KernelMethod::trapezoid:
      return trapezoid_impl(f, a, b, param);
  }
  throw std::invalid_argument("kernel_integrate: unknown method");
}

}  // namespace hspec::quad::rules
