#pragma once
// QAGS: globally adaptive quadrature with extrapolation, after QUADPACK's
// QAGS routine (Piessens et al. 1983) which the paper uses as the serial
// baseline and the CPU fallback path of the hybrid scheduler:
// "the original CPU process will continue to achieve the task by calling
//  traditional QAGS routine serially."
//
// Design notes vs. the Fortran original:
//  * interval management uses a max-heap keyed by error (same policy as
//    QUADPACK's ordered lists, simpler bookkeeping);
//  * the Wynn epsilon-algorithm extrapolation (QELG) is implemented as a
//    standalone, separately-tested component;
//  * the roundoff-detection counters (iroff1..3) are kept, the "small
//    interval at extrapolation" machinery is simplified to a stall detector.

#include <cstddef>
#include <span>

#include "quad/gauss_kronrod.h"
#include "quad/result.h"

namespace hspec::quad {

struct QagsOptions {
  Tolerance tol{1e-10, 1e-10};
  std::size_t max_subintervals = 200;
  KronrodRule rule = KronrodRule::k21;
  bool use_extrapolation = true;
};

/// Integrate f over [a, b]. Handles integrable endpoint singularities via
/// extrapolation (e.g. 1/sqrt(x), log(x)). Never throws on hard integrands;
/// reports converged=false with the best estimate instead.
IntegrationResult qags(Integrand f, double a, double b, const QagsOptions& opt = {});

/// Convenience overload with explicit absolute/relative tolerances, matching
/// the paper's CPU-Integr(L, U, N, f, errabs, errrel) signature.
IntegrationResult qags(Integrand f, double a, double b, double errabs,
                       double errrel);

/// Wynn's epsilon algorithm over a sequence of partial estimates. Returns the
/// extrapolated limit and an error estimate from the last three epsilon-table
/// diagonals (QUADPACK QELG behaviour). `n` must be >= 3.
struct EpsilonResult {
  double value;
  double error;
};
EpsilonResult wynn_epsilon(std::span<const double> sequence);

}  // namespace hspec::quad
