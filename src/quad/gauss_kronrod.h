#pragma once
// Gauss-Kronrod quadrature rules (QUADPACK's QK15 and QK21 kernels).
// A 2n+1-point Kronrod extension re-uses the n Gauss points and provides an
// embedded error estimate from the difference between the Gauss and Kronrod
// results, rescaled exactly as QUADPACK does (the (200 |K-G| / resasc)^1.5
// heuristic), so the adaptive QAGS driver behaves like the original.

#include <cstddef>
#include <span>

#include "quad/result.h"

namespace hspec::quad {

/// Which embedded rule to apply on each subinterval.
enum class KronrodRule { k15, k21 };

/// QUADPACK-style output of a single rule application.
struct KronrodEstimate {
  double value = 0.0;    ///< Kronrod estimate of the integral
  double error = 0.0;    ///< rescaled |Kronrod - Gauss| error estimate
  double resabs = 0.0;   ///< integral of |f|
  double resasc = 0.0;   ///< integral of |f - mean| (scale of variation)
  std::size_t evaluations = 0;
};

/// Apply the chosen rule to f on [a, b].
KronrodEstimate kronrod_apply(Integrand f, double a, double b, KronrodRule rule);

/// Convenience wrapper returning the common result type.
IntegrationResult gauss_kronrod(Integrand f, double a, double b,
                                KronrodRule rule = KronrodRule::k21);

/// Access to the raw positive abscissae/weights (exposed for rule tests:
/// symmetry, positivity, weight sums, polynomial exactness).
struct KronrodTable {
  std::span<const double> xgk;  ///< abscissae, descending, includes 0 last
  std::span<const double> wgk;  ///< Kronrod weights matching xgk
  std::span<const double> wg;   ///< embedded Gauss weights (half rule)
};
KronrodTable kronrod_table(KronrodRule rule);

}  // namespace hspec::quad
