#pragma once
// Structure-of-arrays batched evaluation of the fixed-cost kernel rules.
//
// The scalar hot path evaluates the integrand one abscissa at a time through
// a FunctionRef indirection — one indirect call plus one exp/log per point.
// The batch model splits each bin integral into three phases:
//
//   record   enumerate the rule's abscissae (kernel_abscissae) — pure
//            arithmetic, no integrand;
//   evaluate hand the whole abscissa span to a BatchIntegrand, which fills
//            the value span in one vectorizable pass (the transcendentals
//            amortize across SIMD lanes — see util/fastmath.h);
//   combine  replay the rule over the precomputed values (kernel_combine).
//
// record and combine instantiate the same rule templates
// (quad/kernel_rules.h) that the scalar integrators run, so the i-th
// recorded abscissa is exactly the i-th value consumed, and the combined
// result is bit-identical to kernel_integrate whenever the BatchIntegrand
// matches the scalar integrand pointwise. Identity is therefore independent
// of how callers chunk bins into batches: each value depends only on its own
// abscissa.

#include <cstddef>
#include <span>

#include "quad/integrate.h"
#include "util/function_ref.h"

namespace hspec::quad {

/// A batched integrand: ys[i] = f(xs[i]) for every i (spans have equal
/// length). Non-owning, like Integrand. To keep the batch path bit-identical
/// to a scalar reference, the implementation must produce the same bits as
/// the scalar integrand at every abscissa (elementwise IEEE ops and explicit
/// std::fma only — see util/fastmath.h).
using BatchIntegrand =
    util::FunctionRef<void(std::span<const double>, std::span<double>)>;

/// Write the abscissae of one bin [a, b] under the kernel method into `xs`,
/// in evaluation order. Exactly kernel_cost_evals(m, param) values; throws
/// std::out_of_range if `xs` is smaller.
void kernel_abscissae(KernelMethod m, std::size_t param, double a, double b,
                      std::span<double> xs);

/// Combine precomputed integrand values (in kernel_abscissae order) into the
/// bin integral. Bitwise identical to kernel_integrate(m, param, f, a, b)
/// when ys[i] == f(xs[i]) for all i. Throws std::out_of_range if `ys` holds
/// fewer than kernel_cost_evals(m, param) values.
IntegrationResult kernel_combine(KernelMethod m, std::size_t param, double a,
                                 double b, std::span<const double> ys);

/// Adapts a scalar integrand to the batch interface by looping — trivially
/// bit-identical, with none of the speedup. The reference oracle for the
/// identity tests and the fallback for integrands with no batched form.
class ScalarBatchAdapter {
 public:
  explicit ScalarBatchAdapter(Integrand f) noexcept : f_(f) {}

  void operator()(std::span<const double> xs, std::span<double> ys) const {
    for (std::size_t i = 0; i < xs.size(); ++i) ys[i] = f_(xs[i]);
  }

 private:
  Integrand f_;
};

}  // namespace hspec::quad
