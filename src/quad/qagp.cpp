#include "quad/qagp.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace hspec::quad {

IntegrationResult qagp(Integrand f, double a, double b,
                       std::span<const double> break_points,
                       const QagsOptions& opt) {
  if (a == b) return {0.0, 0.0, 0, true};
  const double lo = std::min(a, b);
  const double hi = std::max(a, b);
  const double sign = a < b ? 1.0 : -1.0;

  std::vector<double> edges{lo};
  for (double p : break_points)
    if (p > lo && p < hi) edges.push_back(p);
  edges.push_back(hi);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  QagsOptions piece_opt = opt;
  const auto pieces = edges.size() - 1;
  piece_opt.tol.absolute = opt.tol.absolute / static_cast<double>(pieces);
  piece_opt.tol.relative = opt.tol.relative / static_cast<double>(pieces);

  IntegrationResult total;
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    const IntegrationResult piece = qags(f, edges[i], edges[i + 1], piece_opt);
    total.value += piece.value;
    total.error += piece.error;
    total.evaluations += piece.evaluations;
    total.converged = total.converged && piece.converged;
  }
  total.value *= sign;
  return total;
}

}  // namespace hspec::quad
