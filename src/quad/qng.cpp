#include "quad/qng.h"

namespace hspec::quad {

IntegrationResult qng(Integrand f, double a, double b, Tolerance tol) {
  if (a == b) return {0.0, 0.0, 0, true};
  std::size_t evals = 0;
  for (const KronrodRule rule : {KronrodRule::k15, KronrodRule::k21}) {
    const KronrodEstimate e = kronrod_apply(f, a, b, rule);
    evals += e.evaluations;
    if (e.error <= tol.bound(e.value))
      return {e.value, e.error, evals, true};
    if (rule == KronrodRule::k21)
      return {e.value, e.error, evals, false};
  }
  return {};  // unreachable
}

}  // namespace hspec::quad
