#include "vgpu/arena.h"

#include <algorithm>
#include <stdexcept>

namespace hspec::vgpu {

ScratchArena::ScratchArena(std::size_t initial_doubles)
    : initial_doubles_(std::max<std::size_t>(initial_doubles, 1)) {}

std::span<double> ScratchArena::alloc(std::size_t n) {
  if (n == 0) throw std::invalid_argument("ScratchArena::alloc: zero doubles");
  ++stats_.allocations;
  // Walk forward to a block with room. Blocks are append-only and never
  // resized in place, so spans handed out earlier stay valid across growth.
  while (block_ < blocks_.size() && blocks_[block_].size() - offset_ < n) {
    ++block_;
    offset_ = 0;
  }
  if (block_ == blocks_.size()) {
    const std::size_t last = blocks_.empty() ? initial_doubles_ / 2
                                             : blocks_.back().size();
    blocks_.emplace_back(std::max(n, last * 2));
    ++stats_.growths;
    offset_ = 0;
  }
  double* p = blocks_[block_].data() + offset_;
  offset_ += n;
  stats_.used_doubles += n;
  return {p, n};
}

void ScratchArena::reset() noexcept {
  block_ = 0;
  offset_ = 0;
  stats_.used_doubles = 0;
  ++stats_.resets;
}

ScratchArena::Stats ScratchArena::stats() const noexcept {
  Stats s = stats_;
  s.blocks = blocks_.size();
  for (const auto& b : blocks_) s.capacity_doubles += b.size();
  return s;
}

}  // namespace hspec::vgpu
