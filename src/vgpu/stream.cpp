#include "vgpu/stream.h"

#include <algorithm>
#include <stdexcept>

#include "util/fault.h"

namespace hspec::vgpu {

StreamScheduler::StreamScheduler(Device& device)
    : device_(&device),
      max_concurrent_(device.properties().max_concurrent_kernels) {
  if (max_concurrent_ < 1)
    throw std::invalid_argument("StreamScheduler: bad concurrency bound");
}

std::pair<double, double> StreamScheduler::schedule_kernel(double earliest,
                                                           double duration) {
  util::MutexLock lock(mu_);
  // Find a free lane; if all lanes are busy past `earliest`, take the one
  // that frees first (the kernel queues behind it).
  if (kernel_lanes_.size() < static_cast<std::size_t>(max_concurrent_)) {
    kernel_lanes_.push_back(0.0);
  }
  auto lane = std::min_element(kernel_lanes_.begin(), kernel_lanes_.end());
  const double start = std::max(earliest, *lane);
  const double end = start + duration;
  *lane = end;
  note_completion(end);
  return {start, end};
}

double StreamScheduler::schedule_copy(bool h2d, double earliest,
                                      double duration) {
  util::MutexLock lock(mu_);
  double& engine = h2d ? h2d_engine_free_ : d2h_engine_free_;
  const double start = std::max(earliest, engine);
  const double end = start + duration;
  engine = end;
  note_completion(end);
  return end;
}

Stream::Stream(StreamScheduler& scheduler, Device& device)
    : scheduler_(&scheduler), device_(&device) {
  if (&scheduler.device() != &device)
    throw std::invalid_argument("Stream: scheduler belongs to another device");
}

void Stream::stall_check() {
  if (util::FaultPlan* plan = device_->fault_plan(); plan != nullptr) {
    const util::FaultDecision verdict =
        plan->query(util::FaultSite::stream_stall, device_->id());
    if (verdict.fail) {
      clock_ += verdict.penalty_s;
      throw util::FaultError(verdict.site, device_->id());
    }
  }
}

void Stream::launch_async(Dim3 grid, Dim3 block, const WorkEstimate& work,
                          Kernel kernel) {
  stall_check();
  // Execute now for real results; account virtual time per overlap rules.
  device_->launch(grid, block, work, kernel);
  const double duration = device_->cost_model().kernel_time_s(work);
  clock_ = scheduler_->schedule_kernel(clock_, duration).second;
}

void Stream::copy_to_device_async(DeviceBuffer& dst, const void* src,
                                  std::size_t bytes) {
  stall_check();
  device_->copy_to_device(dst, src, bytes);
  const double duration = device_->cost_model().transfer_time_s(bytes);
  clock_ = scheduler_->schedule_copy(true, clock_, duration);
}

void Stream::copy_to_host_async(void* dst, const DeviceBuffer& src,
                                std::size_t bytes) {
  stall_check();
  device_->copy_to_host(dst, src, bytes);
  const double duration = device_->cost_model().transfer_time_s(bytes);
  clock_ = scheduler_->schedule_copy(false, clock_, duration);
}

void Stream::wait(const Event& event) {
  clock_ = std::max(clock_, event.ready_time);
}

}  // namespace hspec::vgpu
