#include "vgpu/device_properties.h"

namespace hspec::vgpu {

DeviceProperties tesla_c2075() {
  DeviceProperties p;
  p.name = "Tesla C2075 (virtual)";
  p.arch = Architecture::fermi;
  p.sm_count = 14;
  p.cores_per_sm = 32;
  p.core_clock_ghz = 1.15;
  p.dp_peak_gflops = 515.0;
  p.kernel_efficiency = 0.25;
  p.mem_bandwidth_gbps = 144.0;
  p.pcie_bandwidth_gbps = 6.0;
  p.kernel_launch_s = 8e-6;
  p.memcpy_latency_s = 10e-6;
  p.max_concurrent_kernels = 1;
  p.memory_bytes = std::size_t{6} * 1024 * 1024 * 1024;
  return p;
}

DeviceProperties tesla_k20() {
  DeviceProperties p;
  p.name = "Tesla K20 (virtual)";
  p.arch = Architecture::kepler;
  p.sm_count = 13;
  p.cores_per_sm = 192;
  p.core_clock_ghz = 0.706;
  p.dp_peak_gflops = 1170.0;
  p.kernel_efficiency = 0.22;
  p.mem_bandwidth_gbps = 208.0;
  p.pcie_bandwidth_gbps = 6.0;
  p.kernel_launch_s = 6e-6;
  p.memcpy_latency_s = 9e-6;
  p.max_concurrent_kernels = 32;  // Hyper-Q
  p.memory_bytes = std::size_t{5} * 1024 * 1024 * 1024;
  return p;
}

CpuCoreProperties xeon_e5_2640_core() { return {}; }

std::string to_string(Architecture arch) {
  switch (arch) {
    case Architecture::fermi:
      return "fermi";
    case Architecture::kepler:
      return "kepler";
  }
  return "?";
}

}  // namespace hspec::vgpu
