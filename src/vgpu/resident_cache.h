#pragma once
// Per-device resident data cache: device copies of host arrays that never
// change for the lifetime of a run (the spectral grid's bin edges above all).
//
// The synchronous executor re-uploads the identical (n_bins+1)*8-byte edge
// array on every task — pure PCIe waste, since the grid is fixed for the
// whole parameter-space sweep. The cache uploads each distinct host array
// once per device and leases the resident copy to every subsequent task;
// the paper's §V asynchronous-mode remedy only pays off once this per-task
// H2D traffic is gone (otherwise the copy engine, not the kernel lanes,
// sets the pipeline's pace).
//
// Keying: (host pointer, byte count). Callers must lease only arrays whose
// storage is stable and immutable while the cache lives — true for
// EnergyGrid::edges(), whose vector never reallocates after construction.
// Thread-safe: many ranks lease from one device's cache concurrently; the
// first lease of a key uploads under the lock so the copy happens once.

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>

#include "util/thread_annotations.h"
#include "vgpu/device.h"

namespace hspec::vgpu {

class ResidentCache {
 public:
  explicit ResidentCache(Device& device) : device_(&device) {}
  ResidentCache(const ResidentCache&) = delete;
  ResidentCache& operator=(const ResidentCache&) = delete;

  /// Device-resident copy of the host array [data, data + bytes). Uploads
  /// on the first lease of a key (a miss); later leases are hits and cost
  /// nothing. The reference stays valid until clear() — do not call clear()
  /// concurrently with lease().
  const DeviceBuffer& lease(const void* data, std::size_t bytes);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;           ///< uploads actually performed
    std::uint64_t bytes_uploaded = 0;   ///< H2D bytes spent on misses
    std::uint64_t bytes_saved = 0;      ///< H2D bytes hits would have cost
  };
  Stats stats() const;
  std::size_t entries() const;

  /// Drop all resident buffers (frees device memory). Leased references
  /// become dangling; only call between runs.
  void clear();

  Device& device() noexcept { return *device_; }

 private:
  Device* device_;
  mutable util::Mutex mu_;
  std::map<std::pair<const void*, std::size_t>, DeviceBuffer> resident_
      HSPEC_GUARDED_BY(mu_);
  Stats stats_ HSPEC_GUARDED_BY(mu_);
};

}  // namespace hspec::vgpu
