#include "vgpu/buffer_pool.h"

#include <algorithm>
#include <bit>

#include "util/fault.h"

namespace hspec::vgpu {

DeviceBuffer BufferPool::acquire(std::size_t bytes) {
  // Fault hook before the lock: a dying device's allocator fails here even
  // when the request would have been served from the free list.
  if (util::FaultPlan* plan = device_->fault_plan(); plan != nullptr) {
    const util::FaultDecision verdict =
        plan->query(util::FaultSite::buffer_alloc, device_->id());
    if (verdict.fail) throw util::FaultError(verdict.site, device_->id());
  }
  util::MutexLock lock(mu_);
  ++stats_.acquisitions;
  // Smallest adequate free buffer.
  auto best = free_list_.end();
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it)
    if (it->size() >= bytes &&
        (best == free_list_.end() || it->size() < best->size()))
      best = it;
  if (best != free_list_.end()) {
    ++stats_.reuses;
    DeviceBuffer out = std::move(*best);
    free_list_.erase(best);
    return out;
  }
  ++stats_.allocations;
  // Round up so slightly differing task sizes share buckets.
  const std::size_t rounded = std::bit_ceil(std::max<std::size_t>(bytes, 64));
  return device_->alloc(rounded);
}

void BufferPool::release(DeviceBuffer buffer) {
  if (!buffer.valid()) return;
  util::MutexLock lock(mu_);
  free_list_.push_back(std::move(buffer));
}

BufferPool::Stats BufferPool::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

void BufferPool::trim() {
  util::MutexLock lock(mu_);
  free_list_.clear();
}

}  // namespace hspec::vgpu
