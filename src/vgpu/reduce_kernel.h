#pragma once
// Device-side parallel reduction: the on-GPU accumulation that lets a
// coarse-grained ion task report a scalar (total emissivity, convergence
// check) without shipping the whole emi array home. Two-pass tree shape:
// block-level partial sums into a scratch buffer, then a single-block
// final pass — the canonical CUDA reduction structure.

#include <cstddef>

#include "vgpu/device.h"

namespace hspec::vgpu {

/// Sum the first `count` doubles of `data_dev` on the device; the scalar
/// result crosses PCIe (8 bytes) instead of the whole array.
double gpu_reduce_sum(Device& device, const DeviceBuffer& data_dev,
                      std::size_t count, unsigned block_dim = 128);

}  // namespace hspec::vgpu
