#pragma once
// GPU-Integr (Algorithm 2 of the paper): integrate N equal bins of [L, U]
// with a fixed-cost rule, one grid-stride device thread per run of
// consecutive bins, results left in a device-resident emi array.
//
//   Algorithm 2 GPU-Integr ( L, U, N, f_rrc, device )
//     bin_num  <- N / thread_num
//     bin_size <- (U - L) / N
//     idx      <- threadIdx.x + blockIdx.x * blockDim.x
//     each thread integrates bins [idx*bin_num, (idx+1)*bin_num) by Simpson
//
// `accumulate=true` adds into the existing device array instead of storing —
// that is how all energy levels of one ion accumulate on the GPU so that a
// single D2H transfer finishes the coarse-grained task.
//
// Every entry point comes in two forms:
//
//  * scalar (quad::Integrand)     — the reference oracle: one indirect call
//    per abscissa, the arithmetic pinned by the shared rule templates;
//  * batched (quad::BatchIntegrand + ScratchArena) — each virtual thread
//    records the abscissae of its bins, evaluates them in one vectorizable
//    pass, and replays the rule over the results (quad/batch.h). Bitwise
//    identical to the scalar form whenever the batch integrand matches the
//    scalar integrand pointwise, and ~3x faster on the host because the
//    transcendentals amortize across SIMD lanes.
//
// The batched forms take a ScratchArena for their transient abscissa/value
// arrays; steady-state launches allocate nothing once the arena is warm
// (reset it per task, not per launch — see vgpu/arena.h lifetime rules).

#include <cstddef>
#include <limits>
#include <span>

#include "quad/batch.h"
#include "quad/integrate.h"
#include "vgpu/arena.h"
#include "vgpu/device.h"

namespace hspec::vgpu {

class Stream;

/// Vector lanes the batched kernels report to the cost model: 4 doubles per
/// AVX2 register — the paper-facing analogue of SIMT warp efficiency. Used
/// for virtual-time accounting only; correctness never depends on it.
inline constexpr double kBatchLanes = 4.0;

struct IntegrLaunchConfig {
  unsigned block_dim = 128;       ///< threads per block
  unsigned max_grid_dim = 64;     ///< cap on blocks (C2075: 14 SMs)
  quad::KernelMethod method = quad::KernelMethod::simpson;
  std::size_t method_param = quad::kPaperSimpsonPanels;
  bool accumulate = false;        ///< += into emi instead of =
  /// Algorithm 2's lower integration limit L: bins entirely below it
  /// contribute zero and bins straddling it are clamped — the RRC threshold
  /// of the level being integrated. Default: no cutoff.
  double lower_cutoff = -std::numeric_limits<double>::infinity();
};

/// Work estimate for integrating `bins` bins under the config (used for the
/// device virtual clock and by the DES cost model). `lanes` is the vector
/// width the integrand evaluations retire at: 1.0 for the scalar path,
/// kBatchLanes for the batched kernels.
WorkEstimate integr_work(std::size_t bins, const IntegrLaunchConfig& cfg,
                         double lanes = 1.0);

/// Launch Algorithm 2 on `device`: integrate N uniform bins of [L, U] into
/// the device buffer `emi_dev` (N doubles, already allocated).
void gpu_integr_device(Device& device, double lo, double hi, std::size_t n_bins,
                       quad::Integrand f, DeviceBuffer& emi_dev,
                       const IntegrLaunchConfig& cfg = {});

/// Batched form of gpu_integr_device.
void gpu_integr_device(Device& device, double lo, double hi, std::size_t n_bins,
                       quad::BatchIntegrand f, DeviceBuffer& emi_dev,
                       ScratchArena& arena, const IntegrLaunchConfig& cfg = {});

/// Non-uniform-bin variant: bin i spans [edges[i], edges[i+1]]; `edges_dev`
/// holds n_bins+1 doubles on the device (the spectral grids of APEC are
/// wavelength-uniform, hence energy-non-uniform).
void gpu_integr_edges_device(Device& device, const DeviceBuffer& edges_dev,
                             std::size_t n_bins, quad::Integrand f,
                             DeviceBuffer& emi_dev,
                             const IntegrLaunchConfig& cfg = {});

/// Batched form of gpu_integr_edges_device.
void gpu_integr_edges_device(Device& device, const DeviceBuffer& edges_dev,
                             std::size_t n_bins, quad::BatchIntegrand f,
                             DeviceBuffer& emi_dev, ScratchArena& arena,
                             const IntegrLaunchConfig& cfg = {});

/// Stream (asynchronous) variant of gpu_integr_edges_device: the launch is
/// queued on `stream`, so consecutive tasks' kernels and transfers overlap
/// per the device's concurrency rules instead of serializing with the rest
/// of the device. Results are identical to the blocking variant.
void gpu_integr_edges_stream(Stream& stream, const DeviceBuffer& edges_dev,
                             std::size_t n_bins, quad::Integrand f,
                             DeviceBuffer& emi_dev,
                             const IntegrLaunchConfig& cfg = {});

/// Batched form of gpu_integr_edges_stream. The arena is only used during
/// the (eager, host-executed) launch; it may be reset once the call returns.
void gpu_integr_edges_stream(Stream& stream, const DeviceBuffer& edges_dev,
                             std::size_t n_bins, quad::BatchIntegrand f,
                             DeviceBuffer& emi_dev, ScratchArena& arena,
                             const IntegrLaunchConfig& cfg = {});

/// Host-side replay of the edges kernel: identical per-bin cutoff clamping,
/// method, and accumulate semantics (the same shared bin rule the device
/// variants run), so results are bitwise equal to the kernels — the bins
/// are independent, making the math order-free. No device is touched and
/// no virtual time is charged: this is the graceful-degradation path a task
/// takes when its devices are quarantined or its retry budget is spent.
/// `edges` holds n_bins + 1 doubles; `emi` at least n_bins.
void integr_edges_host(std::span<const double> edges, std::size_t n_bins,
                       quad::Integrand f, std::span<double> emi,
                       const IntegrLaunchConfig& cfg = {});

/// Batched form of integr_edges_host — the degraded path of a batched
/// executor, kept bitwise equal to the batched kernels (which are in turn
/// bitwise equal to the scalar oracle).
void integr_edges_host(std::span<const double> edges, std::size_t n_bins,
                       quad::BatchIntegrand f, std::span<double> emi,
                       ScratchArena& arena, const IntegrLaunchConfig& cfg = {});

/// Host-convenience wrapper of Algorithm 2: leases device memory from the
/// device's default BufferPool, runs the kernel, copies emi back to `out`
/// (out.size() = number of bins).
void gpu_integr(Device& device, double lo, double hi, quad::Integrand f,
                std::span<double> out, const IntegrLaunchConfig& cfg = {});

/// Batched form of gpu_integr.
void gpu_integr(Device& device, double lo, double hi, quad::BatchIntegrand f,
                std::span<double> out, ScratchArena& arena,
                const IntegrLaunchConfig& cfg = {});

}  // namespace hspec::vgpu
