#pragma once
// Asynchronous streams and events on the virtual GPU.
//
// The paper's stated limitation (§V): "Only synchronous mode is supported
// in the task scheduler ... when the single task is time-consuming to GPU,
// some asynchronous task queuing mechanism must be introduced to keep CPUs
// busy." Streams are that mechanism. Data operations still execute eagerly
// on the host (results are real), while completion *times* follow the CUDA
// overlap rules on the virtual clock:
//
//  * kernels from different streams serialize on Fermi
//    (max_concurrent_kernels == 1, "application-level context switching"),
//    but may overlap up to 32-wide on Kepler (Hyper-Q). Overlapping kernels
//    run at full rate — the optimistic Hyper-Q model, appropriate for the
//    small kernels this workload launches (each far below full occupancy);
//  * H2D and D2H copies use one copy engine per direction (C2075 has two),
//    each serializing its own direction across streams;
//  * operations within one stream are FIFO;
//  * Event::record marks a stream position; Stream::wait makes a stream
//    wait for an event (cross-stream dependency).

#include <cstddef>
#include <vector>

#include "util/thread_annotations.h"
#include "vgpu/device.h"

namespace hspec::vgpu {

class StreamScheduler;

/// Timestamp on the device's virtual clock [s].
struct Event {
  double ready_time = 0.0;
};

class Stream {
 public:
  /// Streams attach to a device-wide StreamScheduler.
  Stream(StreamScheduler& scheduler, Device& device);

  /// Asynchronous kernel launch: executes now (host), completes at a
  /// virtual time that respects stream order and device concurrency.
  void launch_async(Dim3 grid, Dim3 block, const WorkEstimate& work,
                    Kernel kernel);

  void copy_to_device_async(DeviceBuffer& dst, const void* src,
                            std::size_t bytes);
  void copy_to_host_async(void* dst, const DeviceBuffer& src,
                          std::size_t bytes);

  /// Record the stream's current completion time.
  Event record() const { return {clock_}; }
  /// Do not start later work before `event` is ready.
  void wait(const Event& event);

  /// Block until all queued work completes; returns the virtual time.
  double synchronize() const { return clock_; }

 private:
  /// Fault hook shared by the async ops: asks the device's FaultPlan for a
  /// stream_stall verdict; a stall charges its penalty to this stream's
  /// clock (the wedged time is real even though no work completes), then
  /// throws util::FaultError.
  void stall_check();

  StreamScheduler* scheduler_;
  Device* device_;
  double clock_ = 0.0;  ///< completion time of the last queued op
};

/// Per-device overlap bookkeeping shared by its streams. Thread-safe: the
/// hybrid driver gives every rank its own streams, and all of a device's
/// streams funnel into the one scheduler; each Stream stays single-owner.
class StreamScheduler {
 public:
  explicit StreamScheduler(Device& device);

  /// Virtual time at which all streams' work has drained.
  double device_sync_time() const noexcept {
    util::MutexLock lock(mu_);
    return device_clock_;
  }

  const Device& device() const noexcept { return *device_; }

 private:
  friend class Stream;

  /// Reserve a kernel slot starting no earlier than `earliest`; returns the
  /// interval [start, end) the kernel occupies.
  std::pair<double, double> schedule_kernel(double earliest, double duration)
      HSPEC_EXCLUDES(mu_);
  double schedule_copy(bool h2d, double earliest, double duration)
      HSPEC_EXCLUDES(mu_);
  void note_completion(double t) HSPEC_REQUIRES(mu_) {
    if (t > device_clock_) device_clock_ = t;
  }

  Device* device_;
  int max_concurrent_;
  mutable util::Mutex mu_;  // guards the lanes, engines, and device clock
  /// End times of in-flight kernels (size <= max_concurrent_).
  std::vector<double> kernel_lanes_ HSPEC_GUARDED_BY(mu_);
  double h2d_engine_free_ HSPEC_GUARDED_BY(mu_) = 0.0;
  double d2h_engine_free_ HSPEC_GUARDED_BY(mu_) = 0.0;
  double device_clock_ HSPEC_GUARDED_BY(mu_) = 0.0;
};

}  // namespace hspec::vgpu
