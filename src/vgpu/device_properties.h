#pragma once
// Virtual GPU device descriptions.
//
// SUBSTITUTION NOTE (DESIGN.md §2): no CUDA hardware exists in this
// environment, so the "GPU" is a device model: kernels execute on the host
// (bit-for-bit checkable results) while a calibrated cost model charges a
// per-device virtual clock with the same cost structure the paper measures —
// kernel-launch latency, PCIe transfer time, and compute time.
//
// The paper's testbed: NVIDIA Tesla C2075 (Fermi), 448 CUDA cores @ 1.15 GHz,
// 6 GB GDDR5, 515 DP GFLOPS, PCIe 2.0. "Application-level context switching
// is necessary on Fermi ... the queued tasks are performed serially", while
// "the Hyper-Q technique can allow for up to 32 simultaneous connections"
// on Kepler — captured by `max_concurrent_kernels`.

#include <cstddef>
#include <cstdint>
#include <string>

namespace hspec::vgpu {

enum class Architecture { fermi, kepler };

struct DeviceProperties {
  std::string name;
  Architecture arch = Architecture::fermi;
  int sm_count = 14;
  int cores_per_sm = 32;
  double core_clock_ghz = 1.15;
  double dp_peak_gflops = 515.0;
  /// Fraction of DP peak a memory-light integration kernel sustains.
  double kernel_efficiency = 0.25;
  double mem_bandwidth_gbps = 144.0;
  /// Effective host<->device bandwidth (PCIe 2.0 x16 ~ 6 GB/s in practice).
  double pcie_bandwidth_gbps = 6.0;
  /// Fixed cost per kernel launch [s] (Fermi-era driver ~ 7-10 us).
  double kernel_launch_s = 8e-6;
  /// Fixed latency per cudaMemcpy call [s].
  double memcpy_latency_s = 10e-6;
  /// 1 on Fermi (serial task execution), up to 32 with Kepler Hyper-Q.
  int max_concurrent_kernels = 1;
  std::size_t memory_bytes = std::size_t{6} * 1024 * 1024 * 1024;

  int total_cores() const noexcept { return sm_count * cores_per_sm; }
};

/// The paper's device: Tesla C2075 (Fermi).
DeviceProperties tesla_c2075();

/// A Kepler-class device with Hyper-Q (for the paper's "some Kepler GPUs,
/// the count of active task may be more than one" discussion).
DeviceProperties tesla_k20();

/// Reference single CPU core of the paper's host (Xeon E5-2640, 2.5 GHz):
/// used to express CPU-vs-GPU cost ratios in one unit system.
struct CpuCoreProperties {
  std::string name = "Xeon E5-2640 core";
  double clock_ghz = 2.5;
  /// Sustained scalar DP GFLOPS for branchy adaptive quadrature.
  double sustained_gflops = 1.8;
};
CpuCoreProperties xeon_e5_2640_core();

std::string to_string(Architecture arch);

}  // namespace hspec::vgpu
