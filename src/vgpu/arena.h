#pragma once
// Bump-allocated scratch for the batched integration kernels.
//
// The batch path needs two transient arrays per launch (abscissae and
// integrand values). Allocating them per call would put a heap round trip on
// the hot path of every kernel — exactly the pattern BufferPool removes for
// device buffers. ScratchArena is the host-side analogue: a bump allocator
// over a list of blocks, where
//
//  * alloc() is pointer arithmetic in the steady state (no heap);
//  * exhaustion grows the arena by appending a block — previously returned
//    spans stay valid, because existing blocks never move;
//  * reset() rewinds the cursor and keeps all capacity, so a pipelined
//    executor that resets once per task allocates nothing after warm-up.
//
// Lifetime rule: a span returned by alloc() is valid until the next reset()
// (or destruction), NOT merely until the next alloc(). Ownership rule: an
// arena has a single owner — one rank's executor lane, one bench thread —
// and is not thread-safe; concurrent ranks each own one (the per-stream
// arenas in core::AsyncGpuExecutor). Virtual-device note: this is host
// scratch for kernel emulation; it charges nothing to the device budget.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hspec::vgpu {

class ScratchArena {
 public:
  /// `initial_doubles` sizes the first block, allocated lazily on first use.
  explicit ScratchArena(std::size_t initial_doubles = kDefaultBlockDoubles);

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Bump-allocate `n` doubles (uninitialized). Valid until reset().
  std::span<double> alloc(std::size_t n);

  /// Rewind: all outstanding spans are invalidated, all capacity is kept.
  void reset() noexcept;

  struct Stats {
    std::size_t blocks = 0;          ///< blocks currently held
    std::size_t capacity_doubles = 0;///< total capacity across blocks
    std::size_t used_doubles = 0;    ///< doubles handed out since reset
    std::uint64_t allocations = 0;   ///< alloc() calls over the lifetime
    std::uint64_t growths = 0;       ///< allocs that had to add a block
    std::uint64_t resets = 0;        ///< reset() calls
  };
  Stats stats() const noexcept;

 private:
  static constexpr std::size_t kDefaultBlockDoubles = 4096;

  std::vector<std::vector<double>> blocks_;
  std::size_t block_ = 0;   ///< block the cursor is in
  std::size_t offset_ = 0;  ///< next free double within blocks_[block_]
  std::size_t initial_doubles_;
  Stats stats_;
};

}  // namespace hspec::vgpu
