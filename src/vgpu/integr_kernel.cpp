#include "vgpu/integr_kernel.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "vgpu/buffer_pool.h"
#include "vgpu/stream.h"

namespace hspec::vgpu {

namespace {

/// Grid sizing: enough threads that each handles a short run of bins.
Dim3 pick_grid(std::size_t n_bins, const IntegrLaunchConfig& cfg) {
  const std::size_t want_threads = (n_bins + 3) / 4;  // ~4 bins per thread
  const std::size_t blocks =
      std::clamp<std::size_t>((want_threads + cfg.block_dim - 1) / cfg.block_dim,
                              1, cfg.max_grid_dim);
  return {static_cast<unsigned>(blocks), 1, 1};
}

}  // namespace

WorkEstimate integr_work(std::size_t bins, const IntegrLaunchConfig& cfg,
                         double lanes) {
  const double evals = static_cast<double>(bins) *
                       static_cast<double>(quad::kernel_cost_evals(
                           cfg.method, cfg.method_param));
  WorkEstimate w;
  w.flops = evals * kFlopsPerIntegrandEval;
  w.device_bytes = bins * sizeof(double) * 2;  // emi read+write
  w.lanes = lanes;
  return w;
}

namespace {

/// One bin of the kernel. Shared verbatim by every scalar variant — the
/// uniform-bin kernel, the edges kernel, and the host degradation path — so
/// they are bitwise identical by construction, not by happenstance. The
/// batched variants replay the identical rule arithmetic over precomputed
/// integrand values (quad/batch.h) and are pinned to this oracle by the
/// tier-1 identity tests.
double integr_edge_bin(const double* edges, std::size_t b, quad::Integrand f,
                       const IntegrLaunchConfig& cfg) {
  if (edges[b + 1] <= cfg.lower_cutoff) return 0.0;
  const double left = std::max(edges[b], cfg.lower_cutoff);
  return quad::kernel_integrate(cfg.method, cfg.method_param, f, left,
                                edges[b + 1])
      .value;
}

/// Batched processing of one virtual thread's bins {begin, begin+stride, ...}
/// below `end`: record every live bin's abscissae contiguously, evaluate
/// them in one pass, then replay the rule per bin. Each value depends only
/// on its own abscissa, so the result is independent of how bins are grouped
/// into batches — the host path (one chunk) and the device path (one batch
/// per virtual thread) agree bitwise.
void integr_edge_bins_batch(const double* edges, std::size_t begin,
                            std::size_t end, std::size_t stride,
                            quad::BatchIntegrand f, double* emi,
                            const IntegrLaunchConfig& cfg,
                            std::span<double> xs, std::span<double> ys,
                            std::size_t evals_per_bin) {
  // Phase A: record. Bins entirely below the cutoff are skipped (they
  // contribute exactly 0.0, as in integr_edge_bin); straddling bins clamp.
  std::size_t nx = 0;
  for (std::size_t b = begin; b < end; b += stride) {
    if (edges[b + 1] <= cfg.lower_cutoff) continue;
    const double left = std::max(edges[b], cfg.lower_cutoff);
    quad::kernel_abscissae(cfg.method, cfg.method_param, left, edges[b + 1],
                           xs.subspan(nx, evals_per_bin));
    nx += evals_per_bin;
  }
  // Phase B: one batched integrand evaluation for all live bins.
  f(std::span<const double>(xs.data(), nx), ys.first(nx));
  // Phase C: replay the rule over the precomputed values, bin by bin.
  std::size_t k = 0;
  for (std::size_t b = begin; b < end; b += stride) {
    double v = 0.0;
    if (edges[b + 1] > cfg.lower_cutoff) {
      const double left = std::max(edges[b], cfg.lower_cutoff);
      v = quad::kernel_combine(cfg.method, cfg.method_param, left,
                               edges[b + 1], ys.subspan(k, evals_per_bin))
              .value;
      k += evals_per_bin;
    }
    if (cfg.accumulate)
      emi[b] += v;
    else
      emi[b] = v;
  }
}

/// Shared scalar kernel body over an explicit edges array — the single code
/// path behind the uniform-bin kernel, the edges kernel (blocking and
/// stream), after the uniform form's bin edges are hoisted out of the
/// grid-stride loop into the same edges form.
template <class LaunchFn>
void integr_bins_launch(LaunchFn&& launch, const double* edges,
                        std::size_t n_bins, quad::Integrand f, double* emi,
                        const IntegrLaunchConfig& cfg) {
  const Dim3 grid = pick_grid(n_bins, cfg);
  const Dim3 block{cfg.block_dim, 1, 1};
  launch(grid, block, integr_work(n_bins, cfg), [&](const KernelCtx& c) {
    for (std::size_t b = c.global_x(); b < n_bins; b += c.stride_x()) {
      const double v = integr_edge_bin(edges, b, f, cfg);
      if (cfg.accumulate)
        emi[b] += v;
      else
        emi[b] = v;
    }
  });
}

/// Batched counterpart of integr_bins_launch. Scratch for the abscissa and
/// value arrays is bump-allocated once per launch and shared by the virtual
/// threads (they execute sequentially under the device mutex); in the
/// pipelined steady state the arena serves it without touching the heap.
template <class LaunchFn>
void integr_bins_launch_batch(LaunchFn&& launch, const double* edges,
                              std::size_t n_bins, quad::BatchIntegrand f,
                              double* emi, ScratchArena& arena,
                              const IntegrLaunchConfig& cfg) {
  const std::size_t evals =
      quad::kernel_cost_evals(cfg.method, cfg.method_param);
  const Dim3 grid = pick_grid(n_bins, cfg);
  const Dim3 block{cfg.block_dim, 1, 1};
  const std::size_t threads =
      static_cast<std::size_t>(grid.x) * cfg.block_dim;
  const std::size_t max_run = (n_bins + threads - 1) / threads;
  std::span<double> xs = arena.alloc(max_run * evals);
  std::span<double> ys = arena.alloc(max_run * evals);
  launch(grid, block, integr_work(n_bins, cfg, kBatchLanes),
         [&](const KernelCtx& c) {
           integr_edge_bins_batch(edges, c.global_x(), n_bins, c.stride_x(), f,
                                  emi, cfg, xs, ys, evals);
         });
}

void check_uniform_args(double lo, double hi, std::size_t n_bins,
                        const DeviceBuffer& emi_dev) {
  if (n_bins == 0) throw std::invalid_argument("gpu_integr: no bins");
  if (!(hi > lo)) throw std::invalid_argument("gpu_integr: need hi > lo");
  if (emi_dev.size() < n_bins * sizeof(double))
    throw std::out_of_range("gpu_integr: emi buffer too small");
}

void check_edges_args(const DeviceBuffer& edges_dev, std::size_t n_bins,
                      const DeviceBuffer& emi_dev) {
  if (n_bins == 0) throw std::invalid_argument("gpu_integr_edges: no bins");
  if (edges_dev.size() < (n_bins + 1) * sizeof(double))
    throw std::out_of_range("gpu_integr_edges: edges buffer too small");
  if (emi_dev.size() < n_bins * sizeof(double))
    throw std::out_of_range("gpu_integr_edges: emi buffer too small");
}

/// Hoisted bin edges of the uniform form: e[b] = lo + b * bin_size exactly
/// as the old per-bin recomputation produced them (the last edge is pinned
/// to `hi`, matching the `(b + 1 == n_bins) ? hi : ...` special case).
void fill_uniform_edges(double lo, double hi, std::size_t n_bins,
                        std::span<double> edges) {
  const double bin_size = (hi - lo) / static_cast<double>(n_bins);
  for (std::size_t i = 0; i < n_bins; ++i)
    edges[i] = lo + static_cast<double>(i) * bin_size;
  edges[n_bins] = hi;
}

auto device_launcher(Device& device) {
  return [&device](Dim3 grid, Dim3 block, const WorkEstimate& work,
                   Kernel kernel) { device.launch(grid, block, work, kernel); };
}

auto stream_launcher(Stream& stream) {
  return [&stream](Dim3 grid, Dim3 block, const WorkEstimate& work,
                   Kernel kernel) {
    stream.launch_async(grid, block, work, kernel);
  };
}

}  // namespace

void gpu_integr_device(Device& device, double lo, double hi, std::size_t n_bins,
                       quad::Integrand f, DeviceBuffer& emi_dev,
                       const IntegrLaunchConfig& cfg) {
  check_uniform_args(lo, hi, n_bins, emi_dev);
  std::vector<double> edges(n_bins + 1);
  fill_uniform_edges(lo, hi, n_bins, edges);
  integr_bins_launch(device_launcher(device), edges.data(), n_bins, f,
                     emi_dev.as<double>(), cfg);
}

void gpu_integr_device(Device& device, double lo, double hi, std::size_t n_bins,
                       quad::BatchIntegrand f, DeviceBuffer& emi_dev,
                       ScratchArena& arena, const IntegrLaunchConfig& cfg) {
  check_uniform_args(lo, hi, n_bins, emi_dev);
  std::span<double> edges = arena.alloc(n_bins + 1);
  fill_uniform_edges(lo, hi, n_bins, edges);
  integr_bins_launch_batch(device_launcher(device), edges.data(), n_bins, f,
                           emi_dev.as<double>(), arena, cfg);
}

void gpu_integr_edges_device(Device& device, const DeviceBuffer& edges_dev,
                             std::size_t n_bins, quad::Integrand f,
                             DeviceBuffer& emi_dev,
                             const IntegrLaunchConfig& cfg) {
  check_edges_args(edges_dev, n_bins, emi_dev);
  integr_bins_launch(device_launcher(device), edges_dev.as<const double>(),
                     n_bins, f, emi_dev.as<double>(), cfg);
}

void gpu_integr_edges_device(Device& device, const DeviceBuffer& edges_dev,
                             std::size_t n_bins, quad::BatchIntegrand f,
                             DeviceBuffer& emi_dev, ScratchArena& arena,
                             const IntegrLaunchConfig& cfg) {
  check_edges_args(edges_dev, n_bins, emi_dev);
  integr_bins_launch_batch(device_launcher(device),
                           edges_dev.as<const double>(), n_bins, f,
                           emi_dev.as<double>(), arena, cfg);
}

void gpu_integr_edges_stream(Stream& stream, const DeviceBuffer& edges_dev,
                             std::size_t n_bins, quad::Integrand f,
                             DeviceBuffer& emi_dev,
                             const IntegrLaunchConfig& cfg) {
  check_edges_args(edges_dev, n_bins, emi_dev);
  integr_bins_launch(stream_launcher(stream), edges_dev.as<const double>(),
                     n_bins, f, emi_dev.as<double>(), cfg);
}

void gpu_integr_edges_stream(Stream& stream, const DeviceBuffer& edges_dev,
                             std::size_t n_bins, quad::BatchIntegrand f,
                             DeviceBuffer& emi_dev, ScratchArena& arena,
                             const IntegrLaunchConfig& cfg) {
  check_edges_args(edges_dev, n_bins, emi_dev);
  integr_bins_launch_batch(stream_launcher(stream),
                           edges_dev.as<const double>(), n_bins, f,
                           emi_dev.as<double>(), arena, cfg);
}

void integr_edges_host(std::span<const double> edges, std::size_t n_bins,
                       quad::Integrand f, std::span<double> emi,
                       const IntegrLaunchConfig& cfg) {
  if (n_bins == 0) throw std::invalid_argument("integr_edges_host: no bins");
  if (edges.size() < n_bins + 1)
    throw std::out_of_range("integr_edges_host: edges span too small");
  if (emi.size() < n_bins)
    throw std::out_of_range("integr_edges_host: emi span too small");
  for (std::size_t b = 0; b < n_bins; ++b) {
    const double v = integr_edge_bin(edges.data(), b, f, cfg);
    if (cfg.accumulate)
      emi[b] += v;
    else
      emi[b] = v;
  }
}

void integr_edges_host(std::span<const double> edges, std::size_t n_bins,
                       quad::BatchIntegrand f, std::span<double> emi,
                       ScratchArena& arena, const IntegrLaunchConfig& cfg) {
  if (n_bins == 0) throw std::invalid_argument("integr_edges_host: no bins");
  if (edges.size() < n_bins + 1)
    throw std::out_of_range("integr_edges_host: edges span too small");
  if (emi.size() < n_bins)
    throw std::out_of_range("integr_edges_host: emi span too small");
  // Chunked so the abscissa/value scratch stays cache-resident instead of
  // scaling with the bin count. Chunking cannot change the bits (each value
  // depends only on its own abscissa).
  constexpr std::size_t kChunkBins = 256;
  const std::size_t evals =
      quad::kernel_cost_evals(cfg.method, cfg.method_param);
  const std::size_t chunk = std::min(kChunkBins, n_bins);
  std::span<double> xs = arena.alloc(chunk * evals);
  std::span<double> ys = arena.alloc(chunk * evals);
  for (std::size_t b0 = 0; b0 < n_bins; b0 += chunk) {
    const std::size_t end = std::min(b0 + chunk, n_bins);
    integr_edge_bins_batch(edges.data(), b0, end, 1, f, emi.data(), cfg, xs,
                           ys, evals);
  }
}

void gpu_integr(Device& device, double lo, double hi, quad::Integrand f,
                std::span<double> out, const IntegrLaunchConfig& cfg) {
  // Leased from the device's own pool: repeated host-convenience calls reuse
  // one buffer instead of paying a cudaMalloc/cudaFree per call.
  PooledBuffer emi(device.default_pool(), out.size() * sizeof(double));
  gpu_integr_device(device, lo, hi, out.size(), f, emi.get(), cfg);
  device.copy_to_host(out.data(), emi.get(), out.size() * sizeof(double));
}

void gpu_integr(Device& device, double lo, double hi, quad::BatchIntegrand f,
                std::span<double> out, ScratchArena& arena,
                const IntegrLaunchConfig& cfg) {
  PooledBuffer emi(device.default_pool(), out.size() * sizeof(double));
  gpu_integr_device(device, lo, hi, out.size(), f, emi.get(), arena, cfg);
  device.copy_to_host(out.data(), emi.get(), out.size() * sizeof(double));
}

}  // namespace hspec::vgpu
