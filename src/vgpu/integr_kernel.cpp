#include "vgpu/integr_kernel.h"

#include <algorithm>
#include <stdexcept>

#include "vgpu/stream.h"

namespace hspec::vgpu {

namespace {

/// Grid sizing: enough threads that each handles a short run of bins.
Dim3 pick_grid(std::size_t n_bins, const IntegrLaunchConfig& cfg) {
  const std::size_t want_threads = (n_bins + 3) / 4;  // ~4 bins per thread
  const std::size_t blocks =
      std::clamp<std::size_t>((want_threads + cfg.block_dim - 1) / cfg.block_dim,
                              1, cfg.max_grid_dim);
  return {static_cast<unsigned>(blocks), 1, 1};
}

}  // namespace

WorkEstimate integr_work(std::size_t bins, const IntegrLaunchConfig& cfg) {
  const double evals = static_cast<double>(bins) *
                       static_cast<double>(quad::kernel_cost_evals(
                           cfg.method, cfg.method_param));
  WorkEstimate w;
  w.flops = evals * kFlopsPerIntegrandEval;
  w.device_bytes = bins * sizeof(double) * 2;  // emi read+write
  return w;
}

void gpu_integr_device(Device& device, double lo, double hi, std::size_t n_bins,
                       quad::Integrand f, DeviceBuffer& emi_dev,
                       const IntegrLaunchConfig& cfg) {
  if (n_bins == 0) throw std::invalid_argument("gpu_integr: no bins");
  if (!(hi > lo)) throw std::invalid_argument("gpu_integr: need hi > lo");
  if (emi_dev.size() < n_bins * sizeof(double))
    throw std::out_of_range("gpu_integr: emi buffer too small");

  double* emi = emi_dev.as<double>();
  const double bin_size = (hi - lo) / static_cast<double>(n_bins);
  const Dim3 grid = pick_grid(n_bins, cfg);
  const Dim3 block{cfg.block_dim, 1, 1};

  device.launch(grid, block, integr_work(n_bins, cfg), [&](const KernelCtx& c) {
    // Grid-stride loop: thread idx handles bins idx, idx+stride, ...
    for (std::size_t b = c.global_x(); b < n_bins; b += c.stride_x()) {
      double left = lo + static_cast<double>(b) * bin_size;
      const double right = (b + 1 == n_bins)
                               ? hi
                               : lo + static_cast<double>(b + 1) * bin_size;
      double v = 0.0;
      if (right > cfg.lower_cutoff) {
        left = std::max(left, cfg.lower_cutoff);
        v = quad::kernel_integrate(cfg.method, cfg.method_param, f, left,
                                   right)
                .value;
      }
      if (cfg.accumulate)
        emi[b] += v;
      else
        emi[b] = v;
    }
  });
}

namespace {

/// One bin of the edges kernel. Shared verbatim by the device kernel and
/// the host degradation path (integr_edges_host) so the two are bitwise
/// identical by construction, not by happenstance.
double integr_edge_bin(const double* edges, std::size_t b, quad::Integrand f,
                       const IntegrLaunchConfig& cfg) {
  if (edges[b + 1] <= cfg.lower_cutoff) return 0.0;
  const double left = std::max(edges[b], cfg.lower_cutoff);
  return quad::kernel_integrate(cfg.method, cfg.method_param, f, left,
                                edges[b + 1])
      .value;
}

/// Shared body of the blocking and stream variants: validates the buffers
/// and hands the kernel to `launch` (Device::launch or Stream::launch_async).
template <class LaunchFn>
void integr_edges_launch(LaunchFn&& launch, const DeviceBuffer& edges_dev,
                         std::size_t n_bins, quad::Integrand f,
                         DeviceBuffer& emi_dev, const IntegrLaunchConfig& cfg) {
  if (n_bins == 0) throw std::invalid_argument("gpu_integr_edges: no bins");
  if (edges_dev.size() < (n_bins + 1) * sizeof(double))
    throw std::out_of_range("gpu_integr_edges: edges buffer too small");
  if (emi_dev.size() < n_bins * sizeof(double))
    throw std::out_of_range("gpu_integr_edges: emi buffer too small");

  const double* edges = edges_dev.as<const double>();
  double* emi = emi_dev.as<double>();
  const Dim3 grid = pick_grid(n_bins, cfg);
  const Dim3 block{cfg.block_dim, 1, 1};

  launch(grid, block, integr_work(n_bins, cfg), [&](const KernelCtx& c) {
    for (std::size_t b = c.global_x(); b < n_bins; b += c.stride_x()) {
      const double v = integr_edge_bin(edges, b, f, cfg);
      if (cfg.accumulate)
        emi[b] += v;
      else
        emi[b] = v;
    }
  });
}

}  // namespace

void gpu_integr_edges_device(Device& device, const DeviceBuffer& edges_dev,
                             std::size_t n_bins, quad::Integrand f,
                             DeviceBuffer& emi_dev,
                             const IntegrLaunchConfig& cfg) {
  integr_edges_launch(
      [&](Dim3 grid, Dim3 block, const WorkEstimate& work, Kernel kernel) {
        device.launch(grid, block, work, kernel);
      },
      edges_dev, n_bins, f, emi_dev, cfg);
}

void gpu_integr_edges_stream(Stream& stream, const DeviceBuffer& edges_dev,
                             std::size_t n_bins, quad::Integrand f,
                             DeviceBuffer& emi_dev,
                             const IntegrLaunchConfig& cfg) {
  integr_edges_launch(
      [&](Dim3 grid, Dim3 block, const WorkEstimate& work, Kernel kernel) {
        stream.launch_async(grid, block, work, kernel);
      },
      edges_dev, n_bins, f, emi_dev, cfg);
}

void integr_edges_host(std::span<const double> edges, std::size_t n_bins,
                       quad::Integrand f, std::span<double> emi,
                       const IntegrLaunchConfig& cfg) {
  if (n_bins == 0) throw std::invalid_argument("integr_edges_host: no bins");
  if (edges.size() < n_bins + 1)
    throw std::out_of_range("integr_edges_host: edges span too small");
  if (emi.size() < n_bins)
    throw std::out_of_range("integr_edges_host: emi span too small");
  for (std::size_t b = 0; b < n_bins; ++b) {
    const double v = integr_edge_bin(edges.data(), b, f, cfg);
    if (cfg.accumulate)
      emi[b] += v;
    else
      emi[b] = v;
  }
}

void gpu_integr(Device& device, double lo, double hi, quad::Integrand f,
                std::span<double> out, const IntegrLaunchConfig& cfg) {
  DeviceBuffer emi = device.alloc(out.size() * sizeof(double));
  gpu_integr_device(device, lo, hi, out.size(), f, emi, cfg);
  device.copy_to_host(out.data(), emi, out.size() * sizeof(double));
}

}  // namespace hspec::vgpu
