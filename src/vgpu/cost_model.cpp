#include "vgpu/cost_model.h"

#include <algorithm>

namespace hspec::vgpu {

double GpuCostModel::kernel_time_s(const WorkEstimate& work) const noexcept {
  const double flops_s = props_.dp_peak_gflops * 1e9 * props_.kernel_efficiency;
  // Lane-aware compute bound: batched kernels retire `lanes` flops per
  // scalar-equivalent cycle (lanes == 1 for the scalar path).
  const double compute = work.flops / (flops_s * work.lanes);
  const double memory =
      static_cast<double>(work.device_bytes) / (props_.mem_bandwidth_gbps * 1e9);
  return std::max(compute, memory) + props_.kernel_launch_s;
}

double GpuCostModel::transfer_time_s(std::size_t bytes) const noexcept {
  return props_.memcpy_latency_s +
         static_cast<double>(bytes) / (props_.pcie_bandwidth_gbps * 1e9);
}

double estimated_task_gpu_s(const GpuCostModel& gpu, std::size_t levels,
                            std::size_t bins,
                            const TaskCostParams& params) noexcept {
  WorkEstimate per_level;
  per_level.flops = static_cast<double>(bins) * params.evals_per_bin *
                    params.flops_per_eval;
  per_level.device_bytes = bins * sizeof(double) * 2;
  per_level.lanes = params.lanes;
  // Edges up and emi down once per task; one kernel per level.
  const double transfers =
      gpu.transfer_time_s((bins + 1) * sizeof(double)) +
      gpu.transfer_time_s(bins * sizeof(double));
  return params.context_switch_s +
         static_cast<double>(levels) * gpu.kernel_time_s(per_level) +
         transfers;
}

}  // namespace hspec::vgpu
