#include "vgpu/cost_model.h"

#include <algorithm>

namespace hspec::vgpu {

double GpuCostModel::kernel_time_s(const WorkEstimate& work) const noexcept {
  const double flops_s = props_.dp_peak_gflops * 1e9 * props_.kernel_efficiency;
  // Lane-aware compute bound: batched kernels retire `lanes` flops per
  // scalar-equivalent cycle (lanes == 1 for the scalar path).
  const double compute = work.flops / (flops_s * work.lanes);
  const double memory =
      static_cast<double>(work.device_bytes) / (props_.mem_bandwidth_gbps * 1e9);
  return std::max(compute, memory) + props_.kernel_launch_s;
}

double GpuCostModel::transfer_time_s(std::size_t bytes) const noexcept {
  return props_.memcpy_latency_s +
         static_cast<double>(bytes) / (props_.pcie_bandwidth_gbps * 1e9);
}

}  // namespace hspec::vgpu
