#include "vgpu/resident_cache.h"

#include <stdexcept>

namespace hspec::vgpu {

const DeviceBuffer& ResidentCache::lease(const void* data, std::size_t bytes) {
  if (data == nullptr || bytes == 0)
    throw std::invalid_argument("ResidentCache::lease: empty host array");
  util::MutexLock lock(mu_);
  const auto key = std::make_pair(data, bytes);
  auto it = resident_.find(key);
  if (it != resident_.end()) {
    ++stats_.hits;
    stats_.bytes_saved += bytes;
    return it->second;
  }
  DeviceBuffer buf = device_->alloc(bytes);
  device_->copy_to_device(buf, data, bytes);
  ++stats_.misses;
  stats_.bytes_uploaded += bytes;
  // std::map nodes are stable: the reference survives later insertions.
  return resident_.emplace(key, std::move(buf)).first->second;
}

ResidentCache::Stats ResidentCache::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

std::size_t ResidentCache::entries() const {
  util::MutexLock lock(mu_);
  return resident_.size();
}

void ResidentCache::clear() {
  util::MutexLock lock(mu_);
  resident_.clear();
}

}  // namespace hspec::vgpu
