#pragma once
// Device-memory pooling. Real CUDA codes avoid cudaMalloc/cudaFree inside
// task loops (they serialize the device); the hybrid executor runs one
// allocation pattern per task, so a size-bucketed free list removes all
// steady-state allocations. Thread-safe: many ranks share one device.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/thread_annotations.h"
#include "vgpu/device.h"

namespace hspec::vgpu {

class BufferPool {
 public:
  explicit BufferPool(Device& device) : device_(&device) {}
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Get a buffer of at least `bytes` (smallest adequate free buffer, else
  /// a fresh allocation rounded up to the next power of two).
  DeviceBuffer acquire(std::size_t bytes);

  /// Return a buffer for reuse. Invalid buffers are ignored.
  void release(DeviceBuffer buffer);

  Device& device() noexcept { return *device_; }

  struct Stats {
    std::uint64_t acquisitions = 0;
    std::uint64_t reuses = 0;       ///< served from the free list
    std::uint64_t allocations = 0;  ///< fell through to Device::alloc
  };
  Stats stats() const;

  /// Drop all pooled (free) buffers back to the device.
  void trim();

 private:
  Device* device_;
  mutable util::Mutex mu_;
  std::vector<DeviceBuffer> free_list_ HSPEC_GUARDED_BY(mu_);
  Stats stats_ HSPEC_GUARDED_BY(mu_);
};

/// RAII lease: acquires on construction, releases back on destruction.
class PooledBuffer {
 public:
  PooledBuffer(BufferPool& pool, std::size_t bytes)
      : pool_(&pool), buffer_(pool.acquire(bytes)) {}
  ~PooledBuffer() { pool_->release(std::move(buffer_)); }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  DeviceBuffer& get() noexcept { return buffer_; }
  const DeviceBuffer& get() const noexcept { return buffer_; }

 private:
  BufferPool* pool_;
  DeviceBuffer buffer_;
};

}  // namespace hspec::vgpu
