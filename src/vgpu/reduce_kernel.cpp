#include "vgpu/reduce_kernel.h"

#include <stdexcept>
#include <vector>

#include "vgpu/buffer_pool.h"

namespace hspec::vgpu {

double gpu_reduce_sum(Device& device, const DeviceBuffer& data_dev,
                      std::size_t count, unsigned block_dim) {
  if (count == 0) return 0.0;
  if (block_dim == 0) throw std::invalid_argument("gpu_reduce_sum: block_dim");
  if (data_dev.size() < count * sizeof(double))
    throw std::out_of_range("gpu_reduce_sum: buffer too small");

  const double* data = data_dev.as<const double>();
  const auto blocks = static_cast<unsigned>(
      std::min<std::size_t>((count + block_dim - 1) / block_dim, 64));

  // Pass 1: one partial sum per block (grid-stride within the block's
  // slice; per-block serial tree emulated by thread 0 accumulating its
  // block's lane sums — on real hardware this is the shared-memory tree).
  PooledBuffer partial_dev(device.default_pool(), blocks * sizeof(double));
  double* partial = partial_dev.get().as<double>();
  WorkEstimate pass1;
  pass1.flops = static_cast<double>(count);
  pass1.device_bytes = count * sizeof(double);
  device.launch({blocks, 1, 1}, {block_dim, 1, 1}, pass1,
                [&](const KernelCtx& c) {
                  if (c.thread_idx.x != 0) return;  // block leader reduces
                  double acc = 0.0;
                  for (std::size_t i = c.block_idx.x; i < count;
                       i += c.grid_dim.x)
                    acc += data[i];
                  partial[c.block_idx.x] = acc;
                });

  // Pass 2: single block folds the partials.
  PooledBuffer result_dev(device.default_pool(), sizeof(double));
  double* result = result_dev.get().as<double>();
  WorkEstimate pass2;
  pass2.flops = static_cast<double>(blocks);
  pass2.device_bytes = blocks * sizeof(double);
  device.launch({1, 1, 1}, {1, 1, 1}, pass2, [&](const KernelCtx&) {
    double acc = 0.0;
    for (unsigned b = 0; b < blocks; ++b) acc += partial[b];
    *result = acc;
  });

  double out = 0.0;
  device.copy_to_host(&out, result_dev.get(), sizeof(double));
  return out;
}

}  // namespace hspec::vgpu
