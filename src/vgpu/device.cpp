#include "vgpu/device.h"

#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>

#include "util/fault.h"
#include "vgpu/buffer_pool.h"

namespace hspec::vgpu {

DeviceBuffer::DeviceBuffer(DeviceBuffer&& o) noexcept
    : owner_(o.owner_), data_(o.data_), bytes_(o.bytes_) {
  o.owner_ = nullptr;
  o.data_ = nullptr;
  o.bytes_ = 0;
}

DeviceBuffer& DeviceBuffer::operator=(DeviceBuffer&& o) noexcept {
  if (this != &o) {
    release();
    owner_ = o.owner_;
    data_ = o.data_;
    bytes_ = o.bytes_;
    o.owner_ = nullptr;
    o.data_ = nullptr;
    o.bytes_ = 0;
  }
  return *this;
}

DeviceBuffer::~DeviceBuffer() { release(); }

void DeviceBuffer::release() noexcept {
  if (data_ != nullptr) {
    ::operator delete(data_);
    if (owner_ != nullptr) owner_->on_free(bytes_);
    data_ = nullptr;
    owner_ = nullptr;
    bytes_ = 0;
  }
}

Device::Device(DeviceProperties props, int device_id)
    : model_(std::move(props)),
      id_(device_id),
      default_pool_(std::make_unique<BufferPool>(*this)) {}

Device::~Device() = default;

DeviceBuffer Device::alloc(std::size_t bytes) {
  if (bytes == 0) throw std::invalid_argument("Device::alloc: zero bytes");
  std::size_t current = allocated_.load(std::memory_order_relaxed);
  do {
    if (current + bytes > properties().memory_bytes) throw std::bad_alloc();
  } while (!allocated_.compare_exchange_weak(current, current + bytes,
                                             std::memory_order_relaxed));
  void* data = ::operator new(bytes);
  return DeviceBuffer(this, data, bytes);
}

void Device::on_free(std::size_t bytes) noexcept {
  allocated_.fetch_sub(bytes, std::memory_order_relaxed);
}

void Device::copy_to_device(DeviceBuffer& dst, const void* src,
                            std::size_t bytes) {
  if (bytes > dst.size())
    throw std::out_of_range("copy_to_device: byte count exceeds buffer");
  if (fault_plan_ != nullptr) {
    const util::FaultDecision verdict =
        fault_plan_->query(util::FaultSite::h2d_transfer, id_);
    if (verdict.fail) throw util::FaultError(verdict.site, id_);
  }
  std::memcpy(dst.device_ptr(), src, bytes);
  util::MutexLock lock(mu_);
  ++stats_.h2d_copies;
  stats_.bytes_h2d += bytes;
  stats_.transfer_time_s += model_.transfer_time_s(bytes);
}

void Device::copy_to_host(void* dst, const DeviceBuffer& src,
                          std::size_t bytes) {
  if (bytes > src.size())
    throw std::out_of_range("copy_to_host: byte count exceeds buffer");
  if (fault_plan_ != nullptr) {
    const util::FaultDecision verdict =
        fault_plan_->query(util::FaultSite::d2h_transfer, id_);
    if (verdict.fail) throw util::FaultError(verdict.site, id_);
  }
  std::memcpy(dst, src.device_ptr(), bytes);
  util::MutexLock lock(mu_);
  ++stats_.d2h_copies;
  stats_.bytes_d2h += bytes;
  stats_.transfer_time_s += model_.transfer_time_s(bytes);
}

void Device::memset_device(DeviceBuffer& dst, int value, std::size_t bytes) {
  if (bytes > dst.size())
    throw std::out_of_range("memset_device: byte count exceeds buffer");
  std::memset(dst.device_ptr(), value, bytes);
}

void Device::launch(Dim3 grid, Dim3 block, const WorkEstimate& work,
                    Kernel kernel) {
  if (grid.total() == 0 || block.total() == 0)
    throw std::invalid_argument("Device::launch: empty grid or block");
  if (fault_plan_ != nullptr) {
    // A failed launch never ran; a timeout ran until the watchdog killed it,
    // so the wasted wall time is charged to the device's virtual clock.
    const util::FaultDecision verdict =
        fault_plan_->query(util::FaultSite::kernel_launch, id_);
    if (verdict.fail) throw util::FaultError(verdict.site, id_);
    const util::FaultDecision timeout =
        fault_plan_->query(util::FaultSite::kernel_timeout, id_);
    if (timeout.fail) {
      util::MutexLock lock(mu_);
      stats_.kernel_time_s += timeout.penalty_s;
      throw util::FaultError(timeout.site, id_);
    }
  }
  util::MutexLock lock(mu_);  // Fermi: queued kernels execute serially
  KernelCtx ctx;
  ctx.grid_dim = grid;
  ctx.block_dim = block;
  for (unsigned bz = 0; bz < grid.z; ++bz)
    for (unsigned by = 0; by < grid.y; ++by)
      for (unsigned bx = 0; bx < grid.x; ++bx) {
        ctx.block_idx = {bx, by, bz};
        for (unsigned tz = 0; tz < block.z; ++tz)
          for (unsigned ty = 0; ty < block.y; ++ty)
            for (unsigned tx = 0; tx < block.x; ++tx) {
              ctx.thread_idx = {tx, ty, tz};
              kernel(ctx);
            }
      }
  ++stats_.kernels_launched;
  stats_.kernel_time_s += model_.kernel_time_s(work);
}

double Device::busy_time_s() const noexcept {
  util::MutexLock lock(mu_);
  return stats_.kernel_time_s + stats_.transfer_time_s;
}

DeviceStats Device::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

DeviceRegistry::DeviceRegistry(int count) {
  DeviceProperties props = tesla_c2075();
  if (const char* arch = std::getenv("HSPEC_VGPU_ARCH");
      arch != nullptr && std::string(arch) == "kepler")
    props = tesla_k20();
  int n = count;
  if (n < 0) {
    n = 0;
    if (const char* env = std::getenv("HSPEC_VGPU_COUNT"); env != nullptr)
      n = std::atoi(env);
  }
  if (n < 0 || n > 64)
    throw std::invalid_argument("DeviceRegistry: device count out of range");
  for (int i = 0; i < n; ++i)
    devices_.push_back(std::make_unique<Device>(props, i));
}

void DeviceRegistry::set_fault_plan(util::FaultPlan* plan) noexcept {
  for (auto& dev : devices_) dev->set_fault_plan(plan);
}

}  // namespace hspec::vgpu
