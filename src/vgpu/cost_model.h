#pragma once
// Virtual-time cost model shared by the executing device (src/vgpu/device.h)
// and the discrete-event performance simulator (src/sim). All the paper's
// performance phenomena reduce to the relative magnitudes modeled here:
//  * per-launch overhead  -> fine-grained (Level) tasks lose to coarse (Ion);
//  * PCIe transfer cost   -> per-ion on-device accumulation wins;
//  * compute throughput   -> GPU >> one CPU core for bulk quadrature.

#include <cstddef>

#include "vgpu/device_properties.h"

namespace hspec::vgpu {

/// Abstract work content of a kernel or CPU call.
struct WorkEstimate {
  double flops = 0.0;          ///< floating-point operations
  std::size_t device_bytes = 0; ///< device-memory traffic [bytes]
  /// Effective vector width the flops execute at (>= 1). The scalar path
  /// reports 1; the batched integration kernels report the SIMD lane count
  /// (vgpu::kBatchLanes), so the virtual clock — and hence every DES figure
  /// downstream — reflects the lane-parallel speedup.
  double lanes = 1.0;

  WorkEstimate& operator+=(const WorkEstimate& o) noexcept {
    // Merge lanes as the flops-weighted harmonic mean, which preserves the
    // summed compute time exactly: t = f1/l1 + f2/l2 and (f1+f2)/l == t.
    const double t = flops / lanes + o.flops / o.lanes;
    flops += o.flops;
    device_bytes += o.device_bytes;
    lanes = t > 0.0 ? flops / t : 1.0;
    return *this;
  }
};

/// Average floating-point cost of one RRC integrand evaluation
/// (exp + pow + cross-section arithmetic on either architecture).
inline constexpr double kFlopsPerIntegrandEval = 60.0;

class GpuCostModel {
 public:
  explicit GpuCostModel(DeviceProperties props) : props_(props) {}

  /// Execution time of a kernel given its work, assuming full occupancy:
  /// max(compute-bound, memory-bound) + fixed launch overhead.
  double kernel_time_s(const WorkEstimate& work) const noexcept;

  /// One cudaMemcpy of `bytes` across PCIe (latency + bandwidth).
  double transfer_time_s(std::size_t bytes) const noexcept;

  double launch_overhead_s() const noexcept { return props_.kernel_launch_s; }

  const DeviceProperties& properties() const noexcept { return props_; }

 private:
  DeviceProperties props_;
};

/// Knobs of the per-task GPU cost estimate shared by the perfmodel's DES
/// calibration and the static scheduling policies (DESIGN.md §15). Defaults
/// mirror perfmodel::PaperCalibration so a bare estimate is paper-shaped.
struct TaskCostParams {
  double context_switch_s = 2.5e-3;  ///< Fermi inter-process switch per task
  double flops_per_eval = 26.0;      ///< integrand cost inside the kernel
  double evals_per_bin = 129.0;      ///< kernel_cost_evals(method, param)
  double lanes = 1.0;                ///< SIMD lanes (kBatchLanes if batched)
};

/// Estimated end-to-end GPU time of one spectral task (§III-B shape):
/// context switch + one kernel per energy level + the edges-up / emi-down
/// transfers. `levels == 0` (closed-form / non-RRC ions) degenerates to
/// the fixed per-task overhead, which is exactly the weight those tasks
/// should carry in a cost-partitioned schedule.
double estimated_task_gpu_s(const GpuCostModel& gpu, std::size_t levels,
                            std::size_t bins,
                            const TaskCostParams& params) noexcept;

class CpuCostModel {
 public:
  explicit CpuCostModel(CpuCoreProperties props) : props_(props) {}

  /// Time for one core to execute `flops` of branchy quadrature code.
  double compute_time_s(double flops) const noexcept {
    return flops / (props_.sustained_gflops * 1e9);
  }

  const CpuCoreProperties& properties() const noexcept { return props_; }

 private:
  CpuCoreProperties props_;
};

}  // namespace hspec::vgpu
