#pragma once
// Virtual-time cost model shared by the executing device (src/vgpu/device.h)
// and the discrete-event performance simulator (src/sim). All the paper's
// performance phenomena reduce to the relative magnitudes modeled here:
//  * per-launch overhead  -> fine-grained (Level) tasks lose to coarse (Ion);
//  * PCIe transfer cost   -> per-ion on-device accumulation wins;
//  * compute throughput   -> GPU >> one CPU core for bulk quadrature.

#include <cstddef>

#include "vgpu/device_properties.h"

namespace hspec::vgpu {

/// Abstract work content of a kernel or CPU call.
struct WorkEstimate {
  double flops = 0.0;          ///< floating-point operations
  std::size_t device_bytes = 0; ///< device-memory traffic [bytes]
  /// Effective vector width the flops execute at (>= 1). The scalar path
  /// reports 1; the batched integration kernels report the SIMD lane count
  /// (vgpu::kBatchLanes), so the virtual clock — and hence every DES figure
  /// downstream — reflects the lane-parallel speedup.
  double lanes = 1.0;

  WorkEstimate& operator+=(const WorkEstimate& o) noexcept {
    // Merge lanes as the flops-weighted harmonic mean, which preserves the
    // summed compute time exactly: t = f1/l1 + f2/l2 and (f1+f2)/l == t.
    const double t = flops / lanes + o.flops / o.lanes;
    flops += o.flops;
    device_bytes += o.device_bytes;
    lanes = t > 0.0 ? flops / t : 1.0;
    return *this;
  }
};

/// Average floating-point cost of one RRC integrand evaluation
/// (exp + pow + cross-section arithmetic on either architecture).
inline constexpr double kFlopsPerIntegrandEval = 60.0;

class GpuCostModel {
 public:
  explicit GpuCostModel(DeviceProperties props) : props_(props) {}

  /// Execution time of a kernel given its work, assuming full occupancy:
  /// max(compute-bound, memory-bound) + fixed launch overhead.
  double kernel_time_s(const WorkEstimate& work) const noexcept;

  /// One cudaMemcpy of `bytes` across PCIe (latency + bandwidth).
  double transfer_time_s(std::size_t bytes) const noexcept;

  double launch_overhead_s() const noexcept { return props_.kernel_launch_s; }

  const DeviceProperties& properties() const noexcept { return props_; }

 private:
  DeviceProperties props_;
};

class CpuCostModel {
 public:
  explicit CpuCostModel(CpuCoreProperties props) : props_(props) {}

  /// Time for one core to execute `flops` of branchy quadrature code.
  double compute_time_s(double flops) const noexcept {
    return flops / (props_.sustained_gflops * 1e9);
  }

  const CpuCoreProperties& properties() const noexcept { return props_; }

 private:
  CpuCoreProperties props_;
};

}  // namespace hspec::vgpu
