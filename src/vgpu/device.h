#pragma once
// The virtual GPU device: explicit device memory, host<->device copies, and
// CUDA-style kernel launches. Kernels execute on the host (results are real
// and checkable); every operation charges the device's virtual clock through
// the cost model, so launch/copy overheads shape performance exactly as on
// the paper's Fermi cards.
//
// Thread model: many MPI ranks share one device. On Fermi, queued kernels
// run serially ("application-level context switching"), which the device
// enforces with an internal mutex; the virtual clock therefore accumulates
// serialized kernel time like the real card.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/function_ref.h"
#include "util/thread_annotations.h"
#include "vgpu/cost_model.h"
#include "vgpu/device_properties.h"

namespace hspec::util {
class FaultPlan;
}

namespace hspec::vgpu {

struct Dim3 {
  unsigned x = 1;
  unsigned y = 1;
  unsigned z = 1;
  std::size_t total() const noexcept {
    return static_cast<std::size_t>(x) * y * z;
  }
};

/// Per-thread kernel context (the CUDA builtins).
struct KernelCtx {
  Dim3 grid_dim;
  Dim3 block_dim;
  Dim3 block_idx;
  Dim3 thread_idx;

  /// blockIdx.x * blockDim.x + threadIdx.x
  std::size_t global_x() const noexcept {
    return static_cast<std::size_t>(block_idx.x) * block_dim.x + thread_idx.x;
  }
  /// gridDim.x * blockDim.x
  std::size_t stride_x() const noexcept {
    return static_cast<std::size_t>(grid_dim.x) * block_dim.x;
  }
};

using Kernel = util::FunctionRef<void(const KernelCtx&)>;

class Device;
class BufferPool;

/// RAII device-memory allocation. Must not outlive its Device.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(DeviceBuffer&& o) noexcept;
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  ~DeviceBuffer();

  std::size_t size() const noexcept { return bytes_; }
  bool valid() const noexcept { return data_ != nullptr; }

  /// Raw device pointer — only meaningful inside kernels and device copies.
  void* device_ptr() noexcept { return data_; }
  const void* device_ptr() const noexcept { return data_; }

  template <class T>
  T* as() noexcept {
    return static_cast<T*>(data_);
  }
  template <class T>
  const T* as() const noexcept {
    return static_cast<const T*>(data_);
  }

 private:
  friend class Device;
  DeviceBuffer(Device* owner, void* data, std::size_t bytes)
      : owner_(owner), data_(data), bytes_(bytes) {}
  void release() noexcept;

  Device* owner_ = nullptr;
  void* data_ = nullptr;
  std::size_t bytes_ = 0;
};

/// Cumulative device counters (for the EXPERIMENTS and ablation reports).
struct DeviceStats {
  std::uint64_t kernels_launched = 0;
  std::uint64_t h2d_copies = 0;
  std::uint64_t d2h_copies = 0;
  std::uint64_t bytes_h2d = 0;
  std::uint64_t bytes_d2h = 0;
  double kernel_time_s = 0.0;
  double transfer_time_s = 0.0;
  // Pipeline counters, filled by the hybrid driver (the device itself does
  // not know about streams or the resident cache).
  std::uint64_t streams_used = 0;     ///< streams ranks opened on this device
  std::uint64_t cache_hits = 0;       ///< resident-cache leases served free
  std::uint64_t bytes_h2d_saved = 0;  ///< H2D bytes the cache did not send
};

class Device {
 public:
  Device(DeviceProperties props, int device_id);
  ~Device();
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  int id() const noexcept { return id_; }
  const DeviceProperties& properties() const noexcept {
    return model_.properties();
  }
  const GpuCostModel& cost_model() const noexcept { return model_; }

  /// cudaMalloc. Throws std::bad_alloc when the 6 GB budget is exceeded.
  /// Hot paths (kernel wrappers, per-task loops) must lease from a
  /// BufferPool instead — tools/hlint's [hot-alloc] rule enforces this.
  DeviceBuffer alloc(std::size_t bytes);
  std::size_t bytes_allocated() const noexcept {
    return allocated_.load(std::memory_order_relaxed);
  }

  /// The device's own size-bucketed buffer pool, for wrappers that are not
  /// handed an executor pool (e.g. gpu_integr): repeated calls recycle their
  /// buffers instead of paying a cudaMalloc/cudaFree per call.
  BufferPool& default_pool() noexcept { return *default_pool_; }

  /// cudaMemcpy(HostToDevice): real copy + virtual PCIe cost.
  void copy_to_device(DeviceBuffer& dst, const void* src, std::size_t bytes);
  /// cudaMemcpy(DeviceToHost).
  void copy_to_host(void* dst, const DeviceBuffer& src, std::size_t bytes);
  /// cudaMemset.
  void memset_device(DeviceBuffer& dst, int value, std::size_t bytes);

  /// Launch a kernel over grid x block threads. `work` is the caller's work
  /// estimate used for virtual-time accounting. Threads execute sequentially
  /// on the host; the device serializes concurrent launches (Fermi model).
  void launch(Dim3 grid, Dim3 block, const WorkEstimate& work, Kernel kernel);

  /// Virtual time this device has spent busy [s].
  double busy_time_s() const noexcept;
  DeviceStats stats() const;

  /// Install the fault-injection plan every fallible entry point of this
  /// device (and its streams / buffer pools) consults; nullptr disarms it.
  /// Must be set before ranks start — installation is not synchronized.
  void set_fault_plan(util::FaultPlan* plan) noexcept { fault_plan_ = plan; }
  util::FaultPlan* fault_plan() const noexcept { return fault_plan_; }

 private:
  friend class DeviceBuffer;
  void on_free(std::size_t bytes) noexcept;

  GpuCostModel model_;
  int id_;
  std::atomic<std::size_t> allocated_{0};
  // Serializes execution and stats (Fermi "application-level context switch").
  mutable util::Mutex mu_;
  DeviceStats stats_ HSPEC_GUARDED_BY(mu_);
  // Written once before the ranks launch (thread creation provides the
  // happens-before), read on every fallible operation.
  util::FaultPlan* fault_plan_ = nullptr;
  // Constructed eagerly (BufferPool is cheap); destroyed before the mutex
  // and allocation counter it returns buffers through.
  std::unique_ptr<BufferPool> default_pool_;
};

/// The machine's virtual GPUs. "The program will detect the number of GPU
/// devices automatically, and it can run normally in the runtime environment
/// without GPU device": the count comes from HSPEC_VGPU_COUNT (default 0)
/// unless overridden, the architecture from HSPEC_VGPU_ARCH (fermi|kepler).
class DeviceRegistry {
 public:
  /// Detect from environment (count < 0) or create `count` devices.
  explicit DeviceRegistry(int count = -1);

  std::size_t device_count() const noexcept { return devices_.size(); }
  bool gpu_available() const noexcept { return !devices_.empty(); }
  Device& device(std::size_t i) { return *devices_.at(i); }
  const Device& device(std::size_t i) const { return *devices_.at(i); }

  /// Arm (or disarm, with nullptr) fault injection on every device. Must be
  /// called before any rank touches the devices.
  void set_fault_plan(util::FaultPlan* plan) noexcept;

 private:
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace hspec::vgpu
