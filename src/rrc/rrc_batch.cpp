#include "rrc/rrc_batch.h"

#include <stdexcept>

#include "atomic/constants.h"
#include "util/fastmath.h"

namespace hspec::rrc {

namespace {

namespace fm = util::fm;

// The loop bodies mirror rrc_power_density operation for operation (see the
// bitwise contract in the header): ee < 0 selects the below-threshold zero,
// the Kramers/Milne product keeps the scalar association
//   sigma0 * (n/z2) * r * r * r,  (e*e / me_c2) * sigma,  a * exp * e,
// and the Gaunt select multiplies by exactly 1.0 at or below the edge, which
// is what the scalar branch does. Lanes that the final select discards may
// compute garbage (e <= 0 gives a nonsense ratio) — that is fine, they are
// never observed, and none of the ops can trap.

HSPEC_VEC_TARGET void eval_nogaunt(double binding, double kt, double pref,
                                   double n_over_z2, const double* xs,
                                   double* ys, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double e = xs[i];
    const double ee = e - binding;
    const double ratio = binding / e;
    const double sigma_ph =
        atomic::kKramersSigma0 * n_over_z2 * ratio * ratio * ratio;
    const double ee_sigma = e * e / atomic::kElectronRestKeV * sigma_ph;
    const double a = ee_sigma * fm::exp(-ee / kt) * e;
    ys[i] = ee < 0.0 ? 0.0 : pref * a;
  }
}

HSPEC_VEC_TARGET void eval_gaunt(double binding, double kt, double pref,
                                 double n_over_z2, const double* xs,
                                 double* ys, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double e = xs[i];
    const double ee = e - binding;
    const double ratio = binding / e;
    const double sigma_ph =
        atomic::kKramersSigma0 * n_over_z2 * ratio * ratio * ratio;
    const double ee_sigma = e * e / atomic::kElectronRestKeV * sigma_ph;
    const double a = ee_sigma * fm::exp(-ee / kt) * e;
    const double ratio_g = e / binding;
    const double lg = fm::log(ratio_g);
    const double g = ratio_g <= 1.0
                         ? 1.0
                         : 1.0 + 0.1727 * lg -
                               0.0496 * lg * lg / (1.0 + 0.5 * lg);
    const double ag = a * g;
    ys[i] = ee < 0.0 ? 0.0 : pref * ag;
  }
}

}  // namespace

RrcBatchIntegrand::RrcBatchIntegrand(const RrcChannel& ch,
                                     const PlasmaState& plasma)
    : binding_(ch.level.binding_keV),
      kt_(plasma.kT_keV.value()),
      prefactor_(maxwellian_prefactor(plasma)),
      gaunt_(ch.gaunt_correction) {
  if (ch.recombining_charge < 1 || ch.level.n < 1)
    throw std::invalid_argument("kramers: charge and n must be >= 1");
  if (binding_ <= 0.0)
    throw std::invalid_argument("kramers: binding energy must be positive");
  const double z2 = static_cast<double>(ch.recombining_charge) *
                    static_cast<double>(ch.recombining_charge);
  n_over_z2_ = static_cast<double>(ch.level.n) / z2;
}

void RrcBatchIntegrand::operator()(std::span<const double> xs,
                                   std::span<double> ys) const {
  if (ys.size() < xs.size())
    throw std::out_of_range("RrcBatchIntegrand: output span too small");
  if (gaunt_)
    eval_gaunt(binding_, kt_, prefactor_, n_over_z2_, xs.data(), ys.data(),
               xs.size());
  else
    eval_nogaunt(binding_, kt_, prefactor_, n_over_z2_, xs.data(), ys.data(),
                 xs.size());
}

}  // namespace hspec::rrc
