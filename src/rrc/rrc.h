#pragma once
// Radiative Recombination Continuum (RRC) emissivity — Eq. (1)/(2) of the
// paper. For an electron of kinetic energy Ee = Eg - I recombining onto
// level n of ion (Z, j) in a Maxwellian plasma at temperature kT:
//
//   dP/dE = ne * n_{Z,j+1} * 4 * (Ee/kT) * sqrt(1/(2 pi me kT))
//           * sigma_rec(Ee) * exp(-Ee/kT) * Eg                       (1)
//
// (the factor 4 is exactly the Maxwellian flux normalization:
//  2 sqrt(Ee/pi) (kT)^{-3/2} * sqrt(2 Ee/me) == 4 (Ee/kT) sqrt(1/(2 pi me kT))).
//
// The spectrum is accumulated per energy bin:
//
//   Lambda_RRC(Ebin) = Integral_{E0}^{E1} dP/dE (E) dE               (2)
//
// With the pure Kramers/Milne cross section the integrand collapses to
// K * exp(-Ee/kT) above threshold, which has a closed form used by the
// property tests; the optional Gaunt-factor correction (default on in the
// spectral calculator) restores a slowly varying non-analytic shape.

#include "atomic/levels.h"
#include "quad/integrate.h"

namespace hspec::rrc {

/// Plasma and ion-population inputs of Eq. (1).
struct PlasmaState {
  double kT_keV = 1.0;          ///< electron temperature [keV]
  double ne_cm3 = 1.0;          ///< electron density [cm^-3]
  double n_ion_cm3 = 1.0;       ///< density of the recombining ion [cm^-3]
};

/// Integrand configuration for one recombination channel.
struct RrcChannel {
  int recombining_charge = 1;   ///< charge of ion (Z, j+1)
  atomic::Level level;          ///< target level in ion (Z, j)
  bool gaunt_correction = true; ///< apply the slowly-varying Gaunt factor
};

/// Slowly varying free-bound Gaunt-like correction g(Eg / I).
/// g(1) == 1; grows logarithmically. Pure shape realism.
double gaunt_factor(double photon_keV, double binding_keV) noexcept;

/// The differential emissivity dP/dE of Eq. (1) [keV s^-1 cm^-3 keV^-1].
/// Zero below threshold (photon_keV < level.binding_keV).
double rrc_power_density(const RrcChannel& ch, const PlasmaState& plasma,
                         double photon_keV);

/// Lambda_RRC over [e0, e1] by the requested kernel method (Eq. 2).
quad::IntegrationResult rrc_bin_emissivity(const RrcChannel& ch,
                                           const PlasmaState& plasma,
                                           double e0_keV, double e1_keV,
                                           quad::KernelMethod method,
                                           std::size_t method_param);

/// Reference adaptive evaluation (QAGS), used by the serial baseline and the
/// CPU fallback path. Splits at the threshold so the edge discontinuity does
/// not poison the extrapolation.
quad::IntegrationResult rrc_bin_emissivity_qags(const RrcChannel& ch,
                                                const PlasmaState& plasma,
                                                double e0_keV, double e1_keV,
                                                double errabs = 1e-14,
                                                double errrel = 1e-10);

/// Closed form of Eq. (2) valid when gaunt_correction == false:
///   K kT [exp(-(max(E0,I)-I)/kT) - exp(-(E1-I)/kT)]  for E1 > I, else 0.
double rrc_bin_emissivity_exact_nogaunt(const RrcChannel& ch,
                                        const PlasmaState& plasma,
                                        double e0_keV, double e1_keV);

}  // namespace hspec::rrc
