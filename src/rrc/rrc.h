#pragma once
// Radiative Recombination Continuum (RRC) emissivity — Eq. (1)/(2) of the
// paper. For an electron of kinetic energy Ee = Eg - I recombining onto
// level n of ion (Z, j) in a Maxwellian plasma at temperature kT:
//
//   dP/dE = ne * n_{Z,j+1} * 4 * (Ee/kT) * sqrt(1/(2 pi me kT))
//           * sigma_rec(Ee) * exp(-Ee/kT) * Eg                       (1)
//
// (the factor 4 is exactly the Maxwellian flux normalization:
//  2 sqrt(Ee/pi) (kT)^{-3/2} * sqrt(2 Ee/me) == 4 (Ee/kT) sqrt(1/(2 pi me kT))).
//
// The spectrum is accumulated per energy bin:
//
//   Lambda_RRC(Ebin) = Integral_{E0}^{E1} dP/dE (E) dE               (2)
//
// With the pure Kramers/Milne cross section the integrand collapses to
// K * exp(-Ee/kT) above threshold, which has a closed form used by the
// property tests; the optional Gaunt-factor correction (default on in the
// spectral calculator) restores a slowly varying non-analytic shape.
//
// The API is dimension-checked (util/units.h): plasma state, bin bounds,
// and emissivities are strong-typed; the quad substrate underneath stays
// unitless (an Integrand is double -> double), so the units are unwrapped
// exactly where the integrand lambda is built and re-attached on the result.

#include "atomic/levels.h"
#include "quad/integrate.h"
#include "util/units.h"

namespace hspec::rrc {

/// Plasma and ion-population inputs of Eq. (1).
struct PlasmaState {
  util::KeV kT_keV{1.0};          ///< electron temperature
  util::PerCm3 ne_cm3{1.0};       ///< electron density
  util::PerCm3 n_ion_cm3{1.0};    ///< density of the recombining ion
};

/// Integrand configuration for one recombination channel.
struct RrcChannel {
  int recombining_charge = 1;   ///< charge of ion (Z, j+1)
  atomic::Level level;          ///< target level in ion (Z, j)
  bool gaunt_correction = true; ///< apply the slowly-varying Gaunt factor
};

/// The density- and temperature-dependent prefactor of Eq. (1):
/// ne * n_i * 4/kT * c * sqrt(1/(2 pi me_c2 kT))   [cm^-5 s^-1 keV^-2].
/// Shared by the scalar path and RrcBatchIntegrand (which hoists it per
/// channel) so the two stay bitwise aligned. Throws for kT <= 0.
double maxwellian_prefactor(const PlasmaState& p);

/// Slowly varying free-bound Gaunt-like correction g(Eg / I).
/// g(1) == 1; grows logarithmically. Pure shape realism.
double gaunt_factor(util::KeV photon, util::KeV binding) noexcept;

/// The differential emissivity dP/dE of Eq. (1) [keV s^-1 cm^-3 keV^-1].
/// Zero below threshold (photon < level.binding_keV).
util::SpectralEmissivity rrc_power_density(const RrcChannel& ch,
                                           const PlasmaState& plasma,
                                           util::KeV photon);

/// A bin integral of Eq. (2) with its unit attached; `.raw()` unwraps to
/// quad::IntegrationResult at the vgpu/shm edges.
using BinEmissivity = quad::TypedResult<util::EmissivityPhotCm3PerS>;

/// Lambda_RRC over [e0, e1] by the requested kernel method (Eq. 2).
BinEmissivity rrc_bin_emissivity(const RrcChannel& ch,
                                 const PlasmaState& plasma, util::KeV e0,
                                 util::KeV e1, quad::KernelMethod method,
                                 std::size_t method_param);

/// Reference adaptive evaluation (QAGS), used by the serial baseline and the
/// CPU fallback path. Splits at the threshold so the edge discontinuity does
/// not poison the extrapolation.
BinEmissivity rrc_bin_emissivity_qags(const RrcChannel& ch,
                                      const PlasmaState& plasma, util::KeV e0,
                                      util::KeV e1, double errabs = 1e-14,
                                      double errrel = 1e-10);

/// Closed form of Eq. (2) valid when gaunt_correction == false:
///   K kT [exp(-(max(E0,I)-I)/kT) - exp(-(E1-I)/kT)]  for E1 > I, else 0.
util::EmissivityPhotCm3PerS rrc_bin_emissivity_exact_nogaunt(
    const RrcChannel& ch, const PlasmaState& plasma, util::KeV e0,
    util::KeV e1);

}  // namespace hspec::rrc
