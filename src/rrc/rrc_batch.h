#pragma once
// Batched form of the RRC integrand (Eq. 1) for the vectorized integration
// kernels: one call evaluates dP/dE at a whole span of photon energies.
//
// Bitwise contract: for every photon energy e,
//
//   RrcBatchIntegrand(ch, plasma)({e}) == rrc_power_density(ch, plasma, e)
//
// to the last bit. The channel- and plasma-dependent subexpressions the
// scalar path recomputes per abscissa (threshold, n/Z^2, the Maxwellian
// prefactor) are hoisted into the constructor — each is a parenthesized
// subexpression of the scalar formula, so hoisting cannot change the bits —
// and the per-abscissa arithmetic follows the scalar operation sequence
// exactly, with branches rewritten as selects and the transcendentals shared
// with the scalar path (util/fastmath.h). The tier-1 identity tests pin this
// contract across every kernel method.

#include <span>

#include "rrc/rrc.h"

namespace hspec::rrc {

/// One recombination channel's integrand, ready for lane-parallel
/// evaluation. Cheap to construct (a handful of doubles); build one per
/// level inside the task loop.
class RrcBatchIntegrand {
 public:
  /// Validates like the scalar path: throws std::invalid_argument for
  /// charge < 1, n < 1, non-positive binding or temperature.
  RrcBatchIntegrand(const RrcChannel& ch, const PlasmaState& plasma);

  /// ys[i] = dP/dE(xs[i]) for every i; ys.size() >= xs.size().
  /// Matches quad::BatchIntegrand.
  void operator()(std::span<const double> xs, std::span<double> ys) const;

 private:
  double binding_;     ///< level threshold I [keV]
  double kt_;          ///< electron temperature [keV]
  double prefactor_;   ///< maxwellian_prefactor(plasma)
  double n_over_z2_;   ///< n / Z^2 of the Kramers cross section
  bool gaunt_;
};

}  // namespace hspec::rrc
