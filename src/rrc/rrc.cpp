#include "rrc/rrc.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "atomic/constants.h"
#include "atomic/cross_section.h"
#include "quad/qags.h"

namespace hspec::rrc {

namespace {

/// The density- and temperature-dependent prefactor of Eq. (1):
/// ne * n_i * 4/kT * c * sqrt(1/(2 pi me_c2 kT))   [cm^-5 s^-1 keV^-2].
double maxwellian_prefactor(const PlasmaState& p) {
  if (p.kT_keV <= 0.0)
    throw std::invalid_argument("rrc: temperature must be positive");
  return p.ne_cm3 * p.n_ion_cm3 * 4.0 / p.kT_keV * atomic::kSpeedOfLight *
         std::sqrt(1.0 / (2.0 * std::numbers::pi * atomic::kElectronRestKeV *
                          p.kT_keV));
}

}  // namespace

double gaunt_factor(double photon_keV, double binding_keV) noexcept {
  const double ratio = photon_keV / binding_keV;
  if (ratio <= 1.0) return 1.0;
  const double lg = std::log(ratio);
  return 1.0 + 0.1727 * lg - 0.0496 * lg * lg / (1.0 + 0.5 * lg);
}

double rrc_power_density(const RrcChannel& ch, const PlasmaState& plasma,
                         double photon_keV) {
  const double binding = ch.level.binding_keV;
  const double ee = photon_keV - binding;
  if (ee < 0.0) return 0.0;
  // The Milne 1/Ee divergence of sigma_rec cancels exactly against the
  // Maxwellian flux factor Ee, so form the product analytically:
  //   Ee * sigma_rec(Ee) = (g ratio) * Eg^2 / (me c^2) * sigma_ph(Eg).
  // The integrand is then smooth on [I, inf) with a positive value AT the
  // threshold — the classic RRC sawtooth edge — which keeps fixed-cost
  // rules accurate on edge-clamped bins.
  const double sigma_ph = atomic::kramers_photoionization_cm2(
      ch.recombining_charge, ch.level.n, binding, photon_keV);
  const double ee_sigma = photon_keV * photon_keV / atomic::kElectronRestKeV *
                          sigma_ph;  // stat-weight ratio 1, as before
  double a = ee_sigma * std::exp(-ee / plasma.kT_keV) * photon_keV;
  if (ch.gaunt_correction) a *= gaunt_factor(photon_keV, binding);
  return maxwellian_prefactor(plasma) * a;
}

quad::IntegrationResult rrc_bin_emissivity(const RrcChannel& ch,
                                           const PlasmaState& plasma,
                                           double e0_keV, double e1_keV,
                                           quad::KernelMethod method,
                                           std::size_t method_param) {
  if (!(e1_keV > e0_keV))
    throw std::invalid_argument("rrc_bin_emissivity: need e1 > e0");
  // Algorithm 2 integrates each level from its own threshold upward
  // (L = I_{Z,j,n}), so a fixed-cost rule never spans the recombination
  // edge: clamp the bin to the emitting part.
  const double edge = ch.level.binding_keV;
  if (e1_keV <= edge) return {0.0, 0.0, 0, true};
  const double lo = std::max(e0_keV, edge);
  auto f = [&](double e) { return rrc_power_density(ch, plasma, e); };
  return quad::kernel_integrate(method, method_param, f, lo, e1_keV);
}

quad::IntegrationResult rrc_bin_emissivity_qags(const RrcChannel& ch,
                                                const PlasmaState& plasma,
                                                double e0_keV, double e1_keV,
                                                double errabs, double errrel) {
  if (!(e1_keV > e0_keV))
    throw std::invalid_argument("rrc_bin_emissivity_qags: need e1 > e0");
  auto f = [&](double e) { return rrc_power_density(ch, plasma, e); };
  const double edge = ch.level.binding_keV;
  if (edge > e0_keV && edge < e1_keV) {
    // Split at the recombination edge: below is identically zero.
    auto r = quad::qags(f, edge, e1_keV, errabs, errrel);
    return r;
  }
  if (edge >= e1_keV) return {0.0, 0.0, 0, true};
  return quad::qags(f, e0_keV, e1_keV, errabs, errrel);
}

double rrc_bin_emissivity_exact_nogaunt(const RrcChannel& ch,
                                        const PlasmaState& plasma,
                                        double e0_keV, double e1_keV) {
  if (ch.gaunt_correction)
    throw std::invalid_argument(
        "exact form is only valid without the Gaunt correction");
  const double binding = ch.level.binding_keV;
  if (e1_keV <= binding) return 0.0;
  const double lo = std::max(e0_keV, binding);
  // sigma_rec * Ee * Eg == sw * sigma0 * n / z^2 * I^3 / me_c2 (constant).
  const double z = static_cast<double>(ch.recombining_charge);
  const double c_const = atomic::kKramersSigma0 *
                         static_cast<double>(ch.level.n) / (z * z) * binding *
                         binding * binding / atomic::kElectronRestKeV;
  const double kt = plasma.kT_keV;
  const double integral =
      kt * (std::exp(-(lo - binding) / kt) - std::exp(-(e1_keV - binding) / kt));
  return maxwellian_prefactor(plasma) * c_const * integral;
}

}  // namespace hspec::rrc
