#include "rrc/rrc.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "atomic/constants.h"
#include "atomic/cross_section.h"
#include "quad/qags.h"
#include "util/fastmath.h"

namespace hspec::rrc {

double maxwellian_prefactor(const PlasmaState& p) {
  const double kt = p.kT_keV.value();
  if (kt <= 0.0)
    throw std::invalid_argument("rrc: temperature must be positive");
  return p.ne_cm3.value() * p.n_ion_cm3.value() * 4.0 / kt *
         atomic::kSpeedOfLight *
         std::sqrt(1.0 /
                   (2.0 * std::numbers::pi * atomic::kElectronRestKeV * kt));
}

// Transcendentals via util::fm, not libm: the batched integrand
// (rrc_batch.cpp) evaluates the same formula lane-parallel, and only the
// deterministic implementations guarantee the same bits in both shapes.
double gaunt_factor(util::KeV photon, util::KeV binding) noexcept {
  const double ratio = photon / binding;
  if (ratio <= 1.0) return 1.0;
  const double lg = util::fm::log(ratio);
  return 1.0 + 0.1727 * lg - 0.0496 * lg * lg / (1.0 + 0.5 * lg);
}

util::SpectralEmissivity rrc_power_density(const RrcChannel& ch,
                                           const PlasmaState& plasma,
                                           util::KeV photon) {
  const util::KeV binding{ch.level.binding_keV};
  const util::KeV ee = photon - binding;
  if (ee.value() < 0.0) return util::SpectralEmissivity{0.0};
  // The Milne 1/Ee divergence of sigma_rec cancels exactly against the
  // Maxwellian flux factor Ee, so form the product analytically:
  //   Ee * sigma_rec(Ee) = (g ratio) * Eg^2 / (me c^2) * sigma_ph(Eg).
  // The integrand is then smooth on [I, inf) with a positive value AT the
  // threshold — the classic RRC sawtooth edge — which keeps fixed-cost
  // rules accurate on edge-clamped bins.
  const double e_kev = photon.value();
  const double sigma_ph = atomic::kramers_photoionization_cm2(
                              ch.recombining_charge, ch.level.n, binding,
                              photon)
                              .value();
  const double ee_sigma = e_kev * e_kev / atomic::kElectronRestKeV *
                          sigma_ph;  // stat-weight ratio 1, as before
  double a =
      ee_sigma * util::fm::exp(-ee.value() / plasma.kT_keV.value()) * e_kev;
  if (ch.gaunt_correction) a *= gaunt_factor(photon, binding);
  return util::SpectralEmissivity{maxwellian_prefactor(plasma) * a};
}

BinEmissivity rrc_bin_emissivity(const RrcChannel& ch,
                                 const PlasmaState& plasma, util::KeV e0,
                                 util::KeV e1, quad::KernelMethod method,
                                 std::size_t method_param) {
  if (!(e1 > e0))
    throw std::invalid_argument("rrc_bin_emissivity: need e1 > e0");
  // Algorithm 2 integrates each level from its own threshold upward
  // (L = I_{Z,j,n}), so a fixed-cost rule never spans the recombination
  // edge: clamp the bin to the emitting part.
  const util::KeV edge{ch.level.binding_keV};
  if (e1 <= edge) return {};
  const util::KeV lo = std::max(e0, edge);
  // The quad substrate is unitless: unwrap to double for the integrand and
  // re-attach the emissivity unit on the result.
  auto f = [&](double e) {
    return rrc_power_density(ch, plasma, util::KeV{e}).value();
  };
  return BinEmissivity::from(
      quad::kernel_integrate(method, method_param, f, lo.value(), e1.value()));
}

BinEmissivity rrc_bin_emissivity_qags(const RrcChannel& ch,
                                      const PlasmaState& plasma, util::KeV e0,
                                      util::KeV e1, double errabs,
                                      double errrel) {
  if (!(e1 > e0))
    throw std::invalid_argument("rrc_bin_emissivity_qags: need e1 > e0");
  auto f = [&](double e) {
    return rrc_power_density(ch, plasma, util::KeV{e}).value();
  };
  const util::KeV edge{ch.level.binding_keV};
  if (edge > e0 && edge < e1) {
    // Split at the recombination edge: below is identically zero.
    return BinEmissivity::from(
        quad::qags(f, edge.value(), e1.value(), errabs, errrel));
  }
  if (edge >= e1) return {};
  return BinEmissivity::from(
      quad::qags(f, e0.value(), e1.value(), errabs, errrel));
}

util::EmissivityPhotCm3PerS rrc_bin_emissivity_exact_nogaunt(
    const RrcChannel& ch, const PlasmaState& plasma, util::KeV e0,
    util::KeV e1) {
  if (ch.gaunt_correction)
    throw std::invalid_argument(
        "exact form is only valid without the Gaunt correction");
  const util::KeV binding{ch.level.binding_keV};
  if (e1 <= binding) return util::EmissivityPhotCm3PerS{0.0};
  const double lo = std::max(e0, binding).value();
  // sigma_rec * Ee * Eg == sw * sigma0 * n / z^2 * I^3 / me_c2 (constant).
  const double z = static_cast<double>(ch.recombining_charge);
  const double b = binding.value();
  const double c_const = atomic::kKramersSigma0 *
                         static_cast<double>(ch.level.n) / (z * z) * b * b * b /
                         atomic::kElectronRestKeV;
  const double kt = plasma.kT_keV.value();
  const double integral =
      kt * (std::exp(-(lo - b) / kt) - std::exp(-(e1.value() - b) / kt));
  return util::EmissivityPhotCm3PerS{maxwellian_prefactor(plasma) * c_const *
                                     integral};
}

}  // namespace hspec::rrc
