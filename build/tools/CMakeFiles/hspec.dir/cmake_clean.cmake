file(REMOVE_RECURSE
  "CMakeFiles/hspec.dir/hspec.cpp.o"
  "CMakeFiles/hspec.dir/hspec.cpp.o.d"
  "hspec"
  "hspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
