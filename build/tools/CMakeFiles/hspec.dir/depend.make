# Empty dependencies file for hspec.
# This may be replaced when dependencies are built.
