# Empty compiler generated dependencies file for hspec_atomic.
# This may be replaced when dependencies are built.
