file(REMOVE_RECURSE
  "CMakeFiles/hspec_atomic.dir/cross_section.cpp.o"
  "CMakeFiles/hspec_atomic.dir/cross_section.cpp.o.d"
  "CMakeFiles/hspec_atomic.dir/database.cpp.o"
  "CMakeFiles/hspec_atomic.dir/database.cpp.o.d"
  "CMakeFiles/hspec_atomic.dir/element.cpp.o"
  "CMakeFiles/hspec_atomic.dir/element.cpp.o.d"
  "CMakeFiles/hspec_atomic.dir/ion_balance.cpp.o"
  "CMakeFiles/hspec_atomic.dir/ion_balance.cpp.o.d"
  "CMakeFiles/hspec_atomic.dir/levels.cpp.o"
  "CMakeFiles/hspec_atomic.dir/levels.cpp.o.d"
  "CMakeFiles/hspec_atomic.dir/rates.cpp.o"
  "CMakeFiles/hspec_atomic.dir/rates.cpp.o.d"
  "libhspec_atomic.a"
  "libhspec_atomic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hspec_atomic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
