
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atomic/cross_section.cpp" "src/atomic/CMakeFiles/hspec_atomic.dir/cross_section.cpp.o" "gcc" "src/atomic/CMakeFiles/hspec_atomic.dir/cross_section.cpp.o.d"
  "/root/repo/src/atomic/database.cpp" "src/atomic/CMakeFiles/hspec_atomic.dir/database.cpp.o" "gcc" "src/atomic/CMakeFiles/hspec_atomic.dir/database.cpp.o.d"
  "/root/repo/src/atomic/element.cpp" "src/atomic/CMakeFiles/hspec_atomic.dir/element.cpp.o" "gcc" "src/atomic/CMakeFiles/hspec_atomic.dir/element.cpp.o.d"
  "/root/repo/src/atomic/ion_balance.cpp" "src/atomic/CMakeFiles/hspec_atomic.dir/ion_balance.cpp.o" "gcc" "src/atomic/CMakeFiles/hspec_atomic.dir/ion_balance.cpp.o.d"
  "/root/repo/src/atomic/levels.cpp" "src/atomic/CMakeFiles/hspec_atomic.dir/levels.cpp.o" "gcc" "src/atomic/CMakeFiles/hspec_atomic.dir/levels.cpp.o.d"
  "/root/repo/src/atomic/rates.cpp" "src/atomic/CMakeFiles/hspec_atomic.dir/rates.cpp.o" "gcc" "src/atomic/CMakeFiles/hspec_atomic.dir/rates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hspec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
