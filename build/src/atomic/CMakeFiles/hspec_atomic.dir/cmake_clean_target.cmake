file(REMOVE_RECURSE
  "libhspec_atomic.a"
)
