
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/autotune.cpp" "src/core/CMakeFiles/hspec_core.dir/autotune.cpp.o" "gcc" "src/core/CMakeFiles/hspec_core.dir/autotune.cpp.o.d"
  "/root/repo/src/core/cpu_task_executor.cpp" "src/core/CMakeFiles/hspec_core.dir/cpu_task_executor.cpp.o" "gcc" "src/core/CMakeFiles/hspec_core.dir/cpu_task_executor.cpp.o.d"
  "/root/repo/src/core/gpu_task_executor.cpp" "src/core/CMakeFiles/hspec_core.dir/gpu_task_executor.cpp.o" "gcc" "src/core/CMakeFiles/hspec_core.dir/gpu_task_executor.cpp.o.d"
  "/root/repo/src/core/hybrid.cpp" "src/core/CMakeFiles/hspec_core.dir/hybrid.cpp.o" "gcc" "src/core/CMakeFiles/hspec_core.dir/hybrid.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/hspec_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/hspec_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/shm.cpp" "src/core/CMakeFiles/hspec_core.dir/shm.cpp.o" "gcc" "src/core/CMakeFiles/hspec_core.dir/shm.cpp.o.d"
  "/root/repo/src/core/task.cpp" "src/core/CMakeFiles/hspec_core.dir/task.cpp.o" "gcc" "src/core/CMakeFiles/hspec_core.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apec/CMakeFiles/hspec_apec.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/hspec_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/hspec_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hspec_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rrc/CMakeFiles/hspec_rrc.dir/DependInfo.cmake"
  "/root/repo/build/src/atomic/CMakeFiles/hspec_atomic.dir/DependInfo.cmake"
  "/root/repo/build/src/quad/CMakeFiles/hspec_quad.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
