# Empty dependencies file for hspec_core.
# This may be replaced when dependencies are built.
