file(REMOVE_RECURSE
  "CMakeFiles/hspec_core.dir/autotune.cpp.o"
  "CMakeFiles/hspec_core.dir/autotune.cpp.o.d"
  "CMakeFiles/hspec_core.dir/cpu_task_executor.cpp.o"
  "CMakeFiles/hspec_core.dir/cpu_task_executor.cpp.o.d"
  "CMakeFiles/hspec_core.dir/gpu_task_executor.cpp.o"
  "CMakeFiles/hspec_core.dir/gpu_task_executor.cpp.o.d"
  "CMakeFiles/hspec_core.dir/hybrid.cpp.o"
  "CMakeFiles/hspec_core.dir/hybrid.cpp.o.d"
  "CMakeFiles/hspec_core.dir/scheduler.cpp.o"
  "CMakeFiles/hspec_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/hspec_core.dir/shm.cpp.o"
  "CMakeFiles/hspec_core.dir/shm.cpp.o.d"
  "CMakeFiles/hspec_core.dir/task.cpp.o"
  "CMakeFiles/hspec_core.dir/task.cpp.o.d"
  "libhspec_core.a"
  "libhspec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hspec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
