file(REMOVE_RECURSE
  "libhspec_core.a"
)
