file(REMOVE_RECURSE
  "libhspec_minimpi.a"
)
