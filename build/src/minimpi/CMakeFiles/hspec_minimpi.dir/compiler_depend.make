# Empty compiler generated dependencies file for hspec_minimpi.
# This may be replaced when dependencies are built.
