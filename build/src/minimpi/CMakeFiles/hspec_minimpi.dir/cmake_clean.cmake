file(REMOVE_RECURSE
  "CMakeFiles/hspec_minimpi.dir/minimpi.cpp.o"
  "CMakeFiles/hspec_minimpi.dir/minimpi.cpp.o.d"
  "libhspec_minimpi.a"
  "libhspec_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hspec_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
