file(REMOVE_RECURSE
  "CMakeFiles/hspec_rrc.dir/rrc.cpp.o"
  "CMakeFiles/hspec_rrc.dir/rrc.cpp.o.d"
  "libhspec_rrc.a"
  "libhspec_rrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hspec_rrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
