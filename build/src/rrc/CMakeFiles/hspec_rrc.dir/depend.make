# Empty dependencies file for hspec_rrc.
# This may be replaced when dependencies are built.
