file(REMOVE_RECURSE
  "libhspec_rrc.a"
)
