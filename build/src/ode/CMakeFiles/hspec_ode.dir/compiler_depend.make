# Empty compiler generated dependencies file for hspec_ode.
# This may be replaced when dependencies are built.
