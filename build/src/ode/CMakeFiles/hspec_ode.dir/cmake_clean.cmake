file(REMOVE_RECURSE
  "CMakeFiles/hspec_ode.dir/bdf.cpp.o"
  "CMakeFiles/hspec_ode.dir/bdf.cpp.o.d"
  "CMakeFiles/hspec_ode.dir/linalg.cpp.o"
  "CMakeFiles/hspec_ode.dir/linalg.cpp.o.d"
  "CMakeFiles/hspec_ode.dir/lsoda.cpp.o"
  "CMakeFiles/hspec_ode.dir/lsoda.cpp.o.d"
  "CMakeFiles/hspec_ode.dir/rk45.cpp.o"
  "CMakeFiles/hspec_ode.dir/rk45.cpp.o.d"
  "CMakeFiles/hspec_ode.dir/system.cpp.o"
  "CMakeFiles/hspec_ode.dir/system.cpp.o.d"
  "CMakeFiles/hspec_ode.dir/tridiag_eigen.cpp.o"
  "CMakeFiles/hspec_ode.dir/tridiag_eigen.cpp.o.d"
  "libhspec_ode.a"
  "libhspec_ode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hspec_ode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
