
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ode/bdf.cpp" "src/ode/CMakeFiles/hspec_ode.dir/bdf.cpp.o" "gcc" "src/ode/CMakeFiles/hspec_ode.dir/bdf.cpp.o.d"
  "/root/repo/src/ode/linalg.cpp" "src/ode/CMakeFiles/hspec_ode.dir/linalg.cpp.o" "gcc" "src/ode/CMakeFiles/hspec_ode.dir/linalg.cpp.o.d"
  "/root/repo/src/ode/lsoda.cpp" "src/ode/CMakeFiles/hspec_ode.dir/lsoda.cpp.o" "gcc" "src/ode/CMakeFiles/hspec_ode.dir/lsoda.cpp.o.d"
  "/root/repo/src/ode/rk45.cpp" "src/ode/CMakeFiles/hspec_ode.dir/rk45.cpp.o" "gcc" "src/ode/CMakeFiles/hspec_ode.dir/rk45.cpp.o.d"
  "/root/repo/src/ode/system.cpp" "src/ode/CMakeFiles/hspec_ode.dir/system.cpp.o" "gcc" "src/ode/CMakeFiles/hspec_ode.dir/system.cpp.o.d"
  "/root/repo/src/ode/tridiag_eigen.cpp" "src/ode/CMakeFiles/hspec_ode.dir/tridiag_eigen.cpp.o" "gcc" "src/ode/CMakeFiles/hspec_ode.dir/tridiag_eigen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hspec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
