file(REMOVE_RECURSE
  "libhspec_ode.a"
)
