file(REMOVE_RECURSE
  "CMakeFiles/hspec_nei.dir/evolve.cpp.o"
  "CMakeFiles/hspec_nei.dir/evolve.cpp.o.d"
  "CMakeFiles/hspec_nei.dir/expm_solver.cpp.o"
  "CMakeFiles/hspec_nei.dir/expm_solver.cpp.o.d"
  "CMakeFiles/hspec_nei.dir/hybrid_nei.cpp.o"
  "CMakeFiles/hspec_nei.dir/hybrid_nei.cpp.o.d"
  "CMakeFiles/hspec_nei.dir/system.cpp.o"
  "CMakeFiles/hspec_nei.dir/system.cpp.o.d"
  "CMakeFiles/hspec_nei.dir/trajectory.cpp.o"
  "CMakeFiles/hspec_nei.dir/trajectory.cpp.o.d"
  "libhspec_nei.a"
  "libhspec_nei.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hspec_nei.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
