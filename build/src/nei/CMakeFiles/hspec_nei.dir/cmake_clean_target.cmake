file(REMOVE_RECURSE
  "libhspec_nei.a"
)
