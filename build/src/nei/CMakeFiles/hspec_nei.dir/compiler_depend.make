# Empty compiler generated dependencies file for hspec_nei.
# This may be replaced when dependencies are built.
