# CMake generated Testfile for 
# Source directory: /root/repo/src/nei
# Build directory: /root/repo/build/src/nei
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
