file(REMOVE_RECURSE
  "libhspec_apec.a"
)
