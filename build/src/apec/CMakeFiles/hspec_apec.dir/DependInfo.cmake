
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apec/calculator.cpp" "src/apec/CMakeFiles/hspec_apec.dir/calculator.cpp.o" "gcc" "src/apec/CMakeFiles/hspec_apec.dir/calculator.cpp.o.d"
  "/root/repo/src/apec/continuum.cpp" "src/apec/CMakeFiles/hspec_apec.dir/continuum.cpp.o" "gcc" "src/apec/CMakeFiles/hspec_apec.dir/continuum.cpp.o.d"
  "/root/repo/src/apec/energy_grid.cpp" "src/apec/CMakeFiles/hspec_apec.dir/energy_grid.cpp.o" "gcc" "src/apec/CMakeFiles/hspec_apec.dir/energy_grid.cpp.o.d"
  "/root/repo/src/apec/fitting.cpp" "src/apec/CMakeFiles/hspec_apec.dir/fitting.cpp.o" "gcc" "src/apec/CMakeFiles/hspec_apec.dir/fitting.cpp.o.d"
  "/root/repo/src/apec/level_population.cpp" "src/apec/CMakeFiles/hspec_apec.dir/level_population.cpp.o" "gcc" "src/apec/CMakeFiles/hspec_apec.dir/level_population.cpp.o.d"
  "/root/repo/src/apec/lines.cpp" "src/apec/CMakeFiles/hspec_apec.dir/lines.cpp.o" "gcc" "src/apec/CMakeFiles/hspec_apec.dir/lines.cpp.o.d"
  "/root/repo/src/apec/parameter_space.cpp" "src/apec/CMakeFiles/hspec_apec.dir/parameter_space.cpp.o" "gcc" "src/apec/CMakeFiles/hspec_apec.dir/parameter_space.cpp.o.d"
  "/root/repo/src/apec/response.cpp" "src/apec/CMakeFiles/hspec_apec.dir/response.cpp.o" "gcc" "src/apec/CMakeFiles/hspec_apec.dir/response.cpp.o.d"
  "/root/repo/src/apec/spectrum.cpp" "src/apec/CMakeFiles/hspec_apec.dir/spectrum.cpp.o" "gcc" "src/apec/CMakeFiles/hspec_apec.dir/spectrum.cpp.o.d"
  "/root/repo/src/apec/two_photon.cpp" "src/apec/CMakeFiles/hspec_apec.dir/two_photon.cpp.o" "gcc" "src/apec/CMakeFiles/hspec_apec.dir/two_photon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rrc/CMakeFiles/hspec_rrc.dir/DependInfo.cmake"
  "/root/repo/build/src/atomic/CMakeFiles/hspec_atomic.dir/DependInfo.cmake"
  "/root/repo/build/src/quad/CMakeFiles/hspec_quad.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hspec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
