file(REMOVE_RECURSE
  "CMakeFiles/hspec_apec.dir/calculator.cpp.o"
  "CMakeFiles/hspec_apec.dir/calculator.cpp.o.d"
  "CMakeFiles/hspec_apec.dir/continuum.cpp.o"
  "CMakeFiles/hspec_apec.dir/continuum.cpp.o.d"
  "CMakeFiles/hspec_apec.dir/energy_grid.cpp.o"
  "CMakeFiles/hspec_apec.dir/energy_grid.cpp.o.d"
  "CMakeFiles/hspec_apec.dir/fitting.cpp.o"
  "CMakeFiles/hspec_apec.dir/fitting.cpp.o.d"
  "CMakeFiles/hspec_apec.dir/level_population.cpp.o"
  "CMakeFiles/hspec_apec.dir/level_population.cpp.o.d"
  "CMakeFiles/hspec_apec.dir/lines.cpp.o"
  "CMakeFiles/hspec_apec.dir/lines.cpp.o.d"
  "CMakeFiles/hspec_apec.dir/parameter_space.cpp.o"
  "CMakeFiles/hspec_apec.dir/parameter_space.cpp.o.d"
  "CMakeFiles/hspec_apec.dir/response.cpp.o"
  "CMakeFiles/hspec_apec.dir/response.cpp.o.d"
  "CMakeFiles/hspec_apec.dir/spectrum.cpp.o"
  "CMakeFiles/hspec_apec.dir/spectrum.cpp.o.d"
  "CMakeFiles/hspec_apec.dir/two_photon.cpp.o"
  "CMakeFiles/hspec_apec.dir/two_photon.cpp.o.d"
  "libhspec_apec.a"
  "libhspec_apec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hspec_apec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
