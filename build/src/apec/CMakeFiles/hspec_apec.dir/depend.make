# Empty dependencies file for hspec_apec.
# This may be replaced when dependencies are built.
