file(REMOVE_RECURSE
  "libhspec_sim.a"
)
