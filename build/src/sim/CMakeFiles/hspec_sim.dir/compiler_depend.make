# Empty compiler generated dependencies file for hspec_sim.
# This may be replaced when dependencies are built.
