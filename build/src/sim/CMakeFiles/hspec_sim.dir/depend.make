# Empty dependencies file for hspec_sim.
# This may be replaced when dependencies are built.
