file(REMOVE_RECURSE
  "CMakeFiles/hspec_sim.dir/analytic_bounds.cpp.o"
  "CMakeFiles/hspec_sim.dir/analytic_bounds.cpp.o.d"
  "CMakeFiles/hspec_sim.dir/cluster_sim.cpp.o"
  "CMakeFiles/hspec_sim.dir/cluster_sim.cpp.o.d"
  "CMakeFiles/hspec_sim.dir/event_queue.cpp.o"
  "CMakeFiles/hspec_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/hspec_sim.dir/hybrid_sim.cpp.o"
  "CMakeFiles/hspec_sim.dir/hybrid_sim.cpp.o.d"
  "libhspec_sim.a"
  "libhspec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hspec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
