file(REMOVE_RECURSE
  "CMakeFiles/hspec_vgpu.dir/buffer_pool.cpp.o"
  "CMakeFiles/hspec_vgpu.dir/buffer_pool.cpp.o.d"
  "CMakeFiles/hspec_vgpu.dir/cost_model.cpp.o"
  "CMakeFiles/hspec_vgpu.dir/cost_model.cpp.o.d"
  "CMakeFiles/hspec_vgpu.dir/device.cpp.o"
  "CMakeFiles/hspec_vgpu.dir/device.cpp.o.d"
  "CMakeFiles/hspec_vgpu.dir/device_properties.cpp.o"
  "CMakeFiles/hspec_vgpu.dir/device_properties.cpp.o.d"
  "CMakeFiles/hspec_vgpu.dir/integr_kernel.cpp.o"
  "CMakeFiles/hspec_vgpu.dir/integr_kernel.cpp.o.d"
  "CMakeFiles/hspec_vgpu.dir/reduce_kernel.cpp.o"
  "CMakeFiles/hspec_vgpu.dir/reduce_kernel.cpp.o.d"
  "CMakeFiles/hspec_vgpu.dir/stream.cpp.o"
  "CMakeFiles/hspec_vgpu.dir/stream.cpp.o.d"
  "libhspec_vgpu.a"
  "libhspec_vgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hspec_vgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
