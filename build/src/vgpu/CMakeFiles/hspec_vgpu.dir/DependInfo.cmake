
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vgpu/buffer_pool.cpp" "src/vgpu/CMakeFiles/hspec_vgpu.dir/buffer_pool.cpp.o" "gcc" "src/vgpu/CMakeFiles/hspec_vgpu.dir/buffer_pool.cpp.o.d"
  "/root/repo/src/vgpu/cost_model.cpp" "src/vgpu/CMakeFiles/hspec_vgpu.dir/cost_model.cpp.o" "gcc" "src/vgpu/CMakeFiles/hspec_vgpu.dir/cost_model.cpp.o.d"
  "/root/repo/src/vgpu/device.cpp" "src/vgpu/CMakeFiles/hspec_vgpu.dir/device.cpp.o" "gcc" "src/vgpu/CMakeFiles/hspec_vgpu.dir/device.cpp.o.d"
  "/root/repo/src/vgpu/device_properties.cpp" "src/vgpu/CMakeFiles/hspec_vgpu.dir/device_properties.cpp.o" "gcc" "src/vgpu/CMakeFiles/hspec_vgpu.dir/device_properties.cpp.o.d"
  "/root/repo/src/vgpu/integr_kernel.cpp" "src/vgpu/CMakeFiles/hspec_vgpu.dir/integr_kernel.cpp.o" "gcc" "src/vgpu/CMakeFiles/hspec_vgpu.dir/integr_kernel.cpp.o.d"
  "/root/repo/src/vgpu/reduce_kernel.cpp" "src/vgpu/CMakeFiles/hspec_vgpu.dir/reduce_kernel.cpp.o" "gcc" "src/vgpu/CMakeFiles/hspec_vgpu.dir/reduce_kernel.cpp.o.d"
  "/root/repo/src/vgpu/stream.cpp" "src/vgpu/CMakeFiles/hspec_vgpu.dir/stream.cpp.o" "gcc" "src/vgpu/CMakeFiles/hspec_vgpu.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quad/CMakeFiles/hspec_quad.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hspec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
