# Empty compiler generated dependencies file for hspec_vgpu.
# This may be replaced when dependencies are built.
