file(REMOVE_RECURSE
  "libhspec_vgpu.a"
)
