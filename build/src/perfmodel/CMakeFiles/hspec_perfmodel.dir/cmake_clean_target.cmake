file(REMOVE_RECURSE
  "libhspec_perfmodel.a"
)
