file(REMOVE_RECURSE
  "CMakeFiles/hspec_perfmodel.dir/calibration.cpp.o"
  "CMakeFiles/hspec_perfmodel.dir/calibration.cpp.o.d"
  "CMakeFiles/hspec_perfmodel.dir/nei_cost.cpp.o"
  "CMakeFiles/hspec_perfmodel.dir/nei_cost.cpp.o.d"
  "libhspec_perfmodel.a"
  "libhspec_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hspec_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
