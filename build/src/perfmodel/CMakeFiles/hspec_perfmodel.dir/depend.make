# Empty dependencies file for hspec_perfmodel.
# This may be replaced when dependencies are built.
