file(REMOVE_RECURSE
  "CMakeFiles/hspec_quad.dir/gauss_kronrod.cpp.o"
  "CMakeFiles/hspec_quad.dir/gauss_kronrod.cpp.o.d"
  "CMakeFiles/hspec_quad.dir/gauss_legendre.cpp.o"
  "CMakeFiles/hspec_quad.dir/gauss_legendre.cpp.o.d"
  "CMakeFiles/hspec_quad.dir/integrate.cpp.o"
  "CMakeFiles/hspec_quad.dir/integrate.cpp.o.d"
  "CMakeFiles/hspec_quad.dir/newton_cotes.cpp.o"
  "CMakeFiles/hspec_quad.dir/newton_cotes.cpp.o.d"
  "CMakeFiles/hspec_quad.dir/qagp.cpp.o"
  "CMakeFiles/hspec_quad.dir/qagp.cpp.o.d"
  "CMakeFiles/hspec_quad.dir/qags.cpp.o"
  "CMakeFiles/hspec_quad.dir/qags.cpp.o.d"
  "CMakeFiles/hspec_quad.dir/qng.cpp.o"
  "CMakeFiles/hspec_quad.dir/qng.cpp.o.d"
  "CMakeFiles/hspec_quad.dir/romberg.cpp.o"
  "CMakeFiles/hspec_quad.dir/romberg.cpp.o.d"
  "libhspec_quad.a"
  "libhspec_quad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hspec_quad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
