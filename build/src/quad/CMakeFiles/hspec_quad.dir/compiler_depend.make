# Empty compiler generated dependencies file for hspec_quad.
# This may be replaced when dependencies are built.
