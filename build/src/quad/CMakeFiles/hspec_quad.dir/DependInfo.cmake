
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quad/gauss_kronrod.cpp" "src/quad/CMakeFiles/hspec_quad.dir/gauss_kronrod.cpp.o" "gcc" "src/quad/CMakeFiles/hspec_quad.dir/gauss_kronrod.cpp.o.d"
  "/root/repo/src/quad/gauss_legendre.cpp" "src/quad/CMakeFiles/hspec_quad.dir/gauss_legendre.cpp.o" "gcc" "src/quad/CMakeFiles/hspec_quad.dir/gauss_legendre.cpp.o.d"
  "/root/repo/src/quad/integrate.cpp" "src/quad/CMakeFiles/hspec_quad.dir/integrate.cpp.o" "gcc" "src/quad/CMakeFiles/hspec_quad.dir/integrate.cpp.o.d"
  "/root/repo/src/quad/newton_cotes.cpp" "src/quad/CMakeFiles/hspec_quad.dir/newton_cotes.cpp.o" "gcc" "src/quad/CMakeFiles/hspec_quad.dir/newton_cotes.cpp.o.d"
  "/root/repo/src/quad/qagp.cpp" "src/quad/CMakeFiles/hspec_quad.dir/qagp.cpp.o" "gcc" "src/quad/CMakeFiles/hspec_quad.dir/qagp.cpp.o.d"
  "/root/repo/src/quad/qags.cpp" "src/quad/CMakeFiles/hspec_quad.dir/qags.cpp.o" "gcc" "src/quad/CMakeFiles/hspec_quad.dir/qags.cpp.o.d"
  "/root/repo/src/quad/qng.cpp" "src/quad/CMakeFiles/hspec_quad.dir/qng.cpp.o" "gcc" "src/quad/CMakeFiles/hspec_quad.dir/qng.cpp.o.d"
  "/root/repo/src/quad/romberg.cpp" "src/quad/CMakeFiles/hspec_quad.dir/romberg.cpp.o" "gcc" "src/quad/CMakeFiles/hspec_quad.dir/romberg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hspec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
