file(REMOVE_RECURSE
  "libhspec_quad.a"
)
