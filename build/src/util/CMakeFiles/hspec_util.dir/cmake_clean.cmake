file(REMOVE_RECURSE
  "CMakeFiles/hspec_util.dir/brent.cpp.o"
  "CMakeFiles/hspec_util.dir/brent.cpp.o.d"
  "CMakeFiles/hspec_util.dir/cli.cpp.o"
  "CMakeFiles/hspec_util.dir/cli.cpp.o.d"
  "CMakeFiles/hspec_util.dir/config.cpp.o"
  "CMakeFiles/hspec_util.dir/config.cpp.o.d"
  "CMakeFiles/hspec_util.dir/histogram.cpp.o"
  "CMakeFiles/hspec_util.dir/histogram.cpp.o.d"
  "CMakeFiles/hspec_util.dir/statistics.cpp.o"
  "CMakeFiles/hspec_util.dir/statistics.cpp.o.d"
  "CMakeFiles/hspec_util.dir/table.cpp.o"
  "CMakeFiles/hspec_util.dir/table.cpp.o.d"
  "libhspec_util.a"
  "libhspec_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hspec_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
