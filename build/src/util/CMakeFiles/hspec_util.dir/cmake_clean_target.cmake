file(REMOVE_RECURSE
  "libhspec_util.a"
)
