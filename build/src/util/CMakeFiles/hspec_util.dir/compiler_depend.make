# Empty compiler generated dependencies file for hspec_util.
# This may be replaced when dependencies are built.
