# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/quad_test[1]_include.cmake")
include("/root/repo/build/tests/atomic_test[1]_include.cmake")
include("/root/repo/build/tests/rrc_test[1]_include.cmake")
include("/root/repo/build/tests/apec_test[1]_include.cmake")
include("/root/repo/build/tests/vgpu_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/minimpi_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build/tests/ode_test[1]_include.cmake")
include("/root/repo/build/tests/nei_test[1]_include.cmake")
include("/root/repo/build/tests/nei_hybrid_test[1]_include.cmake")
include("/root/repo/build/tests/fitting_test[1]_include.cmake")
include("/root/repo/build/tests/physics_ext_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
