file(REMOVE_RECURSE
  "CMakeFiles/vgpu_test.dir/vgpu_test.cpp.o"
  "CMakeFiles/vgpu_test.dir/vgpu_test.cpp.o.d"
  "vgpu_test"
  "vgpu_test.pdb"
  "vgpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
