# Empty compiler generated dependencies file for vgpu_test.
# This may be replaced when dependencies are built.
