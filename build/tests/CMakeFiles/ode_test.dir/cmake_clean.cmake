file(REMOVE_RECURSE
  "CMakeFiles/ode_test.dir/ode_test.cpp.o"
  "CMakeFiles/ode_test.dir/ode_test.cpp.o.d"
  "ode_test"
  "ode_test.pdb"
  "ode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
