# Empty dependencies file for ode_test.
# This may be replaced when dependencies are built.
