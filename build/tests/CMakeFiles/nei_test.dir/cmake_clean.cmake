file(REMOVE_RECURSE
  "CMakeFiles/nei_test.dir/nei_test.cpp.o"
  "CMakeFiles/nei_test.dir/nei_test.cpp.o.d"
  "nei_test"
  "nei_test.pdb"
  "nei_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nei_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
