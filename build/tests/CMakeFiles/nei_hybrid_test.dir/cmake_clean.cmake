file(REMOVE_RECURSE
  "CMakeFiles/nei_hybrid_test.dir/nei_hybrid_test.cpp.o"
  "CMakeFiles/nei_hybrid_test.dir/nei_hybrid_test.cpp.o.d"
  "nei_hybrid_test"
  "nei_hybrid_test.pdb"
  "nei_hybrid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nei_hybrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
