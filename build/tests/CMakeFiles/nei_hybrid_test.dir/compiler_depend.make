# Empty compiler generated dependencies file for nei_hybrid_test.
# This may be replaced when dependencies are built.
