file(REMOVE_RECURSE
  "CMakeFiles/apec_test.dir/apec_test.cpp.o"
  "CMakeFiles/apec_test.dir/apec_test.cpp.o.d"
  "apec_test"
  "apec_test.pdb"
  "apec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
