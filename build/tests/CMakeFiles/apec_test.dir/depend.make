# Empty dependencies file for apec_test.
# This may be replaced when dependencies are built.
