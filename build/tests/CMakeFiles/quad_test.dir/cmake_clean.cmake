file(REMOVE_RECURSE
  "CMakeFiles/quad_test.dir/quad_test.cpp.o"
  "CMakeFiles/quad_test.dir/quad_test.cpp.o.d"
  "quad_test"
  "quad_test.pdb"
  "quad_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
