# Empty dependencies file for quad_test.
# This may be replaced when dependencies are built.
