# Empty compiler generated dependencies file for rrc_test.
# This may be replaced when dependencies are built.
