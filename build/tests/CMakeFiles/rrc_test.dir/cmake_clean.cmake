file(REMOVE_RECURSE
  "CMakeFiles/rrc_test.dir/rrc_test.cpp.o"
  "CMakeFiles/rrc_test.dir/rrc_test.cpp.o.d"
  "rrc_test"
  "rrc_test.pdb"
  "rrc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
