# Empty compiler generated dependencies file for physics_ext_test.
# This may be replaced when dependencies are built.
