file(REMOVE_RECURSE
  "CMakeFiles/physics_ext_test.dir/physics_ext_test.cpp.o"
  "CMakeFiles/physics_ext_test.dir/physics_ext_test.cpp.o.d"
  "physics_ext_test"
  "physics_ext_test.pdb"
  "physics_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/physics_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
