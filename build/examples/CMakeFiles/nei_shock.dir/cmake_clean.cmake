file(REMOVE_RECURSE
  "CMakeFiles/nei_shock.dir/nei_shock.cpp.o"
  "CMakeFiles/nei_shock.dir/nei_shock.cpp.o.d"
  "nei_shock"
  "nei_shock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nei_shock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
