# Empty dependencies file for nei_shock.
# This may be replaced when dependencies are built.
