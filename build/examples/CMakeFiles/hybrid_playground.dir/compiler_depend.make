# Empty compiler generated dependencies file for hybrid_playground.
# This may be replaced when dependencies are built.
