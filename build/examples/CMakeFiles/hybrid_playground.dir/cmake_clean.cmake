file(REMOVE_RECURSE
  "CMakeFiles/hybrid_playground.dir/hybrid_playground.cpp.o"
  "CMakeFiles/hybrid_playground.dir/hybrid_playground.cpp.o.d"
  "hybrid_playground"
  "hybrid_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
