# Empty dependencies file for spectral_survey.
# This may be replaced when dependencies are built.
