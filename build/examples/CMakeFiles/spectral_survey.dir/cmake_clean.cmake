file(REMOVE_RECURSE
  "CMakeFiles/spectral_survey.dir/spectral_survey.cpp.o"
  "CMakeFiles/spectral_survey.dir/spectral_survey.cpp.o.d"
  "spectral_survey"
  "spectral_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
