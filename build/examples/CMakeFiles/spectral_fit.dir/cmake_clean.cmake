file(REMOVE_RECURSE
  "CMakeFiles/spectral_fit.dir/spectral_fit.cpp.o"
  "CMakeFiles/spectral_fit.dir/spectral_fit.cpp.o.d"
  "spectral_fit"
  "spectral_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
