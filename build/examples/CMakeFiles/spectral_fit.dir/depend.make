# Empty dependencies file for spectral_fit.
# This may be replaced when dependencies are built.
