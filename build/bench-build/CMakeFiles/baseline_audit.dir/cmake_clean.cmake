file(REMOVE_RECURSE
  "../bench/baseline_audit"
  "../bench/baseline_audit.pdb"
  "CMakeFiles/baseline_audit.dir/baseline_audit.cpp.o"
  "CMakeFiles/baseline_audit.dir/baseline_audit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
