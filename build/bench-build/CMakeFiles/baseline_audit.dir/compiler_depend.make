# Empty compiler generated dependencies file for baseline_audit.
# This may be replaced when dependencies are built.
