file(REMOVE_RECURSE
  "../bench/fig7_spectrum"
  "../bench/fig7_spectrum.pdb"
  "CMakeFiles/fig7_spectrum.dir/fig7_spectrum.cpp.o"
  "CMakeFiles/fig7_spectrum.dir/fig7_spectrum.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
