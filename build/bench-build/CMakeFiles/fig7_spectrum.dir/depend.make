# Empty dependencies file for fig7_spectrum.
# This may be replaced when dependencies are built.
