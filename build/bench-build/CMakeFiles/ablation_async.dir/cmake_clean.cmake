file(REMOVE_RECURSE
  "../bench/ablation_async"
  "../bench/ablation_async.pdb"
  "CMakeFiles/ablation_async.dir/ablation_async.cpp.o"
  "CMakeFiles/ablation_async.dir/ablation_async.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
