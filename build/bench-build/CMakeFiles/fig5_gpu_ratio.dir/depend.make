# Empty dependencies file for fig5_gpu_ratio.
# This may be replaced when dependencies are built.
