file(REMOVE_RECURSE
  "../bench/fig5_gpu_ratio"
  "../bench/fig5_gpu_ratio.pdb"
  "CMakeFiles/fig5_gpu_ratio.dir/fig5_gpu_ratio.cpp.o"
  "CMakeFiles/fig5_gpu_ratio.dir/fig5_gpu_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_gpu_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
