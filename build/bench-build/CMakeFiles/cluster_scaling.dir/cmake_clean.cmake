file(REMOVE_RECURSE
  "../bench/cluster_scaling"
  "../bench/cluster_scaling.pdb"
  "CMakeFiles/cluster_scaling.dir/cluster_scaling.cpp.o"
  "CMakeFiles/cluster_scaling.dir/cluster_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
