file(REMOVE_RECURSE
  "../bench/micro_quad"
  "../bench/micro_quad.pdb"
  "CMakeFiles/micro_quad.dir/micro_quad.cpp.o"
  "CMakeFiles/micro_quad.dir/micro_quad.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_quad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
