# Empty dependencies file for micro_quad.
# This may be replaced when dependencies are built.
