file(REMOVE_RECURSE
  "../bench/table2_nei"
  "../bench/table2_nei.pdb"
  "CMakeFiles/table2_nei.dir/table2_nei.cpp.o"
  "CMakeFiles/table2_nei.dir/table2_nei.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_nei.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
