# Empty compiler generated dependencies file for table2_nei.
# This may be replaced when dependencies are built.
