file(REMOVE_RECURSE
  "../bench/fig6_load_distribution"
  "../bench/fig6_load_distribution.pdb"
  "CMakeFiles/fig6_load_distribution.dir/fig6_load_distribution.cpp.o"
  "CMakeFiles/fig6_load_distribution.dir/fig6_load_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_load_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
