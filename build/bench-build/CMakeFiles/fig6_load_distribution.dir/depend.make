# Empty dependencies file for fig6_load_distribution.
# This may be replaced when dependencies are built.
