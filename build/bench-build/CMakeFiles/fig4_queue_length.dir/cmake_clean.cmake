file(REMOVE_RECURSE
  "../bench/fig4_queue_length"
  "../bench/fig4_queue_length.pdb"
  "CMakeFiles/fig4_queue_length.dir/fig4_queue_length.cpp.o"
  "CMakeFiles/fig4_queue_length.dir/fig4_queue_length.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_queue_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
