# Empty dependencies file for fig4_queue_length.
# This may be replaced when dependencies are built.
