# Empty dependencies file for fig3_granularity.
# This may be replaced when dependencies are built.
