file(REMOVE_RECURSE
  "../bench/fig3_granularity"
  "../bench/fig3_granularity.pdb"
  "CMakeFiles/fig3_granularity.dir/fig3_granularity.cpp.o"
  "CMakeFiles/fig3_granularity.dir/fig3_granularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
