file(REMOVE_RECURSE
  "../bench/fig8_error_distribution"
  "../bench/fig8_error_distribution.pdb"
  "CMakeFiles/fig8_error_distribution.dir/fig8_error_distribution.cpp.o"
  "CMakeFiles/fig8_error_distribution.dir/fig8_error_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_error_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
