# Empty dependencies file for fig8_error_distribution.
# This may be replaced when dependencies are built.
