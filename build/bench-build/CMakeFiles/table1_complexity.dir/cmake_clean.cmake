file(REMOVE_RECURSE
  "../bench/table1_complexity"
  "../bench/table1_complexity.pdb"
  "CMakeFiles/table1_complexity.dir/table1_complexity.cpp.o"
  "CMakeFiles/table1_complexity.dir/table1_complexity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
