
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_autotune.cpp" "bench-build/CMakeFiles/ablation_autotune.dir/ablation_autotune.cpp.o" "gcc" "bench-build/CMakeFiles/ablation_autotune.dir/ablation_autotune.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hspec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hspec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/hspec_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/nei/CMakeFiles/hspec_nei.dir/DependInfo.cmake"
  "/root/repo/build/src/ode/CMakeFiles/hspec_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/apec/CMakeFiles/hspec_apec.dir/DependInfo.cmake"
  "/root/repo/build/src/rrc/CMakeFiles/hspec_rrc.dir/DependInfo.cmake"
  "/root/repo/build/src/atomic/CMakeFiles/hspec_atomic.dir/DependInfo.cmake"
  "/root/repo/build/src/quad/CMakeFiles/hspec_quad.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/hspec_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/hspec_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hspec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
