file(REMOVE_RECURSE
  "../bench/ablation_autotune"
  "../bench/ablation_autotune.pdb"
  "CMakeFiles/ablation_autotune.dir/ablation_autotune.cpp.o"
  "CMakeFiles/ablation_autotune.dir/ablation_autotune.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
