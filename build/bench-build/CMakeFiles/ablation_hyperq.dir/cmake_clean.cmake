file(REMOVE_RECURSE
  "../bench/ablation_hyperq"
  "../bench/ablation_hyperq.pdb"
  "CMakeFiles/ablation_hyperq.dir/ablation_hyperq.cpp.o"
  "CMakeFiles/ablation_hyperq.dir/ablation_hyperq.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hyperq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
