# Empty compiler generated dependencies file for ablation_hyperq.
# This may be replaced when dependencies are built.
