// Tests for the spectral-fitting layer (the paper's motivating use case)
// and the Brent minimizer underneath it.

#include <gtest/gtest.h>

#include <cmath>

#include "apec/calculator.h"
#include "apec/fitting.h"
#include "core/hybrid.h"
#include "util/brent.h"

namespace {

using namespace hspec;
using namespace hspec::apec;

// ----------------------------------------------------------------- minimizer

TEST(Brent, FindsQuadraticMinimum) {
  auto f = [](double x) { return (x - 2.5) * (x - 2.5) + 1.0; };
  const auto r = util::brent_minimize(f, 0.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 2.5, 1e-6);
  EXPECT_NEAR(r.fx, 1.0, 1e-10);
}

TEST(Brent, HandlesAsymmetricValleys) {
  auto f = [](double x) { return std::exp(x) - 3.0 * x; };  // min at ln 3
  const auto r = util::brent_minimize(f, 0.0, 4.0);
  EXPECT_NEAR(r.x, std::log(3.0), 1e-6);
}

TEST(Brent, EndpointMinimum) {
  auto f = [](double x) { return x; };
  const auto r = util::brent_minimize(f, 1.0, 5.0);
  EXPECT_NEAR(r.x, 1.0, 1e-3);
}

TEST(Brent, FewEvaluationsOnSmoothFunctions) {
  auto f = [](double x) { return std::cos(x); };  // min at pi
  const auto r = util::brent_minimize(f, 2.0, 4.5);
  EXPECT_NEAR(r.x, 3.14159265, 1e-5);
  EXPECT_LT(r.evaluations, 40u);  // parabolic steps, not pure golden
}

TEST(Brent, RejectsEmptyBracket) {
  auto f = [](double x) { return x; };
  EXPECT_THROW(util::brent_minimize(f, 2.0, 2.0), std::invalid_argument);
}

// ---------------------------------------------------------------- chi-squared

TEST(ChiSquared, PerfectModelWithUnitNormalization) {
  const auto grid = EnergyGrid::linear(1.0, 2.0, 8);
  Spectrum model(grid);
  for (std::size_t b = 0; b < 8; ++b) model[b] = 1.0 + 0.1 * b;
  ObservedSpectrum obs;
  obs.counts.assign(model.values().begin(), model.values().end());
  obs.sigma.assign(8, 0.05);
  const auto c = chi_squared(obs, model);
  EXPECT_NEAR(c.value, 0.0, 1e-18);
  EXPECT_NEAR(c.normalization, 1.0, 1e-12);
  EXPECT_EQ(c.degrees_of_freedom, 6u);
}

TEST(ChiSquared, ProfilesOutTheNormalization) {
  const auto grid = EnergyGrid::linear(1.0, 2.0, 4);
  Spectrum model(grid);
  for (std::size_t b = 0; b < 4; ++b) model[b] = 2.0;
  ObservedSpectrum obs;
  obs.counts.assign(4, 6.0);  // best A = 3
  obs.sigma.assign(4, 1.0);
  const auto c = chi_squared(obs, model);
  EXPECT_NEAR(c.normalization, 3.0, 1e-12);
  EXPECT_NEAR(c.value, 0.0, 1e-18);
}

TEST(ChiSquared, ValidatesInput) {
  const auto grid = EnergyGrid::linear(1.0, 2.0, 4);
  Spectrum model(grid);
  ObservedSpectrum obs;
  obs.counts.assign(3, 1.0);
  obs.sigma.assign(3, 1.0);
  EXPECT_THROW(chi_squared(obs, model), std::invalid_argument);
  obs.counts.assign(4, 1.0);
  obs.sigma.assign(4, 0.0);
  EXPECT_THROW(chi_squared(obs, model), std::invalid_argument);
}

// ---------------------------------------------------------------- temperature

class FitTest : public ::testing::Test {
 protected:
  FitTest()
      : db_(db_config()), grid_(EnergyGrid::wavelength(2.0, 40.0, 48)),
        calc_(db_, grid_, calc_options()) {}

  static atomic::DatabaseConfig db_config() {
    atomic::DatabaseConfig cfg;
    cfg.max_z = 8;
    cfg.levels = {2, true};
    return cfg;
  }
  static CalcOptions calc_options() {
    CalcOptions opt;
    opt.integration.adaptive = false;
    return opt;
  }

  ModelEvaluator model() const {
    return [this](double kT) {
      return calc_.calculate({kT, 1.0, 0.0, 0});
    };
  }

  atomic::AtomicDatabase db_;
  EnergyGrid grid_;
  SpectrumCalculator calc_;
};

TEST_F(FitTest, RecoversTheTrueTemperatureFromNoiselessData) {
  const double kT_true = 0.55;
  const Spectrum truth = calc_.calculate({kT_true, 1.0, 0.0, 0});
  ObservedSpectrum obs;
  obs.counts.assign(truth.values().begin(), truth.values().end());
  obs.sigma.assign(truth.bin_count(), 1e-3 * truth.peak());
  FitOptions opt;
  opt.kt_min_keV = 0.1;
  opt.kt_max_keV = 3.0;
  const FitResult fit = fit_temperature(obs, model(), opt);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.kT_keV, kT_true, 0.01 * kT_true);
  EXPECT_NEAR(fit.normalization, 1.0, 1e-3);
  EXPECT_LT(fit.reduced_chi2, 0.01);
}

TEST_F(FitTest, RecoversTemperatureAndNormalizationUnderNoise) {
  const double kT_true = 0.8;
  const double norm_true = 2.5;
  const Spectrum truth = calc_.calculate({kT_true, 1.0, 0.0, 0});
  const ObservedSpectrum obs = make_observation(truth, norm_true, 0.02, 17);
  FitOptions opt;
  opt.kt_min_keV = 0.1;
  opt.kt_max_keV = 5.0;
  const FitResult fit = fit_temperature(obs, model(), opt);
  EXPECT_NEAR(fit.kT_keV, kT_true, 0.1 * kT_true);
  EXPECT_NEAR(fit.normalization, norm_true, 0.1 * norm_true);
  // Gaussian noise at the stated sigma: reduced chi2 ~ 1.
  EXPECT_GT(fit.reduced_chi2, 0.3);
  EXPECT_LT(fit.reduced_chi2, 3.0);
}

TEST_F(FitTest, HybridDriverAsModelEvaluator) {
  // Fitting through the hybrid CPU/GPU pipeline: the workload the paper
  // accelerates is exactly these repeated model evaluations.
  const double kT_true = 0.45;
  const Spectrum truth = calc_.calculate({kT_true, 1.0, 0.0, 0});
  ObservedSpectrum obs;
  obs.counts.assign(truth.values().begin(), truth.values().end());
  obs.sigma.assign(truth.bin_count(), 1e-3 * truth.peak());

  core::HybridConfig hybrid_cfg;
  hybrid_cfg.ranks = 2;
  hybrid_cfg.devices = 1;
  auto hybrid_model = [&](double kT) {
    core::HybridDriver driver(calc_, hybrid_cfg);
    return driver.run({{kT, 1.0, 0.0, 0}}).spectra.at(0);
  };
  FitOptions opt;
  opt.kt_min_keV = 0.2;
  opt.kt_max_keV = 1.5;
  const FitResult fit = fit_temperature(obs, hybrid_model, opt);
  EXPECT_NEAR(fit.kT_keV, kT_true, 0.02 * kT_true);
  EXPECT_GT(fit.model_evaluations, 5u);
}

TEST_F(FitTest, ValidatesOptions) {
  ObservedSpectrum obs;
  FitOptions bad;
  bad.kt_min_keV = 2.0;
  bad.kt_max_keV = 1.0;
  EXPECT_THROW(fit_temperature(obs, model(), bad), std::invalid_argument);
}

TEST(MakeObservation, ReproducibleAndScaled) {
  const auto grid = EnergyGrid::linear(1.0, 2.0, 16);
  Spectrum truth(grid);
  for (std::size_t b = 0; b < 16; ++b) truth[b] = 1.0;
  const auto a = make_observation(truth, 4.0, 0.01, 7);
  const auto b = make_observation(truth, 4.0, 0.01, 7);
  EXPECT_EQ(a.counts, b.counts);
  double mean = 0.0;
  for (double c : a.counts) mean += c;
  mean /= 16.0;
  EXPECT_NEAR(mean, 4.0, 0.1);
  EXPECT_THROW(make_observation(truth, 1.0, -0.1, 7), std::invalid_argument);
}

}  // namespace
