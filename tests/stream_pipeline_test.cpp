// Tests for the asynchronous pipelined executor: bit-identical spectra vs
// the synchronous driver, resident-cache H2D savings, stream usage, and
// work stealing through the full hybrid driver.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "apec/calculator.h"
#include "core/hybrid.h"

namespace {

using namespace hspec;
using namespace hspec::core;

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest()
      : db_(small_db()), grid_(apec::EnergyGrid::wavelength(5.0, 40.0, 48)),
        calc_(db_, grid_, kernel_options()) {}

  static atomic::DatabaseConfig small_db() {
    atomic::DatabaseConfig cfg;
    cfg.max_z = 8;
    cfg.levels = {2, true};
    return cfg;
  }
  static apec::CalcOptions kernel_options() {
    apec::CalcOptions opt;
    opt.integration.adaptive = false;
    return opt;
  }

  static std::vector<apec::GridPoint> points(std::size_t n) {
    std::vector<apec::GridPoint> pts;
    for (std::size_t i = 0; i < n; ++i)
      pts.push_back({0.25 + 0.1 * static_cast<double>(i), 1.0, 0.0, i});
    return pts;
  }

  HybridResult run(ExecutionMode mode, int ranks, int devices,
                   const std::vector<apec::GridPoint>& pts,
                   TaskGranularity g = TaskGranularity::ion) {
    HybridConfig cfg;
    cfg.ranks = ranks;
    cfg.devices = devices;
    cfg.granularity = g;
    // Large enough that no task ever falls back to QAGS: fallback decisions
    // are race-dependent and QAGS differs from the Simpson kernels at the
    // 1e-5 level, so bit-identity is only defined on the all-GPU schedule.
    cfg.max_queue_length = 32;
    cfg.mode = mode;
    HybridDriver driver(calc_, cfg);
    return driver.run(pts);
  }

  static void expect_bit_identical(const HybridResult& a,
                                   const HybridResult& b) {
    ASSERT_EQ(a.spectra.size(), b.spectra.size());
    for (std::size_t p = 0; p < a.spectra.size(); ++p)
      for (std::size_t bin = 0; bin < a.spectra[p].bin_count(); ++bin)
        ASSERT_EQ(a.spectra[p][bin], b.spectra[p][bin])
            << "point " << p << " bin " << bin;
  }

  atomic::AtomicDatabase db_;
  apec::EnergyGrid grid_;
  apec::SpectrumCalculator calc_;
};

TEST_F(PipelineTest, AsyncSpectraBitIdenticalToSync) {
  const auto pts = points(3);
  const HybridResult sync = run(ExecutionMode::synchronous, 4, 2, pts);
  const HybridResult async = run(ExecutionMode::pipelined, 4, 2, pts);
  expect_bit_identical(sync, async);
  EXPECT_EQ(sync.tasks_total, async.tasks_total);
}

TEST_F(PipelineTest, AsyncBitIdenticalAtLevelGranularityAndSingleRank) {
  const auto pts = points(2);
  expect_bit_identical(
      run(ExecutionMode::synchronous, 1, 1, pts, TaskGranularity::level),
      run(ExecutionMode::pipelined, 1, 1, pts, TaskGranularity::level));
}

TEST_F(PipelineTest, AsyncBitIdenticalWithoutDevices) {
  // CPU-only: every task falls back to QAGS through the FIFO.
  const auto pts = points(2);
  const HybridResult sync = run(ExecutionMode::synchronous, 3, 0, pts);
  const HybridResult async = run(ExecutionMode::pipelined, 3, 0, pts);
  expect_bit_identical(sync, async);
  EXPECT_EQ(async.pipeline.tasks_pipelined, 0u);
  EXPECT_EQ(async.pipeline.streams_used, 0u);
}

TEST_F(PipelineTest, ResidentCacheSavesMostH2DTraffic) {
  const auto pts = points(3);
  const HybridResult sync = run(ExecutionMode::synchronous, 4, 2, pts);
  const HybridResult async = run(ExecutionMode::pipelined, 4, 2, pts);

  std::uint64_t sync_h2d = 0;
  std::uint64_t async_h2d = 0;
  for (const auto& st : sync.device_stats) sync_h2d += st.bytes_h2d;
  for (const auto& st : async.device_stats) async_h2d += st.bytes_h2d;
  ASSERT_GT(sync_h2d, 0u);
  // The edges went up once per device instead of once per task: >= 50%
  // H2D reduction (in fact ~100% here, since edges are the only upload).
  EXPECT_LE(async_h2d * 2, sync_h2d);
  EXPECT_GT(async.pipeline.cache_hits, 0u);
  EXPECT_EQ(async.pipeline.cache_misses,
            static_cast<std::uint64_t>(async.device_stats.size()));
  EXPECT_GT(async.pipeline.bytes_h2d_saved, 0u);
}

TEST_F(PipelineTest, PipelineShortensTheVirtualTimeline) {
  const auto pts = points(3);
  const HybridResult sync = run(ExecutionMode::synchronous, 4, 2, pts);
  const HybridResult async = run(ExecutionMode::pipelined, 4, 2, pts);
  ASSERT_GT(sync.virtual_makespan_s, 0.0);
  ASSERT_GT(async.virtual_makespan_s, 0.0);
  // Overlapped copies + cached edges: the device timeline must shrink.
  EXPECT_LT(async.virtual_makespan_s, sync.virtual_makespan_s);
  EXPECT_GT(async.pipeline.streams_used, 0u);
  EXPECT_GT(async.pipeline.tasks_pipelined, 0u);
  EXPECT_GE(async.pipeline.max_in_flight, 1u);
}

TEST_F(PipelineTest, WorkStealingComputesEveryPointExactlyOnce) {
  // More points than ranks and real per-point cost: on a loaded machine the
  // first rank to drain its seed range steals from the others. Exactly-once
  // is asserted by bit-identity with the synchronous single-rank reference —
  // a double- or never-computed point cannot match.
  const auto pts = points(10);
  const HybridResult reference = run(ExecutionMode::synchronous, 1, 2, pts);
  const HybridResult stolen = run(ExecutionMode::pipelined, 4, 2, pts);
  expect_bit_identical(reference, stolen);
  // Chunks move between ranks only via the queue; the counters must agree.
  EXPECT_LE(stolen.pipeline.stolen_points, pts.size());
  EXPECT_GE(stolen.pipeline.stolen_points, stolen.pipeline.steals);
}

TEST_F(PipelineTest, KeplerHyperQStillBitIdentical) {
  ::setenv("HSPEC_VGPU_ARCH", "kepler", 1);
  const auto pts = points(2);
  const HybridResult sync = run(ExecutionMode::synchronous, 4, 2, pts);
  const HybridResult async = run(ExecutionMode::pipelined, 4, 2, pts);
  ::unsetenv("HSPEC_VGPU_ARCH");
  expect_bit_identical(sync, async);
  EXPECT_LT(async.virtual_makespan_s, sync.virtual_makespan_s);
}

TEST_F(PipelineTest, ValidatesPipelineConfig) {
  HybridConfig bad;
  bad.pipeline_depth = 0;
  EXPECT_THROW(HybridDriver(calc_, bad), std::invalid_argument);
  HybridConfig bad2;
  bad2.steal_chunk = 0;
  EXPECT_THROW(HybridDriver(calc_, bad2), std::invalid_argument);
  HybridConfig bad3;
  bad3.ranks = kMaxRanks + 1;
  EXPECT_THROW(HybridDriver(calc_, bad3), std::invalid_argument);
}

}  // namespace
