// Cross-module integration tests: the Fig. 7/8 accuracy experiment at test
// scale, the autotuner driving the discrete-event simulator, and the full
// hybrid pipeline over a 3-D parameter space.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "apec/calculator.h"
#include "apec/parameter_space.h"
#include "core/autotune.h"
#include "core/hybrid.h"
#include "perfmodel/calibration.h"
#include "sim/hybrid_sim.h"
#include "util/histogram.h"

namespace {

using namespace hspec;

atomic::DatabaseConfig test_db_config() {
  atomic::DatabaseConfig cfg;
  cfg.max_z = 14;
  cfg.levels = {3, true};  // 6 levels per ion
  return cfg;
}

// ----------------------------------------------------- Fig. 7/8 at test scale

TEST(Accuracy, SerialQagsVsHybridSimpsonErrorDistribution) {
  // The paper's accuracy experiment: serial APEC (QAGS) vs the hybrid
  // GPU path (Simpson-64), compared bin by bin as relative error. Expect a
  // tight distribution around zero with a small tail — no bin off by more
  // than a few times 1e-4 relative, >99% of flux-carrying bins within 5e-5.
  atomic::AtomicDatabase db(test_db_config());
  const auto grid = apec::EnergyGrid::wavelength(2.0, 40.0, 96);

  apec::CalcOptions serial_opt;
  serial_opt.integration.adaptive = true;
  apec::CalcOptions hybrid_opt;
  hybrid_opt.integration.adaptive = false;

  apec::SpectrumCalculator serial_calc(db, grid, serial_opt);
  apec::SpectrumCalculator hybrid_calc(db, grid, hybrid_opt);
  const apec::GridPoint pt{0.6, 1.0, 0.0, 0};

  const apec::Spectrum serial = serial_calc.calculate(pt);
  core::HybridDriver driver(hybrid_calc, {2, 8, core::TaskGranularity::ion, 2});
  const apec::Spectrum hybrid = driver.run({pt}).spectra.at(0);

  const double peak = serial.peak();
  ASSERT_GT(peak, 0.0);
  util::Histogram errors(-1e-4, 1e-4, 50);
  std::size_t counted = 0;
  for (std::size_t b = 0; b < grid.bin_count(); ++b) {
    if (serial[b] < 1e-9 * peak) continue;  // ignore empty bins
    const double rel = (hybrid[b] - serial[b]) / serial[b];
    errors.add(rel);
    ++counted;
    EXPECT_LT(std::fabs(rel), 1e-2) << "bin " << b;
  }
  ASSERT_GT(counted, 20u);
  EXPECT_GT(errors.fraction_between(-5e-5, 5e-5), 0.9);
}

TEST(Accuracy, SpectraVisuallyIdentical) {
  // Fig. 7's criterion: the normalized flux series coincide.
  atomic::AtomicDatabase db(test_db_config());
  const auto grid = apec::EnergyGrid::wavelength(2.0, 40.0, 64);
  apec::CalcOptions opt;
  opt.integration.adaptive = true;
  apec::SpectrumCalculator serial_calc(db, grid, opt);
  apec::CalcOptions kernel_opt;
  kernel_opt.integration.adaptive = false;
  apec::SpectrumCalculator hybrid_calc(db, grid, kernel_opt);

  const apec::GridPoint pt{0.5, 1.0, 0.0, 0};
  const auto serial = serial_calc.calculate(pt).normalized_flux();
  core::HybridDriver driver(hybrid_calc, {4, 6, core::TaskGranularity::ion, 1});
  const auto hybrid = driver.run({pt}).spectra.at(0).normalized_flux();
  for (std::size_t b = 0; b < serial.size(); ++b)
    EXPECT_NEAR(serial[b], hybrid[b], 5e-3);
}

// ----------------------------------------------------- autotuner over the DES

TEST(AutotuneIntegration, FindsTheFig4KneeOnTheSimulator) {
  // §III-A: the scheduler tunes the maximum queue length by probing until
  // the performance inflexion. Drive it with the calibrated simulator.
  perfmodel::SpectralCostModel model({}, perfmodel::paper_workload());
  auto measure = [&](int qlen) {
    sim::HybridSimConfig cfg;
    cfg.ranks = 24;
    cfg.devices = 1;
    cfg.max_queue_length = qlen;
    cfg.total_tasks = 24 * 496;
    cfg.prep_s = model.ion_prep_s();
    cfg.cpu_task_s = model.ion_cpu_s();
    cfg.gpu_task_s = model.ion_gpu_s();
    return sim::simulate_hybrid(cfg).makespan_s;
  };
  const auto result = core::autotune_max_queue_length(measure);
  // Fig. 4: peak performance at maximum queue length 10-12 for 1 GPU; our
  // replica's knee must land in the same neighbourhood.
  EXPECT_GE(result.best_max_queue_length, 6);
  EXPECT_LE(result.best_max_queue_length, 16);
  // And the tuned choice must beat the smallest probe clearly.
  EXPECT_LT(result.best_time_s, result.probes.front().time_s * 0.75);
}

// -------------------------------------------------- full pipeline over a grid

TEST(Pipeline, ParameterSpaceSweepMatchesSerial) {
  atomic::DatabaseConfig cfg;
  cfg.max_z = 8;
  cfg.levels = {2, true};
  atomic::AtomicDatabase db(cfg);
  const auto grid = apec::EnergyGrid::logarithmic(0.08, 2.0, 40);
  apec::CalcOptions opt;
  opt.integration.adaptive = false;
  apec::SpectrumCalculator calc(db, grid, opt);

  apec::ParameterSpace space({0.2, 1.0, 3, false}, {1.0, 10.0, 2, true},
                             {0.0, 0.0, 1, false});
  const auto points = space.all_points();
  ASSERT_EQ(points.size(), 6u);

  core::HybridConfig hybrid_cfg;
  hybrid_cfg.ranks = 3;
  hybrid_cfg.devices = 2;
  core::HybridDriver driver(calc, hybrid_cfg);
  const auto result = driver.run(points);

  for (std::size_t p = 0; p < points.size(); ++p) {
    const apec::Spectrum serial = calc.calculate(points[p]);
    for (std::size_t b = 0; b < grid.bin_count(); ++b)
      EXPECT_NEAR(result.spectra[p][b], serial[b],
                  1e-9 * std::max(serial.peak(), 1e-300))
          << "point " << p << " bin " << b;
  }
  // Hotter points along the temperature axis shift flux to higher energy.
  const auto cold = result.spectra[0];
  const auto hot = result.spectra[2];
  double cold_hi = 0.0;
  double hot_hi = 0.0;
  for (std::size_t b = grid.bin_count() / 2; b < grid.bin_count(); ++b) {
    cold_hi += cold[b];
    hot_hi += hot[b];
  }
  EXPECT_GT(hot_hi / hot.total(), cold_hi / cold.total());

  // The default driver is the pipelined one: the resident cache and the
  // per-rank streams must actually have been exercised.
  EXPECT_GT(result.pipeline.streams_used, 0u);
  EXPECT_GT(result.pipeline.cache_hits, 0u);
  EXPECT_GT(result.pipeline.bytes_h2d_saved, 0u);
  EXPECT_GT(result.pipeline.tasks_pipelined, 0u);
  EXPECT_GT(result.virtual_makespan_s, 0.0);

  // Work stealing, made deterministic via the rank-start test seam: every
  // rank but 0 holds at the start line until a steal has happened, so rank 0
  // must drain its own seed range and then take a chunk of theirs. (The old
  // retry-until-steal loop was a coin flip on a single-core host, where fair
  // scheduling keeps equal-cost ranks in lockstep and nobody falls behind.)
  core::HybridConfig steal_cfg = hybrid_cfg;
  steal_cfg.rank_start_hook = [](int rank, const core::PointWorkQueue& q) {
    if (rank == 0) return;
    while (q.steals.load(std::memory_order_acquire) == 0)
      std::this_thread::yield();
  };
  core::HybridDriver steal_driver(calc, steal_cfg);
  const auto stolen = steal_driver.run(points);
  EXPECT_GT(stolen.pipeline.steals, 0u);
  EXPECT_GT(stolen.pipeline.stolen_points, 0u);
  // Stolen points are still computed exactly once, bit-identical.
  for (std::size_t p = 0; p < points.size(); ++p)
    for (std::size_t b = 0; b < grid.bin_count(); ++b)
      EXPECT_EQ(stolen.spectra[p][b], result.spectra[p][b])
          << "point " << p << " bin " << b;
}

TEST(Pipeline, SpeedupShapesFromCalibratedSimulator) {
  // The Fig. 3 headline shapes, asserted end to end through perfmodel + sim:
  // Ion beats Level everywhere; both saturate; Ion(3 GPUs) lands within a
  // factor ~1.3 of the paper's 305.8.
  perfmodel::SpectralCostModel m({}, perfmodel::paper_workload());
  const double serial = 24.0 * m.serial_point_s();
  auto run = [&](int devices, bool ion) {
    sim::HybridSimConfig cfg;
    cfg.devices = devices;
    cfg.total_tasks = ion ? 24 * 496 : 24 * 496 * 4;
    cfg.prep_s = ion ? m.ion_prep_s() : m.level_prep_s();
    cfg.cpu_task_s = ion ? m.ion_cpu_s() : m.level_cpu_s();
    cfg.gpu_task_s = ion ? m.ion_gpu_s() : m.level_gpu_s();
    return serial / sim::simulate_hybrid(cfg).makespan_s;
  };
  double prev_ion = 0.0;
  for (int d = 1; d <= 4; ++d) {
    const double ion = run(d, true);
    const double level = run(d, false);
    EXPECT_GT(ion, level) << d << " GPUs";
    EXPECT_GT(ion, prev_ion * 0.98) << d << " GPUs";  // non-decreasing-ish
    prev_ion = ion;
  }
  const double ion3 = run(3, true);
  EXPECT_GT(ion3, 305.8 / 1.3);
  EXPECT_LT(ion3, 305.8 * 1.3);
}

}  // namespace
